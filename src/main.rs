//! `qnn` — command-line front-end for the reproduction harness.
//!
//! ```text
//! qnn table3                  # design metrics per precision (Table III)
//! qnn fig3                    # area/power breakdown (Figure 3)
//! qnn table4 [scale]          # MNIST/SVHN-class accuracy+energy (Table IV)
//! qnn table5 [scale]          # CIFAR-class + expanded networks (Table V)
//! qnn fig4 [scale]            # Pareto frontier (Figure 4)
//! qnn energy                  # per-stage energy figure from a recorded trace
//! qnn faultcurve [scale]      # accuracy vs. bit-fault rate per precision
//! qnn memory                  # §V-B parameter-memory report
//! qnn minifloat               # future-work custom-float sweep
//! qnn tiles                   # tile-size design-space extension
//! qnn tune [scale] [flags]    # mixed-precision autotuner (PARETO_tune.json)
//! qnn all [scale]             # everything, in paper order
//! qnn serve [flags]           # batched inference server (qnn-serve)
//! qnn shard [flags]           # a cluster shard worker (= serve)
//! qnn router [flags]          # consistent-hash router over N shards
//! qnn checkpoint [flags]      # write a QNNF model-bank checkpoint
//! qnn reload ADDR PATH        # hot-reload a running server's bank
//! ```
//!
//! `scale` ∈ `smoke` (seconds) | `reduced` (default, minutes) | `full`
//! (hours); it affects only the *training* side — hardware numbers always
//! use the full Table I/II architectures.
//!
//! `table4` and `table5` additionally accept:
//!
//! * `--resume DIR` — run crash-safe: every completed (benchmark,
//!   precision) cell and each pre-training is checkpointed under `DIR`,
//!   and a rerun with the same `DIR` skips finished cells. The resumed
//!   table is bit-identical to an uninterrupted run.
//! * `--max-cells N` — compute at most `N` new cells this invocation
//!   (requires `--resume`). A partial sweep prints its progress and
//!   exits with code **3** so scripts can tell "more to do" from done.
//!
//! `serve` runs the `qnn-serve` batched-inference server and takes its
//! own flags (see [`run_serve`]): `--addr`, `--port-file`, `--max-batch`,
//! `--max-wait-us`, `--queue-cap`, `--engine-threads`, `--trace`. The
//! server runs until a
//! client sends a `Shutdown` frame (`qnn-bench serve-soak --shutdown`
//! does), then prints its run stats.
//!
//! `shard` is an alias for `serve` — a cluster worker is a stock
//! batched-inference server. `router` fronts N shards with consistent
//! hashing, heartbeat-driven membership, and replica failover (see
//! [`run_router`]); a `Shutdown` frame at the router drains the whole
//! cluster.
//!
//! `checkpoint` writes a `QNNF` model-bank checkpoint ([`run_checkpoint`])
//! and `reload` asks a running server — or a router, which rolls the
//! reload across every live shard — to hot-swap to one ([`run_reload`]):
//! the server canary-gates the candidate and either promotes it (new
//! version, old one drains out) or refuses typed, still serving the
//! previous version bit-identically.

use std::path::PathBuf;

use qnn_core::experiments::{
    breakdown, design_metrics, energy_stages, fault_curve, memory_report, minifloat_sweep,
    standard_fault_rates, table4, table4_resumable, table5, table5_resumable, tile_scaling, tune,
    tune_resumable_with_hook, BreakdownRow, DesignRow, EnergyStageRow, ExperimentScale,
    FaultCurveRow, MemoryRow, MinifloatRow, SweepProgress, Table5Row, TileRow,
};
use qnn_core::pareto::pareto_frontier;
use qnn_nn::zoo;
use qnn_quant::Precision;

/// Exit code for an interrupted (still partial) resumable sweep.
const EXIT_PARTIAL: i32 = 3;

/// Options shared by every experiment command.
struct Opts {
    scale: ExperimentScale,
    resume: Option<PathBuf>,
    max_cells: Option<usize>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        scale: ExperimentScale::Reduced,
        resume: None,
        max_cells: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "smoke" => opts.scale = ExperimentScale::Smoke,
            "reduced" => opts.scale = ExperimentScale::Reduced,
            "full" => opts.scale = ExperimentScale::Full,
            "--resume" => {
                let dir = it.next().ok_or("--resume needs a directory")?;
                opts.resume = Some(PathBuf::from(dir));
            }
            "--max-cells" => {
                let n = it.next().ok_or("--max-cells needs a count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--max-cells: `{n}` is not a count"))?;
                opts.max_cells = Some(n);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.max_cells.is_some() && opts.resume.is_none() {
        return Err("--max-cells only makes sense with --resume".into());
    }
    Ok(opts)
}

/// Runs the `qnn-serve` batched-inference server until a client shuts it
/// down, then prints the run's [`qnn_serve::ServeStats`].
///
/// Flags (all optional):
///
/// * `--addr HOST:PORT` — bind address; port 0 picks a free port
///   (default `127.0.0.1:0`).
/// * `--port-file PATH` — write the actually-bound `host:port` to `PATH`
///   once listening, so scripts can connect to a port-0 bind.
/// * `--max-batch N` / `--max-wait-us N` — the dynamic-batching flush
///   policy: flush when `N` requests are waiting or the oldest has
///   waited `N` microseconds, whichever comes first.
/// * `--queue-cap N` — bounded-queue capacity; pushes beyond it are
///   rejected with a `Busy` error frame carrying a retry-after hint.
/// * `--engine-threads N` — parallel engine forwards per batch (default
///   1). Responses are bit-identical at any setting.
/// * `--seed N` — model-bank seed (default the shared `MODEL_SEED`;
///   both ends of a soak run must agree).
/// * `--checkpoint PATH` — durable bank checkpoint: load from it at
///   startup (`.bak`-rescued if corrupt), write it on first boot, and
///   persist every promoted hot-reload to it before the swap.
/// * `--canary-min-agree F` — reload canary floor in `0.0..=1.0`:
///   minimum fraction of probe forwards whose top-1 class must agree
///   with the live bank before promotion (default 0.0 =
///   integrity-checks only).
/// * `--trace PATH` — record a `qnn-trace` JSONL of the run (per-batch
///   spans, queue-depth gauge, batch-size and latency histograms).
///
/// Every flag takes a value, may appear at most once, and is validated
/// into a typed error (exit 2) — `--engine-threads 0`, `--queue-cap 0`,
/// a duplicate flag, or a queue smaller than a batch all refuse to
/// start rather than panicking or serving with nonsense knobs.
fn run_serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = qnn_serve::ServeConfig::default();
    let mut port_file: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut seen = std::collections::BTreeSet::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg.starts_with("--") && !seen.insert(arg.clone()) {
            return Err(format!(
                "serve: duplicate flag `{arg}` — each flag may appear at most once"
            )
            .into());
        }
        let mut next = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = next("--addr")?,
            "--port-file" => port_file = Some(PathBuf::from(next("--port-file")?)),
            "--trace" => trace_path = Some(PathBuf::from(next("--trace")?)),
            "--checkpoint" => cfg.checkpoint = Some(PathBuf::from(next("--checkpoint")?)),
            "--max-batch" => {
                let v = next("--max-batch")?;
                cfg.max_batch = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--max-batch: `{v}` is not a positive count"))?;
            }
            "--max-wait-us" => {
                let v = next("--max-wait-us")?;
                let us: u64 = v
                    .parse()
                    .map_err(|_| format!("--max-wait-us: `{v}` is not microseconds"))?;
                cfg.max_wait = std::time::Duration::from_micros(us);
            }
            "--queue-cap" => {
                let v = next("--queue-cap")?;
                cfg.queue_cap = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--queue-cap: `{v}` is not a positive count"))?;
            }
            "--engine-threads" => {
                let v = next("--engine-threads")?;
                cfg.engine_threads = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--engine-threads: `{v}` is not a thread count"))?;
            }
            "--seed" => {
                let v = next("--seed")?;
                cfg.seed = parse_seed(&v).ok_or_else(|| format!("--seed: `{v}` is not a seed"))?;
            }
            "--canary-min-agree" => {
                let v = next("--canary-min-agree")?;
                cfg.canary_min_agree = v
                    .parse::<f32>()
                    .ok()
                    .filter(|f| (0.0..=1.0).contains(f))
                    .ok_or_else(|| {
                        format!("--canary-min-agree: `{v}` is not a fraction in 0.0..=1.0")
                    })?;
            }
            other => return Err(format!("serve: unknown argument `{other}`").into()),
        }
    }
    if cfg.queue_cap < cfg.max_batch {
        return Err(format!(
            "serve: --queue-cap {} is smaller than --max-batch {} — \
             no batch could ever fill",
            cfg.queue_cap, cfg.max_batch
        )
        .into());
    }
    if trace_path.is_some() {
        qnn_trace::start();
    }
    let server = qnn_serve::Server::start(cfg)?;
    let addr = server.local_addr();
    println!("qnn-serve listening on {addr}");
    if let Some(path) = &port_file {
        std::fs::write(path, addr.to_string())?;
    }
    let stats = server.join();
    print!("{}", stats.render());
    if let Some(path) = &trace_path {
        let trace = qnn_trace::stop();
        std::fs::write(path, trace.to_jsonl())?;
        println!("wrote trace to {}", path.display());
    }
    Ok(())
}

/// Runs the `qnn-serve` cluster router until a client shuts the cluster
/// down, then prints the run's [`qnn_serve::RouterStats`].
///
/// Flags:
///
/// * `--shards A:P,B:P,...` — comma-separated shard addresses
///   (required). Each shard is a `qnn shard` (or `qnn serve`) process.
/// * `--addr HOST:PORT` — edge bind address; port 0 picks a free port
///   (default `127.0.0.1:0`).
/// * `--port-file PATH` — write the actually-bound `host:port` once
///   listening.
/// * `--heartbeat-ms N` — liveness probe interval (default 100).
/// * `--k-misses N` — consecutive missed beats before a shard is marked
///   down (default 3).
/// * `--probe-timeout-ms N` — per-probe read deadline (default 500).
/// * `--forward-timeout-ms N` — shard-side forward read deadline
///   (default 10000).
/// * `--vnodes N` — virtual nodes per shard on the hash ring
///   (default 64).
/// * `--trace PATH` — record a `qnn-trace` JSONL of the run
///   (`router.route` spans, per-shard up/down gauges and counters,
///   forward-latency histogram).
fn run_router(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = qnn_serve::RouterConfig::default();
    let mut port_file: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let parse_ms = |flag: &str, v: String| -> Result<std::time::Duration, String> {
            v.parse::<u64>()
                .map(std::time::Duration::from_millis)
                .map_err(|_| format!("{flag}: `{v}` is not milliseconds"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = next("--addr")?,
            "--shards" => {
                cfg.shards = next("--shards")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--port-file" => port_file = Some(PathBuf::from(next("--port-file")?)),
            "--trace" => trace_path = Some(PathBuf::from(next("--trace")?)),
            "--heartbeat-ms" => {
                cfg.heartbeat = parse_ms("--heartbeat-ms", next("--heartbeat-ms")?)?
            }
            "--probe-timeout-ms" => {
                cfg.probe_timeout = parse_ms("--probe-timeout-ms", next("--probe-timeout-ms")?)?;
            }
            "--forward-timeout-ms" => {
                cfg.forward_timeout =
                    parse_ms("--forward-timeout-ms", next("--forward-timeout-ms")?)?;
            }
            "--k-misses" => {
                let v = next("--k-misses")?;
                cfg.k_misses = v
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--k-misses: `{v}` is not a count"))?;
            }
            "--vnodes" => {
                let v = next("--vnodes")?;
                cfg.vnodes = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--vnodes: `{v}` is not a count"))?;
            }
            other => return Err(format!("router: unknown argument `{other}`").into()),
        }
    }
    if cfg.shards.is_empty() {
        return Err("router: --shards A:P[,B:P...] is required".into());
    }
    if trace_path.is_some() {
        qnn_trace::start();
    }
    let router = qnn_serve::Router::start(cfg)?;
    let addr = router.local_addr();
    println!("qnn-router listening on {addr}");
    if let Some(path) = &port_file {
        std::fs::write(path, addr.to_string())?;
    }
    let stats = router.join();
    print!("{}", stats.render());
    if let Some(path) = &trace_path {
        let trace = qnn_trace::stop();
        std::fs::write(path, trace.to_jsonl())?;
        println!("wrote trace to {}", path.display());
    }
    Ok(())
}

/// Parses a seed as decimal or `0x`-prefixed hex.
fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// Writes a `QNNF` model-bank checkpoint — what `qnn reload` and the
/// server's `--checkpoint` flag consume.
///
/// Flags:
///
/// * `--out PATH` — where to write (required). An existing file is
///   rotated to `PATH.bak` first.
/// * `--seed N` — bank seed, decimal or `0x` hex (default the shared
///   `MODEL_SEED`).
/// * `--zero-weights` — zero the captured base weights. The result is a
///   structurally valid checkpoint whose logits collapse to a constant —
///   the deterministic fixture CI uses to prove a strict canary refuses
///   a diverging candidate.
fn run_checkpoint(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut seed: u64 = qnn_serve::MODEL_SEED;
    let mut out: Option<PathBuf> = None;
    let mut zero = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(next("--out")?)),
            "--seed" => {
                let v = next("--seed")?;
                seed = parse_seed(&v).ok_or_else(|| format!("--seed: `{v}` is not a seed"))?;
            }
            "--zero-weights" => zero = true,
            other => return Err(format!("checkpoint: unknown argument `{other}`").into()),
        }
    }
    let out = out.ok_or("checkpoint: --out PATH is required")?;
    let mut cp = qnn_serve::BankCheckpoint::capture(seed).map_err(|e| e.to_string())?;
    if zero {
        for t in &mut cp.state {
            for v in t.as_mut_slice() {
                *v = 0.0;
            }
        }
    }
    cp.save(&out).map_err(|e| e.to_string())?;
    println!(
        "wrote bank checkpoint (seed {seed:#x}{}) to {}",
        if zero { ", weights zeroed" } else { "" },
        out.display()
    );
    Ok(())
}

/// Asks a running server (or router) to hot-reload its model bank:
/// `qnn reload HOST:PORT CHECKPOINT`. The path is resolved against the
/// *server's* filesystem. Prints the promoted version on success; a
/// typed refusal (corrupt checkpoint, canary divergence, reload already
/// in flight) prints the reason and exits 1 — the server is still
/// serving its previous version.
fn run_reload(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let [addr, path] = args else {
        return Err("reload: usage `qnn reload HOST:PORT CHECKPOINT`".into());
    };
    let mut client = qnn_serve::ServeClient::connect(addr)?;
    match client.reload(path) {
        Ok((version, seed)) => {
            println!("promoted: model version {version} (seed {seed:#x})");
            Ok(())
        }
        Err(e) => {
            eprintln!("reload rejected: {e}");
            std::process::exit(1);
        }
    }
}

/// Runs the mixed-precision autotuner and writes the Pareto-front
/// artifact.
///
/// `qnn tune [smoke|reduced|full] [flags]`:
///
/// * `--out PATH` — artifact path (default `PARETO_tune.json`). The
///   writer is deterministic: two complete runs at the same
///   `(scale, seed)` emit byte-identical files, at any `QNN_THREADS`.
/// * `--seed N` — sweep seed, decimal or `0x` hex (default 42).
/// * `--resume DIR` — run crash-safe: every evaluated candidate is a
///   ledger cell under `DIR`, and a rerun with the same `DIR` skips
///   finished cells. A SIGKILLed-and-resumed tune produces the same
///   artifact byte for byte.
/// * `--max-cells N` — compute at most `N` new cells this invocation
///   (requires `--resume`); a partial sweep prints progress and exits 3.
/// * `--kill-cell N` — crash harness for the `tune-resume` CI stage
///   (requires `--resume`): SIGKILL this process right after the `N`-th
///   *new* cell is durably recorded.
fn run_tune(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut scale = ExperimentScale::Reduced;
    let mut resume: Option<PathBuf> = None;
    let mut max_cells: Option<usize> = None;
    let mut kill_cell: Option<usize> = None;
    let mut out = PathBuf::from("PARETO_tune.json");
    let mut seed: u64 = 42;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let parse_count = |flag: &str, v: String| -> Result<usize, String> {
            v.parse()
                .map_err(|_| format!("{flag}: `{v}` is not a count"))
        };
        match arg.as_str() {
            "smoke" => scale = ExperimentScale::Smoke,
            "reduced" => scale = ExperimentScale::Reduced,
            "full" => scale = ExperimentScale::Full,
            "--resume" => resume = Some(PathBuf::from(next("--resume")?)),
            "--out" => out = PathBuf::from(next("--out")?),
            "--max-cells" => max_cells = Some(parse_count("--max-cells", next("--max-cells")?)?),
            "--kill-cell" => {
                let n = parse_count("--kill-cell", next("--kill-cell")?)?;
                if n == 0 {
                    return Err("--kill-cell: cell numbers start at 1".into());
                }
                kill_cell = Some(n);
            }
            "--seed" => {
                let v = next("--seed")?;
                seed = parse_seed(&v).ok_or_else(|| format!("--seed: `{v}` is not a seed"))?;
            }
            other => return Err(format!("tune: unknown argument `{other}`").into()),
        }
    }
    if (max_cells.is_some() || kill_cell.is_some()) && resume.is_none() {
        return Err("tune: --max-cells/--kill-cell only make sense with --resume".into());
    }
    let result = match &resume {
        None => tune(scale, seed)?,
        Some(dir) => {
            let (result, progress) = tune_resumable_with_hook(scale, seed, dir, max_cells, |n| {
                if kill_cell == Some(n) {
                    // Deterministic crash for the tune-resume CI stage:
                    // die by real SIGKILL (no destructors, no atexit)
                    // the moment the n-th new cell is on disk.
                    let pid = std::process::id();
                    let _ = std::process::Command::new("sh")
                        .arg("-c")
                        .arg(format!("kill -9 {pid}"))
                        .status();
                    std::process::exit(137); // unreachable when the kill lands
                }
            })?;
            match result {
                Some(r) => r,
                None => partial_exit(&progress),
            }
        }
    };
    std::fs::write(&out, result.render_json())?;
    println!(
        "tune: evaluated {} assignments; {} points on the Pareto frontier; wrote {}",
        result.evaluated,
        result.frontier.len(),
        out.display()
    );
    for p in &result.frontier {
        println!(
            "  {:48} {:6.2} %  {:9.3} uJ",
            p.label, p.accuracy_pct, p.energy_uj
        );
    }
    Ok(())
}

/// Reports a still-partial resumable sweep and exits with code 3.
fn partial_exit(progress: &SweepProgress) -> ! {
    println!(
        "sweep interrupted at {}/{} cells; rerun with the same --resume dir to continue",
        progress.completed, progress.total
    );
    std::process::exit(EXIT_PARTIAL);
}

fn run(cmd: &str, opts: &Opts) -> Result<(), Box<dyn std::error::Error>> {
    let scale = opts.scale;
    match cmd {
        "table3" => println!("{}", DesignRow::render(&design_metrics())),
        "fig3" => println!("{}", BreakdownRow::render(&breakdown())),
        "memory" => println!("{}", MemoryRow::render(&memory_report()?)),
        "minifloat" => println!(
            "{}",
            MinifloatRow::render(&minifloat_sweep(false, scale, 1)?)
        ),
        "tiles" => println!(
            "{}",
            TileRow::render(&tile_scaling(Precision::fixed(16, 16))?)
        ),
        "energy" => println!("{}", EnergyStageRow::render(&energy_stages(&zoo::alex())?)),
        "faultcurve" => println!(
            "{}",
            FaultCurveRow::render(&fault_curve(scale, 42, &standard_fault_rates())?)
        ),
        "table4" => match &opts.resume {
            None => println!("{}", table4(scale, 42)?.render()),
            Some(dir) => {
                let (table, progress) = table4_resumable(scale, 42, dir, opts.max_cells)?;
                match table {
                    Some(t) => println!("{}", t.render()),
                    None => partial_exit(&progress),
                }
            }
        },
        "table5" => match &opts.resume {
            None => println!("{}", Table5Row::render(&table5(scale, 42)?)),
            Some(dir) => {
                let (rows, progress) = table5_resumable(scale, 42, dir, opts.max_cells)?;
                match rows {
                    Some(r) => println!("{}", Table5Row::render(&r)),
                    None => partial_exit(&progress),
                }
            }
        },
        "fig4" => {
            let rows = table5(scale, 42)?;
            let pts = Table5Row::to_design_points(&rows);
            let frontier = pareto_frontier(&pts);
            for p in &pts {
                let on = frontier.iter().any(|f| f == p);
                println!(
                    "{} {:32} {:9.2} uJ  {:5.1}%",
                    if on { "*" } else { " " },
                    p.label,
                    p.energy_uj,
                    p.accuracy_pct
                );
            }
        }
        "all" => {
            for c in [
                "table3",
                "fig3",
                "memory",
                "minifloat",
                "tiles",
                "energy",
                "table4",
                "table5",
                "fig4",
            ] {
                println!("\n== {c} ==\n");
                run(c, opts)?;
            }
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage();
            std::process::exit(2);
        }
    }
    Ok(())
}

fn usage() {
    eprintln!(
        "usage: qnn <table3|fig3|table4|table5|fig4|energy|faultcurve|memory|minifloat|tiles|all> \
         [smoke|reduced|full] [--resume DIR [--max-cells N]]\n\
         \x20      qnn serve|shard [--addr HOST:PORT] [--port-file PATH] [--max-batch N] \
         [--max-wait-us N] [--queue-cap N] [--engine-threads N] [--seed N] \
         [--checkpoint PATH] [--canary-min-agree F] [--trace PATH]\n\
         \x20      qnn router --shards A:P[,B:P...] [--addr HOST:PORT] [--port-file PATH] \
         [--heartbeat-ms N] [--k-misses N] [--probe-timeout-ms N] [--forward-timeout-ms N] \
         [--vnodes N] [--trace PATH]\n\
         \x20      qnn checkpoint --out PATH [--seed N] [--zero-weights]\n\
         \x20      qnn reload HOST:PORT CHECKPOINT\n\
         \x20      qnn tune [smoke|reduced|full] [--out PATH] [--seed N] \
         [--resume DIR [--max-cells N] [--kill-cell N]]"
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let cmd = args.get(1).map(String::as_str).unwrap_or("table3");
    if cmd == "serve" || cmd == "shard" {
        // serve has its own flag set; don't route it through parse_opts.
        // `shard` is the same server wearing its cluster-worker hat.
        return run_serve(&args[2..]).map_err(|e| {
            eprintln!("{e}");
            usage();
            std::process::exit(2);
        });
    }
    if cmd == "router" {
        return run_router(&args[2..]).map_err(|e| {
            eprintln!("{e}");
            usage();
            std::process::exit(2);
        });
    }
    if cmd == "checkpoint" {
        return run_checkpoint(&args[2..]).map_err(|e| {
            eprintln!("{e}");
            usage();
            std::process::exit(2);
        });
    }
    if cmd == "reload" {
        return run_reload(&args[2..]).map_err(|e| {
            eprintln!("{e}");
            usage();
            std::process::exit(2);
        });
    }
    if cmd == "tune" {
        // tune has its own flag set (--out, --kill-cell, --seed).
        return run_tune(&args[2..]).map_err(|e| {
            eprintln!("{e}");
            usage();
            std::process::exit(2);
        });
    }
    let opts = parse_opts(&args[2.min(args.len())..]).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
        std::process::exit(2);
    });
    run(cmd, &opts)
}
