//! `qnn` — command-line front-end for the reproduction harness.
//!
//! ```text
//! qnn table3                  # design metrics per precision (Table III)
//! qnn fig3                    # area/power breakdown (Figure 3)
//! qnn table4 [scale]          # MNIST/SVHN-class accuracy+energy (Table IV)
//! qnn table5 [scale]          # CIFAR-class + expanded networks (Table V)
//! qnn fig4 [scale]            # Pareto frontier (Figure 4)
//! qnn memory                  # §V-B parameter-memory report
//! qnn minifloat               # future-work custom-float sweep
//! qnn tiles                   # tile-size design-space extension
//! qnn all [scale]             # everything, in paper order
//! ```
//!
//! `scale` ∈ `smoke` (seconds) | `reduced` (default, minutes) | `full`
//! (hours); it affects only the *training* side — hardware numbers always
//! use the full Table I/II architectures.

use qnn_core::experiments::{
    breakdown, design_metrics, memory_report, minifloat_sweep, table4, table5, tile_scaling,
    BreakdownRow, DesignRow, ExperimentScale, MemoryRow, MinifloatRow, Table5Row, TileRow,
};
use qnn_core::pareto::pareto_frontier;
use qnn_quant::Precision;

fn parse_scale(arg: Option<&str>) -> ExperimentScale {
    match arg {
        Some("smoke") => ExperimentScale::Smoke,
        Some("full") => ExperimentScale::Full,
        _ => ExperimentScale::Reduced,
    }
}

fn run(cmd: &str, scale: ExperimentScale) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        "table3" => println!("{}", DesignRow::render(&design_metrics())),
        "fig3" => println!("{}", BreakdownRow::render(&breakdown())),
        "memory" => println!("{}", MemoryRow::render(&memory_report()?)),
        "minifloat" => println!(
            "{}",
            MinifloatRow::render(&minifloat_sweep(false, scale, 1)?)
        ),
        "tiles" => println!(
            "{}",
            TileRow::render(&tile_scaling(Precision::fixed(16, 16))?)
        ),
        "table4" => println!("{}", table4(scale, 42)?.render()),
        "table5" => println!("{}", Table5Row::render(&table5(scale, 42)?)),
        "fig4" => {
            let rows = table5(scale, 42)?;
            let pts = Table5Row::to_design_points(&rows);
            let frontier = pareto_frontier(&pts);
            for p in &pts {
                let on = frontier.iter().any(|f| f == p);
                println!(
                    "{} {:32} {:9.2} uJ  {:5.1}%",
                    if on { "*" } else { " " },
                    p.label,
                    p.energy_uj,
                    p.accuracy_pct
                );
            }
        }
        "all" => {
            for c in [
                "table3",
                "fig3",
                "memory",
                "minifloat",
                "tiles",
                "table4",
                "table5",
                "fig4",
            ] {
                println!("\n== {c} ==\n");
                run(c, scale)?;
            }
        }
        other => {
            eprintln!("unknown command `{other}`");
            eprintln!(
                "usage: qnn <table3|fig3|table4|table5|fig4|memory|minifloat|tiles|all> [smoke|reduced|full]"
            );
            std::process::exit(2);
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let cmd = args.get(1).map(String::as_str).unwrap_or("table3");
    let scale = parse_scale(args.get(2).map(String::as_str));
    run(cmd, scale)
}
