#![warn(missing_docs)]

//! # qnn — precision quantization for neural-network accelerators
//!
//! A reproduction of *"Understanding the Impact of Precision Quantization on
//! the Accuracy and Energy of Neural Networks"* (Hashemi et al., DATE 2017).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`tensor`] — the dense f32 tensor substrate (convolution, pooling,
//!   matmul) that the network library is built on.
//! * [`quant`] — the numeric formats studied by the paper: fixed-point
//!   Q-formats, power-of-two weight codes, binary weights, and bit-accurate
//!   minifloats, plus range calibration and straight-through estimators.
//! * [`nn`] — convolutional network layers, backprop, SGD, and
//!   quantization-aware training; the model zoo holds the paper's Table I
//!   and Table II architectures (LeNet, ConvNet, ALEX, ALEX+, ALEX++).
//! * [`data`] — procedural stand-ins for MNIST / SVHN / CIFAR-10 with
//!   matched shapes and graded difficulty.
//! * [`hw`] — a 65 nm component library and synthesis-style area/power
//!   estimator calibrated against the paper's Table III.
//! * [`accel`] — the DianNao-style 16×16 tile accelerator: buffer
//!   subsystems, per-precision weight blocks, cycle model, per-image energy.
//! * [`core`] — the experiment harness that regenerates every table and
//!   figure in the paper's evaluation section.
//!
//! ## Quickstart
//!
//! ```
//! use qnn::prelude::*;
//!
//! # fn main() -> Result<(), qnn::nn::NnError> {
//! // Hardware side: how much area/power does an 8-bit fixed-point
//! // accelerator need, and what does it save vs. 32-bit float?
//! let fp32 = AcceleratorDesign::new(Precision::float32()).report();
//! let fix8 = AcceleratorDesign::new(Precision::fixed(8, 8)).report();
//! assert!(fix8.power_mw < fp32.power_mw / 4.0);
//!
//! // Workload side: per-image energy of LeNet on that design.
//! let workload = zoo::lenet().workload()?;
//! let energy = AcceleratorDesign::new(Precision::fixed(8, 8))
//!     .energy_per_image(&workload);
//! assert!(energy.total_uj() > 0.0);
//! # Ok(())
//! # }
//! ```
pub use qnn_accel as accel;
pub use qnn_core as core;
pub use qnn_data as data;
pub use qnn_hw as hw;
pub use qnn_nn as nn;
pub use qnn_quant as quant;
pub use qnn_tensor as tensor;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use qnn_accel::{AcceleratorConfig, AcceleratorDesign, EnergyBreakdown};
    pub use qnn_core::experiments;
    pub use qnn_core::pareto::{pareto_frontier, DesignPoint};
    pub use qnn_data::{Dataset, DatasetKind};
    pub use qnn_nn::zoo;
    pub use qnn_nn::{Network, QatConfig, Sgd, Trainer};
    pub use qnn_quant::{Binary, Fixed, Minifloat, PowerOfTwo, Precision, Quantizer};
    pub use qnn_tensor::Tensor;
}
