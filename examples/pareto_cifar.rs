//! Regenerates the paper's headline result: Table V and the Figure 4
//! Pareto frontier on the CIFAR-class benchmark — expanded low-precision
//! networks (ALEX+ / ALEX++) dominating the full-precision baseline in
//! both accuracy and energy.
//!
//! Run with `cargo run --release --example pareto_cifar [smoke|reduced]`
//! (default smoke; reduced takes several minutes).

use qnn_core::experiments::{table5, ExperimentScale, Table5Row};
use qnn_core::pareto::pareto_frontier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("reduced") => ExperimentScale::Reduced,
        Some("full") => ExperimentScale::Full,
        _ => ExperimentScale::Smoke,
    };
    println!("scale: {scale:?} (accuracy side; energy always uses full Table I/II networks)\n");

    let rows = table5(scale, 99)?;
    println!("## Table V — CIFAR-class accuracy/energy\n");
    println!("{}", Table5Row::render(&rows));

    let points = Table5Row::to_design_points(&rows);
    let frontier = pareto_frontier(&points);
    println!("\n## Figure 4 — Pareto frontier (energy µJ → accuracy %)\n");
    for p in &points {
        let on = frontier.iter().any(|f| f == p);
        println!(
            "{} {:28} {:9.2} µJ   {:5.1}%",
            if on { "*" } else { " " },
            p.label,
            p.energy_uj,
            p.accuracy_pct
        );
    }
    println!("\n(* = Pareto-optimal; paper's frontier is led by Powers of Two++ (6,16))");
    Ok(())
}
