//! Quantization-aware training at an arbitrary precision, from the
//! command line:
//!
//! ```text
//! cargo run --release --example train_quantized -- [float32|fixed16|fixed8|fixed4|pow2|binary] [glyphs|house|textured]
//! ```
//!
//! Trains a full-precision baseline on the chosen synthetic dataset,
//! retrains it quantization-aware at the chosen precision (shadow weights +
//! straight-through estimator, as §IV-A of the paper), and reports both
//! accuracies plus the hardware design metrics for the precision.

use qnn::prelude::*;
use qnn_data::{standard_splits, DatasetKind};
use qnn_nn::arch::NetworkSpec;
use qnn_nn::{QatConfig, TrainerConfig};

fn parse_precision(s: &str) -> Option<Precision> {
    Some(match s {
        "float32" => Precision::float32(),
        "fixed32" => Precision::fixed(32, 32),
        "fixed16" => Precision::fixed(16, 16),
        "fixed8" => Precision::fixed(8, 8),
        "fixed4" => Precision::fixed(4, 4),
        "pow2" => Precision::power_of_two(),
        "binary" => Precision::binary(),
        _ => return None,
    })
}

fn parse_dataset(s: &str) -> Option<DatasetKind> {
    Some(match s {
        "glyphs" => DatasetKind::Glyphs28,
        "house" => DatasetKind::HouseDigits32,
        "textured" => DatasetKind::TexturedObjects32,
        _ => return None,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let precision = args
        .get(1)
        .and_then(|s| parse_precision(s))
        .unwrap_or_else(Precision::binary);
    let kind = args
        .get(2)
        .and_then(|s| parse_dataset(s))
        .unwrap_or(DatasetKind::Glyphs28);

    println!(
        "dataset {} (stands in for {}), precision {}",
        kind.name(),
        kind.stands_in_for(),
        precision.label()
    );

    let splits = standard_splits(kind, 1200, 500, 2024);
    let (c, h, w) = kind.input_shape();
    let spec = NetworkSpec::new("qat-demo", (c, h, w))
        .conv(8, 5, 1, 2)
        .relu()
        .max_pool(2, 2)
        .conv(16, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .dense(48)
        .relu()
        .dense(10);
    let trainer = Trainer::new(TrainerConfig {
        epochs: 8,
        batch_size: 32,
        lr: 0.05,
        ..TrainerConfig::default()
    })
    .unwrap();

    let mut net = Network::build(&spec, 3)?;
    let fp_report = trainer.train(&mut net, splits.train.images(), splits.train.labels())?;
    let fp_acc = trainer.evaluate(&mut net, splits.test.images(), splits.test.labels())?;
    println!(
        "full-precision: train acc {:.1}%, test acc {:.1}%",
        fp_report.train_accuracy * 100.0,
        fp_acc * 100.0
    );

    if precision.is_quantized() {
        let report = trainer.train_qat(
            &mut net,
            &QatConfig::new(precision),
            splits.train.images(),
            splits.train.labels(),
            64,
        )?;
        match report.outcome {
            qnn_nn::TrainOutcome::Converged => {
                let acc = trainer.evaluate(&mut net, splits.test.images(), splits.test.labels())?;
                println!(
                    "{} QAT: train acc {:.1}%, test acc {:.1}%  (drop vs FP: {:+.1} pts)",
                    precision.label(),
                    report.train_accuracy * 100.0,
                    acc * 100.0,
                    (acc - fp_acc) * 100.0
                );
            }
            qnn_nn::TrainOutcome::Diverged => {
                println!(
                    "{} QAT failed to converge — the paper reports these cells as NA",
                    precision.label()
                );
            }
        }
        // Per-layer formats chosen by calibration.
        println!("\nper-layer weight formats:");
        for (i, d) in net.weight_quantizer_descriptions().iter().enumerate() {
            if let Some(d) = d {
                println!("  layer {i}: {d}");
            }
        }
    }

    let metrics = AcceleratorDesign::new(precision).report();
    println!(
        "\naccelerator @ {}: {:.2} mm², {:.1} mW ({:.1}% area / {:.1}% power saved vs float32)",
        precision.label(),
        metrics.area_mm2,
        metrics.power_mw,
        metrics.area_saving_pct,
        metrics.power_saving_pct
    );
    Ok(())
}
