//! Regenerates the hardware-only artifacts: Table III (design metrics per
//! precision) and Figure 3 (area/power breakdown by synthesis category),
//! printing model values next to the paper's published numbers.
//!
//! This runs in milliseconds — no training involved.
//!
//! Run with `cargo run --release --example design_space`.

use qnn_core::experiments::{
    breakdown, design_metrics, minifloat_sweep, BreakdownRow, DesignRow, ExperimentScale,
    MinifloatRow,
};
use qnn_quant::Precision;

fn main() {
    println!("## Table III — design metrics of the evaluated precisions\n");
    let rows = design_metrics();
    println!("{}", DesignRow::render(&rows));

    println!("\n## Figure 3 — area & power breakdown by category\n");
    let bars = breakdown();
    println!("{}", BreakdownRow::render(&bars));

    println!("\n## Future-work extension — custom float geometries\n");
    match minifloat_sweep(false, ExperimentScale::Smoke, 1) {
        Ok(rows) => println!("{}", MinifloatRow::render(&rows)),
        Err(e) => println!("minifloat sweep failed: {e}"),
    }

    println!("\n## Buffer dominance (paper §V-B: 75–93% power, 76–96% area)\n");
    for p in Precision::paper_sweep() {
        let d = qnn_accel::AcceleratorDesign::new(p);
        println!(
            "{:26} buffers: {:4.1}% of power, {:4.1}% of area",
            p.label(),
            d.buffer_power_fraction() * 100.0,
            d.buffer_area_fraction() * 100.0
        );
    }
}
