//! Writes a small gallery of synthetic samples to `target/gallery/` as
//! PGM/PPM files, so the MNIST/SVHN/CIFAR stand-ins can be inspected with
//! any image viewer.
//!
//! Run with `cargo run --release --example dataset_gallery`.

use qnn_data::{export, Dataset, DatasetKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::Path::new("target/gallery");
    for kind in [
        DatasetKind::Glyphs28,
        DatasetKind::HouseDigits32,
        DatasetKind::TexturedObjects32,
    ] {
        let ds = Dataset::generate(kind, 20, 12345);
        export::write_samples(&ds, dir, 20)?;
        println!(
            "wrote 20 {} samples ({} stand-in) to {}",
            kind.name(),
            kind.stands_in_for(),
            dir.display()
        );
    }
    Ok(())
}
