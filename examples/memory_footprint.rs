//! Regenerates the §V-B memory-footprint numbers: parameter memory of all
//! five paper networks at every precision, and the 2–32× reduction claim.
//!
//! Run with `cargo run --release --example memory_footprint`.

use qnn_core::experiments::{memory_report, MemoryRow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = memory_report()?;
    println!("## §V-B — parameter memory per network per precision\n");
    println!("{}", MemoryRow::render(&rows));
    println!("\npaper quotes at float32: LeNet ≈1650 KB, ConvNet ≈2150 KB, ALEX ≈350 KB,");
    println!("                         ALEX+ ≈1250 KB, ALEX++ ≈9400 KB");
    for r in &rows {
        println!("{:10} float32: {:7.0} KiB", r.network, r.float32_kib);
    }
    Ok(())
}
