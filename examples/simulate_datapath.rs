//! Bit-accurate datapath demonstration — the paper's "we confirm the
//! functionality of our hardware implementation with extensive
//! simulations", runnable.
//!
//! Simulates one fully-connected layer cycle by cycle on the 16×16 tile
//! under each weight-block variant (fixed multiplier, barrel shifter,
//! sign-negate), using real integer arithmetic on raw buffer codes, and
//! compares the outputs and cycle counts against the f32 fake-quantized
//! reference and the analytical schedule.
//!
//! Run with `cargo run --release --example simulate_datapath`.

use qnn_accel::sim::{SimPrecision, TileSimulator};
use qnn_quant::{Binary, Fixed, PowerOfTwo};
use qnn_tensor::rng;

fn main() {
    let mut r = rng::seeded(2024);
    let fan_in = 200;
    let neurons = 40;
    let inputs: Vec<f32> = (0..fan_in).map(|_| r.gen_range(-2.0f32..2.0)).collect();
    let weights: Vec<f32> = (0..fan_in * neurons)
        .map(|_| r.gen_range(-1.0f32..1.0))
        .collect();
    let bias: Vec<f32> = (0..neurons).map(|_| r.gen_range(-0.5f32..0.5)).collect();

    let variants: Vec<(&str, SimPrecision)> = vec![
        (
            "fixed (8,16) multiplier",
            SimPrecision::Fixed {
                weights: Fixed::new(8, 6).expect("valid format"),
                inputs: Fixed::new(16, 10).expect("valid format"),
            },
        ),
        (
            "pow2 (6,16) barrel shifter",
            SimPrecision::PowerOfTwo {
                weights: PowerOfTwo::new(6, 0).expect("valid format"),
                inputs: Fixed::new(16, 10).expect("valid format"),
            },
        ),
        (
            "binary (1,16) sign-negate",
            SimPrecision::Binary {
                weights: Binary::with_scale(0.5).expect("valid scale"),
                inputs: Fixed::new(16, 10).expect("valid format"),
            },
        ),
    ];

    println!("one dense layer: {neurons} neurons × fan-in {fan_in} on the 16×16 tile\n");
    for (name, precision) in variants {
        let sim = TileSimulator::with_default_tile(precision);
        let out = sim.run_dense(&inputs, &weights, &bias, true);
        let reference = sim.reference_dense(&inputs, &weights, &bias, true);
        let max_err = out
            .outputs
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!(
            "{name:28} cycles {:4}  SB reads {:4}  max |sim - reference| = {max_err:.6}",
            out.cycles, out.sb_reads
        );
    }
    println!("\n(⌈40/16⌉ × ⌈200/16⌉ = 3 × 13 = 39 cycles expected for every variant)");
}
