//! Regenerates every artifact of the paper in one run and prints them
//! paper-vs-measured — the script behind EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example reproduce_all [smoke|reduced|full]
//! ```
//!
//! `reduced` (default) takes tens of minutes on a laptop CPU; `full`
//! trains the exact Table I/II architectures and takes hours.

use qnn_core::experiments::{
    breakdown, design_metrics, memory_report, table4, table5, BreakdownRow, DesignRow,
    ExperimentScale, MemoryRow, Table5Row,
};
use qnn_core::pareto::pareto_frontier;

fn write_csv(
    dir: &std::path::Path,
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(name), qnn_core::report::csv(headers, rows))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("smoke") => ExperimentScale::Smoke,
        Some("full") => ExperimentScale::Full,
        _ => ExperimentScale::Reduced,
    };
    let results = std::path::Path::new("results");
    println!("# qnn — full reproduction run (accuracy scale: {scale:?})\n");

    println!("## Table III — design metrics\n");
    let t3 = design_metrics();
    println!("{}", DesignRow::render(&t3));
    write_csv(
        results,
        "table3.csv",
        &[
            "precision",
            "area_mm2",
            "paper_area_mm2",
            "power_mw",
            "paper_power_mw",
        ],
        &t3.iter()
            .map(|r| {
                vec![
                    r.precision.label(),
                    format!("{:.3}", r.area_mm2),
                    format!("{:.3}", r.paper_area_mm2),
                    format!("{:.2}", r.power_mw),
                    format!("{:.2}", r.paper_power_mw),
                ]
            })
            .collect::<Vec<_>>(),
    )?;

    println!("\n## Figure 3 — area/power breakdown\n");
    println!("{}", BreakdownRow::render(&breakdown()));

    println!("\n## §V-B — memory footprints\n");
    println!("{}", MemoryRow::render(&memory_report()?));

    println!("\n## Table IV — MNIST-/SVHN-class (training...)\n");
    let t4 = table4(scale, 42)?;
    println!("{}", t4.render());

    println!("\n## Table V — CIFAR-class (training...)\n");
    let rows = table5(scale, 42)?;
    println!("{}", Table5Row::render(&rows));
    write_csv(
        results,
        "table5.csv",
        &[
            "network",
            "precision",
            "accuracy_pct",
            "energy_uj",
            "energy_saving_pct",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.network.clone(),
                    r.precision.label(),
                    r.accuracy_pct
                        .map(|a| format!("{a:.2}"))
                        .unwrap_or_else(|| "NA".into()),
                    format!("{:.2}", r.energy_uj),
                    format!("{:.2}", r.energy_saving_pct),
                ]
            })
            .collect::<Vec<_>>(),
    )?;
    println!("\n(csv artifacts written to results/)");

    println!("\n## Figure 4 — Pareto frontier of the generated Table V points\n");
    let pts = Table5Row::to_design_points(&rows);
    let frontier = pareto_frontier(&pts);
    for p in &pts {
        let on = frontier.iter().any(|f| f == p);
        println!(
            "{} {:32} {:9.2} uJ  {:5.1}%",
            if on { "*" } else { " " },
            p.label,
            p.energy_uj,
            p.accuracy_pct
        );
    }
    Ok(())
}
