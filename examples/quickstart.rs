//! Quickstart: the paper's pipeline end to end in under a minute.
//!
//! 1. Synthesize the accelerator at two precisions and compare design
//!    metrics (Table III's question).
//! 2. Train a small network on the MNIST stand-in at full precision, then
//!    retrain it quantization-aware at fixed-point (8,8) (Table IV's
//!    question).
//! 3. Price one inference on each design (the energy column).
//!
//! Run with `cargo run --release --example quickstart`.

use qnn::prelude::*;
use qnn_data::{standard_splits, DatasetKind};
use qnn_nn::{QatConfig, TrainerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Hardware: what does 8-bit fixed point buy? --------------------
    let fp32 = AcceleratorDesign::new(Precision::float32());
    let fix8 = AcceleratorDesign::new(Precision::fixed(8, 8));
    let (rf, r8) = (fp32.report(), fix8.report());
    println!(
        "accelerator @ float32     : {:6.2} mm², {:7.1} mW",
        rf.area_mm2, rf.power_mw
    );
    println!(
        "accelerator @ fixed (8,8) : {:6.2} mm², {:7.1} mW  ({:.1}% area, {:.1}% power saved)",
        r8.area_mm2, r8.power_mw, r8.area_saving_pct, r8.power_saving_pct
    );

    // --- 2. Accuracy: full-precision training, then 8-bit QAT -------------
    let splits = standard_splits(DatasetKind::Glyphs28, 800, 400, 42);
    let spec = zoo::lenet_small();
    let trainer = Trainer::new(TrainerConfig {
        epochs: 5,
        batch_size: 32,
        lr: 0.05,
        ..TrainerConfig::default()
    })
    .unwrap();
    let mut net = Network::build(&spec, 7)?;
    trainer.train(&mut net, splits.train.images(), splits.train.labels())?;
    let fp_acc = trainer.evaluate(&mut net, splits.test.images(), splits.test.labels())?;
    println!(
        "\nfull-precision test accuracy     : {:.1}%",
        fp_acc * 100.0
    );

    let qat = QatConfig::new(Precision::fixed(8, 8));
    trainer.train_qat(
        &mut net,
        &qat,
        splits.train.images(),
        splits.train.labels(),
        64,
    )?;
    let q_acc = trainer.evaluate(&mut net, splits.test.images(), splits.test.labels())?;
    println!("fixed (8,8) QAT test accuracy    : {:.1}%", q_acc * 100.0);

    // --- 3. Energy: price one LeNet inference on each design --------------
    let workload = zoo::lenet().workload()?;
    let e_fp = fp32.energy_per_image(&workload);
    let e_q8 = fix8.energy_per_image(&workload);
    println!(
        "\nLeNet inference: {:.2} µJ @ float32, {:.2} µJ @ fixed (8,8) ({:.1}% saved)",
        e_fp.total_uj(),
        e_q8.total_uj(),
        e_q8.saving_vs(&e_fp)
    );
    println!("paper's Table IV row:      60.74 µJ @ float32,  8.86 µJ @ fixed (8,8) (85.4% saved)");
    Ok(())
}
