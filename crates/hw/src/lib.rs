#![warn(missing_docs)]

//! # qnn-hw — 65 nm component library and area/power estimator
//!
//! The paper synthesizes its accelerator with Synopsys Design Compiler
//! against a 65 nm industrial library at 250 MHz. That flow is proprietary,
//! so this crate substitutes a **parametric component model**: each
//! hardware block (SRAM macro, register bank, multiplier, barrel shifter,
//! adder tree, …) is a [`Component`] with an area and a power figure
//! computed from physically-structured formulas whose constants
//! ([`tech65`]) were **calibrated against the paper's own Table III and
//! Figure 3** — and are then used to *predict* every other configuration.
//!
//! The model is falsifiable: `qnn-accel`'s tests pin each published
//! Table III row within tolerance (area ≤ ~8 %, power ≤ ~12 % — see
//! EXPERIMENTS.md for the exact residuals).
//!
//! ## Example
//!
//! ```
//! use qnn_hw::{tech65, DesignReport};
//!
//! // A 64 KiB weight buffer reading a 256-bit row of 16-bit words each
//! // cycle, plus a 16×16-bit multiplier array.
//! let mut design = DesignReport::new("toy");
//! design.push(tech65::sram("SB", 64 * 1024 * 8, 256, 16));
//! for _ in 0..16 {
//!     design.push(tech65::fixed_multiplier(16, 16));
//! }
//! assert!(design.area_mm2() > 0.0);
//! assert!(design.power_mw() > 0.0);
//! ```

mod component;
mod report;

pub mod tech65;

pub use component::{Category, Component};
pub use report::{Breakdown, DesignReport};
