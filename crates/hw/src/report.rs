use std::collections::BTreeMap;

use crate::component::{Category, Component};

/// Area/power totals for one category — one bar segment of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// Category area in mm².
    pub area_mm2: f64,
    /// Category power in mW.
    pub power_mw: f64,
}

/// A synthesized design: a bag of [`Component`]s with aggregate queries —
/// the moral equivalent of a Design Compiler area/power report.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignReport {
    name: String,
    components: Vec<Component>,
}

impl DesignReport {
    /// Creates an empty report.
    pub fn new(name: impl Into<String>) -> Self {
        DesignReport {
            name: name.into(),
            components: Vec::new(),
        }
    }

    /// The design's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds one component.
    pub fn push(&mut self, c: Component) {
        self.components.push(c);
    }

    /// Adds `n` copies of a component (e.g. the 256 multipliers of the
    /// NFU) as a single aggregated entry to keep reports readable.
    pub fn push_array(&mut self, c: Component, n: usize) {
        self.components.push(Component::new(
            format!("{}[x{n}]", c.name),
            c.category,
            c.area_um2 * n as f64,
            c.power_mw * n as f64,
        ));
    }

    /// The component list.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Total cell area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_um2).sum::<f64>() / 1e6
    }

    /// Total power in mW.
    pub fn power_mw(&self) -> f64 {
        self.components.iter().map(|c| c.power_mw).sum()
    }

    /// Per-category totals, in [`Category::ALL`] order (Figure 3's bars).
    pub fn breakdown(&self) -> BTreeMap<&'static str, Breakdown> {
        let mut map: BTreeMap<&'static str, Breakdown> = BTreeMap::new();
        for cat in Category::ALL {
            map.insert(cat.label(), Breakdown::default());
        }
        for c in &self.components {
            let e = map.get_mut(c.category.label()).expect("all labels present");
            e.area_mm2 += c.area_um2 / 1e6;
            e.power_mw += c.power_mw;
        }
        map
    }

    /// Fraction of total area in a category.
    ///
    /// Returns 0 for an empty design.
    pub fn area_fraction(&self, category: Category) -> f64 {
        let total = self.area_mm2();
        if total == 0.0 {
            return 0.0;
        }
        self.components
            .iter()
            .filter(|c| c.category == category)
            .map(|c| c.area_um2)
            .sum::<f64>()
            / 1e6
            / total
    }

    /// Fraction of total power in a category.
    ///
    /// Returns 0 for an empty design.
    pub fn power_fraction(&self, category: Category) -> f64 {
        let total = self.power_mw();
        if total == 0.0 {
            return 0.0;
        }
        self.components
            .iter()
            .filter(|c| c.category == category)
            .map(|c| c.power_mw)
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech65;

    #[test]
    fn totals_sum_components() {
        let mut r = DesignReport::new("t");
        r.push(Component::new("a", Category::Memory, 2e6, 100.0));
        r.push(Component::new("b", Category::Combinational, 1e6, 50.0));
        assert!((r.area_mm2() - 3.0).abs() < 1e-12);
        assert!((r.power_mw() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn push_array_multiplies() {
        let mut r = DesignReport::new("t");
        r.push_array(tech65::fixed_multiplier(8, 8), 256);
        let single = tech65::fixed_multiplier(8, 8);
        assert!((r.area_mm2() * 1e6 - single.area_um2 * 256.0).abs() < 1e-6);
    }

    #[test]
    fn breakdown_covers_all_categories() {
        let r = DesignReport::new("empty");
        let b = r.breakdown();
        assert_eq!(b.len(), 4);
        assert!(b.values().all(|v| v.area_mm2 == 0.0));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut r = DesignReport::new("t");
        r.push(tech65::sram("s", 1 << 20, 256, 16));
        r.push(tech65::register_bank("regs", 4096));
        r.push(tech65::control());
        r.push(tech65::clock_tree(4096));
        let total: f64 = Category::ALL.iter().map(|&c| r.area_fraction(c)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let totalp: f64 = Category::ALL.iter().map(|&c| r.power_fraction(c)).sum();
        assert!((totalp - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_design_fraction_is_zero() {
        let r = DesignReport::new("e");
        assert_eq!(r.area_fraction(Category::Memory), 0.0);
    }
}
