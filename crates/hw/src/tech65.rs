//! Technology constants and component factories for the modelled
//! 65 nm node at 250 MHz.
//!
//! # Provenance of the constants
//!
//! We cannot run the paper's Synopsys flow, so every constant below was
//! **fitted to the paper's published synthesis results** (Table III: seven
//! (area, power) pairs; Figure 3: category breakdowns and the 75–93 % /
//! 76–96 % buffer-dominance ranges) under physical-structure constraints:
//!
//! * SRAM area and leakage scale with bit count; access energy per bit
//!   grows with word width (longer bitlines/wordlines for wider rows) —
//!   this width term is what makes the fixed-point power curve superlinear
//!   in the paper's data.
//! * Multiplier area/power scale with the product of operand widths.
//! * Floating-point units carry fixed premiums over same-width fixed-point.
//! * Barrel shifters scale with data width × shift levels; the binary
//!   weight block is a sign-controlled negate.
//!
//! The fitted values are physically plausible for a 65 nm LP process
//! (e.g. ~1.4 µm²/bit SRAM with periphery, ~0.1 pJ/bit access, ~50 nW/bit
//! leakage), and the resulting model reproduces Table III within single-
//! digit-percent area error and ≤ ~12 % power error (EXPERIMENTS.md lists
//! per-row residuals).

use crate::component::{Category, Component};

/// Clock frequency the paper synthesizes for.
pub const CLOCK_HZ: f64 = 250.0e6;

/// SRAM macro area per bit, including periphery (µm²).
pub const SRAM_AREA_UM2_PER_BIT: f64 = 1.419;
/// SRAM leakage per bit (mW).
pub const SRAM_LEAK_MW_PER_BIT: f64 = 5.0e-5;
/// SRAM access energy per bit at minimal word width (pJ).
pub const SRAM_ACCESS_PJ_PER_BIT: f64 = 0.1;
/// Additional access energy per bit per bit-of-word-width (pJ) — the
/// bitline-length term that makes wide-word buffers superlinearly
/// expensive.
pub const SRAM_ACCESS_PJ_PER_BIT_PER_WIDTH: f64 = 0.00356;

/// Flip-flop area per bit (µm²).
pub const REG_AREA_UM2_PER_BIT: f64 = 4.5;
/// Flip-flop power per bit at 250 MHz (mW).
pub const REG_MW_PER_BIT: f64 = 0.0058;

/// Clock-tree buffer area per driven register bit (µm²).
pub const BUFINV_AREA_UM2_PER_BIT: f64 = 0.3;
/// Clock-tree buffer power per driven register bit (mW).
pub const BUFINV_MW_PER_BIT: f64 = 0.0005;

/// Array multiplier area per operand-bit-product (µm², i.e. a `w×i`
/// multiplier occupies `w·i` times this).
pub const MULT_AREA_UM2_PER_BIT2: f64 = 2.5;
/// Array multiplier power per operand-bit-product (mW).
pub const MULT_MW_PER_BIT2: f64 = 0.00043;

/// Area premium of an FP32 multiplier over a 32×32 fixed multiplier (µm²).
pub const FP_MULT_PREMIUM_UM2: f64 = 4000.0;
/// Power premium of an FP32 multiplier (mW).
pub const FP_MULT_PREMIUM_MW: f64 = 0.3;
/// FP32 adder area (µm²).
pub const FP_ADDER_UM2: f64 = 6600.0;
/// FP32 adder power (mW).
pub const FP_ADDER_MW: f64 = 0.35;

/// Ripple/carry-select fixed adder area per bit (µm²).
pub const ADDER_AREA_UM2_PER_BIT: f64 = 5.0;
/// Fixed adder power per bit (mW).
pub const ADDER_MW_PER_BIT: f64 = 0.0004;

/// Barrel shifter area per data bit per mux level (µm²).
pub const SHIFTER_AREA_UM2_PER_BIT_LEVEL: f64 = 3.0;
/// Barrel shifter power (mW per instance).
pub const SHIFTER_MW: f64 = 0.02;

/// Sign-negate (two's-complement mux) area per bit (µm²).
pub const SIGNMUX_AREA_UM2_PER_BIT: f64 = 2.0;
/// Sign-negate power per instance (mW).
pub const SIGNMUX_MW: f64 = 0.005;

/// Piecewise-linear nonlinearity unit area per data bit (µm²).
pub const NONLIN_AREA_UM2_PER_BIT: f64 = 40.0;
/// Nonlinearity unit power per instance (mW).
pub const NONLIN_MW: f64 = 0.015;

/// Buffer/DMA control logic area (µm²).
pub const CONTROL_AREA_UM2: f64 = 50_000.0;
/// Control logic power (mW).
pub const CONTROL_MW: f64 = 3.0;

/// An SRAM macro of `bits` total capacity whose `row_bits` are accessed
/// every cycle, with `word_width` bits per stored value (drives the
/// access-energy width term).
pub fn sram(name: impl Into<String>, bits: u64, row_bits: u64, word_width: u32) -> Component {
    let leak = SRAM_LEAK_MW_PER_BIT * bits as f64;
    let pj_per_bit = SRAM_ACCESS_PJ_PER_BIT + SRAM_ACCESS_PJ_PER_BIT_PER_WIDTH * word_width as f64;
    // pJ/cycle × GHz = mW, so at 250 MHz each pJ/cycle costs 0.25 mW.
    let dynamic = row_bits as f64 * pj_per_bit * (CLOCK_HZ / 1e9);
    Component::new(
        name,
        Category::Memory,
        SRAM_AREA_UM2_PER_BIT * bits as f64,
        leak + dynamic,
    )
}

/// A bank of pipeline/accumulator flip-flops.
pub fn register_bank(name: impl Into<String>, bits: u64) -> Component {
    Component::new(
        name,
        Category::Registers,
        REG_AREA_UM2_PER_BIT * bits as f64,
        REG_MW_PER_BIT * bits as f64,
    )
}

/// The clock tree serving `reg_bits` of sequential state.
pub fn clock_tree(reg_bits: u64) -> Component {
    Component::new(
        "clock-tree",
        Category::BufInv,
        BUFINV_AREA_UM2_PER_BIT * reg_bits as f64,
        BUFINV_MW_PER_BIT * reg_bits as f64,
    )
}

/// A `w × i` two's-complement array multiplier.
pub fn fixed_multiplier(w_bits: u32, i_bits: u32) -> Component {
    let b2 = (w_bits as f64) * (i_bits as f64);
    Component::new(
        format!("mult{w_bits}x{i_bits}"),
        Category::Combinational,
        MULT_AREA_UM2_PER_BIT2 * b2,
        MULT_MW_PER_BIT2 * b2,
    )
}

/// An IEEE-754 binary32 multiplier (32×32 array plus normalization
/// premium).
pub fn float_multiplier() -> Component {
    let base = fixed_multiplier(32, 32);
    Component::new(
        "fpmult32",
        Category::Combinational,
        base.area_um2 + FP_MULT_PREMIUM_UM2,
        base.power_mw + FP_MULT_PREMIUM_MW,
    )
}

/// A custom-width floating-point multiplier (the paper's future-work
/// direction): a `(man+1)²` significand array plus exponent/normalization
/// logic that scales with total width. Anchored so the `8e23m` instance
/// costs exactly what [`float_multiplier`] does.
pub fn minifloat_multiplier(exp_bits: u32, man_bits: u32) -> Component {
    let bits = (1 + exp_bits + man_bits) as f64;
    // Effective array scale chosen so (man=23) reproduces the 32×32 anchor.
    let sig = (man_bits + 1) as f64;
    let array = MULT_AREA_UM2_PER_BIT2 * sig * sig * (1024.0 / 576.0);
    let array_mw = MULT_MW_PER_BIT2 * sig * sig * (1024.0 / 576.0);
    Component::new(
        format!("fpmult{exp_bits}e{man_bits}m"),
        Category::Combinational,
        array + FP_MULT_PREMIUM_UM2 * bits / 32.0,
        array_mw + FP_MULT_PREMIUM_MW * bits / 32.0,
    )
}

/// A custom-width floating-point adder, scaled linearly from the binary32
/// anchor.
pub fn minifloat_adder(exp_bits: u32, man_bits: u32) -> Component {
    let bits = (1 + exp_bits + man_bits) as f64;
    Component::new(
        format!("fpadd{exp_bits}e{man_bits}m"),
        Category::Combinational,
        FP_ADDER_UM2 * bits / 32.0,
        FP_ADDER_MW * bits / 32.0,
    )
}

/// A fixed-point adder of the given width.
pub fn fixed_adder(bits: u32) -> Component {
    Component::new(
        format!("add{bits}"),
        Category::Combinational,
        ADDER_AREA_UM2_PER_BIT * bits as f64,
        ADDER_MW_PER_BIT * bits as f64,
    )
}

/// An IEEE-754 binary32 adder.
pub fn float_adder() -> Component {
    Component::new(
        "fpadd32",
        Category::Combinational,
        FP_ADDER_UM2,
        FP_ADDER_MW,
    )
}

/// A logarithmic barrel shifter over `data_bits` with `levels` mux stages
/// (`levels = ⌈log2(max shift)⌉`) — the power-of-two weight block.
pub fn barrel_shifter(data_bits: u32, levels: u32) -> Component {
    Component::new(
        format!("bshift{data_bits}x{levels}"),
        Category::Combinational,
        SHIFTER_AREA_UM2_PER_BIT_LEVEL * data_bits as f64 * levels as f64,
        SHIFTER_MW,
    )
}

/// A sign-controlled negate over `data_bits` — the binary weight block
/// (±1 multiply).
pub fn sign_negate(data_bits: u32) -> Component {
    Component::new(
        format!("signmux{data_bits}"),
        Category::Combinational,
        SIGNMUX_AREA_UM2_PER_BIT * data_bits as f64,
        SIGNMUX_MW,
    )
}

/// A piecewise-linear nonlinearity unit over `data_bits`.
pub fn nonlinearity(data_bits: u32) -> Component {
    Component::new(
        format!("nfu3-nl{data_bits}"),
        Category::Combinational,
        NONLIN_AREA_UM2_PER_BIT * data_bits as f64,
        NONLIN_MW,
    )
}

/// Buffer/DMA control logic (address generators, FSMs).
pub fn control() -> Component {
    Component::new(
        "controller",
        Category::Combinational,
        CONTROL_AREA_UM2,
        CONTROL_MW,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_power_has_width_term() {
        // Same capacity and row, wider words → more access power.
        let narrow = sram("a", 1 << 20, 256, 4);
        let wide = sram("b", 1 << 20, 256, 32);
        assert!(wide.power_mw > narrow.power_mw);
        assert_eq!(wide.area_um2, narrow.area_um2);
    }

    #[test]
    fn sram_access_math() {
        // 256 row bits at width 0-extra: 256 × 0.1 pJ × 250 MHz = 6.4 mW
        // plus leakage.
        let c = sram("t", 0, 256, 0);
        assert!((c.power_mw - 6.4).abs() < 1e-9);
    }

    #[test]
    fn multiplier_scales_with_both_operands() {
        let m88 = fixed_multiplier(8, 8);
        let m816 = fixed_multiplier(8, 16);
        let m1616 = fixed_multiplier(16, 16);
        assert!((m816.area_um2 - 2.0 * m88.area_um2).abs() < 1e-9);
        assert!((m1616.area_um2 - 4.0 * m88.area_um2).abs() < 1e-9);
    }

    #[test]
    fn float_units_cost_more_than_fixed32() {
        assert!(float_multiplier().area_um2 > fixed_multiplier(32, 32).area_um2);
        assert!(float_adder().power_mw > fixed_adder(32).power_mw);
    }

    #[test]
    fn binary_weight_block_is_cheapest() {
        let mux = sign_negate(16);
        let shift = barrel_shifter(16, 5);
        let mult = fixed_multiplier(16, 16);
        assert!(mux.area_um2 < shift.area_um2);
        assert!(shift.area_um2 < mult.area_um2);
        assert!(mux.power_mw < shift.power_mw);
        assert!(shift.power_mw < mult.power_mw);
    }

    #[test]
    fn categories_are_assigned() {
        assert_eq!(sram("s", 8, 8, 8).category, Category::Memory);
        assert_eq!(register_bank("r", 8).category, Category::Registers);
        assert_eq!(fixed_multiplier(8, 8).category, Category::Combinational);
        assert_eq!(clock_tree(8).category, Category::BufInv);
    }
}
