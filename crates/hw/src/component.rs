use std::fmt;

/// Synthesis-report category, matching the paper's Figure 3 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// SRAM macros (the buffer subsystems' storage arrays).
    Memory,
    /// Flip-flops: pipeline registers, accumulators, buffer pointers.
    Registers,
    /// Combinational logic: multipliers, shifters, adders, control.
    Combinational,
    /// Clock-tree buffers and inverters.
    BufInv,
}

impl Category {
    /// All categories, in Figure 3's legend order.
    pub const ALL: [Category; 4] = [
        Category::Memory,
        Category::Registers,
        Category::Combinational,
        Category::BufInv,
    ];

    /// Display label as used in the paper's figure.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Memory => "Memory",
            Category::Registers => "Registers",
            Category::Combinational => "Combinational",
            Category::BufInv => "Buf/Inv",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One synthesized block with its estimated area and power.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Instance name, e.g. `"SB"` or `"mult[3][7]"`.
    pub name: String,
    /// Report category.
    pub category: Category,
    /// Cell area in µm².
    pub area_um2: f64,
    /// Total (leakage + dynamic at 250 MHz) power in mW.
    pub power_mw: f64,
}

impl Component {
    /// Creates a component.
    ///
    /// # Panics
    ///
    /// Panics if area or power is negative or non-finite — a component
    /// with impossible physics indicates a bug in a factory formula.
    pub fn new(name: impl Into<String>, category: Category, area_um2: f64, power_mw: f64) -> Self {
        assert!(
            area_um2.is_finite() && area_um2 >= 0.0,
            "component area must be non-negative and finite"
        );
        assert!(
            power_mw.is_finite() && power_mw >= 0.0,
            "component power must be non-negative and finite"
        );
        Component {
            name: name.into(),
            category,
            area_um2,
            power_mw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_cover_figure3_legend() {
        let labels: Vec<&str> = Category::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, ["Memory", "Registers", "Combinational", "Buf/Inv"]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_area() {
        Component::new("bad", Category::Memory, -1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_nan_power() {
        Component::new("bad", Category::Memory, 1.0, f64::NAN);
    }
}
