//! Property tests for the component model, run as deterministic seeded
//! loops (≥256 cases each): cost functions must be monotone in every
//! physical parameter and categories must aggregate consistently.

use qnn_hw::{tech65, Category, DesignReport};
use qnn_tensor::rng::{derive_seed, seeded, Rng};

const CASES: u64 = 256;

/// Runs `f` once per case with an independent child-stream RNG.
fn cases(suite_seed: u64, f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = seeded(derive_seed(suite_seed, case));
        f(&mut rng);
    }
}

/// SRAM cost is monotone in capacity, row width and word width.
#[test]
fn sram_monotone() {
    cases(0x70, |rng| {
        let bits = rng.gen_range(1u64..1_000_000);
        let row = rng.gen_range(1u64..4096);
        let width = rng.gen_range(0u32..64);
        let base = tech65::sram("s", bits, row, width);
        let more_bits = tech65::sram("s", bits + 1024, row, width);
        let wider_row = tech65::sram("s", bits, row + 64, width);
        let wider_word = tech65::sram("s", bits, row, width + 8);
        assert!(more_bits.area_um2 > base.area_um2);
        assert!(more_bits.power_mw > base.power_mw);
        assert!(wider_row.power_mw > base.power_mw);
        assert!(wider_word.power_mw >= base.power_mw);
        // Word width affects access energy, not storage area.
        assert_eq!(wider_word.area_um2, base.area_um2);
    });
}

/// Multiplier cost is monotone in both operand widths and symmetric.
#[test]
fn multiplier_monotone_and_symmetric() {
    cases(0x71, |rng| {
        let w = rng.gen_range(1u32..64);
        let i = rng.gen_range(1u32..64);
        let m = tech65::fixed_multiplier(w, i);
        let m2 = tech65::fixed_multiplier(w + 1, i);
        let sym = tech65::fixed_multiplier(i, w);
        assert!(m2.area_um2 > m.area_um2);
        assert!(m2.power_mw > m.power_mw);
        assert_eq!(sym.area_um2, m.area_um2);
        assert_eq!(sym.power_mw, m.power_mw);
    });
}

/// Minifloat units interpolate monotonically and hit the binary32
/// anchor exactly.
#[test]
fn minifloat_units_monotone() {
    cases(0x72, |rng| {
        let e = rng.gen_range(1u32..8);
        let m = rng.gen_range(0u32..23);
        let small = tech65::minifloat_multiplier(e, m);
        let bigger_man = tech65::minifloat_multiplier(e, m + 1);
        assert!(bigger_man.area_um2 > small.area_um2);
        let anchor = tech65::minifloat_multiplier(8, 23);
        let fp32 = tech65::float_multiplier();
        assert!((anchor.area_um2 - fp32.area_um2).abs() < 1e-6);
        assert!((anchor.power_mw - fp32.power_mw).abs() < 1e-9);
    });
}

/// Report totals equal the sum over any partition into categories.
#[test]
fn report_totals_partition() {
    cases(0x73, |rng| {
        let nm = rng.gen_range(1usize..20);
        let nr = rng.gen_range(1usize..20);
        let nc = rng.gen_range(1usize..20);
        let mut d = DesignReport::new("p");
        d.push_array(tech65::sram("s", 1024, 64, 8), nm);
        d.push_array(tech65::register_bank("r", 128), nr);
        d.push_array(tech65::fixed_adder(16), nc);
        let by_cat: f64 = Category::ALL.iter().map(|&c| d.area_fraction(c)).sum();
        assert!((by_cat - 1.0).abs() < 1e-9);
        let bd = d.breakdown();
        let area_sum: f64 = bd.values().map(|b| b.area_mm2).sum();
        assert!((area_sum - d.area_mm2()).abs() < 1e-9);
        let power_sum: f64 = bd.values().map(|b| b.power_mw).sum();
        assert!((power_sum - d.power_mw()).abs() < 1e-9);
    });
}
