//! Property tests for the component model: cost functions must be
//! monotone in every physical parameter and categories must aggregate
//! consistently.

use proptest::prelude::*;
use qnn_hw::{tech65, Category, DesignReport};

proptest! {
    /// SRAM cost is monotone in capacity, row width and word width.
    #[test]
    fn sram_monotone(bits in 1u64..1_000_000, row in 1u64..4096, width in 0u32..64) {
        let base = tech65::sram("s", bits, row, width);
        let more_bits = tech65::sram("s", bits + 1024, row, width);
        let wider_row = tech65::sram("s", bits, row + 64, width);
        let wider_word = tech65::sram("s", bits, row, width + 8);
        prop_assert!(more_bits.area_um2 > base.area_um2);
        prop_assert!(more_bits.power_mw > base.power_mw);
        prop_assert!(wider_row.power_mw > base.power_mw);
        prop_assert!(wider_word.power_mw >= base.power_mw);
        // Word width affects access energy, not storage area.
        prop_assert_eq!(wider_word.area_um2, base.area_um2);
    }

    /// Multiplier cost is monotone in both operand widths and symmetric.
    #[test]
    fn multiplier_monotone_and_symmetric(w in 1u32..64, i in 1u32..64) {
        let m = tech65::fixed_multiplier(w, i);
        let m2 = tech65::fixed_multiplier(w + 1, i);
        let sym = tech65::fixed_multiplier(i, w);
        prop_assert!(m2.area_um2 > m.area_um2);
        prop_assert!(m2.power_mw > m.power_mw);
        prop_assert_eq!(sym.area_um2, m.area_um2);
        prop_assert_eq!(sym.power_mw, m.power_mw);
    }

    /// Minifloat units interpolate monotonically and hit the binary32
    /// anchor exactly.
    #[test]
    fn minifloat_units_monotone(e in 1u32..8, m in 0u32..23) {
        let small = tech65::minifloat_multiplier(e, m);
        let bigger_man = tech65::minifloat_multiplier(e, m + 1);
        prop_assert!(bigger_man.area_um2 > small.area_um2);
        let anchor = tech65::minifloat_multiplier(8, 23);
        let fp32 = tech65::float_multiplier();
        prop_assert!((anchor.area_um2 - fp32.area_um2).abs() < 1e-6);
        prop_assert!((anchor.power_mw - fp32.power_mw).abs() < 1e-9);
    }

    /// Report totals equal the sum over any partition into categories.
    #[test]
    fn report_totals_partition(nm in 1usize..20, nr in 1usize..20, nc in 1usize..20) {
        let mut d = DesignReport::new("p");
        d.push_array(tech65::sram("s", 1024, 64, 8), nm);
        d.push_array(tech65::register_bank("r", 128), nr);
        d.push_array(tech65::fixed_adder(16), nc);
        let by_cat: f64 = Category::ALL.iter()
            .map(|&c| d.area_fraction(c))
            .sum();
        prop_assert!((by_cat - 1.0).abs() < 1e-9);
        let bd = d.breakdown();
        let area_sum: f64 = bd.values().map(|b| b.area_mm2).sum();
        prop_assert!((area_sum - d.area_mm2()).abs() < 1e-9);
        let power_sum: f64 = bd.values().map(|b| b.power_mw).sum();
        prop_assert!((power_sum - d.power_mw()).abs() < 1e-9);
    }
}
