//! Cycle-by-cycle functional simulation of the tile.
//!
//! [`nfu`](crate::nfu) verifies single dot products bit-accurately; this
//! module runs *whole layers* through a faithful model of the machine —
//! SRAM buffers holding raw integer codes, a controller walking the
//! neuron/synapse tiling, and the NFU pipeline executing integer
//! multiply/shift/negate-accumulate — while counting every cycle and
//! buffer access. Two properties are established by the tests:
//!
//! 1. **Functional equivalence**: the simulated outputs equal the
//!    Ristretto-style fake-quantized f32 computation used for training.
//! 2. **Cycle-model soundness**: the simulated cycle count matches the
//!    analytical schedule of [`layer_cycles`](crate::layer_cycles) when
//!    output channels fill the tile, and never beats it otherwise.

use qnn_quant::{Binary, Fixed, PowerOfTwo, Quantizer};

use crate::config::AcceleratorConfig;

/// The operand formats a simulation runs under — one variant per weight
/// block of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimPrecision {
    /// Fixed-point weights and inputs (Figure 2a).
    Fixed {
        /// Weight format.
        weights: Fixed,
        /// Input/feature-map format.
        inputs: Fixed,
    },
    /// Power-of-two weights over fixed-point inputs (Figure 2b).
    PowerOfTwo {
        /// Weight format.
        weights: PowerOfTwo,
        /// Input/feature-map format.
        inputs: Fixed,
    },
    /// Binary weights over fixed-point inputs (Figure 2c).
    Binary {
        /// Weight format.
        weights: Binary,
        /// Input/feature-map format.
        inputs: Fixed,
    },
}

impl SimPrecision {
    /// The input format common to all variants.
    pub fn input_format(&self) -> Fixed {
        match *self {
            SimPrecision::Fixed { inputs, .. }
            | SimPrecision::PowerOfTwo { inputs, .. }
            | SimPrecision::Binary { inputs, .. } => inputs,
        }
    }
}

/// Result of a simulated layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutput {
    /// Layer outputs, decoded to real values (post-ReLU if requested,
    /// re-quantized to the input format as they would be written to Bout).
    pub outputs: Vec<f32>,
    /// NFU compute cycles consumed.
    pub cycles: u64,
    /// Weight-buffer row reads.
    pub sb_reads: u64,
    /// Input-buffer row reads.
    pub bin_reads: u64,
    /// Output-buffer row writes.
    pub bout_writes: u64,
}

/// One weight's stored form, as the SB would hold it.
#[derive(Debug, Clone, Copy)]
enum StoredWeight {
    Fixed(i64),
    Pow2 { sign: bool, code: u32 },
    Sign(bool),
}

/// The simulated machine.
#[derive(Debug)]
pub struct TileSimulator {
    config: AcceleratorConfig,
    precision: SimPrecision,
}

impl TileSimulator {
    /// Creates a simulator for the given tile and formats.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (see
    /// [`AcceleratorConfig::validate`]).
    pub fn new(config: AcceleratorConfig, precision: SimPrecision) -> Self {
        config.validate();
        TileSimulator { config, precision }
    }

    /// Simulator with the paper's default 16×16 tile.
    pub fn with_default_tile(precision: SimPrecision) -> Self {
        TileSimulator::new(AcceleratorConfig::default(), precision)
    }

    fn store_weight(&self, w: f32) -> StoredWeight {
        match self.precision {
            SimPrecision::Fixed { weights, .. } => StoredWeight::Fixed(weights.encode(w)),
            SimPrecision::PowerOfTwo { weights, .. } => {
                let (sign, code) = weights.encode(w);
                StoredWeight::Pow2 { sign, code }
            }
            SimPrecision::Binary { weights, .. } => StoredWeight::Sign(weights.encode(w)),
        }
    }

    /// One weight block's product, in accumulator LSBs of
    /// `in_step × lsb_scale` (see `acc_scale`).
    fn multiply(&self, w: StoredWeight, x_raw: i64) -> i128 {
        match (self.precision, w) {
            (SimPrecision::Fixed { .. }, StoredWeight::Fixed(wi)) => wi as i128 * x_raw as i128,
            (SimPrecision::PowerOfTwo { weights, .. }, StoredWeight::Pow2 { sign, code }) => {
                if code == 0 {
                    return 0;
                }
                // Shift relative to the window's minimum exponent so the
                // accumulator LSB stays constant and shifts are all left.
                let e = weights.min_exp() + code as i32 - 1;
                let shifted = (x_raw as i128) << (e - weights.min_exp());
                if sign {
                    -shifted
                } else {
                    shifted
                }
            }
            (SimPrecision::Binary { .. }, StoredWeight::Sign(s)) => {
                if s {
                    -(x_raw as i128)
                } else {
                    x_raw as i128
                }
            }
            _ => unreachable!("stored weight kind always matches precision"),
        }
    }

    /// Real value of one accumulator LSB.
    fn acc_scale(&self) -> f64 {
        let in_step = self.precision.input_format().step() as f64;
        match self.precision {
            SimPrecision::Fixed { weights, .. } => in_step * weights.step() as f64,
            SimPrecision::PowerOfTwo { weights, .. } => in_step * (weights.min_exp() as f64).exp2(),
            SimPrecision::Binary { weights, .. } => in_step * weights.scale() as f64,
        }
    }

    /// Simulates a fully-connected layer: `neurons × fan_in` weights
    /// (row-major per neuron), one bias per neuron.
    ///
    /// The controller walks output neurons in tiles of `Tn` and the fan-in
    /// in chunks of `Ti`; each (tile, chunk) step costs one cycle, reads
    /// one SB row and one Bin row, exactly as the modelled pipeline does.
    /// Biases join at accumulator precision; ReLU is applied in the third
    /// pipeline stage; results are re-quantized to the input format on
    /// their way into Bout.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != neurons × inputs.len()` or
    /// `bias.len() != neurons`.
    pub fn run_dense(
        &self,
        inputs: &[f32],
        weights: &[f32],
        bias: &[f32],
        relu: bool,
    ) -> SimOutput {
        let fan_in = inputs.len();
        let neurons = bias.len();
        assert_eq!(
            weights.len(),
            neurons * fan_in,
            "weight matrix must be neurons × fan_in"
        );
        let tn = self.config.neurons;
        let ti = self.config.synapses;
        let in_fmt = self.precision.input_format();

        // Fill the buffers with raw codes (the DMA's job).
        let bin: Vec<i64> = inputs.iter().map(|&x| in_fmt.encode(x)).collect();
        let sb: Vec<StoredWeight> = weights.iter().map(|&w| self.store_weight(w)).collect();

        let scale = self.acc_scale();
        let mut outputs = vec![0.0f32; neurons];
        let mut cycles = 0u64;
        let mut sb_reads = 0u64;
        let mut bin_reads = 0u64;
        let mut bout_writes = 0u64;

        for tile_base in (0..neurons).step_by(tn) {
            let tile_n = tn.min(neurons - tile_base);
            let mut acc = vec![0i128; tile_n];
            for chunk_base in (0..fan_in).step_by(ti) {
                let chunk_n = ti.min(fan_in - chunk_base);
                // One cycle: read one Bin row and one SB row, fire the
                // multiplier array, fold the adder trees.
                cycles += 1;
                bin_reads += 1;
                sb_reads += 1;
                for (n, a) in acc.iter_mut().enumerate() {
                    let row = (tile_base + n) * fan_in;
                    for k in 0..chunk_n {
                        let x = bin[chunk_base + k];
                        let w = sb[row + chunk_base + k];
                        *a += self.multiply(w, x);
                    }
                }
            }
            // NFU-3: bias add (accumulator precision), nonlinearity,
            // requantize to the feature-map format, write Bout.
            bout_writes += 1;
            for (n, a) in acc.iter().enumerate() {
                let mut y = *a as f64 * scale + bias[tile_base + n] as f64;
                if relu && y < 0.0 {
                    y = 0.0;
                }
                outputs[tile_base + n] = in_fmt.quantize_value(y as f32);
            }
        }
        qnn_trace::counter!("accel.nfu.cycles", cycles);
        qnn_trace::counter!("accel.sb.reads", sb_reads);
        qnn_trace::counter!("accel.bin.reads", bin_reads);
        qnn_trace::counter!("accel.bout.writes", bout_writes);
        qnn_trace::counter!("accel.dma.values", (bin.len() + sb.len()) as u64);
        SimOutput {
            outputs,
            cycles,
            sb_reads,
            bin_reads,
            bout_writes,
        }
    }

    /// Simulates a convolution layer on one `(C, H, W)` image: per output
    /// pixel, the controller gathers the receptive field into a Bin-shaped
    /// vector and runs the output channels through the tile exactly as
    /// [`run_dense`](TileSimulator::run_dense) does.
    ///
    /// Returns outputs in `(O, OH, OW)` row-major order. The cycle count is
    /// `oh·ow · ⌈o/Tn⌉ · ⌈fan_in/Ti⌉` — it equals the analytical schedule
    /// whenever `o·oh·ow` is a multiple of `Tn`, and can only exceed it
    /// otherwise (partial neuron tiles cannot be shared across pixels in
    /// this controller).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent operand sizes or impossible geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn run_conv(
        &self,
        image: &[f32],
        (c, h, w): (usize, usize, usize),
        weights: &[f32],
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: &[f32],
        relu: bool,
    ) -> SimOutput {
        assert_eq!(image.len(), c * h * w, "image size mismatch");
        let fan_in = c * kernel * kernel;
        assert_eq!(weights.len(), out_channels * fan_in, "weight size mismatch");
        assert_eq!(bias.len(), out_channels, "bias size mismatch");
        let ph = h + 2 * pad;
        assert!(ph >= kernel && w + 2 * pad >= kernel, "kernel too large");
        let oh = (ph - kernel) / stride + 1;
        let ow = (w + 2 * pad - kernel) / stride + 1;
        let mut outputs = vec![0.0f32; out_channels * oh * ow];
        let mut cycles = 0u64;
        let mut sb_reads = 0u64;
        let mut bin_reads = 0u64;
        let mut bout_writes = 0u64;
        let mut patch = vec![0.0f32; fan_in];
        for oi in 0..oh {
            for oj in 0..ow {
                // Gather the receptive field (zero padding outside).
                for ci in 0..c {
                    for ki in 0..kernel {
                        for kj in 0..kernel {
                            let ii = (oi * stride + ki) as isize - pad as isize;
                            let jj = (oj * stride + kj) as isize - pad as isize;
                            let v = if ii < 0 || jj < 0 || ii as usize >= h || jj as usize >= w {
                                0.0
                            } else {
                                image[(ci * h + ii as usize) * w + jj as usize]
                            };
                            patch[(ci * kernel + ki) * kernel + kj] = v;
                        }
                    }
                }
                let px = self.run_dense(&patch, weights, bias, relu);
                cycles += px.cycles;
                sb_reads += px.sb_reads;
                bin_reads += px.bin_reads;
                bout_writes += px.bout_writes;
                for (och, &v) in px.outputs.iter().enumerate() {
                    outputs[(och * oh + oi) * ow + oj] = v;
                }
            }
        }
        SimOutput {
            outputs,
            cycles,
            sb_reads,
            bin_reads,
            bout_writes,
        }
    }

    /// Simulates max pooling in the NFU's third stage: values stream out
    /// of Bout as raw integer codes and the pooler keeps per-window
    /// maxima with integer comparisons (valid because the fixed-point
    /// encode is monotone). `Tn` values pass per cycle.
    ///
    /// Input/outputs are `(C, H, W)` row-major; floor-mode output sizing
    /// with no padding, like every pool in the paper's networks.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent sizes or a kernel larger than the input.
    pub fn run_max_pool(
        &self,
        input: &[f32],
        (c, h, w): (usize, usize, usize),
        kernel: usize,
        stride: usize,
    ) -> SimOutput {
        assert_eq!(input.len(), c * h * w, "input size mismatch");
        assert!(h >= kernel && w >= kernel, "kernel larger than input");
        let in_fmt = self.precision.input_format();
        let raw: Vec<i64> = input.iter().map(|&x| in_fmt.encode(x)).collect();
        let oh = (h - kernel) / stride + 1;
        let ow = (w - kernel) / stride + 1;
        let mut outputs = vec![0.0f32; c * oh * ow];
        for ci in 0..c {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = i64::MIN;
                    for ki in 0..kernel {
                        for kj in 0..kernel {
                            let idx = (ci * h + oi * stride + ki) * w + oj * stride + kj;
                            best = best.max(raw[idx]);
                        }
                    }
                    outputs[(ci * oh + oi) * ow + oj] = in_fmt.decode(best);
                }
            }
        }
        let n_out = (c * oh * ow) as u64;
        let tn = self.config.neurons as u64;
        let out = SimOutput {
            outputs,
            cycles: n_out.div_ceil(tn),
            sb_reads: 0,
            bin_reads: (raw.len() as u64).div_ceil(tn),
            bout_writes: n_out.div_ceil(tn),
        };
        qnn_trace::counter!("accel.nfu.cycles", out.cycles);
        qnn_trace::counter!("accel.bin.reads", out.bin_reads);
        qnn_trace::counter!("accel.bout.writes", out.bout_writes);
        qnn_trace::counter!("accel.dma.values", raw.len() as u64);
        out
    }

    /// The f32 reference the simulation must reproduce: fake-quantize
    /// operands, accumulate in f64, add bias, ReLU, re-quantize — the
    /// computation `qnn-nn` performs under QAT.
    pub fn reference_dense(
        &self,
        inputs: &[f32],
        weights: &[f32],
        bias: &[f32],
        relu: bool,
    ) -> Vec<f32> {
        let fan_in = inputs.len();
        let neurons = bias.len();
        let in_fmt = self.precision.input_format();
        let qx: Vec<f64> = inputs
            .iter()
            .map(|&x| in_fmt.quantize_value(x) as f64)
            .collect();
        let qw: Vec<f64> = weights
            .iter()
            .map(|&w| match self.precision {
                SimPrecision::Fixed { weights, .. } => weights.quantize_value(w) as f64,
                SimPrecision::PowerOfTwo { weights, .. } => weights.quantize_value(w) as f64,
                SimPrecision::Binary { weights, .. } => weights.quantize_value(w) as f64,
            })
            .collect();
        (0..neurons)
            .map(|n| {
                let mut y: f64 = (0..fan_in).map(|k| qx[k] * qw[n * fan_in + k]).sum();
                y += bias[n] as f64;
                if relu && y < 0.0 {
                    y = 0.0;
                }
                in_fmt.quantize_value(y as f32)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::layer_cycles;
    use qnn_nn::workload::{LayerWork, WorkKind};

    fn data(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect()
    }

    fn fixed_sim() -> TileSimulator {
        TileSimulator::with_default_tile(SimPrecision::Fixed {
            weights: Fixed::new(8, 6).unwrap(),
            inputs: Fixed::new(16, 10).unwrap(),
        })
    }

    #[test]
    fn fixed_layer_matches_reference() {
        let sim = fixed_sim();
        let inputs = data(100, 1);
        let weights = data(100 * 37, 2);
        let bias = data(37, 3);
        let out = sim.run_dense(&inputs, &weights, &bias, true);
        let want = sim.reference_dense(&inputs, &weights, &bias, true);
        for (i, (a, b)) in out.outputs.iter().zip(&want).enumerate() {
            assert!(
                (a - b).abs() <= 1.0 / 1024.0 + 1e-6,
                "neuron {i}: sim {a} vs reference {b}"
            );
        }
    }

    #[test]
    fn pow2_layer_matches_reference() {
        let sim = TileSimulator::with_default_tile(SimPrecision::PowerOfTwo {
            weights: PowerOfTwo::new(6, 0).unwrap(),
            inputs: Fixed::new(16, 10).unwrap(),
        });
        let inputs = data(64, 4);
        let weights = data(64 * 20, 5);
        let bias = data(20, 6);
        let out = sim.run_dense(&inputs, &weights, &bias, false);
        let want = sim.reference_dense(&inputs, &weights, &bias, false);
        for (a, b) in out.outputs.iter().zip(&want) {
            assert!((a - b).abs() <= 2.0 / 1024.0, "sim {a} vs reference {b}");
        }
    }

    #[test]
    fn binary_layer_matches_reference() {
        let sim = TileSimulator::with_default_tile(SimPrecision::Binary {
            weights: Binary::with_scale(0.5).unwrap(),
            inputs: Fixed::new(16, 12).unwrap(),
        });
        let inputs = data(48, 7);
        let weights = data(48 * 16, 8);
        let bias = data(16, 9);
        let out = sim.run_dense(&inputs, &weights, &bias, true);
        let want = sim.reference_dense(&inputs, &weights, &bias, true);
        for (a, b) in out.outputs.iter().zip(&want) {
            assert!((a - b).abs() <= 1.0 / 2048.0, "sim {a} vs reference {b}");
        }
    }

    #[test]
    fn simulated_cycles_match_analytical_model_on_full_tiles() {
        // 32 neurons (2 full tiles), fan-in 800 (50 full chunks).
        let sim = fixed_sim();
        let inputs = data(800, 10);
        let weights = data(800 * 32, 11);
        let bias = data(32, 12);
        let out = sim.run_dense(&inputs, &weights, &bias, false);
        let analytic = layer_cycles(
            &LayerWork {
                name: "fc".into(),
                kind: WorkKind::Dense,
                macs: 800 * 32,
                neurons: 32,
                synapses_per_neuron: 800,
                inputs: 800,
                weights: 800 * 32,
                outputs: 32,
            },
            &AcceleratorConfig::default(),
            3,
        );
        assert_eq!(out.cycles, analytic.compute);
        // Buffer traffic: one SB and Bin row per cycle, one Bout row per tile.
        assert_eq!(out.sb_reads, out.cycles);
        assert_eq!(out.bin_reads, out.cycles);
        assert_eq!(out.bout_writes, 2);
    }

    #[test]
    fn partial_tiles_cost_full_cycles() {
        // 17 neurons → 2 tiles; fan-in 17 → 2 chunks; 4 cycles, not 2.
        let sim = fixed_sim();
        let inputs = data(17, 13);
        let weights = data(17 * 17, 14);
        let bias = data(17, 15);
        let out = sim.run_dense(&inputs, &weights, &bias, false);
        assert_eq!(out.cycles, 4);
    }

    #[test]
    fn relu_clamps_in_the_pipeline() {
        let sim = fixed_sim();
        let inputs = vec![1.0f32; 4];
        let weights = vec![-1.0f32; 4]; // strongly negative pre-activation
        let bias = vec![0.0f32];
        let out = sim.run_dense(&inputs, &weights, &bias, true);
        assert_eq!(out.outputs, vec![0.0]);
        let out = sim.run_dense(&inputs, &weights, &bias, false);
        assert!(out.outputs[0] < 0.0);
    }

    #[test]
    #[should_panic(expected = "neurons × fan_in")]
    fn shape_mismatch_panics() {
        fixed_sim().run_dense(&[1.0; 4], &[1.0; 7], &[0.0; 2], false);
    }

    #[test]
    fn conv_layer_matches_tensor_conv_on_quantized_operands() {
        use qnn_tensor::conv::{conv2d, Geometry};
        use qnn_tensor::{Shape, Tensor};
        let sim = fixed_sim();
        let in_fmt = sim.precision.input_format();
        let w_fmt = match sim.precision {
            SimPrecision::Fixed { weights, .. } => weights,
            _ => unreachable!(),
        };
        let (c, h, w, o, k) = (2usize, 6usize, 6usize, 3usize, 3usize);
        let image = data(c * h * w, 20);
        let weights = data(o * c * k * k, 21);
        let bias = data(o, 22);
        let out = sim.run_conv(&image, (c, h, w), &weights, o, k, 1, 1, &bias, true);
        // Reference: fake-quantize operands, run the f32 conv, ReLU,
        // re-quantize — the QAT forward path.
        let qx = Tensor::from_vec(
            Shape::d4(1, c, h, w),
            image.iter().map(|&x| in_fmt.quantize_value(x)).collect(),
        )
        .unwrap();
        let qw = Tensor::from_vec(
            Shape::d4(o, c, k, k),
            weights.iter().map(|&x| w_fmt.quantize_value(x)).collect(),
        )
        .unwrap();
        let qb = Tensor::from_vec(Shape::d1(o), bias.clone()).unwrap();
        let want = conv2d(&qx, &qw, &qb, Geometry::square(k, 1, 1))
            .unwrap()
            .map(|v| in_fmt.quantize_value(v.max(0.0)));
        assert_eq!(out.outputs.len(), want.len());
        for (i, (a, b)) in out.outputs.iter().zip(want.as_slice()).enumerate() {
            assert!(
                (a - b).abs() <= 2.0 / 1024.0 + 1e-6,
                "pixel {i}: sim {a} vs tensor-conv {b}"
            );
        }
        // Cycle accounting: 36 pixels × ⌈3/16⌉ × ⌈18/16⌉ = 36 × 1 × 2.
        assert_eq!(out.cycles, 72);
    }
}
