//! Cycle-by-cycle functional simulation of the tile.
//!
//! [`nfu`](crate::nfu) verifies single dot products bit-accurately; this
//! module runs *whole layers* through a faithful model of the machine —
//! SRAM buffers holding raw integer codes, a controller walking the
//! neuron/synapse tiling, and the NFU pipeline executing integer
//! multiply/shift/negate-accumulate — while counting every cycle and
//! buffer access. Two properties are established by the tests:
//!
//! 1. **Functional equivalence**: the simulated outputs equal the
//!    Ristretto-style fake-quantized f32 computation used for training.
//! 2. **Cycle-model soundness**: the simulated cycle count matches the
//!    analytical schedule of [`layer_cycles`](crate::layer_cycles) when
//!    output channels fill the tile, and never beats it otherwise.

use std::cell::Cell;

use qnn_faults::{BufferKind, FaultError, FaultInjector};
use qnn_quant::{Binary, Fixed, PowerOfTwo, Quantizer};
use qnn_tensor::rng::derive_seed;

use crate::config::AcceleratorConfig;

/// Modelled width of the partial-sum accumulator registers. Wide enough
/// that fault-free accumulation never wraps for the paper's formats and
/// fan-ins, yet finite so high-order flips model real register damage.
pub const ACC_BITS: u32 = 48;

/// The operand formats a simulation runs under — one variant per weight
/// block of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimPrecision {
    /// Fixed-point weights and inputs (Figure 2a).
    Fixed {
        /// Weight format.
        weights: Fixed,
        /// Input/feature-map format.
        inputs: Fixed,
    },
    /// Power-of-two weights over fixed-point inputs (Figure 2b).
    PowerOfTwo {
        /// Weight format.
        weights: PowerOfTwo,
        /// Input/feature-map format.
        inputs: Fixed,
    },
    /// Binary weights over fixed-point inputs (Figure 2c).
    Binary {
        /// Weight format.
        weights: Binary,
        /// Input/feature-map format.
        inputs: Fixed,
    },
}

impl SimPrecision {
    /// The input format common to all variants.
    pub fn input_format(&self) -> Fixed {
        match *self {
            SimPrecision::Fixed { inputs, .. }
            | SimPrecision::PowerOfTwo { inputs, .. }
            | SimPrecision::Binary { inputs, .. } => inputs,
        }
    }
}

/// Per-buffer per-bit fault rates for a simulated tile, modelling soft
/// errors in the machine's SRAMs and datapath registers.
///
/// Each simulated layer call derives three independent fault streams
/// (SB, Bin, accumulators) from `seed` and a per-call counter, so a
/// sweep replays bit-identically for a given seed no matter how calls
/// interleave with other simulators — and regardless of `QNN_THREADS`,
/// since injection never touches the worker pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimFaults {
    /// Per-bit flip rate in the SB (stored weight words).
    pub weight_rate: f64,
    /// Per-bit flip rate in Bin (input feature-map codes).
    pub act_rate: f64,
    /// Per-bit flip rate in the partial-sum accumulators
    /// ([`ACC_BITS`]-bit two's-complement registers).
    pub acc_rate: f64,
    /// Base seed for the per-call fault streams.
    pub seed: u64,
}

impl SimFaults {
    /// The same per-bit rate across all three buffers.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        SimFaults {
            weight_rate: rate,
            act_rate: rate,
            acc_rate: rate,
            seed,
        }
    }
}

/// Result of a simulated layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutput {
    /// Layer outputs, decoded to real values (post-ReLU if requested,
    /// re-quantized to the input format as they would be written to Bout).
    pub outputs: Vec<f32>,
    /// NFU compute cycles consumed.
    pub cycles: u64,
    /// Weight-buffer row reads.
    pub sb_reads: u64,
    /// Input-buffer row reads.
    pub bin_reads: u64,
    /// Output-buffer row writes.
    pub bout_writes: u64,
    /// Bit flips injected into this layer's buffers (zero when the
    /// simulator runs fault-free).
    pub fault_flips: u64,
}

/// One weight's stored form, as the SB would hold it.
#[derive(Debug, Clone, Copy)]
enum StoredWeight {
    Fixed(i64),
    Pow2 { sign: bool, code: u32 },
    Sign(bool),
}

/// The simulated machine.
#[derive(Debug)]
pub struct TileSimulator {
    config: AcceleratorConfig,
    precision: SimPrecision,
    faults: Option<SimFaults>,
    /// Modelled accumulator register width; [`ACC_BITS`] unless narrowed
    /// through [`with_acc_bits`](Self::with_acc_bits).
    acc_bits: u32,
    /// Layer calls simulated so far — the stream index for per-call
    /// fault-seed derivation. `Cell` because simulation methods take
    /// `&self` and only this bookkeeping mutates.
    fault_calls: Cell<u64>,
}

impl TileSimulator {
    /// Creates a simulator for the given tile and formats.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (see
    /// [`AcceleratorConfig::validate`]).
    pub fn new(config: AcceleratorConfig, precision: SimPrecision) -> Self {
        config.validate();
        TileSimulator {
            config,
            precision,
            faults: None,
            acc_bits: ACC_BITS,
            fault_calls: Cell::new(0),
        }
    }

    /// Narrows the modelled accumulator registers to `bits`. Every
    /// partial sum saturates to the `bits`-bit two's-complement range
    /// after each multiply-accumulate — the saturating adder a narrow
    /// accumulator datapath implements — so a layer whose dot products
    /// are certified by `qnn_quant::packed::dot_exact_narrow_acc` runs
    /// bit-identical to the full-width engine, while an uncertified
    /// layer degrades deterministically (clamped, never wrapped). Fault
    /// injection addresses the narrowed registers: accumulator flip
    /// sites land within `bits`, not [`ACC_BITS`].
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= ACC_BITS`.
    pub fn with_acc_bits(mut self, bits: u32) -> Self {
        assert!(
            (2..=ACC_BITS).contains(&bits),
            "accumulator width must be in [2, {ACC_BITS}], got {bits}"
        );
        self.acc_bits = bits;
        self
    }

    /// The modelled accumulator register width in bits.
    pub fn acc_bits(&self) -> u32 {
        self.acc_bits
    }

    /// Simulator with the paper's default 16×16 tile.
    pub fn with_default_tile(precision: SimPrecision) -> Self {
        TileSimulator::new(AcceleratorConfig::default(), precision)
    }

    /// Creates a simulator that injects seeded bit flips into its
    /// buffers at the given per-bit rates.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidRate`] if any rate is outside
    /// `[0, 1]` or non-finite.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration, as [`new`](Self::new) does.
    pub fn with_faults(
        config: AcceleratorConfig,
        precision: SimPrecision,
        faults: SimFaults,
    ) -> Result<Self, FaultError> {
        // Probe-construct one injector per rate so bad configurations
        // surface here, not mid-sweep.
        for rate in [faults.weight_rate, faults.act_rate, faults.acc_rate] {
            FaultInjector::new(rate, 0)?;
        }
        let mut sim = TileSimulator::new(config, precision);
        sim.faults = Some(faults);
        Ok(sim)
    }

    /// Width in bits of one stored weight word, per the precision's
    /// [`BitCodec`](qnn_quant::BitCodec) layout.
    fn weight_width(&self) -> u32 {
        match self.precision {
            SimPrecision::Fixed { weights, .. } => weights.word_bits(),
            SimPrecision::PowerOfTwo { weights, .. } => weights.bits(),
            SimPrecision::Binary { .. } => 1,
        }
    }

    /// The three per-call fault injectors (SB, Bin, accumulators), or
    /// `None` when running fault-free. Consumes one stream index.
    fn next_fault_streams(&self) -> Option<[FaultInjector; 3]> {
        let f = self.faults?;
        let call = self.fault_calls.get();
        self.fault_calls.set(call + 1);
        let make = |rate: f64, lane: u64| {
            // Rates were validated in `with_faults`.
            FaultInjector::new(rate, derive_seed(f.seed, call * 3 + lane))
                .expect("rates validated at construction")
        };
        Some([
            make(f.weight_rate, 0),
            make(f.act_rate, 1),
            make(f.acc_rate, 2),
        ])
    }

    /// Flips stored-word bits of the SB image at the injector's sites.
    fn corrupt_sb(&self, inj: &mut FaultInjector, sb: &mut [StoredWeight]) -> u64 {
        let width = self.weight_width() as u64;
        let sites: Vec<u64> = inj.sites(sb.len() as u64 * width).collect();
        let flips = sites.len() as u64;
        for site in sites {
            let elem = (site / width) as usize;
            sb[elem] = self.flip_stored(sb[elem], (site % width) as u32);
        }
        qnn_trace::counter!(BufferKind::Weight.counter(), flips);
        flips
    }

    /// Flips one bit of a stored weight word, mirroring the format's
    /// `BitCodec` layout (sign in the top bit, fields below).
    fn flip_stored(&self, w: StoredWeight, bit: u32) -> StoredWeight {
        match (self.precision, w) {
            (SimPrecision::Fixed { weights, .. }, StoredWeight::Fixed(code)) => {
                StoredWeight::Fixed(flip_fixed_code(code, bit, weights.word_bits()))
            }
            (SimPrecision::PowerOfTwo { weights, .. }, StoredWeight::Pow2 { sign, code }) => {
                let b = weights.bits();
                let word = ((sign as u64) << (b - 1)) | code as u64;
                let word = word ^ (1u64 << bit);
                StoredWeight::Pow2 {
                    sign: word >> (b - 1) & 1 != 0,
                    code: (word & low_mask(b - 1)) as u32,
                }
            }
            (SimPrecision::Binary { .. }, StoredWeight::Sign(s)) => StoredWeight::Sign(!s),
            _ => unreachable!("stored weight kind always matches precision"),
        }
    }

    /// Flips input-code bits of the Bin image at the injector's sites.
    fn corrupt_bin(&self, inj: &mut FaultInjector, bin: &mut [i64]) -> u64 {
        let width = self.precision.input_format().word_bits() as u64;
        let sites: Vec<u64> = inj.sites(bin.len() as u64 * width).collect();
        let flips = sites.len() as u64;
        for site in sites {
            let elem = (site / width) as usize;
            bin[elem] = flip_fixed_code(bin[elem], (site % width) as u32, width as u32);
        }
        qnn_trace::counter!(BufferKind::Act.counter(), flips);
        flips
    }

    /// Flips partial-sum bits across one tile's accumulator registers,
    /// modelled as [`acc_bits`](Self::acc_bits)-bit two's-complement
    /// words.
    fn corrupt_acc(&self, inj: &mut FaultInjector, acc: &mut [i128]) -> u64 {
        let width = self.acc_bits as u64;
        let sites: Vec<u64> = inj.sites(acc.len() as u64 * width).collect();
        let flips = sites.len() as u64;
        for site in sites {
            let elem = (site / width) as usize;
            acc[elem] = flip_acc_word(acc[elem], (site % width) as u32, self.acc_bits);
        }
        qnn_trace::counter!(BufferKind::Acc.counter(), flips);
        flips
    }

    fn store_weight(&self, w: f32) -> StoredWeight {
        match self.precision {
            SimPrecision::Fixed { weights, .. } => StoredWeight::Fixed(weights.encode(w)),
            SimPrecision::PowerOfTwo { weights, .. } => {
                let (sign, code) = weights.encode(w);
                StoredWeight::Pow2 { sign, code }
            }
            SimPrecision::Binary { weights, .. } => StoredWeight::Sign(weights.encode(w)),
        }
    }

    /// One weight block's product, in accumulator LSBs of
    /// `in_step × lsb_scale` (see `acc_scale`).
    fn multiply(&self, w: StoredWeight, x_raw: i64) -> i128 {
        match (self.precision, w) {
            (SimPrecision::Fixed { .. }, StoredWeight::Fixed(wi)) => wi as i128 * x_raw as i128,
            (SimPrecision::PowerOfTwo { weights, .. }, StoredWeight::Pow2 { sign, code }) => {
                if code == 0 {
                    return 0;
                }
                // Shift relative to the window's minimum exponent so the
                // accumulator LSB stays constant and shifts are all left.
                let e = weights.min_exp() + code as i32 - 1;
                let shifted = (x_raw as i128) << (e - weights.min_exp());
                if sign {
                    -shifted
                } else {
                    shifted
                }
            }
            (SimPrecision::Binary { .. }, StoredWeight::Sign(s)) => {
                if s {
                    -(x_raw as i128)
                } else {
                    x_raw as i128
                }
            }
            _ => unreachable!("stored weight kind always matches precision"),
        }
    }

    /// Real value of one accumulator LSB.
    fn acc_scale(&self) -> f64 {
        let in_step = self.precision.input_format().step() as f64;
        match self.precision {
            SimPrecision::Fixed { weights, .. } => in_step * weights.step() as f64,
            SimPrecision::PowerOfTwo { weights, .. } => in_step * (weights.min_exp() as f64).exp2(),
            SimPrecision::Binary { weights, .. } => in_step * weights.scale() as f64,
        }
    }

    /// Simulates a fully-connected layer: `neurons × fan_in` weights
    /// (row-major per neuron), one bias per neuron.
    ///
    /// The controller walks output neurons in tiles of `Tn` and the fan-in
    /// in chunks of `Ti`; each (tile, chunk) step costs one cycle, reads
    /// one SB row and one Bin row, exactly as the modelled pipeline does.
    /// Biases join at accumulator precision; ReLU is applied in the third
    /// pipeline stage; results are re-quantized to the input format on
    /// their way into Bout.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != neurons × inputs.len()` or
    /// `bias.len() != neurons`.
    pub fn run_dense(
        &self,
        inputs: &[f32],
        weights: &[f32],
        bias: &[f32],
        relu: bool,
    ) -> SimOutput {
        let fan_in = inputs.len();
        let neurons = bias.len();
        assert_eq!(
            weights.len(),
            neurons * fan_in,
            "weight matrix must be neurons × fan_in"
        );
        let tn = self.config.neurons;
        let ti = self.config.synapses;
        let in_fmt = self.precision.input_format();

        // Fill the buffers with raw codes (the DMA's job).
        let mut bin: Vec<i64> = inputs.iter().map(|&x| in_fmt.encode(x)).collect();
        let mut sb: Vec<StoredWeight> = weights.iter().map(|&w| self.store_weight(w)).collect();

        // Damage the SRAM images before the controller reads them; the
        // accumulator stream is held back until each tile's sums exist.
        let mut fault_flips = 0u64;
        let mut acc_inj = match self.next_fault_streams() {
            Some([mut w_inj, mut a_inj, acc_inj]) => {
                fault_flips += self.corrupt_sb(&mut w_inj, &mut sb);
                fault_flips += self.corrupt_bin(&mut a_inj, &mut bin);
                Some(acc_inj)
            }
            None => None,
        };

        let scale = self.acc_scale();
        let narrow = self.acc_bits < ACC_BITS;
        let mut outputs = vec![0.0f32; neurons];
        let mut cycles = 0u64;
        let mut sb_reads = 0u64;
        let mut bin_reads = 0u64;
        let mut bout_writes = 0u64;

        for tile_base in (0..neurons).step_by(tn) {
            let tile_n = tn.min(neurons - tile_base);
            let mut acc = vec![0i128; tile_n];
            for chunk_base in (0..fan_in).step_by(ti) {
                let chunk_n = ti.min(fan_in - chunk_base);
                // One cycle: read one Bin row and one SB row, fire the
                // multiplier array, fold the adder trees.
                cycles += 1;
                bin_reads += 1;
                sb_reads += 1;
                for (n, a) in acc.iter_mut().enumerate() {
                    let row = (tile_base + n) * fan_in;
                    for k in 0..chunk_n {
                        let x = bin[chunk_base + k];
                        let w = sb[row + chunk_base + k];
                        *a += self.multiply(w, x);
                        if narrow {
                            *a = saturate_acc(*a, self.acc_bits);
                        }
                    }
                }
            }
            // Soft errors strike the partial sums after the last chunk
            // folds in, before NFU-3 consumes them.
            if let Some(inj) = acc_inj.as_mut() {
                fault_flips += self.corrupt_acc(inj, &mut acc);
            }
            // NFU-3: bias add (accumulator precision), nonlinearity,
            // requantize to the feature-map format, write Bout.
            bout_writes += 1;
            for (n, a) in acc.iter().enumerate() {
                let mut y = *a as f64 * scale + bias[tile_base + n] as f64;
                if relu && y < 0.0 {
                    y = 0.0;
                }
                outputs[tile_base + n] = in_fmt.quantize_value(y as f32);
            }
        }
        qnn_trace::counter!("accel.nfu.cycles", cycles);
        qnn_trace::counter!("accel.sb.reads", sb_reads);
        qnn_trace::counter!("accel.bin.reads", bin_reads);
        qnn_trace::counter!("accel.bout.writes", bout_writes);
        qnn_trace::counter!("accel.dma.values", (bin.len() + sb.len()) as u64);
        SimOutput {
            outputs,
            cycles,
            sb_reads,
            bin_reads,
            bout_writes,
            fault_flips,
        }
    }

    /// Simulates a convolution layer on one `(C, H, W)` image: per output
    /// pixel, the controller gathers the receptive field into a Bin-shaped
    /// vector and runs the output channels through the tile exactly as
    /// [`run_dense`](TileSimulator::run_dense) does.
    ///
    /// Returns outputs in `(O, OH, OW)` row-major order. The cycle count is
    /// `oh·ow · ⌈o/Tn⌉ · ⌈fan_in/Ti⌉` — it equals the analytical schedule
    /// whenever `o·oh·ow` is a multiple of `Tn`, and can only exceed it
    /// otherwise (partial neuron tiles cannot be shared across pixels in
    /// this controller).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent operand sizes or impossible geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn run_conv(
        &self,
        image: &[f32],
        (c, h, w): (usize, usize, usize),
        weights: &[f32],
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: &[f32],
        relu: bool,
    ) -> SimOutput {
        assert_eq!(image.len(), c * h * w, "image size mismatch");
        let fan_in = c * kernel * kernel;
        assert_eq!(weights.len(), out_channels * fan_in, "weight size mismatch");
        assert_eq!(bias.len(), out_channels, "bias size mismatch");
        let ph = h + 2 * pad;
        assert!(ph >= kernel && w + 2 * pad >= kernel, "kernel too large");
        let oh = (ph - kernel) / stride + 1;
        let ow = (w + 2 * pad - kernel) / stride + 1;
        let mut outputs = vec![0.0f32; out_channels * oh * ow];
        let mut cycles = 0u64;
        let mut sb_reads = 0u64;
        let mut bin_reads = 0u64;
        let mut bout_writes = 0u64;
        let mut fault_flips = 0u64;
        let mut patch = vec![0.0f32; fan_in];
        for oi in 0..oh {
            for oj in 0..ow {
                // Gather the receptive field (zero padding outside).
                for ci in 0..c {
                    for ki in 0..kernel {
                        for kj in 0..kernel {
                            let ii = (oi * stride + ki) as isize - pad as isize;
                            let jj = (oj * stride + kj) as isize - pad as isize;
                            let v = if ii < 0 || jj < 0 || ii as usize >= h || jj as usize >= w {
                                0.0
                            } else {
                                image[(ci * h + ii as usize) * w + jj as usize]
                            };
                            patch[(ci * kernel + ki) * kernel + kj] = v;
                        }
                    }
                }
                let px = self.run_dense(&patch, weights, bias, relu);
                cycles += px.cycles;
                sb_reads += px.sb_reads;
                bin_reads += px.bin_reads;
                bout_writes += px.bout_writes;
                fault_flips += px.fault_flips;
                for (och, &v) in px.outputs.iter().enumerate() {
                    outputs[(och * oh + oi) * ow + oj] = v;
                }
            }
        }
        SimOutput {
            outputs,
            cycles,
            sb_reads,
            bin_reads,
            bout_writes,
            fault_flips,
        }
    }

    /// Simulates max pooling in the NFU's third stage: values stream out
    /// of Bout as raw integer codes and the pooler keeps per-window
    /// maxima with integer comparisons (valid because the fixed-point
    /// encode is monotone). `Tn` values pass per cycle.
    ///
    /// Input/outputs are `(C, H, W)` row-major; floor-mode output sizing
    /// with no padding, like every pool in the paper's networks.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent sizes or a kernel larger than the input.
    pub fn run_max_pool(
        &self,
        input: &[f32],
        (c, h, w): (usize, usize, usize),
        kernel: usize,
        stride: usize,
    ) -> SimOutput {
        assert_eq!(input.len(), c * h * w, "input size mismatch");
        assert!(h >= kernel && w >= kernel, "kernel larger than input");
        let in_fmt = self.precision.input_format();
        let mut raw: Vec<i64> = input.iter().map(|&x| in_fmt.encode(x)).collect();
        // Pooling touches only Bin codes; the SB and accumulator streams
        // of this call are drawn and discarded to keep lane indexing
        // uniform across layer kinds.
        let mut fault_flips = 0u64;
        if let Some([_, mut a_inj, _]) = self.next_fault_streams() {
            fault_flips += self.corrupt_bin(&mut a_inj, &mut raw);
        }
        let oh = (h - kernel) / stride + 1;
        let ow = (w - kernel) / stride + 1;
        let mut outputs = vec![0.0f32; c * oh * ow];
        for ci in 0..c {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = i64::MIN;
                    for ki in 0..kernel {
                        for kj in 0..kernel {
                            let idx = (ci * h + oi * stride + ki) * w + oj * stride + kj;
                            best = best.max(raw[idx]);
                        }
                    }
                    outputs[(ci * oh + oi) * ow + oj] = in_fmt.decode(best);
                }
            }
        }
        let n_out = (c * oh * ow) as u64;
        let tn = self.config.neurons as u64;
        let out = SimOutput {
            outputs,
            cycles: n_out.div_ceil(tn),
            sb_reads: 0,
            bin_reads: (raw.len() as u64).div_ceil(tn),
            bout_writes: n_out.div_ceil(tn),
            fault_flips,
        };
        qnn_trace::counter!("accel.nfu.cycles", out.cycles);
        qnn_trace::counter!("accel.bin.reads", out.bin_reads);
        qnn_trace::counter!("accel.bout.writes", out.bout_writes);
        qnn_trace::counter!("accel.dma.values", raw.len() as u64);
        out
    }

    /// The f32 reference the simulation must reproduce: fake-quantize
    /// operands, accumulate in f64, add bias, ReLU, re-quantize — the
    /// computation `qnn-nn` performs under QAT.
    pub fn reference_dense(
        &self,
        inputs: &[f32],
        weights: &[f32],
        bias: &[f32],
        relu: bool,
    ) -> Vec<f32> {
        let fan_in = inputs.len();
        let neurons = bias.len();
        let in_fmt = self.precision.input_format();
        let qx: Vec<f64> = inputs
            .iter()
            .map(|&x| in_fmt.quantize_value(x) as f64)
            .collect();
        let qw: Vec<f64> = weights
            .iter()
            .map(|&w| match self.precision {
                SimPrecision::Fixed { weights, .. } => weights.quantize_value(w) as f64,
                SimPrecision::PowerOfTwo { weights, .. } => weights.quantize_value(w) as f64,
                SimPrecision::Binary { weights, .. } => weights.quantize_value(w) as f64,
            })
            .collect();
        (0..neurons)
            .map(|n| {
                let mut y: f64 = (0..fan_in).map(|k| qx[k] * qw[n * fan_in + k]).sum();
                y += bias[n] as f64;
                if relu && y < 0.0 {
                    y = 0.0;
                }
                in_fmt.quantize_value(y as f32)
            })
            .collect()
    }
}

/// Low-`n`-bits mask (`n <= 64`).
fn low_mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Flips bit `bit` of a `width`-bit two's-complement code and
/// sign-extends the result back to `i64`.
fn flip_fixed_code(code: i64, bit: u32, width: u32) -> i64 {
    let raw = (code as u64 ^ (1u64 << bit)) & low_mask(width);
    let sign = 1u64 << (width - 1);
    (raw ^ sign).wrapping_sub(sign) as i64
}

/// Flips bit `bit` of a `width`-bit two's-complement accumulator
/// register. The struck register is re-read modulo the register width —
/// bits a fault-free run never populates cannot hold damage.
fn flip_acc_word(acc: i128, bit: u32, width: u32) -> i128 {
    let raw = (acc as u128 ^ (1u128 << bit)) & ((1u128 << width) - 1);
    let sign = 1u128 << (width - 1);
    (raw ^ sign).wrapping_sub(sign) as i128
}

/// Clamps a partial sum to the `bits`-bit two's-complement range — the
/// saturating adder of a narrow accumulator datapath.
fn saturate_acc(acc: i128, bits: u32) -> i128 {
    let hi = (1i128 << (bits - 1)) - 1;
    acc.clamp(-hi - 1, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::layer_cycles;
    use qnn_nn::workload::{LayerWork, WorkKind};

    fn data(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect()
    }

    fn fixed_sim() -> TileSimulator {
        TileSimulator::with_default_tile(SimPrecision::Fixed {
            weights: Fixed::new(8, 6).unwrap(),
            inputs: Fixed::new(16, 10).unwrap(),
        })
    }

    #[test]
    fn fixed_layer_matches_reference() {
        let sim = fixed_sim();
        let inputs = data(100, 1);
        let weights = data(100 * 37, 2);
        let bias = data(37, 3);
        let out = sim.run_dense(&inputs, &weights, &bias, true);
        let want = sim.reference_dense(&inputs, &weights, &bias, true);
        for (i, (a, b)) in out.outputs.iter().zip(&want).enumerate() {
            assert!(
                (a - b).abs() <= 1.0 / 1024.0 + 1e-6,
                "neuron {i}: sim {a} vs reference {b}"
            );
        }
    }

    #[test]
    fn pow2_layer_matches_reference() {
        let sim = TileSimulator::with_default_tile(SimPrecision::PowerOfTwo {
            weights: PowerOfTwo::new(6, 0).unwrap(),
            inputs: Fixed::new(16, 10).unwrap(),
        });
        let inputs = data(64, 4);
        let weights = data(64 * 20, 5);
        let bias = data(20, 6);
        let out = sim.run_dense(&inputs, &weights, &bias, false);
        let want = sim.reference_dense(&inputs, &weights, &bias, false);
        for (a, b) in out.outputs.iter().zip(&want) {
            assert!((a - b).abs() <= 2.0 / 1024.0, "sim {a} vs reference {b}");
        }
    }

    #[test]
    fn binary_layer_matches_reference() {
        let sim = TileSimulator::with_default_tile(SimPrecision::Binary {
            weights: Binary::with_scale(0.5).unwrap(),
            inputs: Fixed::new(16, 12).unwrap(),
        });
        let inputs = data(48, 7);
        let weights = data(48 * 16, 8);
        let bias = data(16, 9);
        let out = sim.run_dense(&inputs, &weights, &bias, true);
        let want = sim.reference_dense(&inputs, &weights, &bias, true);
        for (a, b) in out.outputs.iter().zip(&want) {
            assert!((a - b).abs() <= 1.0 / 2048.0, "sim {a} vs reference {b}");
        }
    }

    #[test]
    fn simulated_cycles_match_analytical_model_on_full_tiles() {
        // 32 neurons (2 full tiles), fan-in 800 (50 full chunks).
        let sim = fixed_sim();
        let inputs = data(800, 10);
        let weights = data(800 * 32, 11);
        let bias = data(32, 12);
        let out = sim.run_dense(&inputs, &weights, &bias, false);
        let analytic = layer_cycles(
            &LayerWork {
                name: "fc".into(),
                kind: WorkKind::Dense,
                macs: 800 * 32,
                neurons: 32,
                synapses_per_neuron: 800,
                inputs: 800,
                weights: 800 * 32,
                outputs: 32,
            },
            &AcceleratorConfig::default(),
            3,
        );
        assert_eq!(out.cycles, analytic.compute);
        // Buffer traffic: one SB and Bin row per cycle, one Bout row per tile.
        assert_eq!(out.sb_reads, out.cycles);
        assert_eq!(out.bin_reads, out.cycles);
        assert_eq!(out.bout_writes, 2);
    }

    #[test]
    fn partial_tiles_cost_full_cycles() {
        // 17 neurons → 2 tiles; fan-in 17 → 2 chunks; 4 cycles, not 2.
        let sim = fixed_sim();
        let inputs = data(17, 13);
        let weights = data(17 * 17, 14);
        let bias = data(17, 15);
        let out = sim.run_dense(&inputs, &weights, &bias, false);
        assert_eq!(out.cycles, 4);
    }

    #[test]
    fn relu_clamps_in_the_pipeline() {
        let sim = fixed_sim();
        let inputs = vec![1.0f32; 4];
        let weights = vec![-1.0f32; 4]; // strongly negative pre-activation
        let bias = vec![0.0f32];
        let out = sim.run_dense(&inputs, &weights, &bias, true);
        assert_eq!(out.outputs, vec![0.0]);
        let out = sim.run_dense(&inputs, &weights, &bias, false);
        assert!(out.outputs[0] < 0.0);
    }

    #[test]
    #[should_panic(expected = "neurons × fan_in")]
    fn shape_mismatch_panics() {
        fixed_sim().run_dense(&[1.0; 4], &[1.0; 7], &[0.0; 2], false);
    }

    #[test]
    fn fault_free_simulator_reports_zero_flips() {
        let sim = fixed_sim();
        let out = sim.run_dense(&data(64, 30), &data(64 * 8, 31), &data(8, 32), true);
        assert_eq!(out.fault_flips, 0);
    }

    #[test]
    fn faulty_runs_are_deterministic_and_damage_outputs() {
        let precision = SimPrecision::Fixed {
            weights: Fixed::new(8, 6).unwrap(),
            inputs: Fixed::new(16, 10).unwrap(),
        };
        let inputs = data(200, 40);
        let weights = data(200 * 24, 41);
        let bias = data(24, 42);
        let clean = fixed_sim().run_dense(&inputs, &weights, &bias, false);
        let run = || {
            let sim = TileSimulator::with_faults(
                AcceleratorConfig::default(),
                precision,
                SimFaults::uniform(2e-3, 99),
            )
            .unwrap();
            sim.run_dense(&inputs, &weights, &bias, false)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must replay the same damage");
        assert!(a.fault_flips > 0);
        assert_ne!(a.outputs, clean.outputs);
        // Faults never change the schedule, only the data.
        assert_eq!(a.cycles, clean.cycles);
        assert_eq!(a.sb_reads, clean.sb_reads);
    }

    #[test]
    fn successive_calls_draw_distinct_fault_streams() {
        let sim = TileSimulator::with_faults(
            AcceleratorConfig::default(),
            SimPrecision::Fixed {
                weights: Fixed::new(8, 6).unwrap(),
                inputs: Fixed::new(16, 10).unwrap(),
            },
            SimFaults::uniform(5e-3, 7),
        )
        .unwrap();
        let inputs = data(100, 50);
        let weights = data(100 * 16, 51);
        let bias = data(16, 52);
        let first = sim.run_dense(&inputs, &weights, &bias, false);
        let second = sim.run_dense(&inputs, &weights, &bias, false);
        assert_ne!(
            first.outputs, second.outputs,
            "per-call streams must be independent"
        );
    }

    #[test]
    fn acc_only_faults_respect_the_register_width() {
        // Accumulator-only damage: outputs differ from clean, weights and
        // inputs stay untouched, so the schedule and buffer images agree.
        let precision = SimPrecision::Binary {
            weights: Binary::with_scale(0.5).unwrap(),
            inputs: Fixed::new(16, 12).unwrap(),
        };
        // Small fan-in keeps clean outputs well inside the feature-map
        // range, so accumulator damage cannot hide behind saturation.
        let inputs = data(8, 60);
        let weights = data(8 * 16, 61);
        let bias = data(16, 62);
        let sim = TileSimulator::with_faults(
            AcceleratorConfig::default(),
            precision,
            SimFaults {
                weight_rate: 0.0,
                act_rate: 0.0,
                acc_rate: 0.05,
                seed: 12,
            },
        )
        .unwrap();
        let out = sim.run_dense(&inputs, &weights, &bias, false);
        assert!(out.fault_flips > 0);
        let clean =
            TileSimulator::with_default_tile(precision).run_dense(&inputs, &weights, &bias, false);
        assert_ne!(out.outputs, clean.outputs);
        assert_eq!(out.cycles, clean.cycles);
    }

    #[test]
    fn invalid_fault_rates_are_rejected() {
        let precision = SimPrecision::Fixed {
            weights: Fixed::new(8, 6).unwrap(),
            inputs: Fixed::new(16, 10).unwrap(),
        };
        for rate in [-0.5, 1.5, f64::NAN] {
            assert!(TileSimulator::with_faults(
                AcceleratorConfig::default(),
                precision,
                SimFaults::uniform(rate, 0),
            )
            .is_err());
        }
    }

    #[test]
    fn fixed_code_flip_is_an_involution_within_the_word() {
        for width in [8u32, 16, 24, 48] {
            for &code in &[0i64, 1, -1, 57, -102, (1 << (width - 1)) - 1] {
                for bit in 0..width {
                    let once = flip_fixed_code(code, bit, width);
                    assert_ne!(once, code);
                    assert_eq!(flip_fixed_code(once, bit, width), code);
                }
            }
        }
        // Sign bit makes large negatives: flipping bit 7 of 0 in 8 bits
        // lands on -128, the two's-complement extreme.
        assert_eq!(flip_fixed_code(0, 7, 8), -128);
        assert_eq!(
            flip_acc_word(0, ACC_BITS - 1, ACC_BITS),
            -(1i128 << (ACC_BITS - 1))
        );
        // Narrowed registers: the sign bit of a 16-bit accumulator.
        assert_eq!(flip_acc_word(0, 15, 16), -(1i128 << 15));
        assert_eq!(flip_acc_word(-(1i128 << 15), 15, 16), 0);
    }

    #[test]
    fn certified_narrow_accumulator_matches_full_width() {
        // Q8.4 inputs (|raw| ≤ 127) × Q4.2 weights (|raw| ≤ 7), fan-in 16:
        // Σ|a·w| ≤ 127·7·16 = 14224 ≤ 2^15 − 1, so the 16-bit narrow
        // certificate holds and the saturating engine must agree bit for
        // bit with the full-width one.
        assert!(qnn_quant::packed::dot_exact_narrow_acc(127, 7, 16, -6, 16));
        let precision = SimPrecision::Fixed {
            weights: Fixed::new(4, 2).unwrap(),
            inputs: Fixed::new(8, 4).unwrap(),
        };
        let inputs = data(16, 70);
        let weights = data(16 * 10, 71);
        let bias = data(10, 72);
        let full =
            TileSimulator::with_default_tile(precision).run_dense(&inputs, &weights, &bias, false);
        let narrow = TileSimulator::with_default_tile(precision)
            .with_acc_bits(16)
            .run_dense(&inputs, &weights, &bias, false);
        assert_eq!(full, narrow, "certified width must be exact");
    }

    #[test]
    fn uncertified_narrow_accumulator_saturates_deterministically() {
        // Same formats, but an 8-bit accumulator (limit 127) cannot hold
        // even one near-maximal product — the certificate refuses and the
        // engine clamps instead of wrapping.
        assert!(!qnn_quant::packed::dot_exact_narrow_acc(127, 7, 16, -6, 8));
        let precision = SimPrecision::Fixed {
            weights: Fixed::new(4, 2).unwrap(),
            inputs: Fixed::new(8, 4).unwrap(),
        };
        let inputs = vec![6.0f32; 16];
        let weights = vec![1.5f32; 16 * 4];
        let bias = vec![0.0f32; 4];
        let full =
            TileSimulator::with_default_tile(precision).run_dense(&inputs, &weights, &bias, false);
        let run = || {
            TileSimulator::with_default_tile(precision)
                .with_acc_bits(8)
                .run_dense(&inputs, &weights, &bias, false)
        };
        let a = run();
        assert_ne!(a.outputs, full.outputs, "saturation must bite");
        assert_eq!(a, run(), "saturation path must be deterministic");
        // Clamped, never wrapped: the positive sum saturates at the
        // 8-bit ceiling (127 LSBs · 2^-6 = 1.984375), not a wrapped
        // negative.
        assert!(a.outputs.iter().all(|&y| y > 0.0));
        // The schedule is data-independent.
        assert_eq!(a.cycles, full.cycles);
    }

    #[test]
    fn narrow_accumulator_faults_land_within_the_narrow_width() {
        let precision = SimPrecision::Fixed {
            weights: Fixed::new(4, 2).unwrap(),
            inputs: Fixed::new(8, 4).unwrap(),
        };
        let inputs = data(16, 80);
        let weights = data(16 * 8, 81);
        let bias = data(8, 82);
        let run = || {
            TileSimulator::with_faults(
                AcceleratorConfig::default(),
                precision,
                SimFaults {
                    weight_rate: 0.0,
                    act_rate: 0.0,
                    acc_rate: 0.05,
                    seed: 17,
                },
            )
            .unwrap()
            .with_acc_bits(16)
            .run_dense(&inputs, &weights, &bias, false)
        };
        let a = run();
        assert_eq!(a, run(), "seeded narrow-width faults must replay");
        // A flip confined to 16 bits moves an output by at most the full
        // 16-bit span in accumulator LSBs (2^16 · 2^-6 = 1024.0) — it can
        // never fabricate the astronomical magnitudes a 48-bit flip can.
        let clean = TileSimulator::with_default_tile(precision)
            .with_acc_bits(16)
            .run_dense(&inputs, &weights, &bias, false);
        for (y, c) in a.outputs.iter().zip(&clean.outputs) {
            assert!((y - c).abs() <= 1024.0, "flip escaped the 16-bit register");
        }
    }

    #[test]
    #[should_panic(expected = "accumulator width")]
    fn acc_width_beyond_register_is_rejected() {
        let _ = fixed_sim().with_acc_bits(ACC_BITS + 1);
    }

    #[test]
    fn conv_layer_matches_tensor_conv_on_quantized_operands() {
        use qnn_tensor::conv::{conv2d, Geometry};
        use qnn_tensor::{Shape, Tensor};
        let sim = fixed_sim();
        let in_fmt = sim.precision.input_format();
        let w_fmt = match sim.precision {
            SimPrecision::Fixed { weights, .. } => weights,
            _ => unreachable!(),
        };
        let (c, h, w, o, k) = (2usize, 6usize, 6usize, 3usize, 3usize);
        let image = data(c * h * w, 20);
        let weights = data(o * c * k * k, 21);
        let bias = data(o, 22);
        let out = sim.run_conv(&image, (c, h, w), &weights, o, k, 1, 1, &bias, true);
        // Reference: fake-quantize operands, run the f32 conv, ReLU,
        // re-quantize — the QAT forward path.
        let qx = Tensor::from_vec(
            Shape::d4(1, c, h, w),
            image.iter().map(|&x| in_fmt.quantize_value(x)).collect(),
        )
        .unwrap();
        let qw = Tensor::from_vec(
            Shape::d4(o, c, k, k),
            weights.iter().map(|&x| w_fmt.quantize_value(x)).collect(),
        )
        .unwrap();
        let qb = Tensor::from_vec(Shape::d1(o), bias.clone()).unwrap();
        let want = conv2d(&qx, &qw, &qb, Geometry::square(k, 1, 1))
            .unwrap()
            .map(|v| in_fmt.quantize_value(v.max(0.0)));
        assert_eq!(out.outputs.len(), want.len());
        for (i, (a, b)) in out.outputs.iter().zip(want.as_slice()).enumerate() {
            assert!(
                (a - b).abs() <= 2.0 / 1024.0 + 1e-6,
                "pixel {i}: sim {a} vs tensor-conv {b}"
            );
        }
        // Cycle accounting: 36 pixels × ⌈3/16⌉ × ⌈18/16⌉ = 36 × 1 × 2.
        assert_eq!(out.cycles, 72);
    }
}
