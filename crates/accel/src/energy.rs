use qnn_nn::workload::Workload;

use crate::cycles::{workload_cycles, CyclesBreakdown};
use crate::design::AcceleratorDesign;

/// Per-image energy of one network on one accelerator instance — the
/// quantity Tables IV and V report.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyBreakdown {
    /// Cycle accounting the energy derives from.
    pub cycles: CyclesBreakdown,
    /// Total accelerator power, mW.
    pub power_mw: f64,
    /// Clock frequency, Hz.
    pub clock_hz: f64,
}

impl EnergyBreakdown {
    /// Runtime per image in microseconds.
    pub fn runtime_us(&self) -> f64 {
        self.cycles.total() as f64 / self.clock_hz * 1e6
    }

    /// Energy per image in microjoules (`power × runtime`).
    pub fn total_uj(&self) -> f64 {
        // mW × µs = nJ; /1000 → µJ.
        self.power_mw * self.runtime_us() / 1e3
    }

    /// Energy saving relative to another (baseline) breakdown, percent.
    pub fn saving_vs(&self, baseline: &EnergyBreakdown) -> f64 {
        (1.0 - self.total_uj() / baseline.total_uj()) * 100.0
    }
}

impl AcceleratorDesign {
    /// Energy to infer one image of `workload` on this design.
    pub fn energy_per_image(&self, workload: &Workload) -> EnergyBreakdown {
        let cycles = workload_cycles(workload, self.config(), self.pipeline_stages());
        let out = EnergyBreakdown {
            cycles,
            power_mw: self.synthesize().power_mw(),
            clock_hz: self.config().clock_hz,
        };
        if qnn_trace::enabled() {
            // Cycle-stage attribution: where an image's runtime goes, and
            // the energy each stage class accounts for (power × stage
            // share of runtime) — the Figure 3-style breakdown.
            let c = &out.cycles;
            qnn_trace::counter!("accel.cycles.compute", c.compute());
            qnn_trace::counter!("accel.cycles.dma_stall", c.dma_stall());
            let fill: u64 = c.layers.iter().map(|l| l.fill).sum();
            qnn_trace::counter!("accel.cycles.fill", fill);
            let total = c.total().max(1) as f64;
            let uj = out.total_uj();
            qnn_trace::gauge!("accel.energy.total_uj", uj);
            qnn_trace::gauge!("accel.energy.compute_uj", uj * c.compute() as f64 / total);
            qnn_trace::gauge!(
                "accel.energy.dma_stall_uj",
                uj * c.dma_stall() as f64 / total
            );
            qnn_trace::gauge!("accel.energy.fill_uj", uj * fill as f64 / total);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_nn::zoo;
    use qnn_quant::Precision;

    #[test]
    fn energy_is_power_times_time() {
        let d = AcceleratorDesign::new(Precision::fixed(16, 16));
        let wl = zoo::lenet().workload().unwrap();
        let e = d.energy_per_image(&wl);
        let expect = e.power_mw * (e.cycles.total() as f64 / 250.0e6) * 1e3; // mW·s → µJ
        assert!((e.total_uj() - expect).abs() < 1e-9);
    }

    #[test]
    fn runtime_nearly_constant_across_precisions() {
        // Paper: "the processing time per image changes very marginally
        // among different precisions".
        let wl = zoo::alex().workload().unwrap();
        let runtimes: Vec<f64> = Precision::paper_sweep()
            .into_iter()
            .map(|p| AcceleratorDesign::new(p).energy_per_image(&wl).runtime_us())
            .collect();
        let min = runtimes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = runtimes.iter().cloned().fold(0.0, f64::max);
        assert!(
            (max - min) / max < 0.01,
            "runtimes vary too much: {runtimes:?}"
        );
    }

    #[test]
    fn energy_savings_track_power_savings() {
        let wl = zoo::convnet().workload().unwrap();
        let base = AcceleratorDesign::new(Precision::float32());
        let e_base = base.energy_per_image(&wl);
        for p in [
            Precision::fixed(16, 16),
            Precision::fixed(8, 8),
            Precision::binary(),
        ] {
            let d = AcceleratorDesign::new(p);
            let e = d.energy_per_image(&wl);
            let e_saving = e.saving_vs(&e_base);
            let p_saving = d.report().power_saving_pct;
            assert!(
                (e_saving - p_saving).abs() < 2.0,
                "{}: energy {e_saving:.1}% vs power {p_saving:.1}%",
                p.label()
            );
        }
    }
}
