use qnn_hw::{tech65, Category, DesignReport};
use qnn_quant::{Precision, Scheme};

use crate::config::AcceleratorConfig;

/// The per-precision variant of the NFU's first pipeline stage
/// (Figure 2a/b/c of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightBlock {
    /// Fixed-point array multiplier, `w × i` bits.
    FixedMultiplier,
    /// IEEE-754 binary32 multiplier.
    FloatMultiplier,
    /// Barrel shifter (power-of-two weights are shift amounts).
    BarrelShifter,
    /// Sign-controlled negate (binary weights); merges WB into the adder
    /// tree stage, shortening the pipeline to two stages.
    SignNegate,
}

/// Aggregate design metrics for one precision — one row of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignMetrics {
    /// Total cell area, mm².
    pub area_mm2: f64,
    /// Total power at 250 MHz, mW.
    pub power_mw: f64,
    /// Area saving vs. the float32 design, percent.
    pub area_saving_pct: f64,
    /// Power saving vs. the float32 design, percent.
    pub power_saving_pct: f64,
}

/// A fully-specified accelerator instance: config × precision.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorDesign {
    config: AcceleratorConfig,
    precision: Precision,
    /// Explicit accumulator width, overriding the guard-bit formula of
    /// [`accumulator_bits`](Self::accumulator_bits). `None` keeps the
    /// conservative full-product width.
    acc_override: Option<u32>,
}

impl AcceleratorDesign {
    /// An accelerator at the paper's default configuration.
    pub fn new(precision: Precision) -> Self {
        Self::with_config(precision, AcceleratorConfig::default())
    }

    /// An accelerator with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (see
    /// [`AcceleratorConfig::validate`]).
    pub fn with_config(precision: Precision, config: AcceleratorConfig) -> Self {
        config.validate();
        AcceleratorDesign {
            config,
            precision,
            acc_override: None,
        }
    }

    /// Narrows (or widens) the accumulator datapath to an explicit
    /// width. The adder trees, per-stage accumulator registers, and the
    /// clock tree over them all scale with this width, so a certified
    /// narrow accumulator (see
    /// `qnn_quant::packed::dot_exact_narrow_acc`) buys real area and
    /// power — the third knob the tuner trades alongside weight and
    /// input precision.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2` — one bit cannot hold a signed sum.
    pub fn with_accumulator_bits(mut self, bits: u32) -> Self {
        assert!(bits >= 2, "accumulator width must be at least 2 bits");
        self.acc_override = Some(bits);
        self
    }

    /// The structural configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The numeric precision this instance is synthesized for.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Which weight-block variant the precision selects.
    pub fn weight_block(&self) -> WeightBlock {
        match self.precision.weights() {
            Scheme::Float32 | Scheme::Minifloat { .. } => WeightBlock::FloatMultiplier,
            Scheme::Fixed { .. } => WeightBlock::FixedMultiplier,
            Scheme::PowerOfTwo { .. } => WeightBlock::BarrelShifter,
            Scheme::Binary => WeightBlock::SignNegate,
        }
    }

    /// NFU pipeline depth: three stages (WB, adder tree, nonlinearity),
    /// except binary where WB merges into the adder tree (paper §IV-A).
    pub fn pipeline_stages(&self) -> usize {
        match self.weight_block() {
            WeightBlock::SignNegate => 2,
            _ => 3,
        }
    }

    /// Accumulator width: full product width plus `log2(Tn·Ti)` guard bits
    /// so the adder tree never overflows (the wide accumulation that lets
    /// biases stay unquantized) — unless narrowed through
    /// [`with_accumulator_bits`](Self::with_accumulator_bits).
    pub fn accumulator_bits(&self) -> u32 {
        if let Some(bits) = self.acc_override {
            return bits;
        }
        let w = self.precision.weight_bits();
        let i = self.precision.input_bits();
        w + i + (self.config.macs_per_cycle() as f64).log2().ceil() as u32
    }

    /// Synthesizes the component list — the moral equivalent of running
    /// the paper's Design Compiler flow on this configuration.
    pub fn synthesize(&self) -> DesignReport {
        let c = &self.config;
        let w = self.precision.weight_bits() as u64;
        let i = self.precision.input_bits() as u64;
        let n_mult = c.macs_per_cycle();
        let acc = self.accumulator_bits();
        let mut d = DesignReport::new(self.precision.label());

        // Buffer subsystems: SB (weights), Bin (inputs), Bout (outputs).
        let sb_row = (c.neurons * c.synapses) as u64 * w;
        d.push(tech65::sram(
            "SB",
            c.sb_entries as u64 * sb_row,
            sb_row,
            w as u32,
        ));
        let bin_row = c.synapses as u64 * i;
        d.push(tech65::sram(
            "Bin",
            c.bin_entries as u64 * bin_row,
            bin_row,
            i as u32,
        ));
        let bout_row = c.neurons as u64 * i;
        d.push(tech65::sram(
            "Bout",
            c.bout_entries as u64 * bout_row,
            bout_row,
            i as u32,
        ));

        // NFU stage 1: weight blocks.
        match self.weight_block() {
            WeightBlock::FixedMultiplier => {
                d.push_array(tech65::fixed_multiplier(w as u32, i as u32), n_mult);
            }
            WeightBlock::FloatMultiplier => match self.precision.weights() {
                Scheme::Minifloat { exp_bits, man_bits } => {
                    d.push_array(tech65::minifloat_multiplier(exp_bits, man_bits), n_mult);
                }
                _ => d.push_array(tech65::float_multiplier(), n_mult),
            },
            WeightBlock::BarrelShifter => {
                // Shift levels cover the exponent window (2^(w-1)-1 codes).
                let levels = (self.precision.weight_bits() - 1).max(1);
                d.push_array(tech65::barrel_shifter(i as u32, levels), n_mult);
            }
            WeightBlock::SignNegate => {
                d.push_array(tech65::sign_negate(i as u32), n_mult);
            }
        }

        // NFU stage 2: adder trees (Tn trees of Ti-1 adders).
        let n_adders = c.neurons * (c.synapses - 1);
        match self.precision.weights() {
            Scheme::Float32 => {
                d.push_array(tech65::float_adder(), n_adders);
            }
            Scheme::Minifloat { exp_bits, man_bits } => {
                d.push_array(tech65::minifloat_adder(exp_bits, man_bits), n_adders);
            }
            _ => {
                d.push_array(tech65::fixed_adder(acc), n_adders);
            }
        }

        // NFU stage 3: nonlinearity units.
        d.push_array(tech65::nonlinearity(i as u32), c.neurons);

        // Pipeline registers: operand latches for every multiplier plus
        // per-stage accumulator registers.
        let operand_regs = n_mult as u64 * (w + i);
        let acc_regs = (self.pipeline_stages() * c.neurons) as u64 * acc as u64;
        let reg_bits = operand_regs + acc_regs;
        d.push(tech65::register_bank("pipeline-regs", reg_bits));

        // Control/DMA and the clock tree over all sequential state.
        d.push(tech65::control());
        d.push(tech65::clock_tree(reg_bits));
        d
    }

    /// Table III row for this design: totals plus savings vs. float32 at
    /// the same configuration.
    pub fn report(&self) -> DesignMetrics {
        let this = self.synthesize();
        let base = AcceleratorDesign::with_config(Precision::float32(), self.config).synthesize();
        let area = this.area_mm2();
        let power = this.power_mw();
        DesignMetrics {
            area_mm2: area,
            power_mw: power,
            area_saving_pct: (1.0 - area / base.area_mm2()) * 100.0,
            power_saving_pct: (1.0 - power / base.power_mw()) * 100.0,
        }
    }

    /// Fraction of power consumed by the buffer subsystems (SRAM macros) —
    /// the paper's "75–93 %" observation.
    pub fn buffer_power_fraction(&self) -> f64 {
        self.synthesize().power_fraction(Category::Memory)
    }

    /// Fraction of area in the buffer subsystems — the paper's "76–96 %".
    pub fn buffer_area_fraction(&self) -> f64 {
        self.synthesize().area_fraction(Category::Memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_block_variants() {
        let wb = |p: Precision| AcceleratorDesign::new(p).weight_block();
        assert_eq!(wb(Precision::float32()), WeightBlock::FloatMultiplier);
        assert_eq!(wb(Precision::fixed(8, 8)), WeightBlock::FixedMultiplier);
        assert_eq!(wb(Precision::power_of_two()), WeightBlock::BarrelShifter);
        assert_eq!(wb(Precision::binary()), WeightBlock::SignNegate);
    }

    #[test]
    fn binary_merges_pipeline() {
        assert_eq!(
            AcceleratorDesign::new(Precision::binary()).pipeline_stages(),
            2
        );
        assert_eq!(
            AcceleratorDesign::new(Precision::fixed(8, 8)).pipeline_stages(),
            3
        );
    }

    #[test]
    fn accumulator_is_wider_than_product() {
        let d = AcceleratorDesign::new(Precision::fixed(16, 16));
        assert_eq!(d.accumulator_bits(), 16 + 16 + 8);
    }

    #[test]
    fn accumulator_override_shrinks_power_and_area() {
        let full = AcceleratorDesign::new(Precision::fixed(8, 8));
        let narrow = AcceleratorDesign::new(Precision::fixed(8, 8)).with_accumulator_bits(16);
        assert_eq!(full.accumulator_bits(), 8 + 8 + 8);
        assert_eq!(narrow.accumulator_bits(), 16);
        let (f, n) = (full.synthesize(), narrow.synthesize());
        assert!(n.power_mw() < f.power_mw(), "narrow acc must cut power");
        assert!(n.area_mm2() < f.area_mm2(), "narrow acc must cut area");
    }

    #[test]
    #[should_panic(expected = "at least 2 bits")]
    fn one_bit_accumulator_is_rejected() {
        let _ = AcceleratorDesign::new(Precision::binary()).with_accumulator_bits(1);
    }

    #[test]
    fn area_orders_by_precision() {
        let area = |p: Precision| AcceleratorDesign::new(p).report().area_mm2;
        let fp = area(Precision::float32());
        let f32b = area(Precision::fixed(32, 32));
        let f16 = area(Precision::fixed(16, 16));
        let f8 = area(Precision::fixed(8, 8));
        let f4 = area(Precision::fixed(4, 4));
        let p2 = area(Precision::power_of_two());
        let bin = area(Precision::binary());
        assert!(fp > f32b && f32b > f16 && f16 > f8 && f8 > f4);
        assert!(f8 > p2 && p2 > f4 && f4 > bin, "{f8} {p2} {f4} {bin}");
    }

    #[test]
    fn float_baseline_has_zero_savings() {
        let r = AcceleratorDesign::new(Precision::float32()).report();
        assert!(r.area_saving_pct.abs() < 1e-9);
        assert!(r.power_saving_pct.abs() < 1e-9);
    }

    #[test]
    fn buffers_dominate() {
        for p in Precision::paper_sweep() {
            let d = AcceleratorDesign::new(p);
            let fa = d.buffer_area_fraction();
            let fp = d.buffer_power_fraction();
            assert!((0.75..=0.97).contains(&fa), "{}: area frac {fa}", p.label());
            assert!(
                (0.55..=0.95).contains(&fp),
                "{}: power frac {fp}",
                p.label()
            );
        }
    }
}
