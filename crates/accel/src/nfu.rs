//! Bit-accurate functional simulation of the NFU datapath.
//!
//! The rest of the workspace simulates quantization Ristretto-style: values
//! are snapped onto the format's grid but arithmetic stays in f32. This
//! module is the check that that shortcut is sound — it executes one
//! neuron's weighted sum exactly as the hardware would:
//!
//! * **fixed point**: operands as two's-complement integers, integer
//!   multiplies, accumulation in a wide integer register (the adder tree's
//!   guard bits), then requantization of the result;
//! * **power of two**: weights as (sign, exponent-code), multiplies as
//!   arithmetic shifts of the input's raw integer;
//! * **binary**: sign-controlled negation.
//!
//! `paper §V-A: "We confirm the functionality of our hardware
//! implementation with extensive simulations."` — these are those
//! simulations, plus property tests pinning the integer and f32 paths to
//! each other.

use qnn_quant::{Binary, Fixed, PowerOfTwo};

/// Exact fixed-point dot product: inputs and weights are encoded to their
/// raw integers, multiplied and accumulated at full integer width, and the
/// result is returned as the real value the accumulator holds.
///
/// The accumulator never rounds: a `w×i`-bit product stream of 256 terms
/// fits comfortably in `i128` for every supported format, mirroring the
/// guard-bit-wide adder tree of the modelled NFU.
///
/// # Panics
///
/// Panics if the slices differ in length (a hardware impossibility: the
/// NFU processes matched operand vectors).
pub fn fixed_dot_exact(inputs: &[f32], weights: &[f32], in_fmt: Fixed, w_fmt: Fixed) -> f64 {
    assert_eq!(
        inputs.len(),
        weights.len(),
        "operand vectors must be the same length"
    );
    let mut acc: i128 = 0;
    for (&x, &w) in inputs.iter().zip(weights) {
        let xi = in_fmt.encode(x) as i128;
        let wi = w_fmt.encode(w) as i128;
        acc += xi * wi;
    }
    // The accumulator's LSB weight is the product of the two steps.
    let scale = (in_fmt.step() as f64) * (w_fmt.step() as f64);
    acc as f64 * scale
}

/// Exact power-of-two dot product: each weight is a shift of the input's
/// raw fixed-point integer. Left shifts occur for positive exponents,
/// arithmetic right shifts (toward −∞, as hardware shifters do) for
/// negative ones — so the result can differ from the f32 reference by the
/// truncation the right shift performs; [`pow2_dot_exact`] therefore
/// accumulates in fractional LSBs to stay exact.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn pow2_dot_exact(inputs: &[f32], weights: &[f32], in_fmt: Fixed, w_fmt: PowerOfTwo) -> f64 {
    assert_eq!(
        inputs.len(),
        weights.len(),
        "operand vectors must be the same length"
    );
    // Accumulate at a resolution fine enough for the most negative shift:
    // LSB = input step × 2^min_exp.
    let min_exp = w_fmt.min_exp();
    let mut acc: i128 = 0;
    for (&x, &w) in inputs.iter().zip(weights) {
        let xi = in_fmt.encode(x) as i128;
        let (sign, code) = w_fmt.encode(w);
        if code == 0 {
            continue;
        }
        let e = min_exp + code as i32 - 1;
        // Shift relative to the finest exponent: always a left shift in
        // the accumulator's fractional domain, hence exact.
        let shifted = xi << (e - min_exp);
        acc += if sign { -shifted } else { shifted };
    }
    acc as f64 * in_fmt.step() as f64 * (min_exp as f64).exp2()
}

/// Exact binary dot product: sign-controlled add/subtract of the input's
/// raw integers, scaled once at the end (the hardware folds the scale into
/// the nonlinearity stage).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn binary_dot_exact(inputs: &[f32], weights: &[f32], in_fmt: Fixed, w_fmt: Binary) -> f64 {
    assert_eq!(
        inputs.len(),
        weights.len(),
        "operand vectors must be the same length"
    );
    let mut acc: i128 = 0;
    for (&x, &w) in inputs.iter().zip(weights) {
        let xi = in_fmt.encode(x) as i128;
        acc += if w_fmt.encode(w) { -xi } else { xi };
    }
    acc as f64 * in_fmt.step() as f64 * w_fmt.scale() as f64
}

/// The f32 reference both the training stack and the exact datapaths must
/// agree with: quantize operands onto their grids, multiply-accumulate in
/// f64 (standing in for the never-rounding wide accumulator).
pub fn reference_dot(
    inputs: &[f32],
    weights: &[f32],
    quantize_in: impl Fn(f32) -> f32,
    quantize_w: impl Fn(f32) -> f32,
) -> f64 {
    inputs
        .iter()
        .zip(weights)
        .map(|(&x, &w)| quantize_in(x) as f64 * quantize_w(w) as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_quant::Quantizer;

    fn vecs(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let xs = (0..n).map(|_| next() * 2.0).collect();
        let ws = (0..n).map(|_| next()).collect();
        (xs, ws)
    }

    #[test]
    fn fixed_datapath_matches_f32_reference_exactly() {
        let in_fmt = Fixed::new(16, 10).unwrap();
        let w_fmt = Fixed::new(8, 6).unwrap();
        let (xs, ws) = vecs(256, 42);
        let exact = fixed_dot_exact(&xs, &ws, in_fmt, w_fmt);
        let reference = reference_dot(
            &xs,
            &ws,
            |x| in_fmt.quantize_value(x),
            |w| w_fmt.quantize_value(w),
        );
        // Both paths are exact in their domains; they must agree to f64
        // rounding noise.
        assert!(
            (exact - reference).abs() < 1e-6,
            "exact {exact} vs reference {reference}"
        );
    }

    #[test]
    fn pow2_datapath_matches_f32_reference() {
        let in_fmt = Fixed::new(16, 10).unwrap();
        let w_fmt = PowerOfTwo::new(6, 0).unwrap();
        let (xs, ws) = vecs(256, 7);
        let exact = pow2_dot_exact(&xs, &ws, in_fmt, w_fmt);
        let reference = reference_dot(
            &xs,
            &ws,
            |x| in_fmt.quantize_value(x),
            |w| w_fmt.quantize_value(w),
        );
        assert!(
            (exact - reference).abs() < 1e-4,
            "exact {exact} vs reference {reference}"
        );
    }

    #[test]
    fn binary_datapath_matches_f32_reference() {
        let in_fmt = Fixed::new(16, 12).unwrap();
        let w_fmt = Binary::with_scale(0.25).unwrap();
        let (xs, ws) = vecs(256, 3);
        let exact = binary_dot_exact(&xs, &ws, in_fmt, w_fmt);
        let reference = reference_dot(
            &xs,
            &ws,
            |x| in_fmt.quantize_value(x),
            |w| w_fmt.quantize_value(w),
        );
        assert!(
            (exact - reference).abs() < 1e-5,
            "exact {exact} vs reference {reference}"
        );
    }

    #[test]
    fn accumulator_cannot_overflow_at_nfu_width() {
        // Worst case: 256 products of saturated 32×32-bit operands.
        let in_fmt = Fixed::new(32, 0).unwrap();
        let w_fmt = Fixed::new(32, 0).unwrap();
        let xs = vec![2.0e9f32; 256]; // saturates to i32::MAX-ish raw codes
        let ws = vec![-2.0e9f32; 256];
        let exact = fixed_dot_exact(&xs, &ws, in_fmt, w_fmt);
        assert!(exact.is_finite());
        // |sum| = 256 × (2^31-1) × 2^31 < 2^71 « i128::MAX.
        assert!(exact < 0.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_operands_panic() {
        let f = Fixed::new(8, 4).unwrap();
        fixed_dot_exact(&[1.0], &[1.0, 2.0], f, f);
    }
}
