/// Structural parameters of the modelled accelerator.
///
/// Defaults reproduce the paper's instance: a 16×16 tile at 250 MHz with
/// buffer depths chosen during model calibration (see `qnn-hw::tech65`)
/// such that the published Table III area/power rows come out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Parallel neuron units (Tn).
    pub neurons: usize,
    /// Synapses per neuron per cycle (Ti).
    pub synapses: usize,
    /// Weight buffer (SB) depth, in rows of `neurons × synapses` values.
    pub sb_entries: usize,
    /// Input buffer (Bin) depth, in rows of `synapses` values.
    pub bin_entries: usize,
    /// Output buffer (Bout) depth, in rows of `neurons` values.
    pub bout_entries: usize,
    /// DMA throughput in *values* per cycle (value-indexed engine, so the
    /// per-image runtime is precision-independent, as the paper observes).
    pub dma_values_per_cycle: usize,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            neurons: 16,
            synapses: 16,
            sb_entries: 1024,
            bin_entries: 1024,
            bout_entries: 1024,
            dma_values_per_cycle: 128,
            clock_hz: 250.0e6,
        }
    }
}

impl AcceleratorConfig {
    /// MACs the NFU retires per cycle (`Tn × Ti`).
    pub fn macs_per_cycle(&self) -> usize {
        self.neurons * self.synapses
    }

    /// Validates structural sanity.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the clock is non-positive — a
    /// degenerate accelerator is always a caller bug.
    pub fn validate(&self) {
        assert!(self.neurons > 0 && self.synapses > 0, "empty NFU");
        assert!(
            self.sb_entries > 0 && self.bin_entries > 0 && self.bout_entries > 0,
            "empty buffers"
        );
        assert!(self.dma_values_per_cycle > 0, "zero DMA throughput");
        assert!(self.clock_hz > 0.0, "non-positive clock");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_instance() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.neurons, 16);
        assert_eq!(c.synapses, 16);
        assert_eq!(c.macs_per_cycle(), 256);
        assert_eq!(c.clock_hz, 250.0e6);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "empty NFU")]
    fn rejects_zero_neurons() {
        AcceleratorConfig {
            neurons: 0,
            ..AcceleratorConfig::default()
        }
        .validate();
    }
}
