//! The paper's published hardware numbers (Table III and the Table IV/V
//! energy columns), kept as reference data so tests and benches can print
//! paper-vs-model side by side.

use qnn_quant::Precision;

/// One row of Table III: design metrics per precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// The precision the row describes.
    pub precision: Precision,
    /// Published design area, mm².
    pub area_mm2: f64,
    /// Published power, mW.
    pub power_mw: f64,
    /// Published area saving vs. float, percent.
    pub area_saving_pct: f64,
    /// Published power saving vs. float, percent.
    pub power_saving_pct: f64,
}

/// Table III, verbatim.
pub fn table3() -> Vec<Table3Row> {
    vec![
        Table3Row {
            precision: Precision::float32(),
            area_mm2: 16.74,
            power_mw: 1379.60,
            area_saving_pct: 0.0,
            power_saving_pct: 0.0,
        },
        Table3Row {
            precision: Precision::fixed(32, 32),
            area_mm2: 14.13,
            power_mw: 1213.40,
            area_saving_pct: 15.56,
            power_saving_pct: 12.05,
        },
        Table3Row {
            precision: Precision::fixed(16, 16),
            area_mm2: 6.88,
            power_mw: 574.75,
            area_saving_pct: 58.92,
            power_saving_pct: 58.34,
        },
        Table3Row {
            precision: Precision::fixed(8, 8),
            area_mm2: 3.36,
            power_mw: 219.87,
            area_saving_pct: 79.94,
            power_saving_pct: 84.06,
        },
        Table3Row {
            precision: Precision::fixed(4, 4),
            area_mm2: 1.66,
            power_mw: 111.17,
            area_saving_pct: 90.07,
            power_saving_pct: 91.94,
        },
        Table3Row {
            precision: Precision::power_of_two(),
            area_mm2: 3.05,
            power_mw: 209.91,
            area_saving_pct: 81.78,
            power_saving_pct: 84.78,
        },
        Table3Row {
            precision: Precision::binary(),
            area_mm2: 1.21,
            power_mw: 95.36,
            area_saving_pct: 92.73,
            power_saving_pct: 93.08,
        },
    ]
}

/// Published per-image energies (µJ) from Table IV, `(precision label,
/// MNIST/LeNet, SVHN/ConvNet)`; `None` marks the paper's NA
/// (failed-to-converge) cells.
pub fn table4_energies() -> Vec<(Precision, Option<f64>, Option<f64>)> {
    vec![
        (Precision::float32(), Some(60.74), Some(754.18)),
        (Precision::fixed(32, 32), Some(52.93), Some(663.01)),
        (Precision::fixed(16, 16), Some(24.60), Some(314.05)),
        (Precision::fixed(8, 8), Some(8.86), Some(120.14)),
        (Precision::fixed(4, 4), Some(4.31), None),
        (Precision::power_of_two(), Some(8.42), Some(114.70)),
        (Precision::binary(), Some(3.56), Some(52.11)),
    ]
}

/// Published CIFAR-10 energies (µJ) from Table V for the base ALEX
/// network.
pub fn table5_alex_energies() -> Vec<(Precision, f64)> {
    vec![
        (Precision::float32(), 335.68),
        (Precision::fixed(32, 32), 293.90),
        (Precision::fixed(16, 16), 136.61),
        (Precision::fixed(8, 8), 49.22),
        (Precision::power_of_two(), 46.77),
        (Precision::binary(), 19.79),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::AcceleratorDesign;

    /// The headline calibration test: the component model must reproduce
    /// every published Table III row within tolerance.
    #[test]
    fn model_matches_table3() {
        for row in table3() {
            let m = AcceleratorDesign::new(row.precision).report();
            let area_err = (m.area_mm2 - row.area_mm2).abs() / row.area_mm2;
            let power_err = (m.power_mw - row.power_mw).abs() / row.power_mw;
            assert!(
                area_err < 0.08,
                "{}: area {:.2} vs paper {:.2} ({:.1}% off)",
                row.precision.label(),
                m.area_mm2,
                row.area_mm2,
                area_err * 100.0
            );
            assert!(
                power_err < 0.13,
                "{}: power {:.1} vs paper {:.1} ({:.1}% off)",
                row.precision.label(),
                m.power_mw,
                row.power_mw,
                power_err * 100.0
            );
        }
    }

    /// Savings percentages (the paper's actual claim) must track closely —
    /// they are ratios, so model bias largely cancels.
    #[test]
    fn savings_match_table3() {
        for row in table3() {
            let m = AcceleratorDesign::new(row.precision).report();
            assert!(
                (m.power_saving_pct - row.power_saving_pct).abs() < 6.0,
                "{}: power saving {:.1}% vs paper {:.1}%",
                row.precision.label(),
                m.power_saving_pct,
                row.power_saving_pct
            );
            assert!(
                (m.area_saving_pct - row.area_saving_pct).abs() < 6.0,
                "{}: area saving {:.1}% vs paper {:.1}%",
                row.precision.label(),
                m.area_saving_pct,
                row.area_saving_pct
            );
        }
    }

    /// Per-image energies of Table IV/V, within a coarser band (the cycle
    /// model is first-order).
    #[test]
    fn energies_match_tables_4_and_5() {
        use qnn_nn::zoo;
        let cases: Vec<(qnn_nn::arch::NetworkSpec, Vec<(Precision, f64)>)> = vec![
            (
                zoo::lenet(),
                table4_energies()
                    .into_iter()
                    .filter_map(|(p, m, _)| m.map(|e| (p, e)))
                    .collect(),
            ),
            (
                zoo::convnet(),
                table4_energies()
                    .into_iter()
                    .filter_map(|(p, _, s)| s.map(|e| (p, e)))
                    .collect(),
            ),
            (zoo::alex(), table5_alex_energies()),
        ];
        for (spec, rows) in cases {
            let wl = spec.workload().unwrap();
            for (p, paper_uj) in rows {
                let e = AcceleratorDesign::new(p).energy_per_image(&wl).total_uj();
                let err = (e - paper_uj).abs() / paper_uj;
                assert!(
                    err < 0.35,
                    "{} on {}: {:.1} µJ vs paper {:.1} µJ ({:.0}% off)",
                    p.label(),
                    spec.name(),
                    e,
                    paper_uj,
                    err * 100.0
                );
            }
        }
    }
}
