//! Cycle-approximate schedule of a network on the tile.
//!
//! The NFU retires `Tn × Ti` MACs per cycle; a layer with `N` output
//! neurons of fan-in `F` takes `⌈N/Tn⌉ × ⌈F/Ti⌉` compute cycles (partial
//! tiles waste lanes, exactly as in the real dataflow). Weights stream
//! into SB over a value-indexed DMA engine at
//! [`dma_values_per_cycle`](crate::AcceleratorConfig::dma_values_per_cycle);
//! when a layer's weight streaming outruns its compute (the fully-connected
//! case), the difference shows up as stall cycles. Because the DMA is
//! value-indexed, runtime is precision-independent — matching the paper's
//! observation that "the processing time per image changes very marginally
//! among different precisions". Pooling passes data through the NFU's
//! third stage at `Tn` values per cycle; ReLU is pipelined for free.

use qnn_nn::workload::{LayerWork, WorkKind, Workload};

use crate::config::AcceleratorConfig;

/// Cycle accounting for one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerCycles {
    /// Layer display name.
    pub name: String,
    /// NFU compute cycles.
    pub compute: u64,
    /// DMA stall cycles (weight streaming beyond what compute overlaps).
    pub dma_stall: u64,
    /// Pipeline fill cycles.
    pub fill: u64,
}

impl LayerCycles {
    /// Total cycles charged to this layer.
    pub fn total(&self) -> u64 {
        self.compute + self.dma_stall + self.fill
    }
}

/// Whole-network cycle accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CyclesBreakdown {
    /// Per-layer records, in execution order.
    pub layers: Vec<LayerCycles>,
}

impl CyclesBreakdown {
    /// Total cycles per image.
    pub fn total(&self) -> u64 {
        self.layers.iter().map(|l| l.total()).sum()
    }

    /// Total compute (non-stall) cycles.
    pub fn compute(&self) -> u64 {
        self.layers.iter().map(|l| l.compute).sum()
    }

    /// Total DMA stall cycles.
    pub fn dma_stall(&self) -> u64 {
        self.layers.iter().map(|l| l.dma_stall).sum()
    }
}

fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Schedules one layer.
///
/// `pipeline_stages` is the NFU depth (3, or 2 for the merged binary
/// pipeline).
pub fn layer_cycles(
    work: &LayerWork,
    config: &AcceleratorConfig,
    pipeline_stages: usize,
) -> LayerCycles {
    let tn = config.neurons as u64;
    let ti = config.synapses as u64;
    let compute = match work.kind {
        WorkKind::Conv | WorkKind::Dense => {
            div_ceil(work.neurons, tn) * div_ceil(work.synapses_per_neuron.max(1), ti)
        }
        WorkKind::Pool => div_ceil(work.neurons, tn),
        WorkKind::Activation => 0,
    };
    // Weight streaming: convolution weights are loaded once per layer and
    // reused across output pixels; dense weights are single-use, so their
    // streaming is the classic FC bandwidth wall.
    let dma_cycles = match work.kind {
        WorkKind::Conv | WorkKind::Dense => {
            div_ceil(work.weights, config.dma_values_per_cycle as u64)
        }
        _ => 0,
    };
    let dma_stall = dma_cycles.saturating_sub(compute);
    let fill = if compute > 0 {
        pipeline_stages as u64
    } else {
        0
    };
    LayerCycles {
        name: work.name.clone(),
        compute,
        dma_stall,
        fill,
    }
}

/// Schedules a whole workload.
pub fn workload_cycles(
    workload: &Workload,
    config: &AcceleratorConfig,
    pipeline_stages: usize,
) -> CyclesBreakdown {
    CyclesBreakdown {
        layers: workload
            .layers
            .iter()
            .map(|l| layer_cycles(l, config, pipeline_stages))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_nn::zoo;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::default()
    }

    #[test]
    fn dense_layer_tiles_exactly() {
        let w = LayerWork {
            name: "fc".into(),
            kind: WorkKind::Dense,
            macs: 800 * 500,
            neurons: 500,
            synapses_per_neuron: 800,
            inputs: 800,
            weights: 400_500,
            outputs: 500,
        };
        let c = layer_cycles(&w, &cfg(), 3);
        // ⌈500/16⌉ × ⌈800/16⌉ = 32 × 50 = 1600.
        assert_eq!(c.compute, 1600);
        // 400,500 weights / 128 per cycle = 3129 > 1600 → stall 1529.
        assert_eq!(c.dma_stall, 3129 - 1600);
    }

    #[test]
    fn conv_layer_is_compute_bound() {
        let w = LayerWork {
            name: "conv".into(),
            kind: WorkKind::Conv,
            macs: 11_520 * 25,
            neurons: 11_520,
            synapses_per_neuron: 25,
            inputs: 784,
            weights: 520,
            outputs: 11_520,
        };
        let c = layer_cycles(&w, &cfg(), 3);
        assert_eq!(c.compute, 720 * 2);
        assert_eq!(c.dma_stall, 0);
    }

    #[test]
    fn pool_streams_at_tn_per_cycle() {
        let w = LayerWork {
            name: "pool".into(),
            kind: WorkKind::Pool,
            macs: 0,
            neurons: 2880,
            synapses_per_neuron: 0,
            inputs: 11_520,
            weights: 0,
            outputs: 2880,
        };
        let c = layer_cycles(&w, &cfg(), 3);
        assert_eq!(c.compute, 180);
        assert_eq!(c.dma_stall, 0);
    }

    #[test]
    fn relu_is_free() {
        let w = LayerWork {
            name: "relu".into(),
            kind: WorkKind::Activation,
            macs: 0,
            neurons: 100,
            synapses_per_neuron: 0,
            inputs: 100,
            weights: 0,
            outputs: 100,
        };
        let c = layer_cycles(&w, &cfg(), 3);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn lenet_runtime_near_paper() {
        // Paper Table IV: LeNet at float32 costs 60.74 µJ at 1379.6 mW →
        // 44.0 µs → ~11,000 cycles at 250 MHz. Our schedule should land in
        // the same regime (±25 %).
        let wl = zoo::lenet().workload().unwrap();
        let c = workload_cycles(&wl, &cfg(), 3);
        let cycles = c.total();
        assert!(
            (8_500..=13_500).contains(&cycles),
            "LeNet cycles {cycles} outside plausible window"
        );
    }

    #[test]
    fn binary_pipeline_shaves_fill_cycles() {
        let wl = zoo::lenet().workload().unwrap();
        let c3 = workload_cycles(&wl, &cfg(), 3).total();
        let c2 = workload_cycles(&wl, &cfg(), 2).total();
        assert!(c2 < c3);
        // but only marginally — runtime is dominated by compute.
        let rel = (c3 - c2) as f64 / c3 as f64;
        assert!(rel < 0.01);
    }
}
