#![warn(missing_docs)]

//! # qnn-accel — the DianNao-style tile accelerator model
//!
//! The paper (§IV-A, Figure 2) adopts a tile-based accelerator "similar to
//! DianNao": 16 neuron processing units of 16 synapses each (an NFU
//! computing 256 multiply-accumulates per cycle in three pipeline stages —
//! weight blocks, adder trees, nonlinearity), fed by three SRAM buffer
//! subsystems (input buffer `Bin`, weight buffer `SB`, output buffer
//! `Bout`) with DMA and control. The **weight block** is the only stage
//! that changes with precision:
//!
//! * floating point / fixed point → multipliers (Figure 2a),
//! * powers of two → barrel shifters (Figure 2b),
//! * binary → sign-controlled negate, and the WB + adder-tree stages merge
//!   into a two-stage NFU (Figure 2c).
//!
//! [`AcceleratorDesign`] assembles the component list from `qnn-hw` for a
//! given [`Precision`](qnn_quant::Precision) and reports area/power
//! ([`DesignMetrics`], reproducing Table III and Figure 3), and combines a
//! cycle-approximate schedule of a [`Workload`](qnn_nn::workload::Workload)
//! with that power to produce per-image energy ([`EnergyBreakdown`],
//! feeding Tables IV/V and Figure 4).
//!
//! ## Example
//!
//! ```
//! use qnn_accel::AcceleratorDesign;
//! use qnn_quant::Precision;
//! use qnn_nn::zoo;
//!
//! let fp = AcceleratorDesign::new(Precision::float32());
//! let q8 = AcceleratorDesign::new(Precision::fixed(8, 8));
//! assert!(q8.report().area_mm2 < fp.report().area_mm2 / 3.0);
//!
//! let wl = zoo::lenet().workload()?;
//! let e_fp = fp.energy_per_image(&wl).total_uj();
//! let e_q8 = q8.energy_per_image(&wl).total_uj();
//! assert!(e_q8 < e_fp / 4.0); // Table IV: 85.4 % saving at (8,8)
//! # Ok::<(), qnn_nn::NnError>(())
//! ```

mod config;
mod cycles;
mod design;
mod energy;

pub mod nfu;
pub mod paper;
pub mod sim;

pub use config::AcceleratorConfig;
pub use cycles::{layer_cycles, workload_cycles, CyclesBreakdown, LayerCycles};
pub use design::{AcceleratorDesign, DesignMetrics, WeightBlock};
pub use energy::EnergyBreakdown;
pub use sim::{SimFaults, SimOutput, SimPrecision, TileSimulator, ACC_BITS};
