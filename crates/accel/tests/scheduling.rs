//! Property tests for the cycle model, run as deterministic seeded loops
//! (≥256 cases each): the schedule may waste lanes on partial tiles but
//! must never beat the arithmetic lower bound, and it must respond
//! monotonically to more work.

use qnn_accel::{layer_cycles, AcceleratorConfig};
use qnn_nn::workload::{LayerWork, WorkKind};
use qnn_tensor::rng::{derive_seed, seeded, Rng};

const CASES: u64 = 256;

/// Runs `f` once per case with an independent child-stream RNG.
fn cases(suite_seed: u64, f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = seeded(derive_seed(suite_seed, case));
        f(&mut rng);
    }
}

fn work(kind: WorkKind, neurons: u64, fanin: u64) -> LayerWork {
    LayerWork {
        name: "probe".into(),
        kind,
        macs: neurons * fanin,
        neurons,
        synapses_per_neuron: fanin,
        inputs: fanin,
        weights: neurons * fanin,
        outputs: neurons,
    }
}

/// Compute cycles are bounded below by the ideal MACs/(Tn·Ti) and above
/// by the fully-padded tile count.
#[test]
fn compute_cycles_bracket_the_ideal() {
    cases(0x90, |rng| {
        let neurons = rng.gen_range(1u64..4096);
        let fanin = rng.gen_range(1u64..2048);
        let cfg = AcceleratorConfig::default();
        let c = layer_cycles(&work(WorkKind::Conv, neurons, fanin), &cfg, 3);
        let ideal = (neurons * fanin).div_ceil(256);
        let padded = neurons.div_ceil(16) * fanin.div_ceil(16);
        assert!(
            c.compute >= ideal,
            "compute {} < ideal {}",
            c.compute,
            ideal
        );
        assert_eq!(c.compute, padded);
        // Padding never exceeds one extra tile row/column each way.
        assert!(c.compute <= (neurons + 15).div_ceil(16) * (fanin + 15).div_ceil(16));
    });
}

/// More neurons never cost fewer cycles; more fan-in never costs fewer.
#[test]
fn cycles_monotone_in_work() {
    cases(0x91, |rng| {
        let neurons = rng.gen_range(1u64..2048);
        let fanin = rng.gen_range(1u64..1024);
        let dn = rng.gen_range(0u64..64);
        let df = rng.gen_range(0u64..64);
        let cfg = AcceleratorConfig::default();
        let base = layer_cycles(&work(WorkKind::Dense, neurons, fanin), &cfg, 3);
        let bigger = layer_cycles(&work(WorkKind::Dense, neurons + dn, fanin + df), &cfg, 3);
        assert!(bigger.compute >= base.compute);
        assert!(bigger.total() >= base.total() || dn + df == 0);
    });
}

/// Dense stalls appear exactly when weight streaming outruns compute.
#[test]
fn dense_stall_law() {
    cases(0x92, |rng| {
        let neurons = rng.gen_range(1u64..512);
        let fanin = rng.gen_range(1u64..4096);
        let cfg = AcceleratorConfig::default();
        let w = work(WorkKind::Dense, neurons, fanin);
        let c = layer_cycles(&w, &cfg, 3);
        let dma = w.weights.div_ceil(cfg.dma_values_per_cycle as u64);
        assert_eq!(c.dma_stall, dma.saturating_sub(c.compute));
    });
}

/// A wider DMA engine never increases total cycles.
#[test]
fn wider_dma_never_slower() {
    cases(0x93, |rng| {
        let neurons = rng.gen_range(1u64..512);
        let fanin = rng.gen_range(1u64..2048);
        let narrow = AcceleratorConfig {
            dma_values_per_cycle: 32,
            ..Default::default()
        };
        let wide = AcceleratorConfig {
            dma_values_per_cycle: 256,
            ..Default::default()
        };
        let w = work(WorkKind::Dense, neurons, fanin);
        let cn = layer_cycles(&w, &narrow, 3);
        let cw = layer_cycles(&w, &wide, 3);
        assert!(cw.total() <= cn.total());
    });
}

/// A bigger tile never increases compute cycles for the same work.
#[test]
fn bigger_tile_never_slower() {
    cases(0x94, |rng| {
        let neurons = rng.gen_range(1u64..1024);
        let fanin = rng.gen_range(1u64..1024);
        let small = AcceleratorConfig {
            neurons: 8,
            synapses: 8,
            ..Default::default()
        };
        let big = AcceleratorConfig {
            neurons: 32,
            synapses: 32,
            ..Default::default()
        };
        let w = work(WorkKind::Conv, neurons, fanin);
        assert!(layer_cycles(&w, &big, 3).compute <= layer_cycles(&w, &small, 3).compute);
    });
}
