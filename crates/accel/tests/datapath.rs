//! Property tests pinning the bit-accurate integer datapaths to the f32
//! fake-quantized reference over random formats and operand vectors —
//! the "extensive simulations" of the paper's §V-A.

use proptest::prelude::*;
use qnn_accel::nfu::{binary_dot_exact, fixed_dot_exact, pow2_dot_exact, reference_dot};
use qnn_quant::{Binary, Fixed, PowerOfTwo, Quantizer};

fn operands(n: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (
        proptest::collection::vec(-4.0f32..4.0, n),
        proptest::collection::vec(-1.0f32..1.0, n),
    )
}

proptest! {
    #[test]
    fn fixed_integer_path_equals_reference(
        (xs, ws) in operands(64),
        in_bits in 4u32..=16,
        in_frac in 0i32..12,
        w_bits in 2u32..=16,
        w_frac in 0i32..12,
    ) {
        let in_fmt = Fixed::new(in_bits, in_frac).unwrap();
        let w_fmt = Fixed::new(w_bits, w_frac).unwrap();
        let exact = fixed_dot_exact(&xs, &ws, in_fmt, w_fmt);
        let reference = reference_dot(&xs, &ws,
            |x| in_fmt.quantize_value(x), |w| w_fmt.quantize_value(w));
        prop_assert!((exact - reference).abs() < 1e-4 * (1.0 + reference.abs()),
            "exact {} vs reference {}", exact, reference);
    }

    #[test]
    fn pow2_shift_path_equals_reference(
        (xs, ws) in operands(64),
        w_bits in 3u32..=6,
        max_exp in -2i32..4,
    ) {
        let in_fmt = Fixed::new(16, 10).unwrap();
        let w_fmt = PowerOfTwo::new(w_bits, max_exp).unwrap();
        let exact = pow2_dot_exact(&xs, &ws, in_fmt, w_fmt);
        let reference = reference_dot(&xs, &ws,
            |x| in_fmt.quantize_value(x), |w| w_fmt.quantize_value(w));
        prop_assert!((exact - reference).abs() < 1e-3 * (1.0 + reference.abs()),
            "exact {} vs reference {}", exact, reference);
    }

    #[test]
    fn binary_negate_path_equals_reference(
        (xs, ws) in operands(64),
        scale in 0.01f32..2.0,
    ) {
        let in_fmt = Fixed::new(16, 10).unwrap();
        let w_fmt = Binary::with_scale(scale).unwrap();
        let exact = binary_dot_exact(&xs, &ws, in_fmt, w_fmt);
        let reference = reference_dot(&xs, &ws,
            |x| in_fmt.quantize_value(x), |w| w_fmt.quantize_value(w));
        prop_assert!((exact - reference).abs() < 1e-3 * (1.0 + reference.abs()),
            "exact {} vs reference {}", exact, reference);
    }

    /// The fixed-point path is *exactly* linear in weight sign flips —
    /// a structural property the hardware's two's-complement negate rests on.
    #[test]
    fn fixed_path_antisymmetric_in_weights((xs, ws) in operands(32)) {
        let f = Fixed::new(8, 4).unwrap();
        let pos = fixed_dot_exact(&xs, &ws, f, f);
        let neg_ws: Vec<f32> = ws.iter().map(|w| -w).collect();
        let neg = fixed_dot_exact(&xs, &neg_ws, f, f);
        // Saturation is asymmetric (−2^(n−1) has no positive mirror), so
        // allow one LSB of slack per element.
        let slack = 32.0 * (f.step() as f64) * (f.step() as f64) * 16.0;
        prop_assert!((pos + neg).abs() <= slack, "pos {} neg {}", pos, neg);
    }
}
