//! Property tests pinning the bit-accurate integer datapaths to the f32
//! fake-quantized reference over random formats and operand vectors —
//! the "extensive simulations" of the paper's §V-A. Run as deterministic
//! seeded loops (≥256 cases each).

use qnn_accel::nfu::{binary_dot_exact, fixed_dot_exact, pow2_dot_exact, reference_dot};
use qnn_quant::{Binary, Fixed, PowerOfTwo, Quantizer};
use qnn_tensor::rng::{derive_seed, seeded, Rng};

const CASES: u64 = 256;

/// Runs `f` once per case with an independent child-stream RNG.
fn cases(suite_seed: u64, f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = seeded(derive_seed(suite_seed, case));
        f(&mut rng);
    }
}

fn operands(n: usize, rng: &mut Rng) -> (Vec<f32>, Vec<f32>) {
    let xs = (0..n).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
    let ws = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    (xs, ws)
}

#[test]
fn fixed_integer_path_equals_reference() {
    cases(0x80, |rng| {
        let (xs, ws) = operands(64, rng);
        let in_fmt = Fixed::new(rng.gen_range(4u32..=16), rng.gen_range(0i32..12)).unwrap();
        let w_fmt = Fixed::new(rng.gen_range(2u32..=16), rng.gen_range(0i32..12)).unwrap();
        let exact = fixed_dot_exact(&xs, &ws, in_fmt, w_fmt);
        let reference = reference_dot(
            &xs,
            &ws,
            |x| in_fmt.quantize_value(x),
            |w| w_fmt.quantize_value(w),
        );
        assert!(
            (exact - reference).abs() < 1e-4 * (1.0 + reference.abs()),
            "exact {} vs reference {}",
            exact,
            reference
        );
    });
}

#[test]
fn pow2_shift_path_equals_reference() {
    cases(0x81, |rng| {
        let (xs, ws) = operands(64, rng);
        let in_fmt = Fixed::new(16, 10).unwrap();
        let w_fmt = PowerOfTwo::new(rng.gen_range(3u32..=6), rng.gen_range(-2i32..4)).unwrap();
        let exact = pow2_dot_exact(&xs, &ws, in_fmt, w_fmt);
        let reference = reference_dot(
            &xs,
            &ws,
            |x| in_fmt.quantize_value(x),
            |w| w_fmt.quantize_value(w),
        );
        assert!(
            (exact - reference).abs() < 1e-3 * (1.0 + reference.abs()),
            "exact {} vs reference {}",
            exact,
            reference
        );
    });
}

#[test]
fn binary_negate_path_equals_reference() {
    cases(0x82, |rng| {
        let (xs, ws) = operands(64, rng);
        let scale = rng.gen_range(0.01f32..2.0);
        let in_fmt = Fixed::new(16, 10).unwrap();
        let w_fmt = Binary::with_scale(scale).unwrap();
        let exact = binary_dot_exact(&xs, &ws, in_fmt, w_fmt);
        let reference = reference_dot(
            &xs,
            &ws,
            |x| in_fmt.quantize_value(x),
            |w| w_fmt.quantize_value(w),
        );
        assert!(
            (exact - reference).abs() < 1e-3 * (1.0 + reference.abs()),
            "exact {} vs reference {}",
            exact,
            reference
        );
    });
}

/// The fixed-point path is *exactly* linear in weight sign flips —
/// a structural property the hardware's two's-complement negate rests on.
#[test]
fn fixed_path_antisymmetric_in_weights() {
    cases(0x83, |rng| {
        let (xs, ws) = operands(32, rng);
        let f = Fixed::new(8, 4).unwrap();
        let pos = fixed_dot_exact(&xs, &ws, f, f);
        let neg_ws: Vec<f32> = ws.iter().map(|w| -w).collect();
        let neg = fixed_dot_exact(&xs, &neg_ws, f, f);
        // Saturation is asymmetric (−2^(n−1) has no positive mirror), so
        // allow one LSB of slack per element.
        let slack = 32.0 * (f.step() as f64) * (f.step() as f64) * 16.0;
        assert!((pos + neg).abs() <= slack, "pos {} neg {}", pos, neg);
    });
}
