//! End-to-end multi-layer simulation: a small CNN
//! (conv → ReLU → maxpool → dense) executed layer by layer on the
//! cycle-accurate tile simulator with integer arithmetic throughout, and
//! compared against the fake-quantized f32 pipeline built from
//! `qnn-tensor` primitives — the whole-network version of the paper's
//! "extensive simulations".

use qnn_accel::sim::{SimPrecision, TileSimulator};
use qnn_quant::{Fixed, Quantizer};
use qnn_tensor::conv::{conv2d, Geometry};
use qnn_tensor::pool::max_pool2d;
use qnn_tensor::{rng, Shape, Tensor};

struct TinyCnn {
    conv_w: Vec<f32>,
    conv_b: Vec<f32>,
    fc_w: Vec<f32>,
    fc_b: Vec<f32>,
}

fn tiny_cnn(seed: u64) -> TinyCnn {
    let mut r = rng::seeded(seed);
    let mut v = |n: usize, s: f32| -> Vec<f32> { (0..n).map(|_| r.gen_range(-s..s)).collect() };
    TinyCnn {
        conv_w: v(4 * 2 * 3 * 3, 0.5), // 4 out channels, 2 in, 3×3
        conv_b: v(4, 0.2),
        fc_w: v(10 * 4 * 4 * 4, 0.3), // 10 classes from 4×4×4
        fc_b: v(10, 0.2),
    }
}

#[test]
fn whole_network_integer_simulation_matches_f32_pipeline() {
    let in_fmt = Fixed::new(16, 10).unwrap();
    let w_fmt = Fixed::new(8, 6).unwrap();
    let sim = TileSimulator::with_default_tile(SimPrecision::Fixed {
        weights: w_fmt,
        inputs: in_fmt,
    });
    let net = tiny_cnn(99);
    let mut r = rng::seeded(7);
    let image: Vec<f32> = (0..2 * 8 * 8).map(|_| r.gen_range(0.0f32..1.0)).collect();

    // --- Simulated path: integer datapath, layer by layer. -----------------
    // conv 3×3 pad 1 (8×8 → 8×8), ReLU fused in the pipeline.
    let conv_out = sim.run_conv(
        &image,
        (2, 8, 8),
        &net.conv_w,
        4,
        3,
        1,
        1,
        &net.conv_b,
        true,
    );
    // maxpool 2×2 (8×8 → 4×4).
    let pool_out = sim.run_max_pool(&conv_out.outputs, (4, 8, 8), 2, 2);
    // dense 10.
    let fc_out = sim.run_dense(&pool_out.outputs, &net.fc_w, &net.fc_b, false);

    // --- Reference path: fake-quantized f32 via tensor primitives. ---------
    let q = |v: &[f32], f: Fixed| -> Vec<f32> { v.iter().map(|&x| f.quantize_value(x)).collect() };
    let x = Tensor::from_vec(Shape::d4(1, 2, 8, 8), q(&image, in_fmt)).unwrap();
    let cw = Tensor::from_vec(Shape::d4(4, 2, 3, 3), q(&net.conv_w, w_fmt)).unwrap();
    let cb = Tensor::from_vec(Shape::d1(4), net.conv_b.clone()).unwrap();
    let y = conv2d(&x, &cw, &cb, Geometry::square(3, 1, 1))
        .unwrap()
        .map(|v| in_fmt.quantize_value(v.max(0.0)));
    let p = max_pool2d(&y, Geometry::square(2, 2, 0)).unwrap().output;
    let flat = p.as_slice();
    let fw = q(&net.fc_w, w_fmt);
    let logits: Vec<f32> = (0..10)
        .map(|n| {
            let s: f64 = flat
                .iter()
                .enumerate()
                .map(|(k, &v)| v as f64 * fw[n * flat.len() + k] as f64)
                .sum();
            in_fmt.quantize_value((s + net.fc_b[n] as f64) as f32)
        })
        .collect();

    // --- Agreement. ---------------------------------------------------------
    assert_eq!(fc_out.outputs.len(), logits.len());
    for (i, (a, b)) in fc_out.outputs.iter().zip(&logits).enumerate() {
        assert!(
            (a - b).abs() <= 2.0 * in_fmt.step(),
            "logit {i}: sim {a} vs reference {b}"
        );
    }
    // And the class decision is identical.
    let argmax = |v: &[f32]| {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
    };
    assert_eq!(argmax(&fc_out.outputs), argmax(&logits));

    // Cycle accounting is additive and non-trivial at every stage.
    assert!(conv_out.cycles > 0 && pool_out.cycles > 0 && fc_out.cycles > 0);
}

#[test]
fn pooling_preserves_order_across_quantization() {
    // Integer-domain max == f32-domain max after monotone encoding.
    let sim = TileSimulator::with_default_tile(SimPrecision::Fixed {
        weights: Fixed::new(8, 6).unwrap(),
        inputs: Fixed::new(8, 4).unwrap(),
    });
    let in_fmt = Fixed::new(8, 4).unwrap();
    let mut r = rng::seeded(3);
    let x: Vec<f32> = (0..36).map(|_| r.gen_range(-4.0f32..4.0)).collect();
    let out = sim.run_max_pool(&x, (1, 6, 6), 3, 3);
    let xq = Tensor::from_vec(
        Shape::d4(1, 1, 6, 6),
        x.iter().map(|&v| in_fmt.quantize_value(v)).collect(),
    )
    .unwrap();
    let want = max_pool2d(&xq, Geometry::square(3, 3, 0)).unwrap().output;
    assert_eq!(out.outputs.as_slice(), want.as_slice());
}
