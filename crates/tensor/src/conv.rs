//! 2-D convolution via im2col/col2im.
//!
//! The accelerator the paper models (a DianNao-style tile) flattens each
//! output neuron's receptive field into a dot product; im2col is the exact
//! software analogue, so using it here keeps the software MAC count equal to
//! the hardware MAC count used by the cycle model in `qnn-accel`.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Vertical and horizontal stride.
    pub stride: usize,
    /// Symmetric zero padding on all four sides.
    pub pad: usize,
    /// Ceil-mode output sizing (Caffe's pooling convention): a final
    /// partial window is emitted when the stride does not divide evenly.
    /// Convolutions use floor mode; the paper's ALEX pools are ceil mode.
    pub ceil: bool,
}

impl Geometry {
    /// Square kernel with the given stride and padding, floor-mode output
    /// sizing (the convolution convention).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `stride == 0`.
    pub fn square(k: usize, stride: usize, pad: usize) -> Self {
        assert!(k > 0, "kernel must be non-empty");
        assert!(stride > 0, "stride must be positive");
        Geometry {
            kh: k,
            kw: k,
            stride,
            pad,
            ceil: false,
        }
    }

    /// Square kernel with ceil-mode output sizing (Caffe's pooling
    /// convention, used by the paper's ALEX 3×3/stride-2 pools).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `stride == 0`.
    pub fn square_ceil(k: usize, stride: usize, pad: usize) -> Self {
        Geometry {
            ceil: true,
            ..Geometry::square(k, stride, pad)
        }
    }

    /// Output height/width for an input of `(h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the padded input is
    /// smaller than the kernel.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize), TensorError> {
        let ph = h + 2 * self.pad;
        let pw = w + 2 * self.pad;
        if ph < self.kh || pw < self.kw {
            return Err(TensorError::InvalidGeometry {
                op: "output_hw",
                reason: format!(
                    "padded input {ph}×{pw} smaller than kernel {}×{}",
                    self.kh, self.kw
                ),
            });
        }
        let size = |full: usize, k: usize, orig: usize| -> usize {
            let span = full - k;
            let mut n = if self.ceil {
                span.div_ceil(self.stride) + 1
            } else {
                span / self.stride + 1
            };
            // Caffe's guard: the last window must start inside the
            // original (unpadded-right) extent.
            if self.ceil && self.pad > 0 && (n - 1) * self.stride >= orig + self.pad {
                n -= 1;
            }
            n
        };
        Ok((size(ph, self.kh, h), size(pw, self.kw, w)))
    }
}

/// Unfolds one `(C, H, W)` image into the `(C·KH·KW, OH·OW)` patch matrix.
///
/// Column `o` holds the receptive field of output pixel `o` in row-major
/// `(c, kh, kw)` order; out-of-bounds taps read as zero (zero padding).
///
/// # Errors
///
/// Returns an error if `image` is not rank 3 or the geometry is impossible.
pub fn im2col(image: &Tensor, geom: Geometry) -> Result<Tensor, TensorError> {
    if image.shape().rank() != 3 {
        return Err(TensorError::RankMismatch {
            op: "im2col",
            expected: 3,
            actual: image.shape().rank(),
        });
    }
    let (c, h, w) = (
        image.shape().dim(0),
        image.shape().dim(1),
        image.shape().dim(2),
    );
    let (oh, ow) = geom.output_hw(h, w)?;
    let rows = c * geom.kh * geom.kw;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let data = image.as_slice();
    for ci in 0..c {
        for ki in 0..geom.kh {
            for kj in 0..geom.kw {
                let row = (ci * geom.kh + ki) * geom.kw + kj;
                for oi in 0..oh {
                    let ii = (oi * geom.stride + ki) as isize - geom.pad as isize;
                    if ii < 0 || ii as usize >= h {
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * geom.stride + kj) as isize - geom.pad as isize;
                        if jj < 0 || jj as usize >= w {
                            continue;
                        }
                        out[row * cols + oi * ow + oj] =
                            data[(ci * h + ii as usize) * w + jj as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(Shape::d2(rows, cols), out)
}

/// Folds a `(C·KH·KW, OH·OW)` patch matrix back onto a `(C, H, W)` image,
/// accumulating overlapping taps — the adjoint of [`im2col`], used for the
/// input gradient of convolution.
///
/// # Errors
///
/// Returns an error if `cols` does not match the geometry for the target
/// `(c, h, w)`.
pub fn col2im(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    geom: Geometry,
) -> Result<Tensor, TensorError> {
    let (oh, ow) = geom.output_hw(h, w)?;
    let rows = c * geom.kh * geom.kw;
    if cols.shape().rank() != 2 || cols.shape().dim(0) != rows || cols.shape().dim(1) != oh * ow {
        return Err(TensorError::InvalidGeometry {
            op: "col2im",
            reason: format!(
                "patch matrix {} does not match target ({c}×{h}×{w}, kernel {}×{}, stride {}, pad {})",
                cols.shape(),
                geom.kh,
                geom.kw,
                geom.stride,
                geom.pad
            ),
        });
    }
    let mut out = vec![0.0f32; c * h * w];
    let data = cols.as_slice();
    let ncols = oh * ow;
    for ci in 0..c {
        for ki in 0..geom.kh {
            for kj in 0..geom.kw {
                let row = (ci * geom.kh + ki) * geom.kw + kj;
                for oi in 0..oh {
                    let ii = (oi * geom.stride + ki) as isize - geom.pad as isize;
                    if ii < 0 || ii as usize >= h {
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * geom.stride + kj) as isize - geom.pad as isize;
                        if jj < 0 || jj as usize >= w {
                            continue;
                        }
                        out[(ci * h + ii as usize) * w + jj as usize] +=
                            data[row * ncols + oi * ow + oj];
                    }
                }
            }
        }
    }
    Tensor::from_vec(Shape::d3(c, h, w), out)
}

/// Convolves a batch `(N, C, H, W)` with weights `(O, C, KH, KW)` and bias
/// `(O)`, producing `(N, O, OH, OW)`.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches or impossible geometry.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    geom: Geometry,
) -> Result<Tensor, TensorError> {
    let (n, c, h, w) = conv_input_dims(input)?;
    let (o, wc, wkh, wkw) = conv_weight_dims(weight)?;
    if wc != c || wkh != geom.kh || wkw != geom.kw {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: input.shape().clone(),
            rhs: weight.shape().clone(),
        });
    }
    if bias.len() != o {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d/bias",
            lhs: weight.shape().clone(),
            rhs: bias.shape().clone(),
        });
    }
    let (oh, ow) = geom.output_hw(h, w)?;
    let wmat = weight.reshape(Shape::d2(o, c * geom.kh * geom.kw))?;
    let sample_out = o * oh * ow;
    let mut out = vec![0.0f32; n * sample_out];
    let run_sample = |ni: usize, dst: &mut [f32]| -> Result<(), TensorError> {
        let image = slice_image(input, ni, c, h, w);
        let cols = im2col(&image, geom)?;
        let prod = wmat.matmul(&cols)?;
        let pslice = prod.as_slice();
        let bslice = bias.as_slice();
        for oi in 0..o {
            let b = bslice[oi];
            for px in 0..oh * ow {
                dst[oi * oh * ow + px] = pslice[oi * oh * ow + px] + b;
            }
        }
        Ok(())
    };
    parallel_over_samples(n, sample_out, &mut out, &run_sample)?;
    Tensor::from_vec(Shape::d4(n, o, oh, ow), out)
}

/// Runs `f(sample_index, sample_output_slice)` for each sample, spreading
/// samples over threads when the batch is large enough to amortize spawn
/// cost. `out` must be `n × sample_len` long.
fn parallel_over_samples<F>(
    n: usize,
    sample_len: usize,
    out: &mut [f32],
    f: &F,
) -> Result<(), TensorError>
where
    F: Fn(usize, &mut [f32]) -> Result<(), TensorError> + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 || n < 4 {
        for (ni, chunk) in out.chunks_mut(sample_len).enumerate() {
            f(ni, chunk)?;
        }
        return Ok(());
    }
    let chunk_samples = n.div_ceil(threads);
    let results: Vec<Result<(), TensorError>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, slab) in out.chunks_mut(chunk_samples * sample_len).enumerate() {
            handles.push(scope.spawn(move || {
                for (k, chunk) in slab.chunks_mut(sample_len).enumerate() {
                    f(t * chunk_samples + k, chunk)?;
                }
                Ok(())
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("conv worker panicked"))
            .collect()
    });
    for r in results {
        r?;
    }
    Ok(())
}

/// Gradients of [`conv2d`] given the upstream gradient `grad_out`
/// `(N, O, OH, OW)`.
///
/// Returns `(grad_input, grad_weight, grad_bias)`.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    geom: Geometry,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    let (n, c, h, w) = conv_input_dims(input)?;
    let (o, _, _, _) = conv_weight_dims(weight)?;
    let (oh, ow) = geom.output_hw(h, w)?;
    if grad_out.shape().dims() != [n, o, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            lhs: grad_out.shape().clone(),
            rhs: Shape::d4(n, o, oh, ow),
        });
    }
    let k = c * geom.kh * geom.kw;
    let wmat = weight.reshape(Shape::d2(o, k))?;
    let wmat_t = wmat.transpose()?;
    let mut gx = vec![0.0f32; n * c * h * w];
    let sample_len = c * h * w;
    // Each sample's contribution is independent; threads accumulate
    // private (dW, db) partials over their sample ranges, writing dX in
    // place, and the partials are reduced at the end.
    let per_sample = |ni: usize,
                      gx_chunk: &mut [f32],
                      gw_acc: &mut Tensor,
                      gb_acc: &mut [f32]|
     -> Result<(), TensorError> {
        let image = slice_image(input, ni, c, h, w);
        let cols = im2col(&image, geom)?;
        let go = Tensor::from_vec(
            Shape::d2(o, oh * ow),
            grad_out.as_slice()[ni * o * oh * ow..(ni + 1) * o * oh * ow].to_vec(),
        )?;
        gw_acc.axpy(1.0, &go.matmul(&cols.transpose()?)?)?;
        let gos = go.as_slice();
        for oi in 0..o {
            gb_acc[oi] += gos[oi * oh * ow..(oi + 1) * oh * ow].iter().sum::<f32>();
        }
        let gcols = wmat_t.matmul(&go)?;
        let gimg = col2im(&gcols, c, h, w, geom)?;
        gx_chunk.copy_from_slice(gimg.as_slice());
        Ok(())
    };
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    let (gw, gb) = if threads <= 1 || n < 4 {
        let mut gw = Tensor::zeros(Shape::d2(o, k));
        let mut gb = vec![0.0f32; o];
        for (ni, chunk) in gx.chunks_mut(sample_len).enumerate() {
            per_sample(ni, chunk, &mut gw, &mut gb)?;
        }
        (gw, gb)
    } else {
        let chunk_samples = n.div_ceil(threads);
        let partials: Vec<Result<(Tensor, Vec<f32>), TensorError>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (t, slab) in gx.chunks_mut(chunk_samples * sample_len).enumerate() {
                let per_sample = &per_sample;
                handles.push(scope.spawn(move || {
                    let mut gw = Tensor::zeros(Shape::d2(o, k));
                    let mut gb = vec![0.0f32; o];
                    for (j, chunk) in slab.chunks_mut(sample_len).enumerate() {
                        per_sample(t * chunk_samples + j, chunk, &mut gw, &mut gb)?;
                    }
                    Ok((gw, gb))
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("conv backward worker panicked"))
                .collect()
        });
        let mut gw = Tensor::zeros(Shape::d2(o, k));
        let mut gb = vec![0.0f32; o];
        for p in partials {
            let (pgw, pgb) = p?;
            gw.axpy(1.0, &pgw)?;
            for (a, b) in gb.iter_mut().zip(pgb) {
                *a += b;
            }
        }
        (gw, gb)
    };
    let gw = gw.reshape(weight.shape().clone())?;
    let gb = Tensor::from_vec(Shape::d1(o), gb)?;
    let gx = Tensor::from_vec(Shape::d4(n, c, h, w), gx)?;
    Ok((gx, gw, gb))
}

pub(crate) fn conv_input_dims(input: &Tensor) -> Result<(usize, usize, usize, usize), TensorError> {
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d",
            expected: 4,
            actual: input.shape().rank(),
        });
    }
    Ok((
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    ))
}

fn conv_weight_dims(weight: &Tensor) -> Result<(usize, usize, usize, usize), TensorError> {
    if weight.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d/weight",
            expected: 4,
            actual: weight.shape().rank(),
        });
    }
    Ok((
        weight.shape().dim(0),
        weight.shape().dim(1),
        weight.shape().dim(2),
        weight.shape().dim(3),
    ))
}

pub(crate) fn slice_image(input: &Tensor, n: usize, c: usize, h: usize, w: usize) -> Tensor {
    let sz = c * h * w;
    Tensor::from_vec(
        Shape::d3(c, h, w),
        input.as_slice()[n * sz..(n + 1) * sz].to_vec(),
    )
    .expect("image slice length matches shape by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Shape, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(shape, v).unwrap()
    }

    #[test]
    fn geometry_output_sizes() {
        let g = Geometry::square(5, 1, 0);
        assert_eq!(g.output_hw(28, 28).unwrap(), (24, 24));
        let g = Geometry::square(5, 1, 2);
        assert_eq!(g.output_hw(32, 32).unwrap(), (32, 32));
        let g = Geometry::square(2, 2, 0);
        assert_eq!(g.output_hw(24, 24).unwrap(), (12, 12));
        let g = Geometry::square(3, 2, 0);
        assert_eq!(g.output_hw(32, 32).unwrap(), (15, 15));
    }

    #[test]
    fn geometry_rejects_tiny_input() {
        let g = Geometry::square(5, 1, 0);
        assert!(g.output_hw(3, 3).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1×1 kernel, stride 1: im2col is the identity (one row per channel).
        let img = t(Shape::d3(2, 2, 2), vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let cols = im2col(&img, Geometry::square(1, 1, 0)).unwrap();
        assert_eq!(cols.shape().dims(), &[2, 4]);
        assert_eq!(cols.as_slice(), img.as_slice());
    }

    #[test]
    fn im2col_extracts_patches() {
        // 3×3 image, 2×2 kernel, stride 1 → 4 patches.
        let img = t(Shape::d3(1, 3, 3), vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let cols = im2col(&img, Geometry::square(2, 1, 0)).unwrap();
        assert_eq!(cols.shape().dims(), &[4, 4]);
        // Patch at (0,0) is [1,2,4,5]; columns are output pixels.
        assert_eq!(cols.at(&[0, 0]), 1.0);
        assert_eq!(cols.at(&[1, 0]), 2.0);
        assert_eq!(cols.at(&[2, 0]), 4.0);
        assert_eq!(cols.at(&[3, 0]), 5.0);
        // Patch at (1,1) is [5,6,8,9].
        assert_eq!(cols.at(&[0, 3]), 5.0);
        assert_eq!(cols.at(&[3, 3]), 9.0);
    }

    #[test]
    fn im2col_zero_pads() {
        let img = t(Shape::d3(1, 2, 2), vec![1., 2., 3., 4.]);
        let cols = im2col(&img, Geometry::square(3, 1, 1)).unwrap();
        // Output is 2×2; the (0,0) patch's top-left tap is padding.
        assert_eq!(cols.shape().dims(), &[9, 4]);
        assert_eq!(cols.at(&[0, 0]), 0.0);
        assert_eq!(cols.at(&[4, 0]), 1.0); // centre tap hits pixel (0,0)
    }

    #[test]
    fn conv2d_matches_hand_computation() {
        // Single 2×2 "sum" kernel over a 3×3 ramp.
        let x = t(
            Shape::d4(1, 1, 3, 3),
            vec![1., 2., 3., 4., 5., 6., 7., 8., 9.],
        );
        let w = Tensor::ones(Shape::d4(1, 1, 2, 2));
        let b = Tensor::zeros(Shape::d1(1));
        let y = conv2d(&x, &w, &b, Geometry::square(2, 1, 0)).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[12., 16., 24., 28.]);
    }

    #[test]
    fn conv2d_applies_bias_per_channel() {
        let x = Tensor::zeros(Shape::d4(1, 1, 2, 2));
        let w = Tensor::zeros(Shape::d4(2, 1, 1, 1));
        let b = t(Shape::d1(2), vec![1.5, -2.5]);
        let y = conv2d(&x, &w, &b, Geometry::square(1, 1, 0)).unwrap();
        assert_eq!(&y.as_slice()[..4], &[1.5; 4]);
        assert_eq!(&y.as_slice()[4..], &[-2.5; 4]);
    }

    #[test]
    fn conv2d_rejects_channel_mismatch() {
        let x = Tensor::zeros(Shape::d4(1, 3, 4, 4));
        let w = Tensor::zeros(Shape::d4(2, 2, 3, 3));
        let b = Tensor::zeros(Shape::d1(2));
        assert!(conv2d(&x, &w, &b, Geometry::square(3, 1, 0)).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y — the adjoint
        // property gradient correctness rests on.
        let geom = Geometry::square(3, 2, 1);
        let (c, h, w) = (2, 5, 5);
        let x = t(
            Shape::d3(c, h, w),
            (0..c * h * w).map(|i| (i as f32 * 0.37).sin()).collect(),
        );
        let cols = im2col(&x, geom).unwrap();
        let y = cols.map(|v| (v * 1.7 + 0.3).cos());
        let lhs = cols.dot(&y).unwrap();
        let folded = col2im(&y, c, h, w, geom).unwrap();
        let rhs = x.dot(&folded).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn conv2d_backward_matches_numeric_gradient() {
        let geom = Geometry::square(3, 1, 1);
        let x = t(
            Shape::d4(1, 2, 4, 4),
            (0..32).map(|i| ((i as f32) * 0.21).sin()).collect(),
        );
        let w0 = t(
            Shape::d4(2, 2, 3, 3),
            (0..36).map(|i| ((i as f32) * 0.13).cos() * 0.5).collect(),
        );
        let b0 = t(Shape::d1(2), vec![0.1, -0.2]);
        // Loss = sum(conv(x, w, b)); its gradient wrt w is checked by finite
        // differences on a few taps.
        let y = conv2d(&x, &w0, &b0, geom).unwrap();
        let gout = Tensor::ones(y.shape().clone());
        let (gx, gw, gb) = conv2d_backward(&x, &w0, &gout, geom).unwrap();
        let eps = 1e-3;
        for idx in [0usize, 7, 20, 35] {
            let mut wp = w0.clone();
            wp.as_mut_slice()[idx] += eps;
            let yp = conv2d(&x, &wp, &b0, geom).unwrap().sum();
            let mut wm = w0.clone();
            wm.as_mut_slice()[idx] -= eps;
            let ym = conv2d(&x, &wm, &b0, geom).unwrap().sum();
            let num = (yp - ym) / (2.0 * eps);
            let ana = gw.as_slice()[idx];
            assert!((num - ana).abs() < 1e-2, "w[{idx}]: num={num} ana={ana}");
        }
        for idx in [0usize, 13, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let yp = conv2d(&xp, &w0, &b0, geom).unwrap().sum();
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let ym = conv2d(&xm, &w0, &b0, geom).unwrap().sum();
            let num = (yp - ym) / (2.0 * eps);
            let ana = gx.as_slice()[idx];
            assert!((num - ana).abs() < 1e-2, "x[{idx}]: num={num} ana={ana}");
        }
        // Bias gradient of a sum-loss is the number of output pixels.
        assert_eq!(gb.as_slice(), &[16.0, 16.0]);
    }
}
