//! 2-D convolution via im2col/col2im.
//!
//! The accelerator the paper models (a DianNao-style tile) flattens each
//! output neuron's receptive field into a dot product; im2col is the exact
//! software analogue, so using it here keeps the software MAC count equal to
//! the hardware MAC count used by the cycle model in `qnn-accel`.
//!
//! The heavy entry points come in two forms: the original allocating
//! functions ([`conv2d`], [`conv2d_backward`]) and `_with` variants taking a
//! [`ConvScratch`] so a layer that convolves every step reuses its im2col
//! and gradient buffers instead of reallocating them per call. Batches are
//! spread over the [`crate::par`] pool with per-sample output regions
//! (forward / input gradient) and fixed-size sample blocks for the weight
//! and bias gradient partials, reduced in block order — so results are
//! bit-identical at any thread count.

use crate::error::TensorError;
use crate::gemm::{gemm_nn_with, gemm_nt_with, gemm_tn_with, GemmScratch};
use crate::par;
use crate::shape::Shape;
use crate::tensor::Tensor;
use std::cell::RefCell;

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Vertical and horizontal stride.
    pub stride: usize,
    /// Symmetric zero padding on all four sides.
    pub pad: usize,
    /// Ceil-mode output sizing (Caffe's pooling convention): a final
    /// partial window is emitted when the stride does not divide evenly.
    /// Convolutions use floor mode; the paper's ALEX pools are ceil mode.
    pub ceil: bool,
}

impl Geometry {
    /// Square kernel with the given stride and padding, floor-mode output
    /// sizing (the convolution convention).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `stride == 0`.
    pub fn square(k: usize, stride: usize, pad: usize) -> Self {
        assert!(k > 0, "kernel must be non-empty");
        assert!(stride > 0, "stride must be positive");
        Geometry {
            kh: k,
            kw: k,
            stride,
            pad,
            ceil: false,
        }
    }

    /// Square kernel with ceil-mode output sizing (Caffe's pooling
    /// convention, used by the paper's ALEX 3×3/stride-2 pools).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `stride == 0`.
    pub fn square_ceil(k: usize, stride: usize, pad: usize) -> Self {
        Geometry {
            ceil: true,
            ..Geometry::square(k, stride, pad)
        }
    }

    /// Output height/width for an input of `(h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the padded input is
    /// smaller than the kernel.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize), TensorError> {
        let ph = h + 2 * self.pad;
        let pw = w + 2 * self.pad;
        if ph < self.kh || pw < self.kw {
            return Err(TensorError::InvalidGeometry {
                op: "output_hw",
                reason: format!(
                    "padded input {ph}×{pw} smaller than kernel {}×{}",
                    self.kh, self.kw
                ),
            });
        }
        let size = |full: usize, k: usize, orig: usize| -> usize {
            let span = full - k;
            let mut n = if self.ceil {
                span.div_ceil(self.stride) + 1
            } else {
                span / self.stride + 1
            };
            // Caffe's guard: the last window must start inside the
            // original (unpadded-right) extent.
            if self.ceil && self.pad > 0 && (n - 1) * self.stride >= orig + self.pad {
                n -= 1;
            }
            n
        };
        Ok((size(ph, self.kh, h), size(pw, self.kw, w)))
    }
}

/// Core im2col loop over raw slices; geometry must already be validated
/// (`(oh, ow) = geom.output_hw(h, w)`), and `dst` must be
/// `c·kh·kw × oh·ow` long. Overwrites `dst` entirely.
#[allow(clippy::too_many_arguments)]
fn im2col_kernel(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    geom: Geometry,
    oh: usize,
    ow: usize,
    dst: &mut [f32],
) {
    debug_assert_eq!(image.len(), c * h * w);
    debug_assert_eq!(dst.len(), c * geom.kh * geom.kw * oh * ow);
    let cols = oh * ow;
    dst.fill(0.0);
    for ci in 0..c {
        for ki in 0..geom.kh {
            for kj in 0..geom.kw {
                let row = (ci * geom.kh + ki) * geom.kw + kj;
                for oi in 0..oh {
                    let ii = (oi * geom.stride + ki) as isize - geom.pad as isize;
                    if ii < 0 || ii as usize >= h {
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * geom.stride + kj) as isize - geom.pad as isize;
                        if jj < 0 || jj as usize >= w {
                            continue;
                        }
                        dst[row * cols + oi * ow + oj] =
                            image[(ci * h + ii as usize) * w + jj as usize];
                    }
                }
            }
        }
    }
}

/// Core col2im loop over raw slices (adjoint of [`im2col_kernel`]);
/// overwrites `dst` (`c·h·w`) with the folded accumulation.
#[allow(clippy::too_many_arguments)]
fn col2im_kernel(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    geom: Geometry,
    oh: usize,
    ow: usize,
    dst: &mut [f32],
) {
    debug_assert_eq!(cols.len(), c * geom.kh * geom.kw * oh * ow);
    debug_assert_eq!(dst.len(), c * h * w);
    let ncols = oh * ow;
    dst.fill(0.0);
    for ci in 0..c {
        for ki in 0..geom.kh {
            for kj in 0..geom.kw {
                let row = (ci * geom.kh + ki) * geom.kw + kj;
                for oi in 0..oh {
                    let ii = (oi * geom.stride + ki) as isize - geom.pad as isize;
                    if ii < 0 || ii as usize >= h {
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * geom.stride + kj) as isize - geom.pad as isize;
                        if jj < 0 || jj as usize >= w {
                            continue;
                        }
                        dst[(ci * h + ii as usize) * w + jj as usize] +=
                            cols[row * ncols + oi * ow + oj];
                    }
                }
            }
        }
    }
}

/// Unfolds one `(C, H, W)` image into the `(C·KH·KW, OH·OW)` patch matrix.
///
/// Column `o` holds the receptive field of output pixel `o` in row-major
/// `(c, kh, kw)` order; out-of-bounds taps read as zero (zero padding).
///
/// # Errors
///
/// Returns an error if `image` is not rank 3 or the geometry is impossible.
pub fn im2col(image: &Tensor, geom: Geometry) -> Result<Tensor, TensorError> {
    if image.shape().rank() != 3 {
        return Err(TensorError::RankMismatch {
            op: "im2col",
            expected: 3,
            actual: image.shape().rank(),
        });
    }
    let (c, h, w) = (
        image.shape().dim(0),
        image.shape().dim(1),
        image.shape().dim(2),
    );
    let (oh, ow) = geom.output_hw(h, w)?;
    let rows = c * geom.kh * geom.kw;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    im2col_kernel(image.as_slice(), c, h, w, geom, oh, ow, &mut out);
    Tensor::from_vec(Shape::d2(rows, cols), out)
}

/// Raw-slice [`im2col`]: unfolds one `(c, h, w)` image held in `image`
/// into `dst`, which must be exactly `c·kh·kw × oh·ow` long (row-major,
/// overwritten entirely). Exposed so callers that re-unfold per sample —
/// the quantized fast path in `qnn-nn` packs the patch matrix into integer
/// words — can reuse a scratch buffer instead of allocating a `Tensor`.
///
/// # Errors
///
/// Returns an error if the geometry is impossible for `(h, w)`; panics if
/// the slice lengths disagree with the derived dimensions.
pub fn im2col_into(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    geom: Geometry,
    dst: &mut [f32],
) -> Result<(usize, usize), TensorError> {
    let (oh, ow) = geom.output_hw(h, w)?;
    assert_eq!(image.len(), c * h * w, "image slice length mismatch");
    assert_eq!(
        dst.len(),
        c * geom.kh * geom.kw * oh * ow,
        "im2col_into dst length mismatch"
    );
    im2col_kernel(image, c, h, w, geom, oh, ow, dst);
    Ok((oh, ow))
}

/// Folds a `(C·KH·KW, OH·OW)` patch matrix back onto a `(C, H, W)` image,
/// accumulating overlapping taps — the adjoint of [`im2col`], used for the
/// input gradient of convolution.
///
/// # Errors
///
/// Returns an error if `cols` does not match the geometry for the target
/// `(c, h, w)`.
pub fn col2im(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    geom: Geometry,
) -> Result<Tensor, TensorError> {
    let (oh, ow) = geom.output_hw(h, w)?;
    let rows = c * geom.kh * geom.kw;
    if cols.shape().rank() != 2 || cols.shape().dim(0) != rows || cols.shape().dim(1) != oh * ow {
        return Err(TensorError::InvalidGeometry {
            op: "col2im",
            reason: format!(
                "patch matrix {} does not match target ({c}×{h}×{w}, kernel {}×{}, stride {}, pad {})",
                cols.shape(),
                geom.kh,
                geom.kw,
                geom.stride,
                geom.pad
            ),
        });
    }
    let mut out = vec![0.0f32; c * h * w];
    col2im_kernel(cols.as_slice(), c, h, w, geom, oh, ow, &mut out);
    Tensor::from_vec(Shape::d3(c, h, w), out)
}

/// Per-worker buffers for one convolution layer: the im2col patch matrix,
/// the folded gradient columns, a per-sample weight-gradient product, and
/// the GEMM packing buffers. Sized lazily on first use and reused for the
/// lifetime of the layer.
#[derive(Debug, Default, Clone)]
struct Slot {
    cols: Vec<f32>,
    gcols: Vec<f32>,
    gw_tmp: Vec<f32>,
    gemm: GemmScratch,
}

/// Persistent scratch for [`conv2d_with`] / [`conv2d_backward_with`].
///
/// Holds one buffer set per worker thread; a `Conv2d` layer owns one of
/// these so im2col and gradient buffers are allocated once per layer, not
/// once per forward/backward call.
#[derive(Debug, Default, Clone)]
pub struct ConvScratch {
    slots: Vec<Slot>,
}

impl ConvScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn slots(&mut self, workers: usize) -> &mut [Slot] {
        if self.slots.len() < workers {
            self.slots.resize(workers, Slot::default());
        }
        &mut self.slots[..workers]
    }
}

thread_local! {
    static TLS_CONV_SCRATCH: RefCell<ConvScratch> = RefCell::new(ConvScratch::new());
}

/// Samples per weight-gradient partial block. Fixed (never derived from the
/// thread count) so the reduction tree — and therefore the rounding — is
/// identical no matter how many workers run.
const GRAD_BLOCK: usize = 4;

/// Convolves a batch `(N, C, H, W)` with weights `(O, C, KH, KW)` and bias
/// `(O)`, producing `(N, O, OH, OW)`.
///
/// Allocating wrapper around [`conv2d_with`] (uses a thread-local scratch).
///
/// # Errors
///
/// Returns an error on rank/shape mismatches or impossible geometry.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    geom: Geometry,
) -> Result<Tensor, TensorError> {
    TLS_CONV_SCRATCH.with(|s| conv2d_with(&mut s.borrow_mut(), input, weight, bias, geom))
}

/// [`conv2d`] with an explicit per-layer scratch: zero heap traffic in
/// steady state beyond the output tensor itself.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches or impossible geometry.
pub fn conv2d_with(
    scratch: &mut ConvScratch,
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    geom: Geometry,
) -> Result<Tensor, TensorError> {
    let (n, c, h, w) = conv_input_dims(input)?;
    let (o, wc, wkh, wkw) = conv_weight_dims(weight)?;
    if wc != c || wkh != geom.kh || wkw != geom.kw {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: input.shape().clone(),
            rhs: weight.shape().clone(),
        });
    }
    if bias.len() != o {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d/bias",
            lhs: weight.shape().clone(),
            rhs: bias.shape().clone(),
        });
    }
    let (oh, ow) = geom.output_hw(h, w)?;
    let px = oh * ow;
    let kdim = c * geom.kh * geom.kw;
    let csz = c * h * w;
    let sample_out = o * px;
    qnn_trace::counter!("tensor.conv.fwd.calls", 1);
    qnn_trace::counter!("tensor.conv.fwd.macs", (n * o * px * kdim) as u64);
    // Row-major (O, C, KH, KW) weights are already the (O, C·KH·KW) GEMM
    // operand; no reshape/copy needed.
    let wdata = weight.as_slice();
    let in_data = input.as_slice();
    let bslice = bias.as_slice();
    let mut out = vec![0.0f32; n * sample_out];

    let run = |range: std::ops::Range<usize>, slab: &mut [f32], slot: &mut Slot| {
        slot.cols.resize(kdim * px, 0.0);
        for (ni, dst) in range.zip(slab.chunks_mut(sample_out)) {
            let img = &in_data[ni * csz..(ni + 1) * csz];
            im2col_kernel(img, c, h, w, geom, oh, ow, &mut slot.cols);
            gemm_nn_with(&mut slot.gemm, o, kdim, px, wdata, &slot.cols, dst);
            for (oi, row) in dst.chunks_exact_mut(px).enumerate() {
                let b = bslice[oi];
                for v in row {
                    *v += b;
                }
            }
        }
    };

    let workers = par::workers_for(n);
    let slots = scratch.slots(workers);
    if workers <= 1 {
        run(0..n, &mut out, &mut slots[0]);
    } else {
        let ranges = par::partition(n, workers);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(workers - 1);
            let mut rest: &mut [f32] = &mut out;
            let mut own = None;
            for (range, slot) in ranges.into_iter().zip(slots.iter_mut()) {
                let (slab, tail) = rest.split_at_mut(range.len() * sample_out);
                rest = tail;
                if own.is_none() {
                    own = Some((range, slab, slot));
                    continue;
                }
                let run = &run;
                handles.push(s.spawn(move || {
                    par::mark_worker(|| qnn_trace::capture(|| run(range, slab, slot)).1)
                }));
            }
            if let Some((range, slab, slot)) = own {
                par::mark_worker(|| run(range, slab, slot));
            }
            par::join_spliced(handles);
        });
    }
    Tensor::from_vec(Shape::d4(n, o, oh, ow), out)
}

/// Gradients of [`conv2d`] given the upstream gradient `grad_out`
/// `(N, O, OH, OW)`.
///
/// Returns `(grad_input, grad_weight, grad_bias)`. Allocating wrapper
/// around [`conv2d_backward_with`].
///
/// # Errors
///
/// Returns an error on rank/shape mismatches.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    geom: Geometry,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    TLS_CONV_SCRATCH
        .with(|s| conv2d_backward_with(&mut s.borrow_mut(), input, weight, grad_out, geom))
}

/// [`conv2d_backward`] with an explicit per-layer scratch.
///
/// The weight/bias gradients are summed as fixed [`GRAD_BLOCK`]-sample
/// partials reduced in block order, so they are bit-identical at any
/// thread count.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches.
pub fn conv2d_backward_with(
    scratch: &mut ConvScratch,
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    geom: Geometry,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    let (n, c, h, w) = conv_input_dims(input)?;
    let (o, _, _, _) = conv_weight_dims(weight)?;
    let (oh, ow) = geom.output_hw(h, w)?;
    if grad_out.shape().dims() != [n, o, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            lhs: grad_out.shape().clone(),
            rhs: Shape::d4(n, o, oh, ow),
        });
    }
    let px = oh * ow;
    let kdim = c * geom.kh * geom.kw;
    let csz = c * h * w;
    qnn_trace::counter!("tensor.conv.bwd.calls", 1);
    qnn_trace::counter!("tensor.conv.bwd.macs", (2 * n * o * px * kdim) as u64);
    let wdata = weight.as_slice();
    let in_data = input.as_slice();
    let go_data = grad_out.as_slice();
    let mut gx = vec![0.0f32; n * csz];
    let n_blocks = n.div_ceil(GRAD_BLOCK);
    // One (dW, db) partial per fixed-size sample block, indexed by block.
    let mut partials: Vec<(Vec<f32>, Vec<f32>)> = vec![(Vec::new(), Vec::new()); n_blocks];

    // Processes the samples of blocks `blocks`, writing dX into `gx_slab`
    // (whose first element is sample `blocks.start * GRAD_BLOCK`) and the
    // per-block partials into `parts`.
    let run = |blocks: std::ops::Range<usize>,
               gx_slab: &mut [f32],
               parts: &mut [(Vec<f32>, Vec<f32>)],
               slot: &mut Slot| {
        slot.cols.resize(kdim * px, 0.0);
        slot.gcols.resize(kdim * px, 0.0);
        slot.gw_tmp.resize(o * kdim, 0.0);
        let first_sample = blocks.start * GRAD_BLOCK;
        for (blk, part) in blocks.zip(parts.iter_mut()) {
            let (pgw, pgb) = part;
            pgw.resize(o * kdim, 0.0);
            pgw.fill(0.0);
            pgb.resize(o, 0.0);
            pgb.fill(0.0);
            let lo = blk * GRAD_BLOCK;
            let hi = (lo + GRAD_BLOCK).min(n);
            for ni in lo..hi {
                let img = &in_data[ni * csz..(ni + 1) * csz];
                let go = &go_data[ni * o * px..(ni + 1) * o * px];
                im2col_kernel(img, c, h, w, geom, oh, ow, &mut slot.cols);
                // dW_sample = dY · colsᵀ  (o×px · px×kdim).
                gemm_nt_with(
                    &mut slot.gemm,
                    o,
                    px,
                    kdim,
                    go,
                    &slot.cols,
                    &mut slot.gw_tmp,
                );
                for (acc, &v) in pgw.iter_mut().zip(slot.gw_tmp.iter()) {
                    *acc += v;
                }
                for (oi, acc) in pgb.iter_mut().enumerate() {
                    *acc += go[oi * px..(oi + 1) * px].iter().sum::<f32>();
                }
                // dCols = Wᵀ · dY  (kdim×o · o×px).
                gemm_tn_with(&mut slot.gemm, kdim, o, px, wdata, go, &mut slot.gcols);
                let dst = &mut gx_slab[(ni - first_sample) * csz..(ni - first_sample + 1) * csz];
                col2im_kernel(&slot.gcols, c, h, w, geom, oh, ow, dst);
            }
        }
    };

    let workers = par::workers_for(n_blocks);
    let slots = scratch.slots(workers);
    if workers <= 1 {
        run(0..n_blocks, &mut gx, &mut partials, &mut slots[0]);
    } else {
        let ranges = par::partition(n_blocks, workers);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(workers - 1);
            let mut gx_rest: &mut [f32] = &mut gx;
            let mut part_rest: &mut [(Vec<f32>, Vec<f32>)] = &mut partials;
            let mut own = None;
            for (range, slot) in ranges.into_iter().zip(slots.iter_mut()) {
                let s_lo = range.start * GRAD_BLOCK;
                let s_hi = (range.end * GRAD_BLOCK).min(n);
                let (gx_slab, gx_tail) = gx_rest.split_at_mut((s_hi - s_lo) * csz);
                gx_rest = gx_tail;
                let (parts, part_tail) = part_rest.split_at_mut(range.len());
                part_rest = part_tail;
                if own.is_none() {
                    own = Some((range, gx_slab, parts, slot));
                    continue;
                }
                let run = &run;
                handles.push(s.spawn(move || {
                    par::mark_worker(|| qnn_trace::capture(|| run(range, gx_slab, parts, slot)).1)
                }));
            }
            if let Some((range, gx_slab, parts, slot)) = own {
                par::mark_worker(|| run(range, gx_slab, parts, slot));
            }
            par::join_spliced(handles);
        });
    }

    // Sequential reduction in ascending block order: the summation tree is
    // a function of (n, GRAD_BLOCK) only, never of the worker count.
    let mut gw = vec![0.0f32; o * kdim];
    let mut gb = vec![0.0f32; o];
    for (pgw, pgb) in &partials {
        for (acc, &v) in gw.iter_mut().zip(pgw.iter()) {
            *acc += v;
        }
        for (acc, &v) in gb.iter_mut().zip(pgb.iter()) {
            *acc += v;
        }
    }
    let gw = Tensor::from_vec(weight.shape().clone(), gw)?;
    let gb = Tensor::from_vec(Shape::d1(o), gb)?;
    let gx = Tensor::from_vec(Shape::d4(n, c, h, w), gx)?;
    Ok((gx, gw, gb))
}

pub(crate) fn conv_input_dims(input: &Tensor) -> Result<(usize, usize, usize, usize), TensorError> {
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d",
            expected: 4,
            actual: input.shape().rank(),
        });
    }
    Ok((
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    ))
}

fn conv_weight_dims(weight: &Tensor) -> Result<(usize, usize, usize, usize), TensorError> {
    if weight.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d/weight",
            expected: 4,
            actual: weight.shape().rank(),
        });
    }
    Ok((
        weight.shape().dim(0),
        weight.shape().dim(1),
        weight.shape().dim(2),
        weight.shape().dim(3),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Shape, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(shape, v).unwrap()
    }

    #[test]
    fn geometry_output_sizes() {
        let g = Geometry::square(5, 1, 0);
        assert_eq!(g.output_hw(28, 28).unwrap(), (24, 24));
        let g = Geometry::square(5, 1, 2);
        assert_eq!(g.output_hw(32, 32).unwrap(), (32, 32));
        let g = Geometry::square(2, 2, 0);
        assert_eq!(g.output_hw(24, 24).unwrap(), (12, 12));
        let g = Geometry::square(3, 2, 0);
        assert_eq!(g.output_hw(32, 32).unwrap(), (15, 15));
    }

    #[test]
    fn geometry_rejects_tiny_input() {
        let g = Geometry::square(5, 1, 0);
        assert!(g.output_hw(3, 3).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1×1 kernel, stride 1: im2col is the identity (one row per channel).
        let img = t(Shape::d3(2, 2, 2), vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let cols = im2col(&img, Geometry::square(1, 1, 0)).unwrap();
        assert_eq!(cols.shape().dims(), &[2, 4]);
        assert_eq!(cols.as_slice(), img.as_slice());
    }

    #[test]
    fn im2col_extracts_patches() {
        // 3×3 image, 2×2 kernel, stride 1 → 4 patches.
        let img = t(Shape::d3(1, 3, 3), vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let cols = im2col(&img, Geometry::square(2, 1, 0)).unwrap();
        assert_eq!(cols.shape().dims(), &[4, 4]);
        // Patch at (0,0) is [1,2,4,5]; columns are output pixels.
        assert_eq!(cols.at(&[0, 0]), 1.0);
        assert_eq!(cols.at(&[1, 0]), 2.0);
        assert_eq!(cols.at(&[2, 0]), 4.0);
        assert_eq!(cols.at(&[3, 0]), 5.0);
        // Patch at (1,1) is [5,6,8,9].
        assert_eq!(cols.at(&[0, 3]), 5.0);
        assert_eq!(cols.at(&[3, 3]), 9.0);
    }

    #[test]
    fn im2col_zero_pads() {
        let img = t(Shape::d3(1, 2, 2), vec![1., 2., 3., 4.]);
        let cols = im2col(&img, Geometry::square(3, 1, 1)).unwrap();
        // Output is 2×2; the (0,0) patch's top-left tap is padding.
        assert_eq!(cols.shape().dims(), &[9, 4]);
        assert_eq!(cols.at(&[0, 0]), 0.0);
        assert_eq!(cols.at(&[4, 0]), 1.0); // centre tap hits pixel (0,0)
    }

    #[test]
    fn conv2d_matches_hand_computation() {
        // Single 2×2 "sum" kernel over a 3×3 ramp.
        let x = t(
            Shape::d4(1, 1, 3, 3),
            vec![1., 2., 3., 4., 5., 6., 7., 8., 9.],
        );
        let w = Tensor::ones(Shape::d4(1, 1, 2, 2));
        let b = Tensor::zeros(Shape::d1(1));
        let y = conv2d(&x, &w, &b, Geometry::square(2, 1, 0)).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[12., 16., 24., 28.]);
    }

    #[test]
    fn conv2d_applies_bias_per_channel() {
        let x = Tensor::zeros(Shape::d4(1, 1, 2, 2));
        let w = Tensor::zeros(Shape::d4(2, 1, 1, 1));
        let b = t(Shape::d1(2), vec![1.5, -2.5]);
        let y = conv2d(&x, &w, &b, Geometry::square(1, 1, 0)).unwrap();
        assert_eq!(&y.as_slice()[..4], &[1.5; 4]);
        assert_eq!(&y.as_slice()[4..], &[-2.5; 4]);
    }

    #[test]
    fn conv2d_rejects_channel_mismatch() {
        let x = Tensor::zeros(Shape::d4(1, 3, 4, 4));
        let w = Tensor::zeros(Shape::d4(2, 2, 3, 3));
        let b = Tensor::zeros(Shape::d1(2));
        assert!(conv2d(&x, &w, &b, Geometry::square(3, 1, 0)).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y — the adjoint
        // property gradient correctness rests on.
        let geom = Geometry::square(3, 2, 1);
        let (c, h, w) = (2, 5, 5);
        let x = t(
            Shape::d3(c, h, w),
            (0..c * h * w).map(|i| (i as f32 * 0.37).sin()).collect(),
        );
        let cols = im2col(&x, geom).unwrap();
        let y = cols.map(|v| (v * 1.7 + 0.3).cos());
        let lhs = cols.dot(&y).unwrap();
        let folded = col2im(&y, c, h, w, geom).unwrap();
        let rhs = x.dot(&folded).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn conv2d_backward_matches_numeric_gradient() {
        let geom = Geometry::square(3, 1, 1);
        let x = t(
            Shape::d4(1, 2, 4, 4),
            (0..32).map(|i| ((i as f32) * 0.21).sin()).collect(),
        );
        let w0 = t(
            Shape::d4(2, 2, 3, 3),
            (0..36).map(|i| ((i as f32) * 0.13).cos() * 0.5).collect(),
        );
        let b0 = t(Shape::d1(2), vec![0.1, -0.2]);
        // Loss = sum(conv(x, w, b)); its gradient wrt w is checked by finite
        // differences on a few taps.
        let y = conv2d(&x, &w0, &b0, geom).unwrap();
        let gout = Tensor::ones(y.shape().clone());
        let (gx, gw, gb) = conv2d_backward(&x, &w0, &gout, geom).unwrap();
        let eps = 1e-3;
        for idx in [0usize, 7, 20, 35] {
            let mut wp = w0.clone();
            wp.as_mut_slice()[idx] += eps;
            let yp = conv2d(&x, &wp, &b0, geom).unwrap().sum();
            let mut wm = w0.clone();
            wm.as_mut_slice()[idx] -= eps;
            let ym = conv2d(&x, &wm, &b0, geom).unwrap().sum();
            let num = (yp - ym) / (2.0 * eps);
            let ana = gw.as_slice()[idx];
            assert!((num - ana).abs() < 1e-2, "w[{idx}]: num={num} ana={ana}");
        }
        for idx in [0usize, 13, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let yp = conv2d(&xp, &w0, &b0, geom).unwrap().sum();
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let ym = conv2d(&xm, &w0, &b0, geom).unwrap().sum();
            let num = (yp - ym) / (2.0 * eps);
            let ana = gx.as_slice()[idx];
            assert!((num - ana).abs() < 1e-2, "x[{idx}]: num={num} ana={ana}");
        }
        // Bias gradient of a sum-loss is the number of output pixels.
        assert_eq!(gb.as_slice(), &[16.0, 16.0]);
    }

    /// Random batch conv: forward and all three gradients must be
    /// bit-identical at 1 and 4 worker threads, with fresh or reused scratch.
    #[test]
    fn conv_results_invariant_under_thread_count_and_scratch_reuse() {
        let geom = Geometry::square(3, 1, 1);
        let mut r = crate::rng::seeded(0xC04F);
        let x = crate::init::uniform(Shape::d4(9, 3, 6, 6), -1.0, 1.0, &mut r);
        let w = crate::init::uniform(Shape::d4(4, 3, 3, 3), -0.5, 0.5, &mut r);
        let b = crate::init::uniform(Shape::d1(4), -0.1, 0.1, &mut r);
        let y = conv2d(&x, &w, &b, geom).unwrap();
        let go = crate::init::uniform(y.shape().clone(), -1.0, 1.0, &mut r);

        crate::par::set_threads(Some(1));
        let y1 = conv2d(&x, &w, &b, geom).unwrap();
        let (gx1, gw1, gb1) = conv2d_backward(&x, &w, &go, geom).unwrap();
        crate::par::set_threads(Some(4));
        let mut scratch = ConvScratch::new();
        let y4 = conv2d_with(&mut scratch, &x, &w, &b, geom).unwrap();
        let (gx4, gw4, gb4) = conv2d_backward_with(&mut scratch, &x, &w, &go, geom).unwrap();
        // Second pass through the same scratch must not change anything.
        let y4b = conv2d_with(&mut scratch, &x, &w, &b, geom).unwrap();
        crate::par::set_threads(None);

        assert_eq!(y1, y);
        assert_eq!(y4, y);
        assert_eq!(y4b, y);
        assert_eq!(gx1, gx4);
        assert_eq!(gw1, gw4);
        assert_eq!(gb1, gb4);
    }
}
