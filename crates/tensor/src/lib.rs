#![warn(missing_docs)]

//! # qnn-tensor — dense f32 tensor substrate
//!
//! The minimal linear-algebra layer the rest of the `qnn` workspace is built
//! on: an owned, contiguous, row-major [`Tensor`] of `f32` plus the handful
//! of kernels a convolutional network needs — blocked [`matmul`](Tensor::matmul),
//! im2col-based [`conv2d`](conv::conv2d), max/average
//! [pooling](pool), and weight [initializers](init).
//!
//! The paper this workspace reproduces (Hashemi et al., DATE 2017) simulates
//! reduced precision *on top of* float arithmetic, Ristretto-style, so an
//! f32 substrate is the faithful choice: quantizers in `qnn-quant` snap
//! values of these tensors onto fixed-point / power-of-two / binary grids.
//!
//! ## Example
//!
//! ```
//! use qnn_tensor::{Tensor, Shape};
//!
//! let a = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.])?;
//! let b = Tensor::ones(Shape::d2(3, 2));
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape().dims(), &[2, 2]);
//! assert_eq!(c.as_slice(), &[6., 6., 15., 15.]);
//! # Ok::<(), qnn_tensor::TensorError>(())
//! ```

mod error;
mod shape;
#[allow(clippy::module_inception)]
mod tensor;

pub mod conv;
pub mod gemm;
pub mod init;
pub mod par;
pub mod pool;
pub mod qgemm;
pub mod rng;
pub mod stats;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;
