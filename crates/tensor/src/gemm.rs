//! Blocked f32 GEMM with packed panels and a 4×4 register microkernel.
//!
//! Three variants cover every product the network layers need without
//! materialising a transpose: `C = A·B` ([`gemm_nn`]), `C = A·Bᵀ`
//! ([`gemm_nt`], dense forward `x·Wᵀ`) and `C = Aᵀ·B` ([`gemm_tn`], dense
//! weight gradient `dYᵀ·X`).
//!
//! **Bit-exactness contract.** Each output element is produced by a single
//! accumulator that walks `k` in ascending order with one multiply and one
//! add per step — the same rounding sequence as the reference triple loop
//! (`Tensor::matmul_naive`). Packing rearranges memory, never the
//! accumulation order, and the kernel uses no fused multiply-add and no
//! split-`k` reassociation, so results are bit-identical to the naive
//! kernel and invariant under the worker-thread count (row panels are
//! disjoint output regions).

use crate::par;
use std::cell::RefCell;

/// Microkernel row count (output rows per panel).
pub const MR: usize = 4;
/// Microkernel column count (output columns per panel).
pub const NR: usize = 4;

/// Reusable packing buffers so steady-state GEMM calls allocate nothing
/// but their output. Layers hold one per layer; the `Tensor::matmul*`
/// wrappers fall back to a thread-local instance.
#[derive(Debug, Default, Clone)]
pub struct GemmScratch {
    packed_b: Vec<f32>,
    packed_a: Vec<f32>,
}

thread_local! {
    static TLS_SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::default());
}

/// `C = A·B` — `a` is `m×k`, `b` is `k×n`, `c` is `m×n` (overwritten).
pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    TLS_SCRATCH.with(|s| gemm_nn_with(&mut s.borrow_mut(), m, k, n, a, b, c));
}

/// `C = A·Bᵀ` — `a` is `m×k`, `b` is `n×k`, `c` is `m×n` (overwritten).
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    TLS_SCRATCH.with(|s| gemm_nt_with(&mut s.borrow_mut(), m, k, n, a, b, c));
}

/// `C = Aᵀ·B` — `a` is `k×m`, `b` is `k×n`, `c` is `m×n` (overwritten).
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    TLS_SCRATCH.with(|s| gemm_tn_with(&mut s.borrow_mut(), m, k, n, a, b, c));
}

/// [`gemm_nn`] with an explicit scratch buffer (no allocation after warmup).
pub fn gemm_nn_with(
    scratch: &mut GemmScratch,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    count_gemm(m, k, n);
    pack_b_nn(scratch, k, n, b);
    driver(
        m,
        k,
        n,
        |i0, h, dst| pack_a_rows(a, k, i0, h, dst),
        scratch,
        c,
    );
}

/// [`gemm_nt`] with an explicit scratch buffer.
pub fn gemm_nt_with(
    scratch: &mut GemmScratch,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    count_gemm(m, k, n);
    pack_b_nt(scratch, k, n, b);
    driver(
        m,
        k,
        n,
        |i0, h, dst| pack_a_rows(a, k, i0, h, dst),
        scratch,
        c,
    );
}

/// [`gemm_tn`] with an explicit scratch buffer.
pub fn gemm_tn_with(
    scratch: &mut GemmScratch,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    count_gemm(m, k, n);
    pack_b_nn(scratch, k, n, b);
    driver(
        m,
        k,
        n,
        |i0, h, dst| pack_a_cols(a, m, k, i0, h, dst),
        scratch,
        c,
    );
}

/// Telemetry hook shared by the three entry points: one call plus
/// `2·m·k·n` flops per product.
#[inline]
fn count_gemm(m: usize, k: usize, n: usize) {
    qnn_trace::counter!("tensor.gemm.calls", 1);
    qnn_trace::counter!("tensor.gemm.flops", (2 * m * k * n) as u64);
}

/// Packs `B` (`k×n`, row-major) into `⌈n/NR⌉` column panels: panel `jp`
/// holds, for each `kk`, the `NR` values `b[kk, jp·NR .. jp·NR+NR]`
/// (zero-padded past column `n`). Padding only ever multiplies into
/// output lanes that are never written back.
fn pack_b_nn(scratch: &mut GemmScratch, k: usize, n: usize, b: &[f32]) {
    let n_panels = n.div_ceil(NR);
    scratch.packed_b.clear();
    scratch.packed_b.resize(n_panels * k * NR, 0.0);
    for jp in 0..n_panels {
        let j0 = jp * NR;
        let w = NR.min(n - j0);
        let panel = &mut scratch.packed_b[jp * k * NR..(jp + 1) * k * NR];
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + w];
            let dst = &mut panel[kk * NR..kk * NR + w];
            dst.copy_from_slice(src);
        }
    }
}

/// Packs `B` given as `n×k` row-major (i.e. the transpose of the logical
/// `k×n` operand) into the same panel layout as [`pack_b_nn`].
fn pack_b_nt(scratch: &mut GemmScratch, k: usize, n: usize, b: &[f32]) {
    let n_panels = n.div_ceil(NR);
    scratch.packed_b.clear();
    scratch.packed_b.resize(n_panels * k * NR, 0.0);
    for jp in 0..n_panels {
        let j0 = jp * NR;
        let w = NR.min(n - j0);
        let panel = &mut scratch.packed_b[jp * k * NR..(jp + 1) * k * NR];
        for s in 0..w {
            let row = &b[(j0 + s) * k..(j0 + s + 1) * k];
            for (kk, &v) in row.iter().enumerate() {
                panel[kk * NR + s] = v;
            }
        }
    }
}

/// Packs `MR` rows of row-major `a` (`?×k`) into k-major order:
/// `dst[kk·MR + r] = a[i0+r, kk]`, zero past row `i0+h`.
fn pack_a_rows(a: &[f32], k: usize, i0: usize, h: usize, dst: &mut [f32]) {
    dst.fill(0.0);
    for r in 0..h {
        let row = &a[(i0 + r) * k..(i0 + r + 1) * k];
        for (kk, &v) in row.iter().enumerate() {
            dst[kk * MR + r] = v;
        }
    }
}

/// Packs `MR` columns of row-major `a` (`k×m`) — the rows of `Aᵀ` — into
/// k-major order: `dst[kk·MR + r] = a[kk, i0+r]`.
fn pack_a_cols(a: &[f32], m: usize, k: usize, i0: usize, h: usize, dst: &mut [f32]) {
    dst.fill(0.0);
    for kk in 0..k {
        let src = &a[kk * m + i0..kk * m + i0 + h];
        let d = &mut dst[kk * MR..kk * MR + h];
        d.copy_from_slice(src);
    }
}

/// Shared panel loop: splits `c` into `MR`-row slabs, parallelised over the
/// pool (each slab is a disjoint output region, so the partition cannot
/// affect the result), and runs the microkernel over the packed panels.
fn driver<PA>(m: usize, k: usize, n: usize, pack_a: PA, scratch: &mut GemmScratch, c: &mut [f32])
where
    PA: Fn(usize, usize, &mut [f32]) + Sync,
{
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let GemmScratch { packed_b, packed_a } = scratch;
    let packed_b: &[f32] = packed_b;
    let n_row_panels = m.div_ceil(MR);
    if par::workers_for(n_row_panels) <= 1 {
        // Serial path reuses the scratch's A-panel buffer directly.
        packed_a.clear();
        packed_a.resize(k * MR, 0.0);
        for (ip, c_slab) in c.chunks_mut(MR * n).enumerate() {
            let i0 = ip * MR;
            let h = MR.min(m - i0);
            pack_a(i0, h, packed_a);
            row_panel(k, n, h, packed_a, packed_b, c_slab);
        }
        return;
    }
    par::for_each_chunk_mut(c, MR * n, |ip, c_slab| {
        let i0 = ip * MR;
        let h = MR.min(m - i0);
        let mut pa = vec![0.0f32; k * MR];
        pack_a(i0, h, &mut pa);
        row_panel(k, n, h, &pa, packed_b, c_slab);
    });
}

/// Computes one `h×n` output slab (`h ≤ MR`) from a packed A panel and all
/// packed B panels.
fn row_panel(k: usize, n: usize, h: usize, pa: &[f32], packed_b: &[f32], c_slab: &mut [f32]) {
    let n_col_panels = n.div_ceil(NR);
    for jp in 0..n_col_panels {
        let j0 = jp * NR;
        let w = NR.min(n - j0);
        let pb = &packed_b[jp * k * NR..(jp + 1) * k * NR];
        let mut acc = [[0.0f32; NR]; MR];
        microkernel(pa, pb, &mut acc);
        for (r, acc_row) in acc.iter().enumerate().take(h) {
            let dst = &mut c_slab[r * n + j0..r * n + j0 + w];
            dst.copy_from_slice(&acc_row[..w]);
        }
    }
}

/// The `MR×NR` register microkernel: `acc[r][s] += pa[kk,r] · pb[kk,s]`
/// for ascending `kk`. One multiply-round and one add-round per step per
/// accumulator — the naive kernel's exact rounding sequence.
#[inline(always)]
fn microkernel(pa: &[f32], pb: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (a, b) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)) {
        let b: [f32; NR] = b.try_into().expect("panel stride");
        for r in 0..MR {
            let ar = a[r];
            for s in 0..NR {
                acc[r][s] += ar * b[s];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn reference_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn random(len: usize, seed: u64) -> Vec<f32> {
        let mut r = seeded(seed);
        (0..len).map(|_| r.gen_range(-2.0f32..2.0)).collect()
    }

    #[test]
    fn nn_matches_reference_bitwise_over_shapes() {
        for (case, &(m, k, n)) in [
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 4, 4),
            (5, 9, 6),
            (17, 23, 19),
            (32, 64, 48),
            (1, 100, 1),
        ]
        .iter()
        .enumerate()
        {
            let a = random(m * k, 100 + case as u64);
            let b = random(k * n, 200 + case as u64);
            let mut c = vec![f32::NAN; m * n];
            gemm_nn(m, k, n, &a, &b, &mut c);
            assert_eq!(c, reference_nn(m, k, n, &a, &b), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn nt_and_tn_match_explicit_transposes() {
        let (m, k, n) = (13, 21, 11);
        let a = random(m * k, 1);
        let bt = random(n * k, 2); // logical B is k×n; bt is its transpose n×k
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let mut c_nt = vec![0.0f32; m * n];
        gemm_nt(m, k, n, &a, &bt, &mut c_nt);
        assert_eq!(c_nt, reference_nn(m, k, n, &a, &b));

        let at = random(k * m, 3); // logical A is m×k; at is its transpose k×m
        let mut a2 = vec![0.0f32; m * k];
        for i in 0..m {
            for kk in 0..k {
                a2[i * k + kk] = at[kk * m + i];
            }
        }
        let mut c_tn = vec![0.0f32; m * n];
        gemm_tn(m, k, n, &at, &b, &mut c_tn);
        assert_eq!(c_tn, reference_nn(m, k, n, &a2, &b));
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let (m, k, n) = (37, 29, 41);
        let a = random(m * k, 7);
        let b = random(k * n, 8);
        let mut c1 = vec![0.0f32; m * n];
        crate::par::set_threads(Some(1));
        gemm_nn(m, k, n, &a, &b, &mut c1);
        let mut c4 = vec![0.0f32; m * n];
        crate::par::set_threads(Some(4));
        gemm_nn(m, k, n, &a, &b, &mut c4);
        crate::par::set_threads(None);
        assert_eq!(c1, c4);
    }

    #[test]
    fn degenerate_dims() {
        // k == 0 → zero matrix.
        let mut c = vec![f32::NAN; 6];
        gemm_nn(2, 0, 3, &[], &[], &mut c);
        assert_eq!(c, vec![0.0; 6]);
        // m == 0 → nothing to do (and nothing to write).
        let mut empty: Vec<f32> = vec![];
        gemm_nn(0, 4, 3, &[], &random(12, 9), &mut empty);
    }
}
