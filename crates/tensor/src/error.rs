use std::error::Error;
use std::fmt;

use crate::shape::Shape;

/// Error raised by tensor construction and kernel routines.
///
/// All fallible public functions in this crate return
/// `Result<_, TensorError>`; the variants carry enough context to print an
/// actionable message without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the product of the shape's
    /// dimensions.
    LengthMismatch {
        /// Shape the caller asked for.
        shape: Shape,
        /// Length of the buffer actually provided.
        len: usize,
    },
    /// Two operands have shapes that the requested operation cannot combine.
    ShapeMismatch {
        /// Name of the operation that rejected the operands.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Shape,
        /// Shape of the right-hand operand.
        rhs: Shape,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Name of the operation that rejected the operand.
        op: &'static str,
        /// Rank the operation expected.
        expected: usize,
        /// Rank it received.
        actual: usize,
    },
    /// A convolution/pooling geometry is impossible (e.g. kernel larger than
    /// the padded input, or zero-sized window).
    InvalidGeometry {
        /// Name of the operation that rejected the geometry.
        op: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { shape, len } => write!(
                f,
                "buffer of length {len} does not match shape {shape} (needs {})",
                shape.len()
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs} and {rhs}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op}: expected rank {expected}, got rank {actual}"),
            TensorError::InvalidGeometry { op, reason } => {
                write!(f, "{op}: invalid geometry: {reason}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_ish() {
        let e = TensorError::LengthMismatch {
            shape: Shape::d2(2, 3),
            len: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("length 5"));
        assert!(msg.contains("needs 6"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
