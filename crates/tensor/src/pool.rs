//! Max and average pooling with the argmax bookkeeping backprop needs.
//!
//! The paper's networks use `maxpool 2×2`/`3×3` (LeNet, ConvNet, ALEX's
//! first stage) and `avgpool 3×3` (ALEX's later stages); both are supported
//! with arbitrary square windows, stride and padding via
//! [`Geometry`].

use crate::conv::{conv_input_dims, Geometry};
use crate::error::TensorError;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Result of a max-pooling forward pass: the pooled tensor plus, for each
/// output element, the linear index of the winning input element (used by
/// [`max_pool2d_backward`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MaxPoolOutput {
    /// Pooled activations, `(N, C, OH, OW)`.
    pub output: Tensor,
    /// For each output element, the flat index into the input of the max.
    pub argmax: Vec<usize>,
}

/// Max-pools a `(N, C, H, W)` batch.
///
/// Padding positions never win the max: windows are evaluated only over
/// in-bounds taps (matching Caffe's behaviour for `MAX` pooling).
///
/// # Errors
///
/// Returns an error if the input is not rank 4 or the geometry is
/// impossible.
pub fn max_pool2d(input: &Tensor, geom: Geometry) -> Result<MaxPoolOutput, TensorError> {
    let (n, c, h, w) = conv_input_dims(input)?;
    let (oh, ow) = geom.output_hw(h, w)?;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut argmax = vec![0usize; n * c * oh * ow];
    let data = input.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            let oplane = (ni * c + ci) * oh * ow;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = None;
                    for ki in 0..geom.kh {
                        let ii = (oi * geom.stride + ki) as isize - geom.pad as isize;
                        if ii < 0 || ii as usize >= h {
                            continue;
                        }
                        for kj in 0..geom.kw {
                            let jj = (oj * geom.stride + kj) as isize - geom.pad as isize;
                            if jj < 0 || jj as usize >= w {
                                continue;
                            }
                            let idx = plane + ii as usize * w + jj as usize;
                            if data[idx] > best || best_idx.is_none() {
                                best = data[idx];
                                best_idx = Some(idx);
                            }
                        }
                    }
                    let idx = best_idx.ok_or_else(|| TensorError::InvalidGeometry {
                        op: "max_pool2d",
                        reason: "pooling window contains no in-bounds taps".to_string(),
                    })?;
                    out[oplane + oi * ow + oj] = best;
                    argmax[oplane + oi * ow + oj] = idx;
                }
            }
        }
    }
    Ok(MaxPoolOutput {
        output: Tensor::from_vec(Shape::d4(n, c, oh, ow), out)?,
        argmax,
    })
}

/// Routes the upstream gradient back to the argmax positions recorded by
/// [`max_pool2d`].
///
/// # Errors
///
/// Returns an error if `grad_out` length differs from `argmax` length.
pub fn max_pool2d_backward(
    input_shape: &Shape,
    argmax: &[usize],
    grad_out: &Tensor,
) -> Result<Tensor, TensorError> {
    if grad_out.len() != argmax.len() {
        return Err(TensorError::ShapeMismatch {
            op: "max_pool2d_backward",
            lhs: grad_out.shape().clone(),
            rhs: Shape::d1(argmax.len()),
        });
    }
    let mut gx = Tensor::zeros(input_shape.clone());
    let gxs = gx.as_mut_slice();
    for (&idx, &g) in argmax.iter().zip(grad_out.as_slice().iter()) {
        gxs[idx] += g;
    }
    Ok(gx)
}

/// Average-pools a `(N, C, H, W)` batch.
///
/// The divisor is the full window size `kh·kw` regardless of padding
/// (Caffe's `AVE` pooling semantics), so padded border windows average in
/// zeros.
///
/// # Errors
///
/// Returns an error if the input is not rank 4 or the geometry is
/// impossible.
pub fn avg_pool2d(input: &Tensor, geom: Geometry) -> Result<Tensor, TensorError> {
    let (n, c, h, w) = conv_input_dims(input)?;
    let (oh, ow) = geom.output_hw(h, w)?;
    let norm = 1.0 / (geom.kh * geom.kw) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let data = input.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            let oplane = (ni * c + ci) * oh * ow;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0f32;
                    for ki in 0..geom.kh {
                        let ii = (oi * geom.stride + ki) as isize - geom.pad as isize;
                        if ii < 0 || ii as usize >= h {
                            continue;
                        }
                        for kj in 0..geom.kw {
                            let jj = (oj * geom.stride + kj) as isize - geom.pad as isize;
                            if jj < 0 || jj as usize >= w {
                                continue;
                            }
                            acc += data[plane + ii as usize * w + jj as usize];
                        }
                    }
                    out[oplane + oi * ow + oj] = acc * norm;
                }
            }
        }
    }
    Tensor::from_vec(Shape::d4(n, c, oh, ow), out)
}

/// Gradient of [`avg_pool2d`]: spreads each upstream gradient uniformly over
/// its window's in-bounds taps with weight `1/(kh·kw)`.
///
/// # Errors
///
/// Returns an error if `grad_out` is not rank 4 or shapes are inconsistent.
pub fn avg_pool2d_backward(
    input_shape: &Shape,
    grad_out: &Tensor,
    geom: Geometry,
) -> Result<Tensor, TensorError> {
    if input_shape.rank() != 4 || grad_out.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "avg_pool2d_backward",
            expected: 4,
            actual: input_shape.rank().min(grad_out.shape().rank()),
        });
    }
    let (n, c, h, w) = (
        input_shape.dim(0),
        input_shape.dim(1),
        input_shape.dim(2),
        input_shape.dim(3),
    );
    let (oh, ow) = geom.output_hw(h, w)?;
    if grad_out.shape().dims() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "avg_pool2d_backward",
            lhs: grad_out.shape().clone(),
            rhs: Shape::d4(n, c, oh, ow),
        });
    }
    let norm = 1.0 / (geom.kh * geom.kw) as f32;
    let mut gx = Tensor::zeros(input_shape.clone());
    let gxs = gx.as_mut_slice();
    let gos = grad_out.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            let oplane = (ni * c + ci) * oh * ow;
            for oi in 0..oh {
                for oj in 0..ow {
                    let g = gos[oplane + oi * ow + oj] * norm;
                    for ki in 0..geom.kh {
                        let ii = (oi * geom.stride + ki) as isize - geom.pad as isize;
                        if ii < 0 || ii as usize >= h {
                            continue;
                        }
                        for kj in 0..geom.kw {
                            let jj = (oj * geom.stride + kj) as isize - geom.pad as isize;
                            if jj < 0 || jj as usize >= w {
                                continue;
                            }
                            gxs[plane + ii as usize * w + jj as usize] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(gx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Shape, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(shape, v).unwrap()
    }

    #[test]
    fn max_pool_2x2() {
        let x = t(
            Shape::d4(1, 1, 4, 4),
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        );
        let p = max_pool2d(&x, Geometry::square(2, 2, 0)).unwrap();
        assert_eq!(p.output.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(p.output.as_slice(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn max_pool_handles_negative_inputs() {
        // All-negative window must still pick the (negative) max, not 0.
        let x = t(Shape::d4(1, 1, 2, 2), vec![-5., -3., -9., -7.]);
        let p = max_pool2d(&x, Geometry::square(2, 2, 0)).unwrap();
        assert_eq!(p.output.as_slice(), &[-3.]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = t(Shape::d4(1, 1, 2, 2), vec![1., 9., 3., 4.]);
        let p = max_pool2d(&x, Geometry::square(2, 2, 0)).unwrap();
        let g = t(Shape::d4(1, 1, 1, 1), vec![2.5]);
        let gx = max_pool2d_backward(x.shape(), &p.argmax, &g).unwrap();
        assert_eq!(gx.as_slice(), &[0., 2.5, 0., 0.]);
    }

    #[test]
    fn max_pool_overlapping_stride() {
        // ALEX uses 3×3 pooling with stride 2 — overlapping windows.
        let x = Tensor::ones(Shape::d4(1, 1, 5, 5));
        let p = max_pool2d(&x, Geometry::square(3, 2, 0)).unwrap();
        assert_eq!(p.output.shape().dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn avg_pool_2x2() {
        let x = t(Shape::d4(1, 1, 2, 2), vec![1., 2., 3., 4.]);
        let y = avg_pool2d(&x, Geometry::square(2, 2, 0)).unwrap();
        assert_eq!(y.as_slice(), &[2.5]);
    }

    #[test]
    fn avg_pool_padded_window_averages_in_zeros() {
        let x = t(Shape::d4(1, 1, 2, 2), vec![4., 4., 4., 4.]);
        let y = avg_pool2d(&x, Geometry::square(2, 2, 1)).unwrap();
        // Each corner window sees one real pixel + three pads → 4/4 = 1.
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[1., 1., 1., 1.]);
    }

    #[test]
    fn avg_pool_backward_matches_numeric_gradient() {
        let geom = Geometry::square(3, 2, 1);
        let x = t(
            Shape::d4(1, 2, 4, 4),
            (0..32).map(|i| (i as f32 * 0.3).sin()).collect(),
        );
        let y = avg_pool2d(&x, geom).unwrap();
        let gout = Tensor::ones(y.shape().clone());
        let gx = avg_pool2d_backward(x.shape(), &gout, geom).unwrap();
        let eps = 1e-3;
        for idx in [0usize, 9, 21, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let yp = avg_pool2d(&xp, geom).unwrap().sum();
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let ym = avg_pool2d(&xm, geom).unwrap().sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - gx.as_slice()[idx]).abs() < 1e-2,
                "x[{idx}]: num={num} ana={}",
                gx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn max_pool_backward_length_check() {
        let g = Tensor::ones(Shape::d4(1, 1, 1, 2));
        assert!(max_pool2d_backward(&Shape::d4(1, 1, 2, 2), &[0], &g).is_err());
    }
}
