use crate::error::TensorError;
use crate::shape::Shape;

/// An owned, contiguous, row-major tensor of `f32`.
///
/// This is the only array type in the workspace: weights, activations,
/// gradients and images are all `Tensor`s. It is deliberately simple — no
/// views, no broadcasting beyond what the network layers need — because the
/// paper's workloads (LeNet/ConvNet/ALEX at 28–32 px) are small enough that
/// clarity beats generality.
///
/// ```
/// use qnn_tensor::{Shape, Tensor};
///
/// let t = Tensor::zeros(Shape::d2(2, 2));
/// let u = t.map(|x| x + 1.0);
/// assert_eq!(u.as_slice(), &[1.0; 4]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and a backing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// `shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                shape,
                len: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// All-zero tensor of the given shape.
    pub fn zeros(shape: Shape) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// All-one tensor of the given shape.
    pub fn ones(shape: Shape) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: vec![1.0; len],
        }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: Shape, value: f32) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer, row-major.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer, row-major.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor, TensorError> {
        if shape.len() != self.len() {
            return Err(TensorError::LengthMismatch {
                shape,
                len: self.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|x| x * k)
    }

    /// `self += k * other`, the AXPY update used by SGD.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, k: f32, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += k * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Dot product of the flattened tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Checks that `self` and `other` are rank 2 and extracts
    /// `(rows₀, cols₀, rows₁, cols₁)`, reporting errors under `op`.
    fn matmul_dims(
        &self,
        other: &Tensor,
        op: &'static str,
    ) -> Result<(usize, usize, usize, usize), TensorError> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op,
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        if other.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op,
                expected: 2,
                actual: other.shape.rank(),
            });
        }
        Ok((
            self.shape.dim(0),
            self.shape.dim(1),
            other.shape.dim(0),
            other.shape.dim(1),
        ))
    }

    /// Matrix product of two rank-2 tensors.
    ///
    /// Uses the blocked kernel in [`crate::gemm`]: packed panels, a 4×4
    /// register microkernel, and row panels distributed over the
    /// [`crate::par`] pool. Bit-identical to [`matmul_naive`](Self::matmul_naive)
    /// at any thread count (each output element keeps a single accumulator
    /// walking `k` in ascending order).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not rank 2
    /// and [`TensorError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let (m, k, k2, n) = self.matmul_dims(other, "matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm_nn(m, k, n, &self.data, &other.data, &mut out);
        Tensor::from_vec(Shape::d2(m, n), out)
    }

    /// Reference matrix product: the plain `i-j-k` triple loop.
    ///
    /// Kept as the oracle the blocked [`matmul`](Self::matmul) must match
    /// bit-for-bit, and as the baseline the bench harness measures the
    /// blocked kernel against.
    ///
    /// # Errors
    ///
    /// Same contract as [`matmul`](Self::matmul).
    pub fn matmul_naive(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let (m, k, k2, n) = self.matmul_dims(other, "matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let mut acc = 0.0f32;
                for (kk, &a) in arow.iter().enumerate() {
                    acc += a * other.data[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(Shape::d2(m, n), out)
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// `self` is `m×k`, `other` is `n×k`; the result is `m×n`. This is the
    /// dense-layer forward product `x·Wᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 operands and
    /// [`TensorError::ShapeMismatch`] if the `k` dimensions differ.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let (m, k, n, k2) = self.matmul_dims(other, "matmul_nt")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm_nt(m, k, n, &self.data, &other.data, &mut out);
        Tensor::from_vec(Shape::d2(m, n), out)
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// `self` is `k×m`, `other` is `k×n`; the result is `m×n`. This is the
    /// dense-layer weight gradient `dYᵀ·X`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 operands and
    /// [`TensorError::ShapeMismatch`] if the `k` dimensions differ.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let (k, m, k2, n) = self.matmul_dims(other, "matmul_tn")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm_tn(m, k, n, &self.data, &other.data, &mut out);
        Tensor::from_vec(Shape::d2(m, n), out)
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(Shape::d2(n, m), out)
    }

    /// Index of the largest element (ties resolve to the first).
    ///
    /// Returns `None` for an empty tensor.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }
}

impl Default for Tensor {
    /// A rank-1 tensor with a single zero element.
    fn default() -> Self {
        Tensor::zeros(Shape::d1(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        let err = Tensor::from_vec(Shape::d2(2, 2), vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, TensorError::LengthMismatch { .. }));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(Shape::d1(3), vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec(Shape::d1(3), vec![4., 5., 6.]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4., 6.]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert_eq!(a.sum(), 6.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Tensor::zeros(Shape::d1(3));
        let g = Tensor::from_vec(Shape::d1(3), vec![1., 2., 3.]).unwrap();
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.as_slice(), &[-0.5, -1.0, -1.5]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(Shape::d2(3, 2), vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(Shape::d2(2, 2), vec![3., 1., 4., 1.]).unwrap();
        let id = Tensor::from_vec(Shape::d2(2, 2), vec![1., 0., 0., 1.]).unwrap();
        assert_eq!(a.matmul(&id).unwrap(), a);
        assert_eq!(id.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_matches_naive_bitwise() {
        let mut r = crate::rng::seeded(0xA11CE);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (16, 16, 16),
            (9, 33, 17),
        ] {
            let a = crate::init::uniform(Shape::d2(m, k), -2.0, 2.0, &mut r);
            let b = crate::init::uniform(Shape::d2(k, n), -2.0, 2.0, &mut r);
            assert_eq!(a.matmul(&b).unwrap(), a.matmul_naive(&b).unwrap());
        }
    }

    #[test]
    fn matmul_nt_tn_match_explicit_transpose() {
        let mut r = crate::rng::seeded(0xBEE);
        let a = crate::init::uniform(Shape::d2(6, 11), -1.0, 1.0, &mut r);
        let b = crate::init::uniform(Shape::d2(9, 11), -1.0, 1.0, &mut r);
        assert_eq!(
            a.matmul_nt(&b).unwrap(),
            a.matmul(&b.transpose().unwrap()).unwrap()
        );
        let x = crate::init::uniform(Shape::d2(11, 6), -1.0, 1.0, &mut r);
        let y = crate::init::uniform(Shape::d2(11, 9), -1.0, 1.0, &mut r);
        assert_eq!(
            x.matmul_tn(&y).unwrap(),
            x.transpose().unwrap().matmul(&y).unwrap()
        );
    }

    #[test]
    fn matmul_nt_rejects_mismatched_inner_dim() {
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(4, 5));
        assert!(matches!(
            a.matmul_nt(&b).unwrap_err(),
            TensorError::ShapeMismatch {
                op: "matmul_nt",
                ..
            }
        ));
        assert!(matches!(
            a.matmul_tn(&b).unwrap_err(),
            TensorError::ShapeMismatch {
                op: "matmul_tn",
                ..
            }
        ));
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(2, 3));
        assert!(matches!(
            a.matmul(&b).unwrap_err(),
            TensorError::ShapeMismatch { op: "matmul", .. }
        ));
        let v = Tensor::zeros(Shape::d1(3));
        assert!(matches!(
            v.matmul(&b).unwrap_err(),
            TensorError::RankMismatch { op: "matmul", .. }
        ));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.as_slice(), &[1., 4., 2., 5., 3., 6.]);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn argmax_first_tie_and_empty() {
        let a = Tensor::from_vec(Shape::d1(4), vec![1., 7., 7., 2.]).unwrap();
        assert_eq!(a.argmax(), Some(1));
        let e = Tensor::zeros(Shape::d1(0));
        assert_eq!(e.argmax(), None);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = a.reshape(Shape::d3(1, 2, 3)).unwrap();
        assert_eq!(b.as_slice(), a.as_slice());
        assert!(a.reshape(Shape::d1(5)).is_err());
    }

    #[test]
    fn at_and_at_mut() {
        let mut a = Tensor::zeros(Shape::d3(2, 2, 2));
        *a.at_mut(&[1, 0, 1]) = 9.0;
        assert_eq!(a.at(&[1, 0, 1]), 9.0);
        assert_eq!(a.at(&[0, 0, 0]), 0.0);
    }
}
