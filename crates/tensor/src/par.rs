//! Minimal scoped thread pool with deterministic partitioning.
//!
//! The compute kernels (`matmul` row panels, per-image im2col, fake-quantize
//! passes) and the experiment runner fan work out over `std::thread::scope`
//! — no external runtime. Two invariants make this safe to use everywhere:
//!
//! 1. **Determinism:** work is split into *fixed* units whose boundaries do
//!    not depend on the thread count (contiguous index ranges for disjoint
//!    outputs; fixed-size blocks for reductions, combined sequentially in
//!    block order). Results are bit-identical at any thread count.
//! 2. **No nesting blow-up:** a worker spawned by this module runs nested
//!    parallel regions serially (a thread-local depth flag), so a parallel
//!    sweep over training runs does not multiply into `T²` threads.
//!
//! The thread count defaults to the host parallelism, can be pinned with the
//! `QNN_THREADS` environment variable, and can be overridden at runtime with
//! [`set_threads`] (used by the determinism regression tests to compare
//! 1-thread and N-thread execution on the same host).
//!
//! **Tracing.** When a `qnn_trace` session is active, every spawned worker
//! records its telemetry into a [`qnn_trace::capture`] buffer and the
//! owning thread [`qnn_trace::splice`]s the buffers back in range order
//! after the join — so the trace event stream, like the numeric results,
//! is bit-identical at any thread count. Disabled tracing costs one atomic
//! load per region.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Runtime override set by [`set_threads`]; 0 means "no override".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Default thread count: `QNN_THREADS` if set and valid, else host parallelism.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("QNN_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

thread_local! {
    /// Non-zero inside a worker spawned by this module.
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads parallel regions will use.
pub fn threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Overrides the thread count process-wide; `None` restores the default
/// (`QNN_THREADS` or host parallelism). Results are bit-identical at any
/// setting; this only changes how work is distributed.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// True when called from inside a worker of an enclosing parallel region.
pub fn is_nested() -> bool {
    DEPTH.with(|d| d.get() > 0)
}

/// Runs `f` with the nested-region flag raised (workers call this).
pub fn mark_worker<R>(f: impl FnOnce() -> R) -> R {
    DEPTH.with(|d| d.set(d.get() + 1));
    let out = f();
    DEPTH.with(|d| d.set(d.get() - 1));
    out
}

/// Joins worker handles in spawn order, splicing each worker's captured
/// trace buffer back into the owning thread's stream. Spawn order equals
/// range order, so the merged event stream is deterministic.
pub(crate) fn join_spliced(handles: Vec<std::thread::ScopedJoinHandle<'_, qnn_trace::Buffer>>) {
    for h in handles {
        match h.join() {
            Ok(buf) => qnn_trace::splice(buf),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// Effective worker count for a region of `n_units` independent units:
/// 1 when nested or single-threaded, never more than `n_units`.
pub fn workers_for(n_units: usize) -> usize {
    if is_nested() {
        return 1;
    }
    threads().min(n_units).max(1)
}

/// Splits `0..n` into `w` contiguous ranges whose sizes differ by at most
/// one. The partition depends only on `(n, w)`.
pub fn partition(n: usize, w: usize) -> Vec<std::ops::Range<usize>> {
    let w = w.max(1);
    let base = n / w;
    let extra = n % w;
    let mut out = Vec::with_capacity(w);
    let mut start = 0;
    for i in 0..w {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f(i)` for every `i in 0..n`, distributing contiguous index ranges
/// over the pool. `f` must only touch state disjoint across indices (use
/// interior channels like `&[Mutex<_>]` otherwise — or better, [`map`]).
pub fn for_each<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let w = workers_for(n);
    if w <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let mut ranges = partition(n, w).into_iter();
    let own = ranges.next().expect("w >= 1");
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(w - 1);
        for range in ranges {
            let f = &f;
            handles.push(s.spawn(move || {
                mark_worker(|| {
                    qnn_trace::capture(|| {
                        for i in range {
                            f(i);
                        }
                    })
                    .1
                })
            }));
        }
        mark_worker(|| {
            for i in own {
                f(i);
            }
        });
        join_spliced(handles);
    });
}

/// Maps `f` over `0..n` in parallel, returning results in index order.
///
/// Each unit of work is identified by its index alone, so the output is
/// independent of the thread count.
pub fn map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map_with_workers(n, workers_for(n), f)
}

/// [`map`] with an explicit worker cap, decoupled from the global
/// [`threads`] setting: uses at most `max_workers` threads (still 1 when
/// nested, never more than `n`). Callers with their own concurrency knob
/// — the serving engine's `--engine-threads` — fan out through this so
/// the compute pool's `QNN_THREADS` setting keeps its meaning.
pub fn map_capped<R, F>(n: usize, max_workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let w = if is_nested() {
        1
    } else {
        max_workers.min(n).max(1)
    };
    map_with_workers(n, w, f)
}

fn map_with_workers<R, F>(n: usize, w: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if w <= 1 {
        return (0..n).map(f).collect();
    }
    let ranges = partition(n, w);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    {
        let mut rest: &mut [Option<R>] = &mut slots;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(w - 1);
            let mut first: Option<(std::ops::Range<usize>, &mut [Option<R>])> = None;
            for range in ranges {
                let (slab, tail) = rest.split_at_mut(range.len());
                rest = tail;
                if first.is_none() {
                    first = Some((range, slab));
                    continue;
                }
                let f = &f;
                handles.push(s.spawn(move || {
                    mark_worker(|| {
                        qnn_trace::capture(|| {
                            for (slot, i) in slab.iter_mut().zip(range) {
                                *slot = Some(f(i));
                            }
                        })
                        .1
                    })
                }));
            }
            if let Some((range, slab)) = first {
                mark_worker(|| {
                    for (slot, i) in slab.iter_mut().zip(range) {
                        *slot = Some(f(i));
                    }
                });
            }
            join_spliced(handles);
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

/// Splits `data` into chunks of `chunk_len` (last may be short) and applies
/// `f(chunk_index, chunk)` in parallel. Chunk boundaries depend only on
/// `chunk_len`, so in-place transforms are bit-identical at any thread count.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let w = workers_for(n_chunks);
    if w <= 1 {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, chunk);
        }
        return;
    }
    let ranges = partition(n_chunks, w);
    let mut rest = data;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(w - 1);
        let mut first: Option<(std::ops::Range<usize>, &mut [T])> = None;
        for range in ranges {
            let take = (range.len() * chunk_len).min(rest.len());
            let (slab, tail) = rest.split_at_mut(take);
            rest = tail;
            if first.is_none() {
                first = Some((range, slab));
                continue;
            }
            let f = &f;
            handles.push(s.spawn(move || {
                mark_worker(|| {
                    qnn_trace::capture(|| {
                        for (off, chunk) in slab.chunks_mut(chunk_len).enumerate() {
                            f(range.start + off, chunk);
                        }
                    })
                    .1
                })
            }));
        }
        if let Some((range, slab)) = first {
            mark_worker(|| {
                for (off, chunk) in slab.chunks_mut(chunk_len).enumerate() {
                    f(range.start + off, chunk);
                }
            });
        }
        join_spliced(handles);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn partition_is_exact_and_balanced() {
        for n in [0usize, 1, 7, 8, 9, 100] {
            for w in 1..6 {
                let parts = partition(n, w);
                assert_eq!(parts.len(), w);
                assert_eq!(parts.iter().map(|r| r.len()).sum::<usize>(), n);
                let max = parts.iter().map(|r| r.len()).max().unwrap();
                let min = parts.iter().map(|r| r.len()).min().unwrap();
                assert!(max - min <= 1, "n={n} w={w} {parts:?}");
                // Contiguity.
                let mut next = 0;
                for r in &parts {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn map_returns_in_index_order() {
        for w in [1usize, 2, 3, 8] {
            set_threads(Some(w));
            let out = map(57, |i| i * i);
            assert_eq!(out, (0..57).map(|i| i * i).collect::<Vec<_>>());
        }
        set_threads(None);
    }

    #[test]
    fn map_capped_ignores_the_global_setting() {
        set_threads(Some(1));
        // Even at QNN_THREADS=1, an explicit cap of 4 parallelises — and
        // still returns results in index order.
        let out = map_capped(10, 4, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        // Nested regions stay serial regardless of the cap.
        let nested = map_capped(2, 2, |_| map_capped(2, 2, |_| is_nested()));
        set_threads(None);
        assert!(nested.iter().flatten().all(|&n| n));
    }

    #[test]
    fn for_each_visits_every_index_once() {
        set_threads(Some(4));
        let hits: Vec<AtomicU64> = (0..33).map(|_| AtomicU64::new(0)).collect();
        for_each(33, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        set_threads(None);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunked_transform_is_thread_count_invariant() {
        let base: Vec<f32> = (0..1000).map(|i| i as f32 * 0.5).collect();
        let mut one = base.clone();
        set_threads(Some(1));
        for_each_chunk_mut(&mut one, 64, |_, c| c.iter_mut().for_each(|x| *x = x.sin()));
        let mut four = base.clone();
        set_threads(Some(4));
        for_each_chunk_mut(&mut four, 64, |_, c| {
            c.iter_mut().for_each(|x| *x = x.sin())
        });
        set_threads(None);
        assert_eq!(one, four);
    }

    #[test]
    fn nested_regions_run_serial() {
        set_threads(Some(4));
        let out = map(4, |i| {
            assert!(is_nested() || threads() == 1 || workers_for(8) >= 1);
            // Inside a worker, further regions must not spawn.
            map(3, move |j| (i, j, is_nested()))
        });
        set_threads(None);
        for (i, inner) in out.iter().enumerate() {
            for (j, (ii, jj, nested)) in inner.iter().enumerate() {
                assert_eq!((*ii, *jj), (i, j));
                assert!(*nested);
            }
        }
    }
}
