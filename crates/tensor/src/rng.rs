//! Deterministic RNG plumbing.
//!
//! Every stochastic component in the workspace (weight init, dataset
//! synthesis, batch shuffling) draws from a seeded
//! [`SmallRng`] so experiments are reproducible
//! run-to-run — a prerequisite for the paper's "all parameters except
//! precision held constant" methodology.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// ```
/// use qnn_tensor::rng::seeded;
/// use rand::Rng;
///
/// let mut a = seeded(42);
/// let mut b = seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives an independent child seed from a parent seed and a stream index.
///
/// Uses the SplitMix64 finalizer so adjacent streams are uncorrelated; used
/// to give each layer / dataset split its own stream without threading RNG
/// state everywhere.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws a standard-normal sample via Box–Muller.
///
/// `rand` 0.8 without `rand_distr` has no normal distribution; two uniforms
/// suffice for weight init, where tail quality is irrelevant.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        let av: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(av, bv);
    }

    #[test]
    fn derive_seed_separates_streams() {
        let s0 = derive_seed(1, 0);
        let s1 = derive_seed(1, 1);
        let s2 = derive_seed(2, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
    }

    #[test]
    fn standard_normal_has_plausible_moments() {
        let mut rng = seeded(123);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
