//! Deterministic RNG plumbing — hand-rolled, zero external dependencies.
//!
//! Every stochastic component in the workspace (weight init, dataset
//! synthesis, batch shuffling) draws from a seeded [`Rng`] so experiments
//! are reproducible run-to-run — a prerequisite for the paper's "all
//! parameters except precision held constant" methodology.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), with its 256-bit
//! state filled from the 64-bit seed by a SplitMix64 stream — the standard
//! seeding recipe recommended by the xoshiro authors. Both algorithms are
//! public-domain and small enough to carry inline, which keeps the whole
//! workspace buildable offline.

/// A seeded xoshiro256++ generator.
///
/// ```
/// use qnn_tensor::rng::seeded;
///
/// let mut a = seeded(42);
/// let mut b = seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

/// One step of the SplitMix64 sequence; also the seed-expansion stream.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator whose state is expanded from `seed` via SplitMix64.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Snapshot of the raw 256-bit generator state, for checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`state`](Rng::state) snapshot, resuming
    /// the stream exactly where the snapshot was taken.
    pub fn from_state(s: [u64; 4]) -> Self {
        Rng { s }
    }

    /// The core xoshiro256++ step: 64 fresh bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }

    /// 32 fresh bits (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of mantissa entropy.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of mantissa entropy.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a range; accepts the same range expressions the
    /// old `rand::Rng::gen_range` did at our call sites (`0..n`, `a..b`
    /// on floats, `a..=b` on floats).
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle (replacement for `rand::seq::SliceRandom`).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f32 {
        debug_assert!(self.start < self.end, "empty f32 range");
        let x = self.start + (self.end - self.start) * rng.next_f32();
        // Floating rounding can land exactly on `end`; clamp to half-open.
        if x >= self.end {
            // Largest representable value below `end`.
            f32::from_bits(self.end.to_bits() - 1)
        } else {
            x
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f32> {
    type Output = f32;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f32 {
        let (a, b) = (*self.start(), *self.end());
        a + (b - a) * rng.next_f32()
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range");
        let x = self.start + (self.end - self.start) * rng.next_f64();
        if x >= self.end {
            f64::from_bits(self.end.to_bits() - 1)
        } else {
            x
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64 * span,
                // irrelevant for the span sizes used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty integer range");
                let span = (b as u64).wrapping_sub(a as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (a as u64).wrapping_add(hi) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> Rng {
    Rng::from_seed(seed)
}

/// Derives an independent child seed from a parent seed and a stream index.
///
/// Uses the SplitMix64 finalizer so adjacent streams are uncorrelated; used
/// to give each layer / dataset split its own stream without threading RNG
/// state everywhere.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws a standard-normal sample via Box–Muller.
///
/// Two uniforms suffice for weight init, where tail quality is irrelevant.
pub fn standard_normal(rng: &mut Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0f32);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(av, bv);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256++ from the all-ones state: first outputs computed from
        // the reference C implementation's recurrence.
        let mut r = Rng { s: [1, 2, 3, 4] };
        // result = rotl(s0 + s3, 23) + s0 = rotl(5, 23) + 1
        assert_eq!(r.next_u64(), (5u64).rotate_left(23) + 1);
    }

    #[test]
    fn derive_seed_separates_streams() {
        let s0 = derive_seed(1, 0);
        let s1 = derive_seed(1, 1);
        let s2 = derive_seed(2, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = seeded(9);
        for _ in 0..10_000 {
            let x = r.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&x), "{x}");
            let n = r.gen_range(3usize..17);
            assert!((3..17).contains(&n), "{n}");
            let m = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&m), "{m}");
            let y = r.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&y), "{y}");
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = seeded(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = seeded(5);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn standard_normal_has_plausible_moments() {
        let mut rng = seeded(123);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_f32_has_plausible_mean() {
        let mut rng = seeded(321);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.next_f32() as f64).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
