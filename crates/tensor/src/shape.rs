use std::fmt;

/// The extent of a tensor along up to four axes, row-major.
///
/// Rank-4 shapes follow the `(N, C, H, W)` convention used throughout the
/// workspace: batch, channels, height, width. Lower ranks simply use fewer
/// leading axes (a rank-2 shape is `(rows, cols)`).
///
/// ```
/// use qnn_tensor::Shape;
///
/// let s = Shape::d4(8, 3, 32, 32);
/// assert_eq!(s.len(), 8 * 3 * 32 * 32);
/// assert_eq!(s.rank(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from an arbitrary dimension list.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or has more than four axes; the workspace
    /// only ever manipulates rank 1–4 tensors and silently accepting higher
    /// ranks would hide bugs.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= 4,
            "shape must have rank 1..=4, got {}",
            dims.len()
        );
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Rank-1 shape (a vector of length `n`).
    pub fn d1(n: usize) -> Self {
        Shape { dims: vec![n] }
    }

    /// Rank-2 shape (`rows` × `cols`).
    pub fn d2(rows: usize, cols: usize) -> Self {
        Shape {
            dims: vec![rows, cols],
        }
    }

    /// Rank-3 shape (`c` × `h` × `w`).
    pub fn d3(c: usize, h: usize, w: usize) -> Self {
        Shape {
            dims: vec![c, h, w],
        }
    }

    /// Rank-4 shape (`n` × `c` × `h` × `w`).
    pub fn d4(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape {
            dims: vec![n, c, h, w],
        }
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of all dimensions).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides, in elements.
    ///
    /// ```
    /// use qnn_tensor::Shape;
    /// assert_eq!(Shape::d3(2, 3, 4).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0usize;
        let strides = self.strides();
        for (axis, (&i, &s)) in index.iter().zip(strides.iter()).enumerate() {
            assert!(
                i < self.dims[axis],
                "index {i} out of bounds for axis {axis} with extent {}",
                self.dims[axis]
            );
            off += i * s;
        }
        off
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<(usize, usize)> for Shape {
    fn from((r, c): (usize, usize)) -> Self {
        Shape::d2(r, c)
    }
}

impl From<(usize, usize, usize, usize)> for Shape {
    fn from((n, c, h, w): (usize, usize, usize, usize)) -> Self {
        Shape::d4(n, c, h, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_rank() {
        assert_eq!(Shape::d1(7).len(), 7);
        assert_eq!(Shape::d2(2, 3).len(), 6);
        assert_eq!(Shape::d4(2, 3, 4, 5).len(), 120);
        assert_eq!(Shape::d4(2, 3, 4, 5).rank(), 4);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::d1(5).strides(), vec![1]);
        assert_eq!(Shape::d2(4, 6).strides(), vec![6, 1]);
        assert_eq!(Shape::d4(2, 3, 4, 5).strides(), vec![60, 20, 5, 1]);
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::d3(2, 3, 4);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[0, 0, 3]), 3);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::d2(2, 2).offset(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn new_rejects_rank_5() {
        Shape::new(&[1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_sized_dims_are_empty() {
        assert!(Shape::d2(0, 4).is_empty());
        assert_eq!(Shape::d2(0, 4).len(), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::d3(3, 32, 32).to_string(), "[3×32×32]");
    }
}
