//! Native low-precision GEMM kernels over pre-encoded integer words.
//!
//! These are the compute cores behind the quantized fast path: instead of
//! snapping values to the format grid and multiplying in f32 (the
//! Ristretto-style simulation in `qnn-quant`), callers pre-encode both
//! operands into narrow two's-complement words (or bit planes / exponent
//! codes) and the kernels accumulate in wide integers — i8×i8 and i16×i16
//! into i32, power-of-two shift-add into i64, and binary×binary as
//! XNOR + `count_ones` over packed `u64` planes.
//!
//! All kernels compute the **NT** product `C[i][j] = dot(A.row(i), B.row(j))`
//! — both operands are k-contiguous, which is the layout the dense layer
//! (activations × weightsᵀ) and the im2col'd convolution (weights × colsᵀ)
//! both want, and the one the auto-vectorizer handles best.
//!
//! ## Exactness contract
//!
//! Integer arithmetic is associative, so unlike the f32 GEMM in
//! [`crate::gemm`] these kernels are bit-identical at any thread count *and*
//! any summation order by construction. The caller must guarantee
//! `Σ_k |A[i][k] · B[j][k]| <= i32::MAX` for every output of the i8/i16
//! kernels (the quantized dispatch enforces the far stricter `<= 2^24`
//! certificate from `qnn_quant::packed`, which also makes the final
//! requantize-to-f32 exact). Under that bound no partial sum can overflow —
//! not even reassociated SIMD partials — so debug and release builds agree.
//!
//! ## SIMD dispatch
//!
//! rustc's default x86-64 baseline is SSE2 with no hardware `popcnt`, which
//! leaves ~5x on the table for the XNOR kernel and ~2x for the i16 kernel.
//! Each inner loop is written once as a safe `#[inline(always)]` body and
//! instantiated twice: a plain safe wrapper, and a
//! `#[target_feature(enable = "avx2,popcnt")]` wrapper selected at runtime
//! via `is_x86_feature_detected!`. Both wrappers run the *same* Rust code on
//! the same integers, so feature detection can never change results. The
//! `unsafe` at the call site is the narrow, standard obligation of
//! `target_feature` dispatch: the features were verified on this CPU.

use crate::par;

/// Trace counter: kernel invocations.
const CTR_CALLS: &str = "tensor.qgemm.calls";
/// Trace counter: packed multiply-accumulate operations (`m·k·n`).
const CTR_PACKED_OPS: &str = "tensor.qgemm.packed_ops";
/// Trace counter: `u64` popcount operations issued by the XNOR kernel.
const CTR_POPCOUNTS: &str = "tensor.qgemm.popcounts";

/// Output rows per parallel work unit. Fixed (not derived from the thread
/// count) so the partition is deterministic; integer math makes any
/// partition bit-identical anyway.
const ROWS_PER_TASK: usize = 8;

/// True when the AVX2 + POPCNT fast wrappers may be used on this CPU.
#[cfg(target_arch = "x86_64")]
fn simd_ok() -> bool {
    static OK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *OK.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("popcnt")
    })
}

/// Expands to a runtime-dispatched call of an `#[inline(always)]` kernel
/// body: on x86-64 with AVX2+POPCNT, through a `#[target_feature]` clone of
/// the body; otherwise the plain safe instantiation. Same code either way.
macro_rules! dispatch {
    ($body:ident, $avx2:ident, ($($arg:expr),*)) => {{
        #[cfg(target_arch = "x86_64")]
        {
            if simd_ok() {
                // SAFETY: `simd_ok` verified avx2+popcnt on this CPU, which
                // is the only precondition of the target_feature wrapper.
                unsafe { $avx2($($arg),*) }
            } else {
                $body($($arg),*)
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            $body($($arg),*)
        }
    }};
}

/// Declares the AVX2+POPCNT clone of a kernel body.
macro_rules! avx2_clone {
    ($name:ident = $body:ident ( $($arg:ident : $ty:ty),* )) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2,popcnt")]
        unsafe fn $name($($arg: $ty),*) {
            $body($($arg),*);
        }
    };
}

fn check_nt_dims<A, B, C>(m: usize, k: usize, n: usize, a: &[A], b: &[B], c: &[C]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), n * k, "B must be n*k (row-major transposed)");
    assert_eq!(c.len(), m * n, "C must be m*n");
}

// ---------------------------------------------------------------------------
// i8 / i16 fixed-point kernels
// ---------------------------------------------------------------------------

/// Widening dot-product rows body, shared by the i8 and i16 kernels.
/// Processes the row-chunk `a_rows` (each row `k` long) against all `n`
/// rows of `b`, writing into the matching chunk of `c`.
macro_rules! int_rows_body {
    ($name:ident, $t:ty) => {
        #[inline(always)]
        fn $name(k: usize, n: usize, a_rows: &[$t], b: &[$t], c: &mut [i32]) {
            for (ar, crow) in a_rows.chunks_exact(k).zip(c.chunks_exact_mut(n)) {
                for (cv, br) in crow.iter_mut().zip(b.chunks_exact(k)) {
                    let mut acc = 0i32;
                    for (&x, &y) in ar.iter().zip(br.iter()) {
                        acc += x as i32 * y as i32;
                    }
                    *cv = acc;
                }
            }
        }
    };
}

int_rows_body!(rows_i8, i8);
int_rows_body!(rows_i16, i16);
avx2_clone!(rows_i8_avx2 = rows_i8(k: usize, n: usize, a_rows: &[i8], b: &[i8], c: &mut [i32]));
avx2_clone!(rows_i16_avx2 = rows_i16(k: usize, n: usize, a_rows: &[i16], b: &[i16], c: &mut [i32]));

macro_rules! int_gemm {
    ($(#[$doc:meta])* $name:ident, $t:ty, $body:ident, $avx2:ident) => {
        $(#[$doc])*
        pub fn $name(m: usize, k: usize, n: usize, a: &[$t], b: &[$t], c: &mut [i32]) {
            check_nt_dims(m, k, n, a, b, c);
            qnn_trace::counter!(CTR_CALLS, 1);
            qnn_trace::counter!(CTR_PACKED_OPS, (m * k * n) as u64);
            if k == 0 {
                c.fill(0);
                return;
            }
            par::for_each_chunk_mut(c, ROWS_PER_TASK * n, |ci, chunk| {
                let rows = chunk.len() / n;
                let start = ci * ROWS_PER_TASK;
                let a_rows = &a[start * k..(start + rows) * k];
                dispatch!($body, $avx2, (k, n, a_rows, b, chunk));
            });
        }
    };
}

int_gemm!(
    /// `C[i][j] = Σ_k A[i][k]·B[j][k]` over i8 words with i32 accumulation.
    ///
    /// `a` is `m×k` row-major, `b` is `n×k` row-major (i.e. Bᵀ), `c` is
    /// `m×n`. Caller contract: `Σ_k |A[i][k]·B[j][k]| <= i32::MAX` for every
    /// output (see module docs).
    gemm_nt_i8, i8, rows_i8, rows_i8_avx2
);
int_gemm!(
    /// `C[i][j] = Σ_k A[i][k]·B[j][k]` over i16 words with i32 accumulation.
    ///
    /// Same layout and caller contract as [`gemm_nt_i8`].
    gemm_nt_i16, i16, rows_i16, rows_i16_avx2
);

// ---------------------------------------------------------------------------
// Binary XNOR-popcount kernel
// ---------------------------------------------------------------------------

#[inline(always)]
fn rows_xnor(words: usize, n: usize, k_bits: i32, a_rows: &[u64], b: &[u64], c: &mut [i32]) {
    for (ar, crow) in a_rows.chunks_exact(words).zip(c.chunks_exact_mut(n)) {
        for (cv, br) in crow.iter_mut().zip(b.chunks_exact(words)) {
            let mut diff = 0u32;
            for (&x, &y) in ar.iter().zip(br.iter()) {
                diff += (x ^ y).count_ones();
            }
            *cv = k_bits - 2 * diff as i32;
        }
    }
}
avx2_clone!(
    rows_xnor_avx2 =
        rows_xnor(words: usize, n: usize, k_bits: i32, a_rows: &[u64], b: &[u64], c: &mut [i32])
);

/// Binary×binary GEMM over sign planes: `C[i][j] = Σ_k s(A)·s(B)` where
/// each element is ±1, stored as one bit per element (1 = negative).
///
/// `a` is `m×words` and `b` is `n×words` of packed `u64` planes, each row
/// holding `k_bits` sign bits little-endian within words; `c` is `m×n`.
/// The dot product of ±1 vectors is `k - 2·popcount(a XOR b)`. Padding
/// bits beyond `k_bits` must be **equal** in both operands (the packers
/// zero them), so they XOR to 0 and contribute nothing.
///
/// The result is the dot product in units of `scale_a · scale_b`; the
/// caller applies that scale in the requantize step.
pub fn gemm_nt_xnor(m: usize, k_bits: usize, n: usize, a: &[u64], b: &[u64], c: &mut [i32]) {
    let words = k_bits.div_ceil(64);
    assert_eq!(a.len(), m * words, "A must be m*ceil(k/64) words");
    assert_eq!(b.len(), n * words, "B must be n*ceil(k/64) words");
    assert_eq!(c.len(), m * n, "C must be m*n");
    assert!(k_bits <= i32::MAX as usize, "k_bits too large");
    qnn_trace::counter!(CTR_CALLS, 1);
    qnn_trace::counter!(CTR_PACKED_OPS, (m * k_bits * n) as u64);
    qnn_trace::counter!(CTR_POPCOUNTS, (m * n * words) as u64);
    if words == 0 {
        c.fill(0);
        return;
    }
    let kb = k_bits as i32;
    par::for_each_chunk_mut(c, ROWS_PER_TASK * n, |ci, chunk| {
        let rows = chunk.len() / n;
        let start = ci * ROWS_PER_TASK;
        let a_rows = &a[start * words..(start + rows) * words];
        dispatch!(rows_xnor, rows_xnor_avx2, (words, n, kb, a_rows, b, chunk));
    });
}

// ---------------------------------------------------------------------------
// Power-of-two shift-add kernel
// ---------------------------------------------------------------------------

#[inline(always)]
fn rows_pow2(k: usize, n: usize, a_rows: &[i16], codes: &[i8], c: &mut [i32]) {
    for (ar, crow) in a_rows.chunks_exact(k).zip(c.chunks_exact_mut(n)) {
        for (cv, wr) in crow.iter_mut().zip(codes.chunks_exact(k)) {
            let mut acc = 0i32;
            for (&x, &q) in ar.iter().zip(wr.iter()) {
                // q = 0 encodes a zero weight; q > 0 is +2^(q-1) relative
                // to the window floor, q < 0 the negated magnitude.
                // Branch-free select chain: random exponent codes make the
                // branchy form mispredict nearly every element, and this
                // shape vectorizes (AVX2 `vpsllvd` + blends). For q = 0 the
                // shift amount is a masked don't-care; the final select
                // discards the lane, and `<<` on i32 drops overflowed
                // value bits deterministically either way.
                let code = q as i32;
                let sh = code.unsigned_abs().wrapping_sub(1) & 31;
                let shifted = (x as i32) << sh;
                let signed = if code < 0 { -shifted } else { shifted };
                acc += if code == 0 { 0 } else { signed };
            }
            *cv = acc;
        }
    }
}
avx2_clone!(
    rows_pow2_avx2 = rows_pow2(k: usize, n: usize, a_rows: &[i16], codes: &[i8], c: &mut [i32])
);

/// Fixed-point × power-of-two GEMM as shift-add — the software mirror of
/// the paper's shifter/sign-mux WB variant (no multiplier at all).
///
/// `a` is `m×k` fixed-point raws; `codes` is `n×k` relative exponent codes
/// (`0` → weight is exactly zero, `±q` → weight is `±2^(q-1)` in units of
/// `2^emin_used`, with `q-1 <= 31`). `c` is `m×n`, in units of
/// `step_a · 2^emin_used`. Caller contract: `Σ_k |A[i][k]| · 2^(q-1)` must
/// stay `<= i32::MAX` for every output (the dispatch certificate bounds it
/// by `2^24`), so the i32 accumulator is exact under any summation order.
pub fn gemm_nt_pow2(m: usize, k: usize, n: usize, a: &[i16], codes: &[i8], c: &mut [i32]) {
    check_nt_dims(m, k, n, a, codes, c);
    qnn_trace::counter!(CTR_CALLS, 1);
    qnn_trace::counter!(CTR_PACKED_OPS, (m * k * n) as u64);
    if k == 0 {
        c.fill(0);
        return;
    }
    par::for_each_chunk_mut(c, ROWS_PER_TASK * n, |ci, chunk| {
        let rows = chunk.len() / n;
        let start = ci * ROWS_PER_TASK;
        let a_rows = &a[start * k..(start + rows) * k];
        dispatch!(rows_pow2, rows_pow2_avx2, (k, n, a_rows, codes, chunk));
    });
}

#[inline(always)]
fn rows_pow2_wide(k: usize, n: usize, a_rows: &[i16], w: &[i32], c: &mut [i32]) {
    // Weight-row outer loop: each 4-byte-wide `w` row is read once and
    // reused against the whole (≤ ROWS_PER_TASK-row, L1-resident) A
    // chunk, instead of streaming all of `w` per A row — the i32 words
    // are twice the traffic of the i16 kernels. The chunk is widened to
    // i32 once up front (no per-element sign-extension inside the hot
    // loop), and four A rows share each weight load through four
    // independent accumulators, which the vectorizer keeps in registers.
    // Integer adds reassociate freely, so none of this can change bits.
    let rows = a_rows.len().checked_div(k).unwrap_or(0);
    let aw: Vec<i32> = a_rows.iter().map(|&x| x as i32).collect();
    for (j, wr) in w.chunks_exact(k).enumerate() {
        let mut r = 0;
        while r + 4 <= rows {
            let a0 = &aw[r * k..(r + 1) * k];
            let a1 = &aw[(r + 1) * k..(r + 2) * k];
            let a2 = &aw[(r + 2) * k..(r + 3) * k];
            let a3 = &aw[(r + 3) * k..(r + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0i32, 0i32, 0i32, 0i32);
            let quads = a0.iter().zip(a1.iter()).zip(a2.iter().zip(a3.iter()));
            for (((&x0, &x1), (&x2, &x3)), &wv) in quads.zip(wr.iter()) {
                s0 += x0 * wv;
                s1 += x1 * wv;
                s2 += x2 * wv;
                s3 += x3 * wv;
            }
            c[r * n + j] = s0;
            c[(r + 1) * n + j] = s1;
            c[(r + 2) * n + j] = s2;
            c[(r + 3) * n + j] = s3;
            r += 4;
        }
        while r < rows {
            let ar = &aw[r * k..(r + 1) * k];
            let mut acc = 0i32;
            for (&x, &wv) in ar.iter().zip(wr.iter()) {
                acc += x * wv;
            }
            c[r * n + j] = acc;
            r += 1;
        }
    }
}
avx2_clone!(
    rows_pow2_wide_avx2 =
        rows_pow2_wide(k: usize, n: usize, a_rows: &[i16], w: &[i32], c: &mut [i32])
);

/// Fixed-point × wide-span power-of-two GEMM over *materialised* weight
/// raws: `w` holds each weight as `±2^(q-1)` in an `i32` word (exponents
/// up to 30, which the `i8` code form can't widen into an `i16` view).
///
/// One multiply per element — `vpmovsxwd` + `vpmulld` under AVX2 —
/// instead of the shift/negate/select chain of [`gemm_nt_pow2`], which
/// this replaces for every span the raws fit (≤ 30); the shift-add
/// kernel remains only for span 31. Same layout and caller contract as
/// [`gemm_nt_pow2`]: `Σ_k |A[i][k]·w[j][k]| <= i32::MAX` per output, so
/// the i32 accumulation is exact under any summation order.
pub fn gemm_nt_pow2_wide(m: usize, k: usize, n: usize, a: &[i16], w: &[i32], c: &mut [i32]) {
    check_nt_dims(m, k, n, a, w, c);
    qnn_trace::counter!(CTR_CALLS, 1);
    qnn_trace::counter!(CTR_PACKED_OPS, (m * k * n) as u64);
    if k == 0 {
        c.fill(0);
        return;
    }
    par::for_each_chunk_mut(c, ROWS_PER_TASK * n, |ci, chunk| {
        let rows = chunk.len() / n;
        let start = ci * ROWS_PER_TASK;
        let a_rows = &a[start * k..(start + rows) * k];
        dispatch!(
            rows_pow2_wide,
            rows_pow2_wide_avx2,
            (k, n, a_rows, w, chunk)
        );
    });
}

// ---------------------------------------------------------------------------
// Register-blocked panel microkernel (MR×NR tiles over packed B)
// ---------------------------------------------------------------------------

/// Columns per packed-B panel: one microkernel tile covers `MR_I16` rows of
/// A against `PANEL_NR` rows of B, held in ymm accumulator banks.
pub const PANEL_NR: usize = 16;

/// Rows of A per microkernel tile.
pub const MR_I16: usize = 4;

/// B packed for the register-blocked i16 microkernel: `PANEL_NR`-column
/// panels with the reduction dimension interleaved in adjacent-`k` pairs,
/// which is exactly the operand shape `vpmaddwd` consumes (each 32-bit
/// lane holds one column's `(b[2g], b[2g+1])` pair).
///
/// Layout: `ceil(n/NR)` panels, each `ceil(k/2)` groups of `2·NR` words;
/// group `g` of panel `p` stores `[b(j,2g), b(j,2g+1)]` for the `NR`
/// columns `j = p·NR ..`, zero-padded past `n` columns and past `k` for
/// odd `k`. Packing is cheap (one pass over B) and done **once per weight
/// tensor** — plans live in the layers' bit-compare-validated PlanCache,
/// so the cost amortizes across every batched forward and serve request.
#[derive(Debug, Clone)]
pub struct PanelB {
    n: usize,
    k: usize,
    data: Vec<i16>,
}

impl PanelB {
    /// Packs `b` (`n×k` row-major, i.e. Bᵀ — the NT kernels' B operand)
    /// into microkernel panels.
    pub fn pack(n: usize, k: usize, b: &[i16]) -> PanelB {
        assert_eq!(b.len(), n * k, "B must be n*k (row-major transposed)");
        let kg = k.div_ceil(2);
        let panels = n.div_ceil(PANEL_NR);
        let mut data = vec![0i16; panels * kg * 2 * PANEL_NR];
        for p in 0..panels {
            let j0 = p * PANEL_NR;
            let ncols = (n - j0).min(PANEL_NR);
            let base = p * kg * 2 * PANEL_NR;
            for c in 0..ncols {
                let row = &b[(j0 + c) * k..(j0 + c + 1) * k];
                for (g, pair) in row.chunks(2).enumerate() {
                    let off = base + g * 2 * PANEL_NR + 2 * c;
                    data[off] = pair[0];
                    if let Some(&b1) = pair.get(1) {
                        data[off + 1] = b1;
                    }
                }
            }
        }
        PanelB { n, k, data }
    }

    /// Output-column count (`n`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reduction length (`k`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The packed panel words (layout documented on the type).
    pub fn words(&self) -> &[i16] {
        &self.data
    }

    /// Reads element `(j, kk)` back out of the panel layout — the
    /// round-trip inverse of [`PanelB::pack`], used by the layout
    /// property tests and the benches' self-checks. Indices may extend to
    /// the *physical* panel footprint (`n`/`k` rounded up to the 16-wide /
    /// pair-of-k tile), where the packer guarantees zeros — the microkernel
    /// multiplies those lanes unconditionally.
    pub fn read(&self, j: usize, kk: usize) -> i16 {
        assert!(
            j < self.n.div_ceil(PANEL_NR) * PANEL_NR && kk < self.k.div_ceil(2) * 2,
            "panel read out of bounds"
        );
        let kg = self.k.div_ceil(2);
        let base = (j / PANEL_NR) * kg * 2 * PANEL_NR;
        self.data[base + (kk / 2) * 2 * PANEL_NR + 2 * (j % PANEL_NR) + (kk % 2)]
    }
}

/// Scalar instantiation of the panel microkernel: same tile walk, same
/// panel reads, plain integer arithmetic. Integer accumulation is exact in
/// any order, so this agrees bit-for-bit with the AVX2 tile kernel.
#[inline(always)]
fn panel_rows_i16(k: usize, n: usize, a_rows: &[i16], panel: &[i16], c: &mut [i32]) {
    let rows = a_rows.len().checked_div(k).unwrap_or(0);
    let kg = k.div_ceil(2);
    let pstride = (kg * 2 * PANEL_NR).max(1);
    for (pi, pan) in panel.chunks(pstride).enumerate() {
        let j0 = pi * PANEL_NR;
        let ncols = (n - j0).min(PANEL_NR);
        for r in 0..rows {
            let ar = &a_rows[r * k..(r + 1) * k];
            let mut acc = [0i32; PANEL_NR];
            for g in 0..kg {
                let grp = &pan[g * 2 * PANEL_NR..(g + 1) * 2 * PANEL_NR];
                let a0 = ar[2 * g] as i32;
                let a1 = if 2 * g + 1 < k {
                    ar[2 * g + 1] as i32
                } else {
                    0
                };
                for (cc, av) in acc.iter_mut().enumerate() {
                    *av += a0 * grp[2 * cc] as i32 + a1 * grp[2 * cc + 1] as i32;
                }
            }
            c[r * n + j0..r * n + j0 + ncols].copy_from_slice(&acc[..ncols]);
        }
    }
}

/// The register-blocked AVX2 microkernel: `MR_I16×PANEL_NR` output tiles
/// held in eight ymm accumulators, fed by `vpbroadcastd` pair-broadcasts
/// of A and two panel loads per k-pair, multiplied with `vpmaddwd`
/// (16 MACs/instruction) and accumulated with `vpaddd`.
///
/// Under the caller contract (`Σ_k |A[i][k]·B[j][k]| <= i32::MAX` per
/// output) no `vpmaddwd` pair-sum or `vpaddd` partial can overflow — every
/// partial is bounded by the sum of absolute products — so the result is
/// bit-identical to [`panel_rows_i16`] and to the row-at-a-time kernels.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn panel_rows_i16_avx2(k: usize, n: usize, a_rows: &[i16], panel: &[i16], c: &mut [i32]) {
    use std::arch::x86_64::*;
    let rows = a_rows.len().checked_div(k).unwrap_or(0);
    let kfull = k / 2;
    let kg = k.div_ceil(2);
    let pstride = (kg * 2 * PANEL_NR).max(1);
    for (pi, pan) in panel.chunks(pstride).enumerate() {
        let j0 = pi * PANEL_NR;
        let ncols = (n - j0).min(PANEL_NR);
        let pbase = pan.as_ptr();
        let mut r = 0;
        while r < rows {
            let mr = (rows - r).min(MR_I16);
            // Row indices clamped to the tile: a short tail tile recomputes
            // its last row in the spare accumulators (never reading outside
            // A) and simply doesn't store the duplicates.
            let ap = [
                a_rows.as_ptr().add(r * k),
                a_rows.as_ptr().add((r + 1.min(mr - 1)) * k),
                a_rows.as_ptr().add((r + 2.min(mr - 1)) * k),
                a_rows.as_ptr().add((r + 3.min(mr - 1)) * k),
            ];
            let mut acc = [[_mm256_setzero_si256(); 2]; MR_I16];
            for g in 0..kfull {
                // SAFETY: group g of this panel spans `pbase + 32g ..+32`,
                // in bounds by the panel layout; the A pair reads cover
                // elements 2g and 2g+1 < k of rows < `rows`.
                let b0 = _mm256_loadu_si256(pbase.add(g * 2 * PANEL_NR) as *const __m256i);
                let b1 =
                    _mm256_loadu_si256(pbase.add(g * 2 * PANEL_NR + PANEL_NR) as *const __m256i);
                for (i, acc_i) in acc.iter_mut().enumerate() {
                    let pair = (ap[i].add(2 * g) as *const i32).read_unaligned();
                    let av = _mm256_set1_epi32(pair);
                    acc_i[0] = _mm256_add_epi32(acc_i[0], _mm256_madd_epi16(av, b0));
                    acc_i[1] = _mm256_add_epi32(acc_i[1], _mm256_madd_epi16(av, b1));
                }
            }
            if k % 2 == 1 {
                // Odd-k tail: the panel pads the pair partner with zero;
                // build the matching `(a[k-1], 0)` broadcast from the lone
                // element so no read ever crosses the end of an A row.
                let g = kfull;
                let b0 = _mm256_loadu_si256(pbase.add(g * 2 * PANEL_NR) as *const __m256i);
                let b1 =
                    _mm256_loadu_si256(pbase.add(g * 2 * PANEL_NR + PANEL_NR) as *const __m256i);
                for (i, acc_i) in acc.iter_mut().enumerate() {
                    let lone = ap[i].add(k - 1).read() as u16 as u32;
                    let av = _mm256_set1_epi32(lone as i32);
                    acc_i[0] = _mm256_add_epi32(acc_i[0], _mm256_madd_epi16(av, b0));
                    acc_i[1] = _mm256_add_epi32(acc_i[1], _mm256_madd_epi16(av, b1));
                }
            }
            for (i, acc_i) in acc.iter().enumerate().take(mr) {
                let crow = &mut c[(r + i) * n + j0..(r + i) * n + j0 + ncols];
                if ncols == PANEL_NR {
                    // SAFETY: crow spans 16 i32s, checked by the slice above.
                    _mm256_storeu_si256(crow.as_mut_ptr() as *mut __m256i, acc_i[0]);
                    _mm256_storeu_si256(crow.as_mut_ptr().add(8) as *mut __m256i, acc_i[1]);
                } else {
                    let mut tmp = [0i32; PANEL_NR];
                    _mm256_storeu_si256(tmp.as_mut_ptr() as *mut __m256i, acc_i[0]);
                    _mm256_storeu_si256(tmp.as_mut_ptr().add(8) as *mut __m256i, acc_i[1]);
                    crow.copy_from_slice(&tmp[..ncols]);
                }
            }
            r += mr;
        }
    }
}

/// Runs the panel microkernel over one row chunk (AVX2 when available,
/// scalar instantiation otherwise — bit-identical either way).
fn panel_chunk_i16(k: usize, n: usize, a_rows: &[i16], panel: &PanelB, c: &mut [i32]) {
    debug_assert_eq!(panel.k, k);
    debug_assert_eq!(panel.n, n);
    dispatch!(
        panel_rows_i16,
        panel_rows_i16_avx2,
        (k, n, a_rows, &panel.data, c)
    );
}

/// `C[i][j] = Σ_k A[i][k]·B[j][k]` through the register-blocked microkernel
/// over a pre-packed B panel. Same layout and caller contract as
/// [`gemm_nt_i16`]; bit-identical output, substantially faster when the
/// panel is reused across calls (the plan-cache case).
pub fn gemm_nt_i16_panel(m: usize, k: usize, n: usize, a: &[i16], panel: &PanelB, c: &mut [i32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!((panel.n, panel.k), (n, k), "panel shape mismatch");
    assert_eq!(c.len(), m * n, "C must be m*n");
    qnn_trace::counter!(CTR_CALLS, 1);
    qnn_trace::counter!(CTR_PACKED_OPS, (m * k * n) as u64);
    if k == 0 {
        c.fill(0);
        return;
    }
    par::for_each_chunk_mut(c, ROWS_PER_TASK * n, |ci, chunk| {
        let rows = chunk.len() / n;
        let start = ci * ROWS_PER_TASK;
        panel_chunk_i16(k, n, &a[start * k..(start + rows) * k], panel, chunk);
    });
}

/// [`gemm_nt_i16_panel`] with a **fused epilogue**: instead of
/// materialising the whole `m×n` i32 accumulator tensor, each row chunk's
/// accumulators stay in a chunk-local scratch and `emit(row, acc_row,
/// out_row)` converts them to the caller's output (requantize + bias +
/// output-precision snap in `qnn-quant`) while the tile is still hot in
/// cache. `emit` must be elementwise-deterministic; it runs exactly once
/// per output row, in any order across chunks.
pub fn gemm_nt_i16_panel_emit<F>(
    m: usize,
    k: usize,
    n: usize,
    a: &[i16],
    panel: &PanelB,
    out: &mut [f32],
    emit: F,
) where
    F: Fn(usize, &[i32], &mut [f32]) + Sync,
{
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!((panel.n, panel.k), (n, k), "panel shape mismatch");
    assert_eq!(out.len(), m * n, "out must be m*n");
    qnn_trace::counter!(CTR_CALLS, 1);
    qnn_trace::counter!(CTR_PACKED_OPS, (m * k * n) as u64);
    par::for_each_chunk_mut(out, ROWS_PER_TASK * n, |ci, chunk| {
        let rows = chunk.len() / n;
        let start = ci * ROWS_PER_TASK;
        let mut acc = vec![0i32; rows * n];
        if k > 0 {
            panel_chunk_i16(k, n, &a[start * k..(start + rows) * k], panel, &mut acc);
        }
        for (i, (arow, orow)) in acc
            .chunks_exact(n)
            .zip(chunk.chunks_exact_mut(n))
            .enumerate()
        {
            emit(start + i, arow, orow);
        }
    });
}

/// Two-panel shift-add variant for wide-span power-of-two weights:
/// `acc[i][j] = lo[i][j] + (hi[i][j] << shift)` where `lo`/`hi` are panel
/// microkernel products over the residual tables (see
/// `qnn_quant::packed::PackedPow2`). The shared base shift is applied once
/// per accumulator — the inner loops are pure `vpmaddwd` adds over small
/// residuals, no per-element multiplies by wide constants.
///
/// Caller contract: `Σ_k |A[i][k]| · (|lo| + |hi|·2^shift) <= i32::MAX`
/// per output (the dispatch certificate bounds it by `2^24`), which also
/// bounds both partial products, so every step is exact.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_i16_panel2_emit<F>(
    m: usize,
    k: usize,
    n: usize,
    a: &[i16],
    lo: &PanelB,
    hi: &PanelB,
    shift: u32,
    out: &mut [f32],
    emit: F,
) where
    F: Fn(usize, &[i32], &mut [f32]) + Sync,
{
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!((lo.n, lo.k), (n, k), "lo panel shape mismatch");
    assert_eq!((hi.n, hi.k), (n, k), "hi panel shape mismatch");
    assert_eq!(out.len(), m * n, "out must be m*n");
    assert!(shift < 32, "base shift must fit an i32");
    qnn_trace::counter!(CTR_CALLS, 1);
    qnn_trace::counter!(CTR_PACKED_OPS, 2 * (m * k * n) as u64);
    par::for_each_chunk_mut(out, ROWS_PER_TASK * n, |ci, chunk| {
        let rows = chunk.len() / n;
        let start = ci * ROWS_PER_TASK;
        let a_rows = if k > 0 {
            &a[start * k..(start + rows) * k]
        } else {
            &[][..]
        };
        let mut acc = vec![0i32; rows * n];
        let mut acc_hi = vec![0i32; rows * n];
        if k > 0 {
            panel_chunk_i16(k, n, a_rows, lo, &mut acc);
            panel_chunk_i16(k, n, a_rows, hi, &mut acc_hi);
        }
        for (lo_v, hi_v) in acc.iter_mut().zip(acc_hi.iter()) {
            *lo_v += hi_v << shift;
        }
        for (i, (arow, orow)) in acc
            .chunks_exact(n)
            .zip(chunk.chunks_exact_mut(n))
            .enumerate()
        {
            emit(start + i, arow, orow);
        }
    });
}

/// Packs one row of `±1` signs (`true` = negative) into little-endian
/// `u64` plane words, zero-padding the tail. Shared by the weight/act
/// packers in `qnn-quant` and the benches.
pub fn pack_sign_row(signs: impl ExactSizeIterator<Item = bool>, out: &mut [u64]) {
    out.fill(0);
    let n = signs.len();
    assert_eq!(out.len(), n.div_ceil(64), "plane row length mismatch");
    for (i, neg) in signs.enumerate() {
        if neg {
            out[i / 64] |= 1u64 << (i % 64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn ref_nt_i32<T: Copy + Into<i32>>(m: usize, k: usize, n: usize, a: &[T], b: &[T]) -> Vec<i32> {
        let mut c = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for kk in 0..k {
                    acc += a[i * k + kk].into() * b[j * k + kk].into();
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    #[test]
    fn i8_matches_reference() {
        let mut rng = seeded(11);
        let (m, k, n) = (13, 37, 9);
        let a: Vec<i8> = (0..m * k)
            .map(|_| rng.gen_range(-127i64..128) as i8)
            .collect();
        let b: Vec<i8> = (0..n * k)
            .map(|_| rng.gen_range(-127i64..128) as i8)
            .collect();
        let mut c = vec![0i32; m * n];
        gemm_nt_i8(m, k, n, &a, &b, &mut c);
        assert_eq!(c, ref_nt_i32(m, k, n, &a, &b));
    }

    #[test]
    fn i16_matches_reference_and_threads_agree() {
        let mut rng = seeded(12);
        let (m, k, n) = (33, 64, 17);
        let a: Vec<i16> = (0..m * k)
            .map(|_| rng.gen_range(-255i64..256) as i16)
            .collect();
        let b: Vec<i16> = (0..n * k)
            .map(|_| rng.gen_range(-255i64..256) as i16)
            .collect();
        let reference = ref_nt_i32(m, k, n, &a, &b);
        for t in [1usize, 4] {
            crate::par::set_threads(Some(t));
            let mut c = vec![0i32; m * n];
            gemm_nt_i16(m, k, n, &a, &b, &mut c);
            assert_eq!(c, reference, "threads={t}");
        }
        crate::par::set_threads(None);
    }

    #[test]
    fn xnor_matches_sign_dot() {
        let mut rng = seeded(13);
        for &k in &[1usize, 63, 64, 65, 130] {
            let (m, n) = (6, 5);
            let sa: Vec<bool> = (0..m * k).map(|_| rng.gen_range(0i64..2) == 1).collect();
            let sb: Vec<bool> = (0..n * k).map(|_| rng.gen_range(0i64..2) == 1).collect();
            let words = k.div_ceil(64);
            let mut a = vec![0u64; m * words];
            let mut b = vec![0u64; n * words];
            for i in 0..m {
                pack_sign_row(
                    sa[i * k..(i + 1) * k].iter().copied(),
                    &mut a[i * words..(i + 1) * words],
                );
            }
            for j in 0..n {
                pack_sign_row(
                    sb[j * k..(j + 1) * k].iter().copied(),
                    &mut b[j * words..(j + 1) * words],
                );
            }
            let mut c = vec![0i32; m * n];
            gemm_nt_xnor(m, k, n, &a, &b, &mut c);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0i32;
                    for kk in 0..k {
                        let x = if sa[i * k + kk] { -1 } else { 1 };
                        let y = if sb[j * k + kk] { -1 } else { 1 };
                        acc += x * y;
                    }
                    assert_eq!(c[i * n + j], acc, "k={k} i={i} j={j}");
                }
            }
        }
    }

    #[test]
    fn pow2_matches_reference() {
        let mut rng = seeded(14);
        // Ranges sized so every |Σ x·2^(q-1)| stays well under i32::MAX,
        // matching the caller contract (the dispatch certificate is far
        // stricter still).
        let (m, k, n) = (7, 29, 11);
        let a: Vec<i16> = (0..m * k)
            .map(|_| rng.gen_range(-500i64..501) as i16)
            .collect();
        let codes: Vec<i8> = (0..n * k)
            .map(|_| rng.gen_range(-15i64..16) as i8)
            .collect();
        let mut c = vec![0i32; m * n];
        gemm_nt_pow2(m, k, n, &a, &codes, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for kk in 0..k {
                    let q = codes[j * k + kk] as i64;
                    let x = a[i * k + kk] as i64;
                    acc += match q.cmp(&0) {
                        std::cmp::Ordering::Greater => x << (q - 1),
                        std::cmp::Ordering::Less => -(x << (-q - 1)),
                        std::cmp::Ordering::Equal => 0,
                    };
                }
                assert_eq!(c[i * n + j] as i64, acc, "i={i} j={j}");
            }
        }
    }

    #[test]
    fn pow2_wide_matches_the_shift_add_kernel() {
        // The materialised-raw kernel and the shift-add kernel are two
        // evaluations of the same integer dot product — equal outputs on
        // any certified input, including exponents past the i16 range.
        let mut rng = seeded(19);
        let (m, k, n) = (9, 31, 8);
        let a: Vec<i16> = (0..m * k).map(|_| rng.gen_range(-2i64..3) as i16).collect();
        let codes: Vec<i8> = (0..n * k)
            .map(|_| rng.gen_range(-20i64..21) as i8)
            .collect();
        let w: Vec<i32> = codes
            .iter()
            .map(|&q| {
                let mag = 1i32 << (q.unsigned_abs().wrapping_sub(1) & 31);
                match q.cmp(&0) {
                    std::cmp::Ordering::Greater => mag,
                    std::cmp::Ordering::Less => -mag,
                    std::cmp::Ordering::Equal => 0,
                }
            })
            .collect();
        let mut shift = vec![0i32; m * n];
        gemm_nt_pow2(m, k, n, &a, &codes, &mut shift);
        let mut wide = vec![0i32; m * n];
        gemm_nt_pow2_wide(m, k, n, &a, &w, &mut wide);
        assert_eq!(wide, shift);
    }

    #[test]
    fn empty_k_zeroes_output() {
        let mut c = vec![7i32; 6];
        gemm_nt_i16(2, 0, 3, &[], &[], &mut c);
        assert!(c.iter().all(|&v| v == 0));
    }
}
