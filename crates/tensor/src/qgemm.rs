//! Native low-precision GEMM kernels over pre-encoded integer words.
//!
//! These are the compute cores behind the quantized fast path: instead of
//! snapping values to the format grid and multiplying in f32 (the
//! Ristretto-style simulation in `qnn-quant`), callers pre-encode both
//! operands into narrow two's-complement words (or bit planes / exponent
//! codes) and the kernels accumulate in wide integers — i8×i8 and i16×i16
//! into i32, power-of-two shift-add into i64, and binary×binary as
//! XNOR + `count_ones` over packed `u64` planes.
//!
//! All kernels compute the **NT** product `C[i][j] = dot(A.row(i), B.row(j))`
//! — both operands are k-contiguous, which is the layout the dense layer
//! (activations × weightsᵀ) and the im2col'd convolution (weights × colsᵀ)
//! both want, and the one the auto-vectorizer handles best.
//!
//! ## Exactness contract
//!
//! Integer arithmetic is associative, so unlike the f32 GEMM in
//! [`crate::gemm`] these kernels are bit-identical at any thread count *and*
//! any summation order by construction. The caller must guarantee
//! `Σ_k |A[i][k] · B[j][k]| <= i32::MAX` for every output of the i8/i16
//! kernels (the quantized dispatch enforces the far stricter `<= 2^24`
//! certificate from `qnn_quant::packed`, which also makes the final
//! requantize-to-f32 exact). Under that bound no partial sum can overflow —
//! not even reassociated SIMD partials — so debug and release builds agree.
//!
//! ## SIMD dispatch
//!
//! rustc's default x86-64 baseline is SSE2 with no hardware `popcnt`, which
//! leaves ~5x on the table for the XNOR kernel and ~2x for the i16 kernel.
//! Each inner loop is written once as a safe `#[inline(always)]` body and
//! instantiated twice: a plain safe wrapper, and a
//! `#[target_feature(enable = "avx2,popcnt")]` wrapper selected at runtime
//! via `is_x86_feature_detected!`. Both wrappers run the *same* Rust code on
//! the same integers, so feature detection can never change results. The
//! `unsafe` at the call site is the narrow, standard obligation of
//! `target_feature` dispatch: the features were verified on this CPU.

use crate::par;

/// Trace counter: kernel invocations.
const CTR_CALLS: &str = "tensor.qgemm.calls";
/// Trace counter: packed multiply-accumulate operations (`m·k·n`).
const CTR_PACKED_OPS: &str = "tensor.qgemm.packed_ops";
/// Trace counter: `u64` popcount operations issued by the XNOR kernel.
const CTR_POPCOUNTS: &str = "tensor.qgemm.popcounts";

/// Output rows per parallel work unit. Fixed (not derived from the thread
/// count) so the partition is deterministic; integer math makes any
/// partition bit-identical anyway.
const ROWS_PER_TASK: usize = 8;

/// True when the AVX2 + POPCNT fast wrappers may be used on this CPU.
#[cfg(target_arch = "x86_64")]
fn simd_ok() -> bool {
    static OK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *OK.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("popcnt")
    })
}

/// Expands to a runtime-dispatched call of an `#[inline(always)]` kernel
/// body: on x86-64 with AVX2+POPCNT, through a `#[target_feature]` clone of
/// the body; otherwise the plain safe instantiation. Same code either way.
macro_rules! dispatch {
    ($body:ident, $avx2:ident, ($($arg:expr),*)) => {{
        #[cfg(target_arch = "x86_64")]
        {
            if simd_ok() {
                // SAFETY: `simd_ok` verified avx2+popcnt on this CPU, which
                // is the only precondition of the target_feature wrapper.
                unsafe { $avx2($($arg),*) }
            } else {
                $body($($arg),*)
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            $body($($arg),*)
        }
    }};
}

/// Declares the AVX2+POPCNT clone of a kernel body.
macro_rules! avx2_clone {
    ($name:ident = $body:ident ( $($arg:ident : $ty:ty),* )) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2,popcnt")]
        unsafe fn $name($($arg: $ty),*) {
            $body($($arg),*);
        }
    };
}

fn check_nt_dims<A, B, C>(m: usize, k: usize, n: usize, a: &[A], b: &[B], c: &[C]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), n * k, "B must be n*k (row-major transposed)");
    assert_eq!(c.len(), m * n, "C must be m*n");
}

// ---------------------------------------------------------------------------
// i8 / i16 fixed-point kernels
// ---------------------------------------------------------------------------

/// Widening dot-product rows body, shared by the i8 and i16 kernels.
/// Processes the row-chunk `a_rows` (each row `k` long) against all `n`
/// rows of `b`, writing into the matching chunk of `c`.
macro_rules! int_rows_body {
    ($name:ident, $t:ty) => {
        #[inline(always)]
        fn $name(k: usize, n: usize, a_rows: &[$t], b: &[$t], c: &mut [i32]) {
            for (ar, crow) in a_rows.chunks_exact(k).zip(c.chunks_exact_mut(n)) {
                for (cv, br) in crow.iter_mut().zip(b.chunks_exact(k)) {
                    let mut acc = 0i32;
                    for (&x, &y) in ar.iter().zip(br.iter()) {
                        acc += x as i32 * y as i32;
                    }
                    *cv = acc;
                }
            }
        }
    };
}

int_rows_body!(rows_i8, i8);
int_rows_body!(rows_i16, i16);
avx2_clone!(rows_i8_avx2 = rows_i8(k: usize, n: usize, a_rows: &[i8], b: &[i8], c: &mut [i32]));
avx2_clone!(rows_i16_avx2 = rows_i16(k: usize, n: usize, a_rows: &[i16], b: &[i16], c: &mut [i32]));

macro_rules! int_gemm {
    ($(#[$doc:meta])* $name:ident, $t:ty, $body:ident, $avx2:ident) => {
        $(#[$doc])*
        pub fn $name(m: usize, k: usize, n: usize, a: &[$t], b: &[$t], c: &mut [i32]) {
            check_nt_dims(m, k, n, a, b, c);
            qnn_trace::counter!(CTR_CALLS, 1);
            qnn_trace::counter!(CTR_PACKED_OPS, (m * k * n) as u64);
            if k == 0 {
                c.fill(0);
                return;
            }
            par::for_each_chunk_mut(c, ROWS_PER_TASK * n, |ci, chunk| {
                let rows = chunk.len() / n;
                let start = ci * ROWS_PER_TASK;
                let a_rows = &a[start * k..(start + rows) * k];
                dispatch!($body, $avx2, (k, n, a_rows, b, chunk));
            });
        }
    };
}

int_gemm!(
    /// `C[i][j] = Σ_k A[i][k]·B[j][k]` over i8 words with i32 accumulation.
    ///
    /// `a` is `m×k` row-major, `b` is `n×k` row-major (i.e. Bᵀ), `c` is
    /// `m×n`. Caller contract: `Σ_k |A[i][k]·B[j][k]| <= i32::MAX` for every
    /// output (see module docs).
    gemm_nt_i8, i8, rows_i8, rows_i8_avx2
);
int_gemm!(
    /// `C[i][j] = Σ_k A[i][k]·B[j][k]` over i16 words with i32 accumulation.
    ///
    /// Same layout and caller contract as [`gemm_nt_i8`].
    gemm_nt_i16, i16, rows_i16, rows_i16_avx2
);

// ---------------------------------------------------------------------------
// Binary XNOR-popcount kernel
// ---------------------------------------------------------------------------

#[inline(always)]
fn rows_xnor(words: usize, n: usize, k_bits: i32, a_rows: &[u64], b: &[u64], c: &mut [i32]) {
    for (ar, crow) in a_rows.chunks_exact(words).zip(c.chunks_exact_mut(n)) {
        for (cv, br) in crow.iter_mut().zip(b.chunks_exact(words)) {
            let mut diff = 0u32;
            for (&x, &y) in ar.iter().zip(br.iter()) {
                diff += (x ^ y).count_ones();
            }
            *cv = k_bits - 2 * diff as i32;
        }
    }
}
avx2_clone!(
    rows_xnor_avx2 =
        rows_xnor(words: usize, n: usize, k_bits: i32, a_rows: &[u64], b: &[u64], c: &mut [i32])
);

/// Binary×binary GEMM over sign planes: `C[i][j] = Σ_k s(A)·s(B)` where
/// each element is ±1, stored as one bit per element (1 = negative).
///
/// `a` is `m×words` and `b` is `n×words` of packed `u64` planes, each row
/// holding `k_bits` sign bits little-endian within words; `c` is `m×n`.
/// The dot product of ±1 vectors is `k - 2·popcount(a XOR b)`. Padding
/// bits beyond `k_bits` must be **equal** in both operands (the packers
/// zero them), so they XOR to 0 and contribute nothing.
///
/// The result is the dot product in units of `scale_a · scale_b`; the
/// caller applies that scale in the requantize step.
pub fn gemm_nt_xnor(m: usize, k_bits: usize, n: usize, a: &[u64], b: &[u64], c: &mut [i32]) {
    let words = k_bits.div_ceil(64);
    assert_eq!(a.len(), m * words, "A must be m*ceil(k/64) words");
    assert_eq!(b.len(), n * words, "B must be n*ceil(k/64) words");
    assert_eq!(c.len(), m * n, "C must be m*n");
    assert!(k_bits <= i32::MAX as usize, "k_bits too large");
    qnn_trace::counter!(CTR_CALLS, 1);
    qnn_trace::counter!(CTR_PACKED_OPS, (m * k_bits * n) as u64);
    qnn_trace::counter!(CTR_POPCOUNTS, (m * n * words) as u64);
    if words == 0 {
        c.fill(0);
        return;
    }
    let kb = k_bits as i32;
    par::for_each_chunk_mut(c, ROWS_PER_TASK * n, |ci, chunk| {
        let rows = chunk.len() / n;
        let start = ci * ROWS_PER_TASK;
        let a_rows = &a[start * words..(start + rows) * words];
        dispatch!(rows_xnor, rows_xnor_avx2, (words, n, kb, a_rows, b, chunk));
    });
}

// ---------------------------------------------------------------------------
// Power-of-two shift-add kernel
// ---------------------------------------------------------------------------

#[inline(always)]
fn rows_pow2(k: usize, n: usize, a_rows: &[i16], codes: &[i8], c: &mut [i32]) {
    for (ar, crow) in a_rows.chunks_exact(k).zip(c.chunks_exact_mut(n)) {
        for (cv, wr) in crow.iter_mut().zip(codes.chunks_exact(k)) {
            let mut acc = 0i32;
            for (&x, &q) in ar.iter().zip(wr.iter()) {
                // q = 0 encodes a zero weight; q > 0 is +2^(q-1) relative
                // to the window floor, q < 0 the negated magnitude.
                // Branch-free select chain: random exponent codes make the
                // branchy form mispredict nearly every element, and this
                // shape vectorizes (AVX2 `vpsllvd` + blends). For q = 0 the
                // shift amount is a masked don't-care; the final select
                // discards the lane, and `<<` on i32 drops overflowed
                // value bits deterministically either way.
                let code = q as i32;
                let sh = code.unsigned_abs().wrapping_sub(1) & 31;
                let shifted = (x as i32) << sh;
                let signed = if code < 0 { -shifted } else { shifted };
                acc += if code == 0 { 0 } else { signed };
            }
            *cv = acc;
        }
    }
}
avx2_clone!(
    rows_pow2_avx2 = rows_pow2(k: usize, n: usize, a_rows: &[i16], codes: &[i8], c: &mut [i32])
);

/// Fixed-point × power-of-two GEMM as shift-add — the software mirror of
/// the paper's shifter/sign-mux WB variant (no multiplier at all).
///
/// `a` is `m×k` fixed-point raws; `codes` is `n×k` relative exponent codes
/// (`0` → weight is exactly zero, `±q` → weight is `±2^(q-1)` in units of
/// `2^emin_used`, with `q-1 <= 31`). `c` is `m×n`, in units of
/// `step_a · 2^emin_used`. Caller contract: `Σ_k |A[i][k]| · 2^(q-1)` must
/// stay `<= i32::MAX` for every output (the dispatch certificate bounds it
/// by `2^24`), so the i32 accumulator is exact under any summation order.
pub fn gemm_nt_pow2(m: usize, k: usize, n: usize, a: &[i16], codes: &[i8], c: &mut [i32]) {
    check_nt_dims(m, k, n, a, codes, c);
    qnn_trace::counter!(CTR_CALLS, 1);
    qnn_trace::counter!(CTR_PACKED_OPS, (m * k * n) as u64);
    if k == 0 {
        c.fill(0);
        return;
    }
    par::for_each_chunk_mut(c, ROWS_PER_TASK * n, |ci, chunk| {
        let rows = chunk.len() / n;
        let start = ci * ROWS_PER_TASK;
        let a_rows = &a[start * k..(start + rows) * k];
        dispatch!(rows_pow2, rows_pow2_avx2, (k, n, a_rows, codes, chunk));
    });
}

#[inline(always)]
fn rows_pow2_wide(k: usize, n: usize, a_rows: &[i16], w: &[i32], c: &mut [i32]) {
    // Weight-row outer loop: each 4-byte-wide `w` row is read once and
    // reused against the whole (≤ ROWS_PER_TASK-row, L1-resident) A
    // chunk, instead of streaming all of `w` per A row — the i32 words
    // are twice the traffic of the i16 kernels. The chunk is widened to
    // i32 once up front (no per-element sign-extension inside the hot
    // loop), and four A rows share each weight load through four
    // independent accumulators, which the vectorizer keeps in registers.
    // Integer adds reassociate freely, so none of this can change bits.
    let rows = a_rows.len().checked_div(k).unwrap_or(0);
    let aw: Vec<i32> = a_rows.iter().map(|&x| x as i32).collect();
    for (j, wr) in w.chunks_exact(k).enumerate() {
        let mut r = 0;
        while r + 4 <= rows {
            let a0 = &aw[r * k..(r + 1) * k];
            let a1 = &aw[(r + 1) * k..(r + 2) * k];
            let a2 = &aw[(r + 2) * k..(r + 3) * k];
            let a3 = &aw[(r + 3) * k..(r + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0i32, 0i32, 0i32, 0i32);
            let quads = a0.iter().zip(a1.iter()).zip(a2.iter().zip(a3.iter()));
            for (((&x0, &x1), (&x2, &x3)), &wv) in quads.zip(wr.iter()) {
                s0 += x0 * wv;
                s1 += x1 * wv;
                s2 += x2 * wv;
                s3 += x3 * wv;
            }
            c[r * n + j] = s0;
            c[(r + 1) * n + j] = s1;
            c[(r + 2) * n + j] = s2;
            c[(r + 3) * n + j] = s3;
            r += 4;
        }
        while r < rows {
            let ar = &aw[r * k..(r + 1) * k];
            let mut acc = 0i32;
            for (&x, &wv) in ar.iter().zip(wr.iter()) {
                acc += x * wv;
            }
            c[r * n + j] = acc;
            r += 1;
        }
    }
}
avx2_clone!(
    rows_pow2_wide_avx2 =
        rows_pow2_wide(k: usize, n: usize, a_rows: &[i16], w: &[i32], c: &mut [i32])
);

/// Fixed-point × wide-span power-of-two GEMM over *materialised* weight
/// raws: `w` holds each weight as `±2^(q-1)` in an `i32` word (exponents
/// up to 30, which the `i8` code form can't widen into an `i16` view).
///
/// One multiply per element — `vpmovsxwd` + `vpmulld` under AVX2 —
/// instead of the shift/negate/select chain of [`gemm_nt_pow2`], which
/// this replaces for every span the raws fit (≤ 30); the shift-add
/// kernel remains only for span 31. Same layout and caller contract as
/// [`gemm_nt_pow2`]: `Σ_k |A[i][k]·w[j][k]| <= i32::MAX` per output, so
/// the i32 accumulation is exact under any summation order.
pub fn gemm_nt_pow2_wide(m: usize, k: usize, n: usize, a: &[i16], w: &[i32], c: &mut [i32]) {
    check_nt_dims(m, k, n, a, w, c);
    qnn_trace::counter!(CTR_CALLS, 1);
    qnn_trace::counter!(CTR_PACKED_OPS, (m * k * n) as u64);
    if k == 0 {
        c.fill(0);
        return;
    }
    par::for_each_chunk_mut(c, ROWS_PER_TASK * n, |ci, chunk| {
        let rows = chunk.len() / n;
        let start = ci * ROWS_PER_TASK;
        let a_rows = &a[start * k..(start + rows) * k];
        dispatch!(
            rows_pow2_wide,
            rows_pow2_wide_avx2,
            (k, n, a_rows, w, chunk)
        );
    });
}

/// Packs one row of `±1` signs (`true` = negative) into little-endian
/// `u64` plane words, zero-padding the tail. Shared by the weight/act
/// packers in `qnn-quant` and the benches.
pub fn pack_sign_row(signs: impl ExactSizeIterator<Item = bool>, out: &mut [u64]) {
    out.fill(0);
    let n = signs.len();
    assert_eq!(out.len(), n.div_ceil(64), "plane row length mismatch");
    for (i, neg) in signs.enumerate() {
        if neg {
            out[i / 64] |= 1u64 << (i % 64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn ref_nt_i32<T: Copy + Into<i32>>(m: usize, k: usize, n: usize, a: &[T], b: &[T]) -> Vec<i32> {
        let mut c = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for kk in 0..k {
                    acc += a[i * k + kk].into() * b[j * k + kk].into();
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    #[test]
    fn i8_matches_reference() {
        let mut rng = seeded(11);
        let (m, k, n) = (13, 37, 9);
        let a: Vec<i8> = (0..m * k)
            .map(|_| rng.gen_range(-127i64..128) as i8)
            .collect();
        let b: Vec<i8> = (0..n * k)
            .map(|_| rng.gen_range(-127i64..128) as i8)
            .collect();
        let mut c = vec![0i32; m * n];
        gemm_nt_i8(m, k, n, &a, &b, &mut c);
        assert_eq!(c, ref_nt_i32(m, k, n, &a, &b));
    }

    #[test]
    fn i16_matches_reference_and_threads_agree() {
        let mut rng = seeded(12);
        let (m, k, n) = (33, 64, 17);
        let a: Vec<i16> = (0..m * k)
            .map(|_| rng.gen_range(-255i64..256) as i16)
            .collect();
        let b: Vec<i16> = (0..n * k)
            .map(|_| rng.gen_range(-255i64..256) as i16)
            .collect();
        let reference = ref_nt_i32(m, k, n, &a, &b);
        for t in [1usize, 4] {
            crate::par::set_threads(Some(t));
            let mut c = vec![0i32; m * n];
            gemm_nt_i16(m, k, n, &a, &b, &mut c);
            assert_eq!(c, reference, "threads={t}");
        }
        crate::par::set_threads(None);
    }

    #[test]
    fn xnor_matches_sign_dot() {
        let mut rng = seeded(13);
        for &k in &[1usize, 63, 64, 65, 130] {
            let (m, n) = (6, 5);
            let sa: Vec<bool> = (0..m * k).map(|_| rng.gen_range(0i64..2) == 1).collect();
            let sb: Vec<bool> = (0..n * k).map(|_| rng.gen_range(0i64..2) == 1).collect();
            let words = k.div_ceil(64);
            let mut a = vec![0u64; m * words];
            let mut b = vec![0u64; n * words];
            for i in 0..m {
                pack_sign_row(
                    sa[i * k..(i + 1) * k].iter().copied(),
                    &mut a[i * words..(i + 1) * words],
                );
            }
            for j in 0..n {
                pack_sign_row(
                    sb[j * k..(j + 1) * k].iter().copied(),
                    &mut b[j * words..(j + 1) * words],
                );
            }
            let mut c = vec![0i32; m * n];
            gemm_nt_xnor(m, k, n, &a, &b, &mut c);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0i32;
                    for kk in 0..k {
                        let x = if sa[i * k + kk] { -1 } else { 1 };
                        let y = if sb[j * k + kk] { -1 } else { 1 };
                        acc += x * y;
                    }
                    assert_eq!(c[i * n + j], acc, "k={k} i={i} j={j}");
                }
            }
        }
    }

    #[test]
    fn pow2_matches_reference() {
        let mut rng = seeded(14);
        // Ranges sized so every |Σ x·2^(q-1)| stays well under i32::MAX,
        // matching the caller contract (the dispatch certificate is far
        // stricter still).
        let (m, k, n) = (7, 29, 11);
        let a: Vec<i16> = (0..m * k)
            .map(|_| rng.gen_range(-500i64..501) as i16)
            .collect();
        let codes: Vec<i8> = (0..n * k)
            .map(|_| rng.gen_range(-15i64..16) as i8)
            .collect();
        let mut c = vec![0i32; m * n];
        gemm_nt_pow2(m, k, n, &a, &codes, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for kk in 0..k {
                    let q = codes[j * k + kk] as i64;
                    let x = a[i * k + kk] as i64;
                    acc += match q.cmp(&0) {
                        std::cmp::Ordering::Greater => x << (q - 1),
                        std::cmp::Ordering::Less => -(x << (-q - 1)),
                        std::cmp::Ordering::Equal => 0,
                    };
                }
                assert_eq!(c[i * n + j] as i64, acc, "i={i} j={j}");
            }
        }
    }

    #[test]
    fn pow2_wide_matches_the_shift_add_kernel() {
        // The materialised-raw kernel and the shift-add kernel are two
        // evaluations of the same integer dot product — equal outputs on
        // any certified input, including exponents past the i16 range.
        let mut rng = seeded(19);
        let (m, k, n) = (9, 31, 8);
        let a: Vec<i16> = (0..m * k).map(|_| rng.gen_range(-2i64..3) as i16).collect();
        let codes: Vec<i8> = (0..n * k)
            .map(|_| rng.gen_range(-20i64..21) as i8)
            .collect();
        let w: Vec<i32> = codes
            .iter()
            .map(|&q| {
                let mag = 1i32 << (q.unsigned_abs().wrapping_sub(1) & 31);
                match q.cmp(&0) {
                    std::cmp::Ordering::Greater => mag,
                    std::cmp::Ordering::Less => -mag,
                    std::cmp::Ordering::Equal => 0,
                }
            })
            .collect();
        let mut shift = vec![0i32; m * n];
        gemm_nt_pow2(m, k, n, &a, &codes, &mut shift);
        let mut wide = vec![0i32; m * n];
        gemm_nt_pow2_wide(m, k, n, &a, &w, &mut wide);
        assert_eq!(wide, shift);
    }

    #[test]
    fn empty_k_zeroes_output() {
        let mut c = vec![7i32; 6];
        gemm_nt_i16(2, 0, 3, &[], &[], &mut c);
        assert!(c.iter().all(|&v| v == 0));
    }
}
