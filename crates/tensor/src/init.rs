//! Weight initializers.
//!
//! The paper trains with Caffe defaults; we provide the standard Xavier
//! (Glorot) and He (MSRA) schemes, both uniform and normal variants, which
//! are what Caffe's `xavier`/`msra` fillers implement.

use crate::rng::{standard_normal, Rng};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Fan-in and fan-out of a weight tensor.
///
/// For rank-4 convolution weights `(O, C, KH, KW)` the fan-in is
/// `C·KH·KW` and fan-out `O·KH·KW`; for rank-2 fully-connected weights
/// `(O, I)` they are `I` and `O`.
///
/// # Panics
///
/// Panics for ranks other than 2 or 4 — other ranks have no conventional
/// fan definition.
pub fn fans(shape: &Shape) -> (usize, usize) {
    match shape.rank() {
        2 => (shape.dim(1), shape.dim(0)),
        4 => {
            let rf = shape.dim(2) * shape.dim(3);
            (shape.dim(1) * rf, shape.dim(0) * rf)
        }
        r => panic!("fans undefined for rank-{r} tensors"),
    }
}

/// Xavier/Glorot uniform: `U(±sqrt(6 / (fan_in + fan_out)))`.
pub fn xavier_uniform(shape: Shape, rng: &mut Rng) -> Tensor {
    let (fi, fo) = fans(&shape);
    let bound = (6.0 / (fi + fo) as f32).sqrt();
    let data = (0..shape.len())
        .map(|_| rng.gen_range(-bound..=bound))
        .collect();
    Tensor::from_vec(shape, data).expect("generated buffer matches shape")
}

/// He/MSRA normal: `N(0, sqrt(2 / fan_in))`.
pub fn he_normal(shape: Shape, rng: &mut Rng) -> Tensor {
    let (fi, _) = fans(&shape);
    let std = (2.0 / fi as f32).sqrt();
    let data = (0..shape.len())
        .map(|_| standard_normal(rng) * std)
        .collect();
    Tensor::from_vec(shape, data).expect("generated buffer matches shape")
}

/// Uniform fill in `[lo, hi)`, for biases and tests.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(shape: Shape, lo: f32, hi: f32, rng: &mut Rng) -> Tensor {
    assert!(lo < hi, "uniform range must be non-empty");
    let data = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data).expect("generated buffer matches shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn fans_conv_and_fc() {
        assert_eq!(fans(&Shape::d4(20, 1, 5, 5)), (25, 500));
        assert_eq!(fans(&Shape::d2(500, 800)), (800, 500));
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = seeded(1);
        let w = xavier_uniform(Shape::d4(8, 4, 3, 3), &mut rng);
        let bound = (6.0f32 / (4 * 9 + 8 * 9) as f32).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= bound + 1e-6));
        // Not degenerate: values actually vary.
        let min = w.as_slice().iter().cloned().fold(f32::INFINITY, f32::min);
        let max = w
            .as_slice()
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > bound);
    }

    #[test]
    fn he_normal_std_plausible() {
        let mut rng = seeded(2);
        let w = he_normal(Shape::d2(64, 256), &mut rng);
        let n = w.len() as f32;
        let mean = w.sum() / n;
        let var = w.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n;
        let want = 2.0 / 256.0;
        assert!((var - want).abs() < want * 0.25, "var={var} want≈{want}");
    }

    #[test]
    fn uniform_is_in_range() {
        let mut rng = seeded(3);
        let t = uniform(Shape::d1(1000), -0.25, 0.75, &mut rng);
        assert!(t.as_slice().iter().all(|&x| (-0.25..0.75).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn fans_rejects_rank_3() {
        fans(&Shape::d3(1, 2, 3));
    }
}
