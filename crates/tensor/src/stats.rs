//! Summary statistics used by range calibration.
//!
//! Ristretto-style dynamic fixed point picks a radix point from the dynamic
//! range of each tensor; these helpers compute the ranges (and percentile
//! variants, an ablation in `qnn-core`).

use crate::tensor::Tensor;

/// Minimum and maximum of a tensor, `None` if it is empty.
pub fn min_max(t: &Tensor) -> Option<(f32, f32)> {
    let s = t.as_slice();
    if s.is_empty() {
        return None;
    }
    let mut lo = s[0];
    let mut hi = s[0];
    for &v in &s[1..] {
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    Some((lo, hi))
}

/// Largest absolute value, `None` if the tensor is empty.
pub fn abs_max(t: &Tensor) -> Option<f32> {
    min_max(t).map(|(lo, hi)| lo.abs().max(hi.abs()))
}

/// Arithmetic mean, `None` if the tensor is empty.
pub fn mean(t: &Tensor) -> Option<f32> {
    if t.is_empty() {
        None
    } else {
        Some(t.sum() / t.len() as f32)
    }
}

/// Population standard deviation, `None` if the tensor is empty.
pub fn std_dev(t: &Tensor) -> Option<f32> {
    let m = mean(t)?;
    let var = t.as_slice().iter().map(|&x| (x - m).powi(2)).sum::<f32>() / t.len() as f32;
    Some(var.sqrt())
}

/// The `p`-th percentile (0.0–1.0) of the absolute values, by sorting.
///
/// Used by the percentile-calibration ablation: clipping the top fraction of
/// outliers can buy fixed-point formats an extra fractional bit.
///
/// Returns `None` for an empty tensor.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or any element is NaN.
pub fn abs_percentile(t: &Tensor, p: f32) -> Option<f32> {
    assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
    if t.is_empty() {
        return None;
    }
    let mut mags: Vec<f32> = t.as_slice().iter().map(|x| x.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let idx = ((mags.len() - 1) as f32 * p).round() as usize;
    Some(mags[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(Shape::d1(n), v).unwrap()
    }

    #[test]
    fn min_max_and_abs_max() {
        let x = t(vec![-3.0, 1.0, 2.5]);
        assert_eq!(min_max(&x), Some((-3.0, 2.5)));
        assert_eq!(abs_max(&x), Some(3.0));
        assert_eq!(min_max(&t(vec![])), None);
    }

    #[test]
    fn mean_and_std() {
        let x = t(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(mean(&x), Some(2.5));
        let sd = std_dev(&x).unwrap();
        assert!((sd - 1.118).abs() < 1e-3);
    }

    #[test]
    fn percentile_endpoints() {
        let x = t(vec![-10.0, 1.0, 2.0, 3.0]);
        assert_eq!(abs_percentile(&x, 1.0), Some(10.0));
        assert_eq!(abs_percentile(&x, 0.0), Some(1.0));
    }

    #[test]
    fn percentile_clips_outlier() {
        // 99 small values and one huge outlier: the 95th percentile ignores it.
        let mut v = vec![1.0f32; 99];
        v.push(1000.0);
        let x = t(v);
        assert_eq!(abs_percentile(&x, 0.95), Some(1.0));
    }
}
