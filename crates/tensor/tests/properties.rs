//! Property-style tests for the tensor substrate, run as deterministic
//! seeded loops (≥256 cases each) so the suite needs no external
//! property-testing dependency and is reproducible bit-for-bit.

use qnn_tensor::conv::{col2im, conv2d, conv2d_backward, im2col, Geometry};
use qnn_tensor::pool::{avg_pool2d, max_pool2d, max_pool2d_backward};
use qnn_tensor::rng::{derive_seed, seeded, Rng};
use qnn_tensor::{Shape, Tensor};

const CASES: u64 = 256;

/// Runs `f` once per case with an independent child-stream RNG.
fn cases(suite_seed: u64, f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = seeded(derive_seed(suite_seed, case));
        f(&mut rng);
    }
}

fn tensor(shape: Shape, lo: f32, hi: f32, rng: &mut Rng) -> Tensor {
    let data = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data).unwrap()
}

fn small_matrix(rng: &mut Rng) -> Tensor {
    let m = rng.gen_range(1usize..6);
    let n = rng.gen_range(1usize..6);
    tensor(Shape::d2(m, n), -10.0, 10.0, rng)
}

#[test]
fn add_commutes() {
    cases(0x01, |rng| {
        let a = small_matrix(rng);
        let b = a.map(|x| x * 0.5 - 1.0);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        assert_eq!(ab, ba);
    });
}

#[test]
fn transpose_is_involution() {
    cases(0x02, |rng| {
        let a = small_matrix(rng);
        assert_eq!(a.transpose().unwrap().transpose().unwrap(), a);
    });
}

#[test]
fn matmul_distributes_over_add() {
    cases(0x03, |rng| {
        // (A + A) · I == A·I + A·I (structure check with exact arithmetic on
        // identity to avoid float-association noise).
        let a = small_matrix(rng);
        let n = a.shape().dim(1);
        let mut id = Tensor::zeros(Shape::d2(n, n));
        for i in 0..n {
            *id.at_mut(&[i, i]) = 1.0;
        }
        let lhs = a.add(&a).unwrap().matmul(&id).unwrap();
        let rhs = a.matmul(&id).unwrap().add(&a.matmul(&id).unwrap()).unwrap();
        assert_eq!(lhs, rhs);
    });
}

#[test]
fn matmul_matches_naive_on_random_shapes() {
    cases(0x0A, |rng| {
        let m = rng.gen_range(1usize..24);
        let k = rng.gen_range(1usize..24);
        let n = rng.gen_range(1usize..24);
        let a = tensor(Shape::d2(m, k), -4.0, 4.0, rng);
        let b = tensor(Shape::d2(k, n), -4.0, 4.0, rng);
        // Bit-identical, not approximately equal: the blocked kernel keeps
        // the naive accumulation order per output element.
        assert_eq!(a.matmul(&b).unwrap(), a.matmul_naive(&b).unwrap());
    });
}

#[test]
fn matmul_nt_tn_match_transposed_naive() {
    cases(0x0B, |rng| {
        let m = rng.gen_range(1usize..12);
        let k = rng.gen_range(1usize..12);
        let n = rng.gen_range(1usize..12);
        let a = tensor(Shape::d2(m, k), -4.0, 4.0, rng);
        let bt = tensor(Shape::d2(n, k), -4.0, 4.0, rng);
        assert_eq!(
            a.matmul_nt(&bt).unwrap(),
            a.matmul_naive(&bt.transpose().unwrap()).unwrap()
        );
        let at = tensor(Shape::d2(k, m), -4.0, 4.0, rng);
        let b = tensor(Shape::d2(k, n), -4.0, 4.0, rng);
        assert_eq!(
            at.matmul_tn(&b).unwrap(),
            at.transpose().unwrap().matmul_naive(&b).unwrap()
        );
    });
}

#[test]
fn scale_then_sum_is_linear() {
    cases(0x04, |rng| {
        let a = small_matrix(rng);
        let k = rng.gen_range(-3.0f32..3.0);
        let lhs = a.scale(k).sum();
        let rhs = a.sum() * k;
        assert!((lhs - rhs).abs() <= 1e-3 * (1.0 + rhs.abs()));
    });
}

#[test]
fn im2col_col2im_adjoint() {
    cases(0x05, |rng| {
        let x = tensor(Shape::d3(2, 6, 6), -5.0, 5.0, rng);
        let k = rng.gen_range(1usize..4);
        let s = rng.gen_range(1usize..3);
        let p = rng.gen_range(0usize..2);
        let geom = Geometry {
            kh: k,
            kw: k,
            stride: s,
            pad: p,
            ceil: false,
        };
        if geom.output_hw(6, 6).is_err() {
            return;
        }
        let cols = im2col(&x, geom).unwrap();
        let y = cols.map(|v| v * 0.7 + 0.1);
        let lhs = cols.dot(&y).unwrap();
        let rhs = x.dot(&col2im(&y, 2, 6, 6, geom).unwrap()).unwrap();
        assert!(
            (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "lhs={lhs} rhs={rhs}"
        );
    });
}

#[test]
fn conv_linearity_in_input() {
    cases(0x06, |rng| {
        let x = tensor(Shape::d4(1, 1, 5, 5), -5.0, 5.0, rng);
        let k = rng.gen_range(-2.0f32..2.0);
        let w = Tensor::ones(Shape::d4(2, 1, 3, 3));
        let b = Tensor::zeros(Shape::d1(2));
        let geom = Geometry::square(3, 1, 1);
        let y1 = conv2d(&x.scale(k), &w, &b, geom).unwrap();
        let y2 = conv2d(&x, &w, &b, geom).unwrap().scale(k);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    });
}

#[test]
fn conv_grad_bias_counts_pixels() {
    cases(0x07, |rng| {
        let x = tensor(Shape::d4(2, 1, 4, 4), -5.0, 5.0, rng);
        let w = Tensor::ones(Shape::d4(1, 1, 3, 3));
        let geom = Geometry::square(3, 1, 0);
        let y = conv2d(&x, &w, &Tensor::zeros(Shape::d1(1)), geom).unwrap();
        let gout = Tensor::ones(y.shape().clone());
        let (_, _, gb) = conv2d_backward(&x, &w, &gout, geom).unwrap();
        // 2 samples × 2×2 output pixels each
        assert_eq!(gb.as_slice(), &[8.0]);
    });
}

#[test]
fn max_pool_output_bounded_by_input() {
    cases(0x08, |rng| {
        let x = tensor(Shape::d4(1, 2, 6, 6), -5.0, 5.0, rng);
        let p = max_pool2d(&x, Geometry::square(2, 2, 0)).unwrap();
        let (lo, hi) = qnn_tensor::stats::min_max(&x).unwrap();
        for &v in p.output.as_slice() {
            assert!(v >= lo && v <= hi);
        }
    });
}

#[test]
fn max_pool_backward_preserves_grad_mass() {
    cases(0x09, |rng| {
        let x = tensor(Shape::d4(1, 1, 4, 4), -5.0, 5.0, rng);
        let p = max_pool2d(&x, Geometry::square(2, 2, 0)).unwrap();
        let gout = Tensor::ones(p.output.shape().clone());
        let gx = max_pool2d_backward(x.shape(), &p.argmax, &gout).unwrap();
        assert!((gx.sum() - gout.sum()).abs() < 1e-4);
    });
}

#[test]
fn avg_pool_of_constant_is_constant() {
    cases(0x0C, |rng| {
        let c = rng.gen_range(-4.0f32..4.0);
        let x = Tensor::full(Shape::d4(1, 1, 4, 4), c);
        let y = avg_pool2d(&x, Geometry::square(2, 2, 0)).unwrap();
        for &v in y.as_slice() {
            assert!((v - c).abs() < 1e-5);
        }
    });
}

/// Batched (threaded) convolution must equal per-sample (serial) results
/// exactly — threading must not change any bit of the output.
#[test]
fn parallel_conv_matches_per_sample_serial() {
    use qnn_tensor::conv::{conv2d, conv2d_backward};
    let n = 9; // odd, > thread chunking boundaries
    let x = Tensor::from_vec(
        Shape::d4(n, 3, 10, 10),
        (0..n * 300).map(|i| ((i as f32) * 0.173).sin()).collect(),
    )
    .unwrap();
    let w = Tensor::from_vec(
        Shape::d4(5, 3, 3, 3),
        (0..135).map(|i| ((i as f32) * 0.71).cos() * 0.3).collect(),
    )
    .unwrap();
    let b = Tensor::from_vec(Shape::d1(5), vec![0.1, -0.2, 0.3, 0.0, 0.5]).unwrap();
    let geom = Geometry::square(3, 1, 1);
    let batched = conv2d(&x, &w, &b, geom).unwrap();
    let sample = 300;
    let out_sample = 5 * 100;
    for ni in 0..n {
        let xi = Tensor::from_vec(
            Shape::d4(1, 3, 10, 10),
            x.as_slice()[ni * sample..(ni + 1) * sample].to_vec(),
        )
        .unwrap();
        let yi = conv2d(&xi, &w, &b, geom).unwrap();
        assert_eq!(
            yi.as_slice(),
            &batched.as_slice()[ni * out_sample..(ni + 1) * out_sample],
            "sample {ni} differs between batched and serial conv"
        );
    }
    // Backward: batched gradients equal the sum of per-sample gradients.
    let gout = batched.map(|v| (v * 0.37).sin());
    let (gx, gw, gb) = conv2d_backward(&x, &w, &gout, geom).unwrap();
    let mut gw_sum = Tensor::zeros(w.shape().clone());
    let mut gb_sum = Tensor::zeros(Shape::d1(5));
    for ni in 0..n {
        let xi = Tensor::from_vec(
            Shape::d4(1, 3, 10, 10),
            x.as_slice()[ni * sample..(ni + 1) * sample].to_vec(),
        )
        .unwrap();
        let gi = Tensor::from_vec(
            Shape::d4(1, 5, 10, 10),
            gout.as_slice()[ni * out_sample..(ni + 1) * out_sample].to_vec(),
        )
        .unwrap();
        let (gxi, gwi, gbi) = conv2d_backward(&xi, &w, &gi, geom).unwrap();
        assert_eq!(
            gxi.as_slice(),
            &gx.as_slice()[ni * sample..(ni + 1) * sample]
        );
        gw_sum.axpy(1.0, &gwi).unwrap();
        gb_sum.axpy(1.0, &gbi).unwrap();
    }
    for (a, b) in gw.as_slice().iter().zip(gw_sum.as_slice()) {
        assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()));
    }
    for (a, b) in gb.as_slice().iter().zip(gb_sum.as_slice()) {
        assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()));
    }
}
