//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use qnn_tensor::conv::{col2im, conv2d, conv2d_backward, im2col, Geometry};
use qnn_tensor::pool::{avg_pool2d, max_pool2d, max_pool2d_backward};
use qnn_tensor::{Shape, Tensor};

fn small_matrix() -> impl Strategy<Value = Tensor> {
    (1usize..6, 1usize..6).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f32..10.0, m * n)
            .prop_map(move |v| Tensor::from_vec(Shape::d2(m, n), v).unwrap())
    })
}

fn image(c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-5.0f32..5.0, c * h * w)
        .prop_map(move |v| Tensor::from_vec(Shape::d3(c, h, w), v).unwrap())
}

fn batch(n: usize, c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-5.0f32..5.0, n * c * h * w)
        .prop_map(move |v| Tensor::from_vec(Shape::d4(n, c, h, w), v).unwrap())
}

proptest! {
    #[test]
    fn add_commutes(a in small_matrix()) {
        let b = a.map(|x| x * 0.5 - 1.0);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn transpose_is_involution(a in small_matrix()) {
        prop_assert_eq!(a.transpose().unwrap().transpose().unwrap(), a);
    }

    #[test]
    fn matmul_distributes_over_add(a in small_matrix()) {
        // (A + A) · I == A·I + A·I (structure check with exact arithmetic on
        // identity to avoid float-association noise).
        let n = a.shape().dim(1);
        let mut id = Tensor::zeros(Shape::d2(n, n));
        for i in 0..n {
            *id.at_mut(&[i, i]) = 1.0;
        }
        let lhs = a.add(&a).unwrap().matmul(&id).unwrap();
        let rhs = a.matmul(&id).unwrap().add(&a.matmul(&id).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn scale_then_sum_is_linear(a in small_matrix(), k in -3.0f32..3.0) {
        let lhs = a.scale(k).sum();
        let rhs = a.sum() * k;
        prop_assert!((lhs - rhs).abs() <= 1e-3 * (1.0 + rhs.abs()));
    }

    #[test]
    fn im2col_col2im_adjoint(x in image(2, 6, 6), k in 1usize..4, s in 1usize..3, p in 0usize..2) {
        let geom = Geometry { kh: k, kw: k, stride: s, pad: p, ceil: false };
        if geom.output_hw(6, 6).is_err() { return Ok(()); }
        let cols = im2col(&x, geom).unwrap();
        // y = some function of cols
        let y = cols.map(|v| v * 0.7 + 0.1);
        let lhs = cols.dot(&y).unwrap();
        let rhs = x.dot(&col2im(&y, 2, 6, 6, geom).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "lhs={} rhs={}", lhs, rhs);
    }

    #[test]
    fn conv_linearity_in_input(x in batch(1, 1, 5, 5), k in -2.0f32..2.0) {
        let w = Tensor::ones(Shape::d4(2, 1, 3, 3));
        let b = Tensor::zeros(Shape::d1(2));
        let geom = Geometry::square(3, 1, 1);
        let y1 = conv2d(&x.scale(k), &w, &b, geom).unwrap();
        let y2 = conv2d(&x, &w, &b, geom).unwrap().scale(k);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn conv_grad_bias_counts_pixels(x in batch(2, 1, 4, 4)) {
        let w = Tensor::ones(Shape::d4(1, 1, 3, 3));
        let geom = Geometry::square(3, 1, 0);
        let y = conv2d(&x, &w, &Tensor::zeros(Shape::d1(1)), geom).unwrap();
        let gout = Tensor::ones(y.shape().clone());
        let (_, _, gb) = conv2d_backward(&x, &w, &gout, geom).unwrap();
        // 2 samples × 2×2 output pixels each
        prop_assert_eq!(gb.as_slice(), &[8.0]);
    }

    #[test]
    fn max_pool_output_bounded_by_input(x in batch(1, 2, 6, 6)) {
        let p = max_pool2d(&x, Geometry::square(2, 2, 0)).unwrap();
        let (lo, hi) = qnn_tensor::stats::min_max(&x).unwrap();
        for &v in p.output.as_slice() {
            prop_assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn max_pool_backward_preserves_grad_mass(x in batch(1, 1, 4, 4)) {
        let p = max_pool2d(&x, Geometry::square(2, 2, 0)).unwrap();
        let gout = Tensor::ones(p.output.shape().clone());
        let gx = max_pool2d_backward(x.shape(), &p.argmax, &gout).unwrap();
        prop_assert!((gx.sum() - gout.sum()).abs() < 1e-4);
    }

    #[test]
    fn avg_pool_of_constant_is_constant(c in -4.0f32..4.0) {
        let x = Tensor::full(Shape::d4(1, 1, 4, 4), c);
        let y = avg_pool2d(&x, Geometry::square(2, 2, 0)).unwrap();
        for &v in y.as_slice() {
            prop_assert!((v - c).abs() < 1e-5);
        }
    }
}

/// Batched (threaded) convolution must equal per-sample (serial) results
/// exactly — threading must not change any bit of the output.
#[test]
fn parallel_conv_matches_per_sample_serial() {
    use qnn_tensor::conv::{conv2d, conv2d_backward};
    let n = 9; // odd, > thread chunking boundaries
    let x = Tensor::from_vec(
        Shape::d4(n, 3, 10, 10),
        (0..n * 300).map(|i| ((i as f32) * 0.173).sin()).collect(),
    )
    .unwrap();
    let w = Tensor::from_vec(
        Shape::d4(5, 3, 3, 3),
        (0..135).map(|i| ((i as f32) * 0.71).cos() * 0.3).collect(),
    )
    .unwrap();
    let b = Tensor::from_vec(Shape::d1(5), vec![0.1, -0.2, 0.3, 0.0, 0.5]).unwrap();
    let geom = Geometry::square(3, 1, 1);
    let batched = conv2d(&x, &w, &b, geom).unwrap();
    let sample = 300;
    let out_sample = 5 * 100;
    for ni in 0..n {
        let xi = Tensor::from_vec(
            Shape::d4(1, 3, 10, 10),
            x.as_slice()[ni * sample..(ni + 1) * sample].to_vec(),
        )
        .unwrap();
        let yi = conv2d(&xi, &w, &b, geom).unwrap();
        assert_eq!(
            yi.as_slice(),
            &batched.as_slice()[ni * out_sample..(ni + 1) * out_sample],
            "sample {ni} differs between batched and serial conv"
        );
    }
    // Backward: batched gradients equal the sum of per-sample gradients.
    let gout = batched.map(|v| (v * 0.37).sin());
    let (gx, gw, gb) = conv2d_backward(&x, &w, &gout, geom).unwrap();
    let mut gw_sum = Tensor::zeros(w.shape().clone());
    let mut gb_sum = Tensor::zeros(Shape::d1(5));
    for ni in 0..n {
        let xi = Tensor::from_vec(
            Shape::d4(1, 3, 10, 10),
            x.as_slice()[ni * sample..(ni + 1) * sample].to_vec(),
        )
        .unwrap();
        let gi = Tensor::from_vec(
            Shape::d4(1, 5, 10, 10),
            gout.as_slice()[ni * out_sample..(ni + 1) * out_sample].to_vec(),
        )
        .unwrap();
        let (gxi, gwi, gbi) = conv2d_backward(&xi, &w, &gi, geom).unwrap();
        assert_eq!(
            gxi.as_slice(),
            &gx.as_slice()[ni * sample..(ni + 1) * sample]
        );
        gw_sum.axpy(1.0, &gwi).unwrap();
        gb_sum.axpy(1.0, &gbi).unwrap();
    }
    for (a, b) in gw.as_slice().iter().zip(gw_sum.as_slice()) {
        assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()));
    }
    for (a, b) in gb.as_slice().iter().zip(gb_sum.as_slice()) {
        assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()));
    }
}
