//! Property tests for the packed-B panel layout behind the register-blocked
//! i16 microkernels: pack → read round-trips bit-identically for arbitrary
//! K/N (including ragged edge tiles), padding lanes are exactly zero, and
//! the panel microkernels agree with the row-at-a-time reference kernel in
//! every association order the dispatcher can pick.
//!
//! Deterministic seeded loops (≥256 cases each), same harness idiom as
//! `properties.rs` — no external property-testing dependency.

use qnn_tensor::qgemm::{
    gemm_nt_i16, gemm_nt_i16_panel, gemm_nt_i16_panel2_emit, gemm_nt_i16_panel_emit, PanelB,
};
use qnn_tensor::rng::{derive_seed, seeded, Rng};

const CASES: u64 = 256;

fn cases(suite_seed: u64, f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = seeded(derive_seed(suite_seed, case));
        f(&mut rng);
    }
}

/// Ragged-leaning dimensions: biased toward tile edges (n around multiples
/// of the 16-wide panel, odd k, m around the 4-row block).
fn ragged_dims(rng: &mut Rng) -> (usize, usize, usize) {
    let m = rng.gen_range(1usize..10);
    let k = rng.gen_range(1usize..48);
    let n = match rng.gen_range(0u32..4) {
        0 => rng.gen_range(1usize..16),     // sub-panel
        1 => 16 * rng.gen_range(1usize..3), // exact panels
        2 => 16 * rng.gen_range(1usize..3) + rng.gen_range(1usize..16), // ragged tail
        _ => rng.gen_range(1usize..40),
    };
    (m, k, n)
}

fn words(len: usize, max_abs: i16, rng: &mut Rng) -> Vec<i16> {
    (0..len)
        .map(|_| rng.gen_range(-(max_abs as i32)..max_abs as i32 + 1) as i16)
        .collect()
}

#[test]
fn pack_read_round_trips_bit_identically() {
    cases(0x71, |rng| {
        let (_, k, n) = ragged_dims(rng);
        let b = words(n * k, 1000, rng);
        let panel = PanelB::pack(n, k, &b);
        assert_eq!(panel.n(), n);
        assert_eq!(panel.k(), k);
        for j in 0..n {
            for kk in 0..k {
                assert_eq!(
                    panel.read(j, kk),
                    b[j * k + kk],
                    "panel({j},{kk}) round-trip, n={n} k={k}"
                );
            }
        }
    });
}

#[test]
fn padding_lanes_are_exactly_zero() {
    // The microkernels multiply padding lanes unconditionally; any nonzero
    // value there would corrupt edge-tile columns or the odd-k pair slot.
    cases(0x72, |rng| {
        let (_, k, n) = ragged_dims(rng);
        let b = words(n * k, i16::MAX, rng);
        let panel = PanelB::pack(n, k, &b);
        let n_padded = n.div_ceil(16) * 16;
        let k_padded = k.div_ceil(2) * 2;
        for j in 0..n_padded {
            for kk in 0..k_padded {
                if j < n && kk < k {
                    continue;
                }
                assert_eq!(panel.read(j, kk), 0, "padding ({j},{kk}) n={n} k={k}");
            }
        }
        assert_eq!(panel.words().len(), n.div_ceil(16) * k.div_ceil(2) * 32);
    });
}

#[test]
fn panel_kernel_matches_row_reference_on_ragged_tiles() {
    cases(0x73, |rng| {
        let (m, k, n) = ragged_dims(rng);
        let a = words(m * k, 127, rng);
        let b = words(n * k, 127, rng);
        let panel = PanelB::pack(n, k, &b);
        let mut c_ref = vec![0i32; m * n];
        gemm_nt_i16(m, k, n, &a, &b, &mut c_ref);
        let mut c_panel = vec![0i32; m * n];
        gemm_nt_i16_panel(m, k, n, &a, &panel, &mut c_panel);
        assert_eq!(c_ref, c_panel, "m={m} k={k} n={n}");
    });
}

#[test]
fn panel_emit_sees_each_row_once_with_final_accumulators() {
    cases(0x74, |rng| {
        let (m, k, n) = ragged_dims(rng);
        let a = words(m * k, 127, rng);
        let b = words(n * k, 127, rng);
        let panel = PanelB::pack(n, k, &b);
        let mut c_ref = vec![0i32; m * n];
        gemm_nt_i16(m, k, n, &a, &b, &mut c_ref);
        let mut out = vec![0.0f32; m * n];
        gemm_nt_i16_panel_emit(m, k, n, &a, &panel, &mut out, |r, acc, orow| {
            assert_eq!(acc.len(), n);
            assert_eq!(orow.len(), n);
            for (j, (&v, o)) in acc.iter().zip(orow.iter_mut()).enumerate() {
                assert_eq!(v, c_ref[r * n + j], "row {r} col {j}");
                *o = v as f32;
            }
        });
        for (i, (&o, &r)) in out.iter().zip(c_ref.iter()).enumerate() {
            assert_eq!(o, r as f32, "emit output {i}");
        }
    });
}

#[test]
fn shift_add_panels_combine_to_scalar_reference() {
    // The two-panel shift-add kernel computes lo + (hi << shift) per
    // accumulator; a scalar model of the same decomposition must agree
    // exactly, padding included.
    cases(0x75, |rng| {
        let (m, k, n) = ragged_dims(rng);
        let shift = rng.gen_range(1u32..16);
        let a = words(m * k, 127, rng);
        let lo = words(n * k, 127, rng);
        let hi = words(n * k, 127, rng);
        let plo = PanelB::pack(n, k, &lo);
        let phi = PanelB::pack(n, k, &hi);
        let mut out = vec![0.0f32; m * n];
        gemm_nt_i16_panel2_emit(m, k, n, &a, &plo, &phi, shift, &mut out, |_r, acc, orow| {
            for (&v, o) in acc.iter().zip(orow.iter_mut()) {
                *o = v as f32;
            }
        });
        for i in 0..m {
            for j in 0..n {
                let mut dot_lo = 0i64;
                let mut dot_hi = 0i64;
                for kk in 0..k {
                    dot_lo += a[i * k + kk] as i64 * lo[j * k + kk] as i64;
                    dot_hi += a[i * k + kk] as i64 * hi[j * k + kk] as i64;
                }
                let expect = (dot_lo + (dot_hi << shift)) as i32;
                assert_eq!(
                    out[i * n + j],
                    expect as f32,
                    "shift-add ({i},{j}) m={m} k={k} n={n} shift={shift}"
                );
            }
        }
    });
}
