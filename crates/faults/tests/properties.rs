//! Seeded property tests for the fault-injection engine and the `QNNF`
//! container: corruption detection at every byte and every truncation
//! length, and thread-count independence of injection.

use qnn_faults::{store, BufferKind, FaultInjector};
use qnn_quant::{BitCodec, Fixed, Minifloat, PowerOfTwo};
use qnn_tensor::rng::seeded;

/// A representative container written through the real encoder.
fn sample_container() -> Vec<u8> {
    let dir = std::env::temp_dir().join("qnn-faults-prop-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sample.qnnf");
    let payload: Vec<u8> = (0u32..400)
        .map(|i| (i.wrapping_mul(31) >> 3) as u8)
        .collect();
    store::write_atomic(&path, store::KIND_TRAIN_CHECKPOINT, &payload).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    bytes
}

#[test]
fn single_byte_corruption_detected_at_every_offset() {
    let good = sample_container();
    assert!(store::decode(&good, store::KIND_TRAIN_CHECKPOINT).is_ok());
    let mut rng = seeded(2024);
    for i in 0..good.len() {
        let mut bad = good.clone();
        // Random nonzero XOR so all bit positions get exercised across
        // the sweep, not just one.
        let x = (rng.gen_range(1u32..256)) as u8;
        bad[i] ^= x;
        assert!(
            store::decode(&bad, store::KIND_TRAIN_CHECKPOINT).is_err(),
            "corruption at byte {i} (xor {x:#04x}) went undetected"
        );
    }
}

#[test]
fn truncation_detected_at_every_prefix_length() {
    let good = sample_container();
    for len in 0..good.len() {
        let err = store::decode(&good[..len], store::KIND_TRAIN_CHECKPOINT).unwrap_err();
        assert!(
            err.is_corruption(),
            "prefix of {len} bytes decoded as {err:?}"
        );
    }
}

#[test]
fn injection_is_identical_across_thread_counts() {
    // The injector is serial by construction; this pins the contract that
    // nothing in the corrupt path consults the worker pool.
    let codecs = [
        BitCodec::Float32,
        BitCodec::Fixed(Fixed::new(8, 4).unwrap()),
        BitCodec::PowerOfTwo(PowerOfTwo::new(6, 0).unwrap()),
        BitCodec::Minifloat(Minifloat::new(4, 3).unwrap()),
    ];
    let run = |threads: usize| {
        qnn_tensor::par::set_threads(Some(threads));
        let mut out = Vec::new();
        for (s, codec) in codecs.iter().enumerate() {
            let mut data: Vec<f32> = {
                let mut r = seeded(500 + s as u64);
                (0..2048).map(|_| r.gen_range(-4.0f32..4.0)).collect()
            };
            let mut inj = FaultInjector::new(1e-3, 77 + s as u64).unwrap();
            let flips = inj.corrupt_slice(codec, BufferKind::Weight, &mut data);
            out.push((flips, data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()));
        }
        out
    };
    let one = run(1);
    let four = run(4);
    qnn_tensor::par::set_threads(None); // restore default
    assert_eq!(one, four);
}

#[test]
fn windowed_walks_are_deterministic() {
    // Successive sites() windows on one injector consume RNG state in
    // order; two identically seeded injectors walk identical windows.
    let walk = || {
        let mut inj = FaultInjector::new(0.01, 9).unwrap();
        let w1: Vec<u64> = inj.sites(1000).collect();
        let w2: Vec<u64> = inj.sites(1000).collect();
        (w1, w2)
    };
    assert_eq!(walk(), walk());
}
