//! Typed errors for fault injection and checkpoint storage.

use std::fmt;

/// Errors constructing or driving a [`FaultInjector`](crate::FaultInjector).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// The per-bit fault rate is outside `[0, 1]` or not finite.
    InvalidRate {
        /// The offending rate.
        rate: f64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidRate { rate } => {
                write!(f, "fault rate {rate} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Errors reading or writing the `QNNF` checkpoint container.
///
/// Every way a file on disk can be wrong maps to a distinct variant, so
/// callers can decide to fall back (e.g. to a `.bak` rotation) on
/// corruption while still failing loudly on I/O trouble.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An OS-level I/O failure. The `io::Error` itself is flattened to
    /// keep this type `Clone + PartialEq`.
    Io {
        /// Operation that failed (`"open"`, `"write"`, `"rename"`, ...).
        op: &'static str,
        /// Path involved.
        path: String,
        /// `io::Error` display text.
        msg: String,
    },
    /// The file does not start with the `QNNF` magic bytes.
    BadMagic,
    /// The container version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Highest version this build supports.
        supported: u16,
    },
    /// The container holds a different kind of payload than requested
    /// (e.g. a sweep-state file passed where a trainer checkpoint was
    /// expected).
    WrongKind {
        /// Kind the caller asked for.
        expected: u16,
        /// Kind found in the header.
        found: u16,
    },
    /// The file is shorter than its header claims — an interrupted write.
    Truncated {
        /// Total byte length the header implies.
        expected: u64,
        /// Byte length actually on disk.
        found: u64,
    },
    /// The CRC32 trailer does not match the bytes — silent corruption.
    CrcMismatch {
        /// Checksum stored in the trailer.
        stored: u32,
        /// Checksum recomputed over the file contents.
        computed: u32,
    },
    /// The payload failed structural decoding (bad lengths, impossible
    /// counts); carries a human-readable reason.
    Malformed {
        /// What was wrong.
        reason: String,
    },
}

impl StoreError {
    /// Wraps an [`std::io::Error`] with the operation and path context.
    pub fn io(op: &'static str, path: &std::path::Path, err: &std::io::Error) -> Self {
        StoreError::Io {
            op,
            path: path.display().to_string(),
            msg: err.to_string(),
        }
    }

    /// True for variants that mean "the bytes on disk are damaged" (as
    /// opposed to I/O failures or honest version/kind mismatches) — the
    /// cases where falling back to an older checkpoint is sensible.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StoreError::BadMagic
                | StoreError::Truncated { .. }
                | StoreError::CrcMismatch { .. }
                | StoreError::Malformed { .. }
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, msg } => {
                write!(f, "{op} {path}: {msg}")
            }
            StoreError::BadMagic => write!(f, "not a QNNF container (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "container version {found} newer than supported {supported}"
                )
            }
            StoreError::WrongKind { expected, found } => {
                write!(f, "container kind {found}, expected {expected}")
            }
            StoreError::Truncated { expected, found } => {
                write!(f, "truncated container: {found} of {expected} bytes")
            }
            StoreError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            StoreError::Malformed { reason } => write!(f, "malformed payload: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {}
