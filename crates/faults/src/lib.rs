#![warn(missing_docs)]

//! # qnn-faults — fault injection and crash-safe storage for qnn
//!
//! The robustness layer of the reproduction, in two halves:
//!
//! * **Bit-flip injection** ([`FaultInjector`]): a deterministic, seeded
//!   engine that flips bits of *encoded* stored words — via the
//!   [`BitCodec`](qnn_quant::BitCodec)s of `qnn-quant` — at a configurable
//!   per-bit rate, modelling SRAM soft errors in the accelerator's `SB`
//!   (weights), `Bin` (activations) and accumulator structures. Sites are
//!   drawn by geometric-skip sampling (O(flips), not O(bits)) and depend
//!   only on the seed, never on the thread count.
//!
//! * **Crash-safe containers** ([`store`]): the versioned `QNNF` binary
//!   format (magic + version header, little-endian payload, CRC32
//!   trailer) written atomically via temp-file + rename, with every
//!   corruption mode surfaced as a typed [`StoreError`]. Trainer
//!   checkpoints and sweep resume state across the workspace are carried
//!   in these containers.
//!
//! Like every crate in the workspace this is std-only — the CRC and the
//! sampling are hand-rolled.

mod error;
mod inject;

pub mod crc32;
pub mod store;

pub use error::{FaultError, StoreError};
pub use inject::{BufferKind, FaultInjector, Sites};
