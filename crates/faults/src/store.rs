//! The `QNNF` binary container: magic + version header, opaque payload,
//! CRC32 trailer, written atomically.
//!
//! ## Layout (all integers little-endian)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `b"QNNF"` |
//! | 4      | 2    | container version (currently 1) |
//! | 6      | 2    | payload kind (what the payload encodes) |
//! | 8      | 8    | payload length `n` in bytes |
//! | 16     | `n`  | payload |
//! | 16+`n` | 4    | CRC-32 over bytes `[0, 16+n)` |
//!
//! Writes go to a sibling `*.tmp` file which is flushed, synced and then
//! renamed over the destination — on any crash the destination either
//! holds the complete old file or the complete new one, never a mix.
//! Reads verify magic, version, kind, length and checksum before a single
//! payload byte is handed to the caller; each failure mode is a distinct
//! [`StoreError`] variant.

use crate::crc32;
use crate::error::StoreError;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Container magic bytes.
pub const MAGIC: [u8; 4] = *b"QNNF";

/// Highest container version this build reads and the version it writes.
pub const VERSION: u16 = 1;

/// Fixed header length in bytes.
const HEADER_LEN: usize = 16;

/// CRC trailer length in bytes.
const TRAILER_LEN: usize = 4;

/// Payload kind for trainer checkpoints (`qnn-nn`).
pub const KIND_TRAIN_CHECKPOINT: u16 = 1;

/// Payload kind for sweep resume state (`qnn-core`).
pub const KIND_SWEEP_STATE: u16 = 2;

/// Payload kind for pretrained network snapshots (`qnn-core`).
pub const KIND_NET_SNAPSHOT: u16 = 3;

/// Payload kind for serving model-bank checkpoints (`qnn-serve`): the
/// bank seed plus the base-network weights every precision variant is
/// calibrated from.
pub const KIND_MODEL_BANK: u16 = 4;

/// Writes `payload` as a `kind` container at `path`, atomically.
///
/// The bytes land in `path` only after the temp file is fully written and
/// synced; a crash mid-write leaves any previous file at `path` intact.
pub fn write_atomic(path: &Path, kind: u16, payload: &[u8]) -> Result<(), StoreError> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&kind.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(payload);
    let crc = crc32::checksum(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());

    let tmp = tmp_path(path);
    let mut f = fs::File::create(&tmp).map_err(|e| StoreError::io("create", &tmp, &e))?;
    f.write_all(&bytes)
        .map_err(|e| StoreError::io("write", &tmp, &e))?;
    f.sync_all().map_err(|e| StoreError::io("sync", &tmp, &e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| StoreError::io("rename", path, &e))?;
    Ok(())
}

/// Reads and fully validates a `kind` container, returning its payload.
pub fn read(path: &Path, kind: u16) -> Result<Vec<u8>, StoreError> {
    let bytes = fs::read(path).map_err(|e| StoreError::io("read", path, &e))?;
    decode(&bytes, kind)
}

/// Validates container `bytes` in memory and extracts the payload.
///
/// Split out from [`read`] so tests can exercise every corruption mode
/// without touching the filesystem.
pub fn decode(bytes: &[u8], kind: u16) -> Result<Vec<u8>, StoreError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(StoreError::Truncated {
            expected: (HEADER_LEN + TRAILER_LEN) as u64,
            found: bytes.len() as u64,
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version > VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let found_kind = u16::from_le_bytes([bytes[6], bytes[7]]);
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let expected_total = HEADER_LEN as u64 + payload_len as u64 + TRAILER_LEN as u64;
    if (bytes.len() as u64) != expected_total {
        return Err(StoreError::Truncated {
            expected: expected_total,
            found: bytes.len() as u64,
        });
    }
    let body = &bytes[..HEADER_LEN + payload_len];
    let stored = u32::from_le_bytes(bytes[HEADER_LEN + payload_len..].try_into().unwrap());
    let computed = crc32::checksum(body);
    if stored != computed {
        return Err(StoreError::CrcMismatch { stored, computed });
    }
    // Kind is checked after the CRC: a kind mismatch on a *valid* file is
    // a caller mistake, not corruption, and is reported as such.
    if found_kind != kind {
        return Err(StoreError::WrongKind {
            expected: kind,
            found: found_kind,
        });
    }
    Ok(bytes[HEADER_LEN..HEADER_LEN + payload_len].to_vec())
}

/// Sibling temp-file path used by [`write_atomic`].
fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Little-endian payload serialization helpers.
///
/// Checkpoint payloads across the workspace (`qnn-nn` trainer state,
/// `qnn-core` sweep state) are assembled with these writers and pulled
/// apart with [`wire::Reader`], which turns every out-of-bounds or
/// inconsistent read into a typed [`StoreError::Malformed`] instead of a
/// panic.
pub mod wire {
    use crate::error::StoreError;

    /// Appends a `u32` in little-endian order.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its little-endian bit pattern (exact).
    pub fn put_f32(buf: &mut Vec<u8>, v: f32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` slice: count then raw little-endian values.
    pub fn put_f32_slice(buf: &mut Vec<u8>, vs: &[f32]) {
        put_u64(buf, vs.len() as u64);
        for &v in vs {
            put_f32(buf, v);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_u64(buf, s.len() as u64);
        buf.extend_from_slice(s.as_bytes());
    }

    /// A bounds-checked cursor over a payload.
    #[derive(Debug)]
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// Starts reading at the beginning of `buf`.
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }

        /// Bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// Fails decoding unless every byte has been consumed — catches
        /// payloads with trailing garbage.
        pub fn expect_end(&self) -> Result<(), StoreError> {
            if self.remaining() != 0 {
                return Err(StoreError::Malformed {
                    reason: format!("{} trailing bytes", self.remaining()),
                });
            }
            Ok(())
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
            if self.remaining() < n {
                return Err(StoreError::Malformed {
                    reason: format!("need {n} bytes, {} left", self.remaining()),
                });
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        /// Reads a little-endian `u32`.
        pub fn u32(&mut self) -> Result<u32, StoreError> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }

        /// Reads a little-endian `u64`.
        pub fn u64(&mut self) -> Result<u64, StoreError> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }

        /// Reads a `u64` that must fit comfortably in memory as a count;
        /// `limit` guards against absurd values from corrupt payloads.
        pub fn count(&mut self, limit: u64) -> Result<usize, StoreError> {
            let n = self.u64()?;
            if n > limit {
                return Err(StoreError::Malformed {
                    reason: format!("count {n} exceeds limit {limit}"),
                });
            }
            Ok(n as usize)
        }

        /// Reads an `f32` bit pattern.
        pub fn f32(&mut self) -> Result<f32, StoreError> {
            Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }

        /// Reads a count-prefixed `f32` slice.
        pub fn f32_vec(&mut self) -> Result<Vec<f32>, StoreError> {
            let n = self.count(self.remaining() as u64 / 4)?;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.f32()?);
            }
            Ok(out)
        }

        /// Reads a length-prefixed UTF-8 string.
        pub fn str(&mut self) -> Result<String, StoreError> {
            let n = self.count(self.remaining() as u64)?;
            let bytes = self.take(n)?;
            String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Malformed {
                reason: "invalid UTF-8 in string field".to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qnn-faults-store-tests");
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_preserves_payload() {
        let path = roundtrip_dir().join("roundtrip.qnnf");
        let payload: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        write_atomic(&path, KIND_TRAIN_CHECKPOINT, &payload).unwrap();
        assert_eq!(read(&path, KIND_TRAIN_CHECKPOINT).unwrap(), payload);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_kind_is_reported_not_corruption() {
        let path = roundtrip_dir().join("kind.qnnf");
        write_atomic(&path, KIND_SWEEP_STATE, b"x").unwrap();
        let err = read(&path, KIND_TRAIN_CHECKPOINT).unwrap_err();
        assert_eq!(
            err,
            StoreError::WrongKind {
                expected: KIND_TRAIN_CHECKPOINT,
                found: KIND_SWEEP_STATE
            }
        );
        assert!(!err.is_corruption());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = vec![0u8; 24];
        bytes[0..4].copy_from_slice(b"NOPE");
        assert_eq!(decode(&bytes, 1).unwrap_err(), StoreError::BadMagic);
    }

    #[test]
    fn future_version_rejected() {
        let path = roundtrip_dir().join("version.qnnf");
        write_atomic(&path, 1, b"abc").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] = 0xFF; // version low byte
        match decode(&bytes, 1).unwrap_err() {
            StoreError::UnsupportedVersion { supported, .. } => assert_eq!(supported, VERSION),
            // Bumping the version also breaks the CRC in a real file, but
            // version is checked first so the error names the real cause.
            other => panic!("unexpected error {other:?}"),
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wire_roundtrip_and_trailing_garbage() {
        let mut buf = Vec::new();
        wire::put_u32(&mut buf, 7);
        wire::put_f32_slice(&mut buf, &[1.5, -0.25]);
        wire::put_str(&mut buf, "Q8.4");

        let mut r = wire::Reader::new(&buf);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.f32_vec().unwrap(), vec![1.5, -0.25]);
        assert_eq!(r.str().unwrap(), "Q8.4");
        r.expect_end().unwrap();

        buf.push(0);
        let mut r = wire::Reader::new(&buf);
        r.u32().unwrap();
        r.f32_vec().unwrap();
        r.str().unwrap();
        assert!(matches!(
            r.expect_end().unwrap_err(),
            StoreError::Malformed { .. }
        ));
    }

    #[test]
    fn wire_reader_rejects_absurd_counts() {
        let mut buf = Vec::new();
        wire::put_u64(&mut buf, u64::MAX); // claimed element count
        let mut r = wire::Reader::new(&buf);
        assert!(matches!(
            r.f32_vec().unwrap_err(),
            StoreError::Malformed { .. }
        ));
    }
}
