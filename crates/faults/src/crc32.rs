//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every `QNNF` container against silent corruption.
//!
//! Hand-rolled so the workspace stays dependency-free; the single-table
//! byte-at-a-time form is plenty for checkpoint-sized payloads.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Byte-indexed remainder table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 state.
///
/// ```
/// use qnn_faults::crc32::Crc32;
///
/// let mut h = Crc32::new();
/// h.update(b"123456789");
/// // The canonical CRC-32 check value.
/// assert_eq!(h.finish(), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state (all-ones preset, per the standard).
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Final (bit-inverted) checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot checksum of a byte slice.
pub fn checksum(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_check_value() {
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(checksum(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), checksum(&data));
    }

    #[test]
    fn every_single_byte_change_is_detected() {
        let data: Vec<u8> = (0u16..512).map(|i| (i * 7 + 3) as u8).collect();
        let base = checksum(&data);
        for i in 0..data.len() {
            let mut damaged = data.clone();
            damaged[i] ^= 0x40;
            assert_ne!(checksum(&damaged), base, "flip at byte {i} undetected");
        }
    }
}
