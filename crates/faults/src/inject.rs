//! Seeded bit-flip injection over encoded words.
//!
//! Fault sites are drawn with **geometric-skip sampling**: instead of one
//! Bernoulli draw per bit (O(bits) RNG work even at tiny rates), the gap
//! to the next flipped bit is drawn directly from the geometric
//! distribution, `gap = floor(ln(1-U) / ln(1-rate))` — O(flips) work
//! total, which is what makes sweeping rates like 1e-7 over
//! multi-million-bit weight buffers practical.
//!
//! Injection is strictly serial within one injector: the site sequence
//! depends only on the seed and the order of calls, never on
//! `QNN_THREADS`. Parallel experiments give each unit of work its own
//! injector with a [`derive_seed`](qnn_tensor::rng::derive_seed)-derived
//! stream, matching the determinism discipline of the rest of the
//! workspace.

use crate::error::FaultError;
use qnn_quant::BitCodec;
use qnn_tensor::rng::{seeded, Rng};

/// Which hardware buffer a batch of flips models, per the paper's
/// DianNao-style tile: weights live in `SB`, input activations in `Bin`,
/// partial sums in the pipeline's accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferKind {
    /// Synapse buffer (stored weights).
    Weight,
    /// Input-neuron buffer (activations).
    Act,
    /// Partial-sum accumulator registers.
    Acc,
}

impl BufferKind {
    /// The `qnn_trace` counter this buffer's flips are tallied under.
    pub fn counter(self) -> &'static str {
        match self {
            BufferKind::Weight => "fault.flips.weight",
            BufferKind::Act => "fault.flips.act",
            BufferKind::Acc => "fault.flips.acc",
        }
    }
}

/// A deterministic, seeded source of bit-flip fault sites at a fixed
/// per-bit rate.
///
/// ```
/// use qnn_faults::FaultInjector;
///
/// let mut inj = FaultInjector::new(0.01, 42)?;
/// let a: Vec<u64> = inj.sites(10_000).collect();
/// let mut again = FaultInjector::new(0.01, 42)?;
/// let b: Vec<u64> = again.sites(10_000).collect();
/// assert_eq!(a, b); // same seed, same sites
/// # Ok::<(), qnn_faults::FaultError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rate: f64,
    rng: Rng,
}

impl FaultInjector {
    /// Creates an injector flipping each bit independently with
    /// probability `rate`, drawing from the stream seeded by `seed`.
    pub fn new(rate: f64, seed: u64) -> Result<Self, FaultError> {
        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
            return Err(FaultError::InvalidRate { rate });
        }
        Ok(FaultInjector {
            rate,
            rng: seeded(seed),
        })
    }

    /// The per-bit fault rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Iterates the flipped bit indices within a stream of `total_bits`
    /// consecutive bits, in increasing order.
    ///
    /// Consumes RNG state: calling this repeatedly walks successive
    /// independent windows, as if the buffers were laid out back-to-back.
    pub fn sites(&mut self, total_bits: u64) -> Sites<'_> {
        Sites {
            inj: self,
            pos: 0,
            total_bits,
        }
    }

    /// Gap (count of untouched bits) before the next flipped bit.
    fn next_gap(&mut self) -> u64 {
        if self.rate >= 1.0 {
            return 0; // every bit flips
        }
        // 1-U is in (0, 1], so the log is finite and <= 0.
        let u = self.rng.next_f64();
        let g = ((1.0 - u).ln() / (1.0 - self.rate).ln()).floor();
        if g >= u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// Flips bits of `data` viewed through `codec` as packed stored
    /// words, counting flips under `kind`'s trace counter. Returns the
    /// number of flipped bits.
    ///
    /// Each element contributes `codec.width()` bits to the stream; a
    /// site at global bit `i` flips bit `i % width` of element
    /// `i / width`. Values are re-encoded per flip, so two hits on one
    /// element compose exactly as two stored-word flips.
    pub fn corrupt_slice(&mut self, codec: &BitCodec, kind: BufferKind, data: &mut [f32]) -> u64 {
        let width = codec.width() as u64;
        let total = data.len() as u64 * width;
        let mut flips = 0u64;
        // Collecting sites is fine: at realistic rates the list is tiny
        // relative to the tensor.
        let sites: Vec<u64> = self.sites(total).collect();
        for site in sites {
            let elem = (site / width) as usize;
            let bit = (site % width) as u32;
            data[elem] = codec.flip(data[elem], bit);
            flips += 1;
        }
        qnn_trace::counter!(kind.counter(), flips);
        flips
    }
}

/// Iterator over fault sites; see [`FaultInjector::sites`].
#[derive(Debug)]
pub struct Sites<'a> {
    inj: &'a mut FaultInjector,
    pos: u64,
    total_bits: u64,
}

impl Iterator for Sites<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.inj.rate <= 0.0 {
            return None;
        }
        let gap = self.inj.next_gap();
        let site = self.pos.checked_add(gap)?;
        if site >= self.total_bits {
            // Exhausted the window; park the cursor so later calls also
            // return None.
            self.pos = self.total_bits;
            return None;
        }
        self.pos = site + 1;
        Some(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_quant::Fixed;

    #[test]
    fn zero_rate_never_flips() {
        let mut inj = FaultInjector::new(0.0, 1).unwrap();
        assert_eq!(inj.sites(1_000_000).count(), 0);
    }

    #[test]
    fn full_rate_flips_every_bit() {
        let mut inj = FaultInjector::new(1.0, 1).unwrap();
        let sites: Vec<u64> = inj.sites(16).collect();
        assert_eq!(sites, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn invalid_rates_rejected() {
        for rate in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            assert!(FaultInjector::new(rate, 0).is_err(), "rate {rate}");
        }
    }

    #[test]
    fn sites_are_strictly_increasing_and_in_bounds() {
        let mut inj = FaultInjector::new(0.03, 99).unwrap();
        let sites: Vec<u64> = inj.sites(50_000).collect();
        assert!(!sites.is_empty());
        for w in sites.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*sites.last().unwrap() < 50_000);
    }

    #[test]
    fn flip_count_tracks_rate() {
        // 10^6 bits at 1% → expect ~10_000 ± a few hundred.
        let mut inj = FaultInjector::new(0.01, 7).unwrap();
        let n = inj.sites(1_000_000).count() as f64;
        assert!((9_000.0..11_000.0).contains(&n), "{n} flips");
    }

    #[test]
    fn corrupt_slice_composes_flips_per_element() {
        let codec = BitCodec::Fixed(Fixed::new(8, 4).unwrap());
        let mut data = vec![0.5f32; 64];
        let mut inj = FaultInjector::new(0.2, 3).unwrap();
        let flips = inj.corrupt_slice(&codec, BufferKind::Weight, &mut data);
        assert!(flips > 0);
        // Every value must still be on the Q4.4 grid.
        for &v in &data {
            assert_eq!(codec.decode_bits(codec.encode_bits(v)), v);
        }
    }

    #[test]
    fn same_seed_same_damage() {
        let codec = BitCodec::Fixed(Fixed::new(16, 8).unwrap());
        let run = || {
            let mut data: Vec<f32> = (0..512).map(|i| (i as f32 - 256.0) / 32.0).collect();
            let mut inj = FaultInjector::new(0.001, 1234).unwrap();
            inj.corrupt_slice(&codec, BufferKind::Act, &mut data);
            data
        };
        assert_eq!(run(), run());
    }
}
