//! Drift test for the trace-driven energy-stage figure: the dataset
//! decoded from recorded telemetry must equal the one recomputed from
//! the analytical model, bit for bit.
//!
//! Lives in its own integration binary because the trace collector is
//! process-global — the core lib tests must never race a session.

use qnn_accel::AcceleratorDesign;
use qnn_core::experiments::{energy_stages, energy_stages_from_trace, EnergyStageRow};
use qnn_nn::zoo;
use qnn_quant::Precision;

/// Recomputes one precision's stage attribution straight from the
/// analytical model — the exact arithmetic `energy_per_image` narrates
/// into the trace.
fn recompute(p: Precision, wl: &qnn_nn::workload::Workload) -> EnergyStageRow {
    let e = AcceleratorDesign::new(p).energy_per_image(wl);
    let c = &e.cycles;
    let fill: u64 = c.layers.iter().map(|l| l.fill).sum();
    let total = c.total().max(1) as f64;
    let uj = e.total_uj();
    EnergyStageRow {
        precision: p,
        compute_cycles: c.compute(),
        dma_stall_cycles: c.dma_stall(),
        fill_cycles: fill,
        total_uj: uj,
        compute_uj: uj * c.compute() as f64 / total,
        dma_stall_uj: uj * c.dma_stall() as f64 / total,
        fill_uj: uj * fill as f64 / total,
    }
}

#[test]
fn figure_from_trace_matches_recompute_bit_for_bit() {
    let spec = zoo::lenet();
    let wl = spec.workload().unwrap();
    let from_trace = energy_stages(&spec).unwrap();
    assert_eq!(from_trace.len(), Precision::paper_sweep().len());
    for row in &from_trace {
        let direct = recompute(row.precision, &wl);
        // PartialEq on the row is full f64 equality — any drift between
        // what the model narrates and what it returns fails here.
        assert_eq!(row, &direct, "{}", row.precision.label());
    }

    // Nested sessions are rejected, not silently merged.
    qnn_trace::start();
    let err = energy_stages(&spec).unwrap_err();
    qnn_trace::stop();
    assert!(matches!(err, qnn_nn::NnError::InvalidConfig { .. }));

    // A single recorded session decodes to the same rows the driver saw.
    qnn_trace::start();
    AcceleratorDesign::new(Precision::binary()).energy_per_image(&wl);
    let trace = qnn_trace::stop();
    let decoded = energy_stages_from_trace(&trace, Precision::binary()).unwrap();
    assert_eq!(&decoded, from_trace.last().unwrap());
}
