//! Minimal table rendering: aligned markdown and CSV, hand-rolled to keep
//! the dependency tree free of serialization crates.

/// Renders an aligned markdown table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
///
/// ```
/// let md = qnn_core::report::markdown_table(
///     &["precision", "energy (uJ)"],
///     &[vec!["float32".into(), "60.74".into()]],
/// );
/// assert!(md.contains("float32") && md.contains("60.74"));
/// ```
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(
            r.len(),
            headers.len(),
            "row {i} has {} cells for {} headers",
            r.len(),
            headers.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push(' ');
            line.push_str(c);
            line.push_str(&" ".repeat(w - c.len()));
            line.push_str(" |");
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&"-".repeat(w + 2));
        sep.push('|');
    }
    sep.push('\n');
    out.push_str(&sep);
    for r in rows {
        out.push_str(&fmt_row(r.iter().map(|s| s.as_str()).collect(), &widths));
    }
    out
}

/// Renders a CSV document (RFC-4180-ish: quotes cells containing commas,
/// quotes or newlines).
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    fn esc(cell: &str) -> String {
        if cell.contains([',', '"', '\n']) {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }
    let mut out = headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",");
    out.push('\n');
    for r in rows {
        out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Formats an optional percentage, printing the paper's `NA` marker for
/// diverged runs.
pub fn pct_or_na(v: Option<f32>) -> String {
    match v {
        Some(x) => format!("{:.2}", x),
        None => "NA".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_aligns_columns() {
        let md = markdown_table(
            &["a", "long-header"],
            &[vec!["x".into(), "1".into()], vec!["yy".into(), "22".into()]],
        );
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn markdown_rejects_ragged_rows() {
        markdown_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let out = csv(
            &["name", "note"],
            &[vec!["a,b".into(), "say \"hi\"".into()]],
        );
        assert!(out.contains("\"a,b\""));
        assert!(out.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn na_formatting() {
        assert_eq!(pct_or_na(Some(84.03)), "84.03");
        assert_eq!(pct_or_na(None), "NA");
    }
}
