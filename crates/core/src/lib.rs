#![warn(missing_docs)]

//! # qnn-core — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section:
//!
//! | Artifact | Entry point |
//! |---|---|
//! | Table III (design metrics per precision) | [`experiments::design_metrics`] |
//! | Table IV (MNIST & SVHN accuracy/energy) | [`experiments::table4`] |
//! | Table V (CIFAR-10 with ALEX/ALEX+/ALEX++) | [`experiments::table5`] |
//! | Figure 3 (area & power breakdowns) | [`experiments::breakdown`] |
//! | Figure 4 (accuracy-vs-energy Pareto frontier) | [`pareto`] |
//! | §V-B memory footprints | [`experiments::memory_report`] |
//!
//! Accuracy experiments train on the synthetic dataset families of
//! `qnn-data` (MNIST/SVHN/CIFAR stand-ins — see DESIGN.md). Because full
//! Table I/II networks at paper-scale sample counts take GPU-hours on a
//! CPU, experiments take an [`ExperimentScale`](experiments::ExperimentScale):
//! `Smoke` for tests, `Reduced` (default for benches) which trains
//! width-reduced networks on a few thousand images, and `Full` which uses
//! the exact Table I/II architectures. Hardware-side numbers (area, power,
//! energy, memory) always use the **full** architectures — they come from
//! the workload model, not from training.
//!
//! The published values are bundled in [`paper`] so every generated table
//! prints *paper vs. measured* side by side, and [`report`] renders
//! aligned markdown/CSV.

pub mod experiments;
pub mod paper;
pub mod pareto;
pub mod report;
