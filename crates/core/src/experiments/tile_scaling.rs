//! Tile-size design-space extension.
//!
//! The paper fixes the accelerator at 16 neurons × 16 synapses and notes
//! that "changing ... the accelerator parameters (other than precision)
//! adds another dimension to the design space exploration which is out of
//! the scope of our work". The model makes that dimension free to explore:
//! this experiment sweeps the tile size at fixed precision and reports
//! area, power, LeNet runtime and energy — showing the throughput/area
//! trade the paper deliberately left on the table.

use qnn_accel::{AcceleratorConfig, AcceleratorDesign};
use qnn_nn::{zoo, NnError};
use qnn_quant::Precision;

use crate::report;

/// One tile-size point.
#[derive(Debug, Clone, PartialEq)]
pub struct TileRow {
    /// Neurons × synapses.
    pub tile: (usize, usize),
    /// Design area, mm².
    pub area_mm2: f64,
    /// Design power, mW.
    pub power_mw: f64,
    /// LeNet runtime per image, µs.
    pub lenet_runtime_us: f64,
    /// LeNet energy per image, µJ.
    pub lenet_energy_uj: f64,
}

/// Sweeps square tiles `4×4 … 32×32` at the given precision.
///
/// Buffer rows scale with the tile (a `Tn×Ti` weight row per cycle), so
/// larger tiles pay superlinear buffer power for sublinear runtime gains
/// once layers stop filling the tile — the classic utilization wall.
///
/// # Errors
///
/// Propagates workload derivation errors.
pub fn tile_scaling(precision: Precision) -> Result<Vec<TileRow>, NnError> {
    let wl = zoo::lenet().workload()?;
    let mut rows = Vec::new();
    for shift in 2..=5u32 {
        let t = 1usize << shift;
        let config = AcceleratorConfig {
            neurons: t,
            synapses: t,
            ..AcceleratorConfig::default()
        };
        let design = AcceleratorDesign::with_config(precision, config);
        let m = design.report();
        let e = design.energy_per_image(&wl);
        rows.push(TileRow {
            tile: (t, t),
            area_mm2: m.area_mm2,
            power_mw: m.power_mw,
            lenet_runtime_us: e.runtime_us(),
            lenet_energy_uj: e.total_uj(),
        });
    }
    Ok(rows)
}

impl TileRow {
    /// Renders the sweep as markdown.
    pub fn render(rows: &[TileRow]) -> String {
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}x{}", r.tile.0, r.tile.1),
                    format!("{:.2}", r.area_mm2),
                    format!("{:.1}", r.power_mw),
                    format!("{:.1}", r.lenet_runtime_us),
                    format!("{:.2}", r.lenet_energy_uj),
                ]
            })
            .collect();
        report::markdown_table(
            &["Tile", "Area mm²", "Power mW", "LeNet µs", "LeNet µJ"],
            &body,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_tiles_cost_more_run_faster() {
        let rows = tile_scaling(Precision::fixed(16, 16)).unwrap();
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(w[1].area_mm2 > w[0].area_mm2);
            assert!(w[1].power_mw > w[0].power_mw);
            assert!(w[1].lenet_runtime_us < w[0].lenet_runtime_us);
        }
    }

    #[test]
    fn utilization_wall_shows_in_energy() {
        // Energy = power × runtime: doubling the tile less than halves the
        // runtime on LeNet's odd-sized layers, so energy eventually rises.
        let rows = tile_scaling(Precision::fixed(16, 16)).unwrap();
        let e4 = rows[0].lenet_energy_uj;
        let e32 = rows[3].lenet_energy_uj;
        assert!(
            e32 > e4 * 0.8,
            "32×32 should show diminished efficiency: {e32} vs {e4}"
        );
    }

    #[test]
    fn default_tile_matches_main_model() {
        let rows = tile_scaling(Precision::float32()).unwrap();
        let r16 = rows.iter().find(|r| r.tile == (16, 16)).unwrap();
        let main = AcceleratorDesign::new(Precision::float32()).report();
        assert!((r16.area_mm2 - main.area_mm2).abs() < 1e-9);
        assert!((r16.power_mw - main.power_mw).abs() < 1e-9);
    }
}
