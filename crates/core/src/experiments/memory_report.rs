//! §V-B memory footprints: parameter memory per network per precision and
//! the 2–32× reduction claim.

use qnn_nn::{memory, zoo, NnError};
use qnn_quant::Precision;

use crate::report;

/// Parameter memory of one network across the precision sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryRow {
    /// Network name.
    pub network: String,
    /// Float32 parameter memory in KiB (the paper quotes ≈1650 / 2150 /
    /// 350 / 1250 / 9400 for its five networks).
    pub float32_kib: f64,
    /// `(precision, parameter KiB, reduction × vs float32)`.
    pub per_precision: Vec<(Precision, f64, f64)>,
}

/// Computes the memory report over all five paper networks and the seven
/// paper precisions.
///
/// # Errors
///
/// Propagates spec validation errors.
pub fn memory_report() -> Result<Vec<MemoryRow>, NnError> {
    let mut rows = Vec::new();
    for spec in zoo::all_paper_networks() {
        let fp = memory::footprint(&spec, Precision::float32())?;
        let mut per_precision = Vec::new();
        for p in Precision::paper_sweep() {
            let f = memory::footprint(&spec, p)?;
            per_precision.push((
                p,
                f.parameter_kib(),
                fp.parameter_bytes as f64 / f.parameter_bytes as f64,
            ));
        }
        rows.push(MemoryRow {
            network: spec.name().to_string(),
            float32_kib: fp.parameter_kib(),
            per_precision,
        });
    }
    Ok(rows)
}

impl MemoryRow {
    /// Renders the report as markdown.
    pub fn render(rows: &[MemoryRow]) -> String {
        let mut body = Vec::new();
        for r in rows {
            for (p, kib, reduction) in &r.per_precision {
                body.push(vec![
                    r.network.clone(),
                    p.label(),
                    format!("{:.0}", kib),
                    format!("{:.1}x", reduction),
                ]);
            }
        }
        report::markdown_table(
            &["Network", "Precision (w,in)", "Params KiB", "Reduction"],
            &body,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float32_footprints_match_paper_quotes() {
        let rows = memory_report().unwrap();
        let find = |n: &str| rows.iter().find(|r| r.network == n).unwrap().float32_kib;
        let close = |got: f64, want: f64| (got - want).abs() / want < 0.12;
        assert!(close(find("lenet"), 1650.0), "{}", find("lenet"));
        assert!(close(find("convnet"), 2150.0), "{}", find("convnet"));
        assert!(close(find("alex"), 350.0), "{}", find("alex"));
        assert!(close(find("alex+"), 1250.0), "{}", find("alex+"));
        assert!(close(find("alex++"), 9400.0), "{}", find("alex++"));
    }

    #[test]
    fn reductions_span_two_to_thirtytwo() {
        // §V-B: "the memory footprint of each network reduces from 2× to
        // 32×" (ideal bounds; biases staying at 32 bits shave the top end).
        for r in memory_report().unwrap() {
            // Fixed (32,32) stores weights at float width (1× reduction);
            // the paper's 2–32× claim is about the narrower formats.
            let reductions: Vec<f64> = r
                .per_precision
                .iter()
                .filter(|(p, _, _)| p.is_quantized() && p.weight_bits() < 32)
                .map(|&(_, _, red)| red)
                .collect();
            let min = reductions.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = reductions.iter().cloned().fold(0.0, f64::max);
            assert!((1.9..=2.05).contains(&min), "{}: min {min}", r.network);
            assert!(max > 15.0 && max <= 32.0, "{}: max {max}", r.network);
        }
    }

    #[test]
    fn render_has_all_networks() {
        let md = MemoryRow::render(&memory_report().unwrap());
        for n in ["lenet", "convnet", "alex", "alex+", "alex++"] {
            assert!(md.contains(n));
        }
    }
}
