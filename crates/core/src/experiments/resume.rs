//! Crash-safe sweep state: which cells of a Table IV/V grid are done,
//! and the pre-trained weights the remaining cells start from.
//!
//! Both artifacts ride in `QNNF` containers ([`qnn_faults::store`]):
//! the cell ledger as [`KIND_SWEEP_STATE`], pre-training snapshots as
//! [`KIND_NET_SNAPSHOT`]. Every write is atomic, every read is
//! CRC-checked, and a state file recorded by a *different* sweep (other
//! label, seed or scale) is rejected with a typed mismatch instead of
//! silently mixing experiments.

use std::path::Path;

use qnn_faults::store::{self, wire, KIND_NET_SNAPSHOT, KIND_SWEEP_STATE};
use qnn_faults::StoreError;
use qnn_nn::NnError;
use qnn_tensor::{Shape, Tensor};

use super::cell::CellOutcome;

/// Largest tensor rank a snapshot decoder accepts.
const MAX_RANK: u64 = 8;

/// One completed cell as persisted: the measured accuracy (the paper's
/// NA encoded as absent) or the failure report.
#[derive(Debug, Clone, PartialEq)]
pub enum CellRecord {
    /// Converged measurement, accuracy in percent.
    Ok(f32),
    /// Ran but diverged — the paper's NA row.
    Diverged,
    /// Panicked/errored twice; the sweep degraded this cell.
    Failed(String),
}

impl CellRecord {
    /// The recorded accuracy, `None` for NA/failed cells.
    pub fn accuracy_pct(&self) -> Option<f32> {
        match self {
            CellRecord::Ok(a) => Some(*a),
            _ => None,
        }
    }

    /// Collapses a cell outcome carrying an optional accuracy.
    pub fn from_outcome(outcome: &CellOutcome<Option<f32>>) -> Self {
        match outcome {
            CellOutcome::Ok(Some(a)) => CellRecord::Ok(*a),
            // A "converged" cell with no accuracy and a diverged cell
            // persist the same way: NA.
            CellOutcome::Ok(None) | CellOutcome::Diverged(_) => CellRecord::Diverged,
            CellOutcome::Failed { reason } => CellRecord::Failed(reason.clone()),
        }
    }
}

/// How far a resumable sweep has come.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepProgress {
    /// Grid cells with a persisted record.
    pub completed: usize,
    /// Grid cells in the whole sweep.
    pub total: usize,
}

impl SweepProgress {
    /// True when every cell has a record and the table can be assembled.
    pub fn is_complete(&self) -> bool {
        self.completed == self.total
    }
}

/// The resumable ledger of one sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepState {
    /// Which sweep this ledger belongs to (e.g. `table4/smoke`).
    pub label: String,
    /// The sweep's seed; a ledger from another seed cannot be resumed.
    pub seed: u64,
    /// Completed cells in completion order: `(cell key, record)`.
    cells: Vec<(String, CellRecord)>,
}

impl SweepState {
    /// A fresh ledger with no completed cells.
    pub fn new(label: &str, seed: u64) -> Self {
        SweepState {
            label: label.to_string(),
            seed,
            cells: Vec::new(),
        }
    }

    /// Loads the ledger at `path`, or starts fresh when the file does
    /// not exist yet.
    ///
    /// # Errors
    ///
    /// A present-but-corrupt file is a typed [`NnError::Store`]. A valid
    /// ledger from a different *kind* of sweep (the label segment before
    /// the first `/`, e.g. `table4` vs `tune`) is
    /// [`NnError::SweepKindMismatch`]; one from the same kind but a
    /// different label or seed is [`NnError::CheckpointMismatch`].
    pub fn load_or_new(path: &Path, label: &str, seed: u64) -> Result<Self, NnError> {
        if !path.exists() {
            return Ok(SweepState::new(label, seed));
        }
        let state = Self::decode(&store::read(path, KIND_SWEEP_STATE)?)?;
        let (found_kind, expected_kind) = (sweep_kind(&state.label), sweep_kind(label));
        if found_kind != expected_kind {
            return Err(NnError::SweepKindMismatch {
                found: found_kind.to_string(),
                expected: expected_kind.to_string(),
            });
        }
        if state.label != label || state.seed != seed {
            return Err(NnError::CheckpointMismatch {
                reason: format!(
                    "sweep state is for `{}` seed {}, this run is `{label}` seed {seed}",
                    state.label, state.seed
                ),
            });
        }
        qnn_trace::counter!("sweep.resumes", 1);
        Ok(state)
    }

    /// The record of a completed cell, if present.
    pub fn get(&self, key: &str) -> Option<&CellRecord> {
        self.cells.iter().find(|(k, _)| k == key).map(|(_, r)| r)
    }

    /// Number of completed cells.
    pub fn completed(&self) -> usize {
        self.cells.len()
    }

    /// Records a completed cell and persists the ledger atomically.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Store`] on I/O failure.
    pub fn record(&mut self, path: &Path, key: &str, record: CellRecord) -> Result<(), NnError> {
        match self.cells.iter_mut().find(|(k, _)| k == key) {
            Some((_, r)) => *r = record,
            None => self.cells.push((key.to_string(), record)),
        }
        store::write_atomic(path, KIND_SWEEP_STATE, &self.encode())?;
        Ok(())
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        wire::put_str(&mut buf, &self.label);
        wire::put_u64(&mut buf, self.seed);
        wire::put_u64(&mut buf, self.cells.len() as u64);
        for (key, record) in &self.cells {
            wire::put_str(&mut buf, key);
            match record {
                CellRecord::Ok(a) => {
                    wire::put_u32(&mut buf, 0);
                    wire::put_f32(&mut buf, *a);
                }
                CellRecord::Diverged => wire::put_u32(&mut buf, 1),
                CellRecord::Failed(reason) => {
                    wire::put_u32(&mut buf, 2);
                    wire::put_str(&mut buf, reason);
                }
            }
        }
        buf
    }

    fn decode(payload: &[u8]) -> Result<Self, NnError> {
        let mut r = wire::Reader::new(payload);
        let label = r.str()?;
        let seed = r.u64()?;
        let n = r.count(1 << 20)?;
        let mut cells = Vec::with_capacity(n);
        for _ in 0..n {
            let key = r.str()?;
            let record = match r.u32()? {
                0 => CellRecord::Ok(r.f32()?),
                1 => CellRecord::Diverged,
                2 => CellRecord::Failed(r.str()?),
                tag => {
                    return Err(StoreError::Malformed {
                        reason: format!("unknown cell record tag {tag}"),
                    }
                    .into())
                }
            };
            cells.push((key, record));
        }
        r.expect_end()?;
        Ok(SweepState { label, seed, cells })
    }
}

/// The *kind* of a sweep label: the segment before the first `/`
/// (`"table4/Smoke"` → `"table4"`). Labels without a `/` are their own
/// kind, so pre-existing single-segment ledgers keep resuming.
fn sweep_kind(label: &str) -> &str {
    label.split('/').next().unwrap_or(label)
}

/// Persists a phase-1 pre-training result: the learning rate the backoff
/// search settled on plus the full-precision `state_dict`.
///
/// # Errors
///
/// Returns [`NnError::Store`] on I/O failure.
pub fn save_net_snapshot(path: &Path, lr: f32, state: &[Tensor]) -> Result<(), NnError> {
    let mut buf = Vec::new();
    wire::put_f32(&mut buf, lr);
    wire::put_u64(&mut buf, state.len() as u64);
    for t in state {
        let dims = t.shape().dims();
        wire::put_u64(&mut buf, dims.len() as u64);
        for &d in dims {
            wire::put_u64(&mut buf, d as u64);
        }
        for &v in t.as_slice() {
            wire::put_f32(&mut buf, v);
        }
    }
    store::write_atomic(path, KIND_NET_SNAPSHOT, &buf)?;
    Ok(())
}

/// Loads a snapshot written by [`save_net_snapshot`], or `None` when the
/// file does not exist yet.
///
/// # Errors
///
/// A present-but-corrupt snapshot is a typed [`NnError::Store`].
pub fn load_net_snapshot(path: &Path) -> Result<Option<(f32, Vec<Tensor>)>, NnError> {
    if !path.exists() {
        return Ok(None);
    }
    let payload = store::read(path, KIND_NET_SNAPSHOT)?;
    let mut r = wire::Reader::new(&payload);
    let lr = r.f32()?;
    let n = r.count(1 << 16)?;
    let mut state = Vec::with_capacity(n);
    for _ in 0..n {
        let rank = r.count(MAX_RANK)?;
        let mut dims = Vec::with_capacity(rank);
        let mut len = 1usize;
        for _ in 0..rank {
            let d = r.count(u32::MAX as u64)?;
            len = len.checked_mul(d).ok_or_else(|| StoreError::Malformed {
                reason: "tensor element count overflows".to_string(),
            })?;
            dims.push(d);
        }
        if len > r.remaining() / 4 {
            return Err(StoreError::Malformed {
                reason: format!("tensor claims {len} elements, payload too short"),
            }
            .into());
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(r.f32()?);
        }
        state.push(Tensor::from_vec(Shape::new(&dims), data)?);
    }
    r.expect_end()?;
    Ok(Some((lr, state)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("qnn-core-resume-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn ledger_round_trips_and_resumes() {
        let dir = tmpdir("ledger");
        let path = dir.join("state.qnnf");
        let mut s = SweepState::load_or_new(&path, "table4/smoke", 42).unwrap();
        assert_eq!(s.completed(), 0);
        s.record(&path, "mnist/float32", CellRecord::Ok(91.5))
            .unwrap();
        s.record(&path, "mnist/fixed4", CellRecord::Diverged)
            .unwrap();
        s.record(&path, "svhn/binary", CellRecord::Failed("panic: x".into()))
            .unwrap();

        let back = SweepState::load_or_new(&path, "table4/smoke", 42).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.get("mnist/float32"), Some(&CellRecord::Ok(91.5)));
        assert_eq!(back.get("mnist/fixed4").unwrap().accuracy_pct(), None);
        assert!(back.get("absent").is_none());
    }

    #[test]
    fn foreign_ledger_is_rejected() {
        let dir = tmpdir("foreign");
        let path = dir.join("state.qnnf");
        let mut s = SweepState::new("table5/smoke", 1);
        s.record(&path, "alex/float32", CellRecord::Ok(70.0))
            .unwrap();
        // A different *kind* of sweep is the harder failure.
        assert!(matches!(
            SweepState::load_or_new(&path, "table4/smoke", 1),
            Err(NnError::SweepKindMismatch { .. })
        ));
        // Same kind, different seed or scale: ordinary drift.
        assert!(matches!(
            SweepState::load_or_new(&path, "table5/smoke", 2),
            Err(NnError::CheckpointMismatch { .. })
        ));
        assert!(matches!(
            SweepState::load_or_new(&path, "table5/full", 1),
            Err(NnError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn cross_kind_ledgers_are_rejected_typed_both_ways() {
        let dir = tmpdir("cross-kind");
        // A tune ledger fed to a table4 resume...
        let tune_path = dir.join("tune.qnnf");
        let mut tune = SweepState::new("tune/Smoke", 42);
        tune.record(&tune_path, "x8|x8|x8|x8", CellRecord::Ok(90.0))
            .unwrap();
        match SweepState::load_or_new(&tune_path, "table4/Smoke", 42) {
            Err(NnError::SweepKindMismatch { found, expected }) => {
                assert_eq!(found, "tune");
                assert_eq!(expected, "table4");
            }
            other => panic!("expected kind mismatch, got {other:?}"),
        }
        // ...and vice versa.
        let t4_path = dir.join("table4.qnnf");
        let mut t4 = SweepState::new("table4/Smoke", 42);
        t4.record(&t4_path, "mnist/float32", CellRecord::Ok(95.0))
            .unwrap();
        match SweepState::load_or_new(&t4_path, "tune/Smoke", 42) {
            Err(NnError::SweepKindMismatch { found, expected }) => {
                assert_eq!(found, "table4");
                assert_eq!(expected, "tune");
            }
            other => panic!("expected kind mismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_ledger_is_typed() {
        let dir = tmpdir("corrupt");
        let path = dir.join("state.qnnf");
        let mut s = SweepState::new("t", 0);
        s.record(&path, "a", CellRecord::Ok(1.0)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        match SweepState::load_or_new(&path, "t", 0) {
            Err(NnError::Store(e)) => assert!(e.is_corruption()),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let dir = tmpdir("snapshot");
        let path = dir.join("pre.qnnf");
        assert!(load_net_snapshot(&path).unwrap().is_none());
        let state = vec![
            Tensor::from_vec(Shape::d2(2, 3), vec![0.1, -0.2, 0.3, 1.5e-7, -0.0, 4.0]).unwrap(),
            Tensor::from_vec(Shape::d1(2), vec![f32::MIN_POSITIVE, -3.25]).unwrap(),
        ];
        save_net_snapshot(&path, 0.025, &state).unwrap();
        let (lr, back) = load_net_snapshot(&path).unwrap().unwrap();
        assert_eq!(lr.to_bits(), 0.025f32.to_bits());
        assert_eq!(back.len(), state.len());
        for (a, b) in back.iter().zip(&state) {
            assert_eq!(a.shape(), b.shape());
            let bits = |t: &Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b));
        }
    }
}
