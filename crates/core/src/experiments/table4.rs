//! Table IV — accuracy, per-image energy and energy savings on the
//! MNIST- and SVHN-class benchmarks.

use qnn_accel::AcceleratorDesign;
use qnn_data::{standard_splits, DatasetKind};
use qnn_nn::arch::NetworkSpec;
use qnn_nn::{zoo, NnError};
use qnn_quant::Precision;

use super::{pretrain_fp, qat_point, ExperimentScale};
use crate::report;
use qnn_tensor::par;

/// One generated Table IV row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// The precision this row describes.
    pub precision: Precision,
    /// Measured test accuracy, percent (`None` = failed to converge, the
    /// paper's NA).
    pub accuracy_pct: Option<f32>,
    /// Paper's accuracy for the corresponding dataset, for side-by-side
    /// printing.
    pub paper_accuracy_pct: Option<f32>,
    /// Per-image energy on the full Table I architecture, µJ.
    pub energy_uj: f64,
    /// Energy saving vs. the float32 row, percent.
    pub energy_saving_pct: f64,
}

/// The generated table: one row list per benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// MNIST-class benchmark (LeNet on Glyphs28).
    pub mnist: Vec<Table4Row>,
    /// SVHN-class benchmark (ConvNet on HouseDigits32).
    pub svhn: Vec<Table4Row>,
}

fn energy_column(spec: &NetworkSpec, precisions: &[Precision]) -> Result<Vec<(f64, f64)>, NnError> {
    let wl = spec.workload()?;
    let base = AcceleratorDesign::new(Precision::float32())
        .energy_per_image(&wl)
        .total_uj();
    Ok(precisions
        .iter()
        .map(|&p| {
            let e = AcceleratorDesign::new(p).energy_per_image(&wl).total_uj();
            (e, (1.0 - e / base) * 100.0)
        })
        .collect())
}

fn build_rows(
    sweep: Vec<super::SweepPoint>,
    energies: Vec<(f64, f64)>,
    paper_acc: Vec<Option<f32>>,
) -> Vec<Table4Row> {
    sweep
        .into_iter()
        .zip(energies)
        .zip(paper_acc)
        .map(|((pt, (e, s)), pa)| Table4Row {
            precision: pt.precision,
            accuracy_pct: pt.accuracy_pct,
            paper_accuracy_pct: pa,
            energy_uj: e,
            energy_saving_pct: s,
        })
        .collect()
}

/// Regenerates Table IV.
///
/// Accuracy comes from QAT sweeps on the synthetic stand-ins at `scale`
/// (width-reduced networks below [`ExperimentScale::Full`]); energy always
/// comes from the full LeNet/ConvNet workloads on the accelerator model.
///
/// # Errors
///
/// Propagates training and workload errors.
pub fn table4(scale: ExperimentScale, seed: u64) -> Result<Table4, NnError> {
    qnn_trace::span!("table4");
    let precisions = Precision::paper_sweep();
    let (n_train, n_test) = scale.samples();
    let paper_rows = crate::paper::table4_accuracies();

    let glyph_splits = standard_splits(DatasetKind::Glyphs28, n_train, n_test, seed);
    let mnist_spec = match scale {
        ExperimentScale::Full => zoo::lenet(),
        _ => zoo::lenet_small(),
    };
    let house_splits = standard_splits(DatasetKind::HouseDigits32, n_train, n_test, seed + 1);
    let svhn_spec = match scale {
        ExperimentScale::Full => zoo::convnet(),
        _ => zoo::convnet_small(),
    };

    // Phase 1 (FP pre-training) runs once per benchmark, concurrently.
    let benches = [
        (&mnist_spec, &glyph_splits, seed),
        (&svhn_spec, &house_splits, seed + 1),
    ];
    let pre: Vec<_> = par::map(benches.len(), |b| {
        let (spec, splits, s) = benches[b];
        pretrain_fp(spec, splits, scale, s)
    })
    .into_iter()
    .collect::<Result<_, _>>()?;

    // Phase 2: every (benchmark, precision) point is independent given
    // the pre-trained weights, so the whole grid runs concurrently.
    let points = par::map(benches.len() * precisions.len(), |i| {
        let (b, pi) = (i / precisions.len(), i % precisions.len());
        let (spec, splits, s) = benches[b];
        let (trainer, fp_state) = &pre[b];
        qat_point(spec, splits, trainer, fp_state, precisions[pi], s)
    });
    let mut points = points.into_iter();
    let mnist_sweep = points
        .by_ref()
        .take(precisions.len())
        .collect::<Result<Vec<_>, _>>()?;
    let svhn_sweep = points.collect::<Result<Vec<_>, _>>()?;

    let mnist_energy = energy_column(&zoo::lenet(), &precisions)?;
    let mnist = build_rows(
        mnist_sweep,
        mnist_energy,
        paper_rows.iter().map(|r| r.1).collect(),
    );
    let svhn_energy = energy_column(&zoo::convnet(), &precisions)?;
    let svhn = build_rows(
        svhn_sweep,
        svhn_energy,
        paper_rows.iter().map(|r| r.2).collect(),
    );

    Ok(Table4 { mnist, svhn })
}

impl Table4 {
    /// Renders both halves as markdown.
    pub fn render(&self) -> String {
        let mut out = String::from("### Table IV — MNIST-class (LeNet / Glyphs28)\n\n");
        out.push_str(&render_half(&self.mnist));
        out.push_str("\n### Table IV — SVHN-class (ConvNet / HouseDigits32)\n\n");
        out.push_str(&render_half(&self.svhn));
        out
    }
}

fn render_half(rows: &[Table4Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.precision.label(),
                report::pct_or_na(r.accuracy_pct),
                report::pct_or_na(r.paper_accuracy_pct),
                format!("{:.2}", r.energy_uj),
                format!("{:.2}", r.energy_saving_pct),
            ]
        })
        .collect();
    report::markdown_table(
        &[
            "Precision (w,in)",
            "Acc. % (ours)",
            "Acc. % (paper)",
            "Energy µJ",
            "Energy sav. %",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table_has_all_rows_and_monotone_savings() {
        let t = table4(ExperimentScale::Smoke, 11).unwrap();
        assert_eq!(t.mnist.len(), 7);
        assert_eq!(t.svhn.len(), 7);
        // Energy savings grow monotonically down the fixed-point rows.
        for half in [&t.mnist, &t.svhn] {
            assert!(half[0].energy_saving_pct.abs() < 1e-9);
            for i in 1..4 {
                assert!(half[i + 1].energy_saving_pct > half[i].energy_saving_pct);
            }
            // Binary saves the most.
            assert!(half[6].energy_saving_pct > 90.0);
        }
        // The easy benchmark converges at float precision even at smoke
        // scale.
        assert!(t.mnist[0].accuracy_pct.unwrap_or(0.0) > 30.0);
    }

    #[test]
    fn render_mentions_both_benchmarks() {
        let t = table4(ExperimentScale::Smoke, 13).unwrap();
        let md = t.render();
        assert!(md.contains("MNIST-class"));
        assert!(md.contains("SVHN-class"));
        assert!(md.contains("Binary Net (1,16)"));
    }
}
