//! Table IV — accuracy, per-image energy and energy savings on the
//! MNIST- and SVHN-class benchmarks.

use std::path::Path;

use qnn_accel::AcceleratorDesign;
use qnn_data::{standard_splits, DatasetKind};
use qnn_faults::StoreError;
use qnn_nn::arch::NetworkSpec;
use qnn_nn::{zoo, NnError};
use qnn_quant::Precision;

use super::cell::run_cell;
use super::resume::{CellRecord, SweepProgress, SweepState};
use super::{pretrain_fp, pretrain_resumable, qat_point, ExperimentScale};
use crate::report;
use qnn_tensor::par;

/// One generated Table IV row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// The precision this row describes.
    pub precision: Precision,
    /// Measured test accuracy, percent (`None` = failed to converge, the
    /// paper's NA).
    pub accuracy_pct: Option<f32>,
    /// Paper's accuracy for the corresponding dataset, for side-by-side
    /// printing.
    pub paper_accuracy_pct: Option<f32>,
    /// Per-image energy on the full Table I architecture, µJ.
    pub energy_uj: f64,
    /// Energy saving vs. the float32 row, percent.
    pub energy_saving_pct: f64,
}

/// The generated table: one row list per benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// MNIST-class benchmark (LeNet on Glyphs28).
    pub mnist: Vec<Table4Row>,
    /// SVHN-class benchmark (ConvNet on HouseDigits32).
    pub svhn: Vec<Table4Row>,
}

fn energy_column(spec: &NetworkSpec, precisions: &[Precision]) -> Result<Vec<(f64, f64)>, NnError> {
    let wl = spec.workload()?;
    let base = AcceleratorDesign::new(Precision::float32())
        .energy_per_image(&wl)
        .total_uj();
    Ok(precisions
        .iter()
        .map(|&p| {
            let e = AcceleratorDesign::new(p).energy_per_image(&wl).total_uj();
            (e, (1.0 - e / base) * 100.0)
        })
        .collect())
}

fn build_rows(
    sweep: Vec<super::SweepPoint>,
    energies: Vec<(f64, f64)>,
    paper_acc: Vec<Option<f32>>,
) -> Vec<Table4Row> {
    sweep
        .into_iter()
        .zip(energies)
        .zip(paper_acc)
        .map(|((pt, (e, s)), pa)| Table4Row {
            precision: pt.precision,
            accuracy_pct: pt.accuracy_pct,
            paper_accuracy_pct: pa,
            energy_uj: e,
            energy_saving_pct: s,
        })
        .collect()
}

/// Regenerates Table IV.
///
/// Accuracy comes from QAT sweeps on the synthetic stand-ins at `scale`
/// (width-reduced networks below [`ExperimentScale::Full`]); energy always
/// comes from the full LeNet/ConvNet workloads on the accelerator model.
///
/// # Errors
///
/// Propagates training and workload errors.
pub fn table4(scale: ExperimentScale, seed: u64) -> Result<Table4, NnError> {
    qnn_trace::span!("table4");
    let precisions = Precision::paper_sweep();
    let (n_train, n_test) = scale.samples();
    let paper_rows = crate::paper::table4_accuracies();

    let glyph_splits = standard_splits(DatasetKind::Glyphs28, n_train, n_test, seed);
    let mnist_spec = match scale {
        ExperimentScale::Full => zoo::lenet(),
        _ => zoo::lenet_small(),
    };
    let house_splits = standard_splits(DatasetKind::HouseDigits32, n_train, n_test, seed + 1);
    let svhn_spec = match scale {
        ExperimentScale::Full => zoo::convnet(),
        _ => zoo::convnet_small(),
    };

    // Phase 1 (FP pre-training) runs once per benchmark, concurrently.
    let benches = [
        (&mnist_spec, &glyph_splits, seed),
        (&svhn_spec, &house_splits, seed + 1),
    ];
    let pre: Vec<_> = par::map(benches.len(), |b| {
        let (spec, splits, s) = benches[b];
        pretrain_fp(spec, splits, scale, s)
    })
    .into_iter()
    .collect::<Result<_, _>>()?;

    // Phase 2: every (benchmark, precision) point is independent given
    // the pre-trained weights, so the whole grid runs concurrently.
    let points = par::map(benches.len() * precisions.len(), |i| {
        let (b, pi) = (i / precisions.len(), i % precisions.len());
        let (spec, splits, s) = benches[b];
        let (trainer, fp_state) = &pre[b];
        qat_point(spec, splits, trainer, fp_state, precisions[pi], s)
    });
    let mut points = points.into_iter();
    let mnist_sweep = points
        .by_ref()
        .take(precisions.len())
        .collect::<Result<Vec<_>, _>>()?;
    let svhn_sweep = points.collect::<Result<Vec<_>, _>>()?;

    let mnist_energy = energy_column(&zoo::lenet(), &precisions)?;
    let mnist = build_rows(
        mnist_sweep,
        mnist_energy,
        paper_rows.iter().map(|r| r.1).collect(),
    );
    let svhn_energy = energy_column(&zoo::convnet(), &precisions)?;
    let svhn = build_rows(
        svhn_sweep,
        svhn_energy,
        paper_rows.iter().map(|r| r.2).collect(),
    );

    Ok(Table4 { mnist, svhn })
}

/// Crash-safe Table IV: runs the (benchmark × precision) grid one cell
/// at a time, persisting every completed cell (and each benchmark's
/// phase-1 pre-training) to `QNNF` containers under `dir`, so an
/// interrupted sweep resumed from the same directory skips finished
/// cells and produces a table **bit-identical** to an uninterrupted run.
///
/// Cells run inside [`run_cell`] isolation: a panicking or erroring cell
/// is retried once with a derived seed and, if it still fails, degrades
/// to an NA row instead of aborting the sweep. `max_cells` bounds how
/// many *new* cells this invocation computes (`None` = no bound), which
/// is what the CI kill-and-resume stage uses to interrupt a sweep at a
/// deterministic point.
///
/// Returns the assembled table once every cell has a record (`None`
/// while the sweep is still partial) plus the grid progress.
///
/// # Errors
///
/// Propagates dataset/workload errors and typed store errors (corrupt
/// ledger or snapshot, ledger from a different sweep).
pub fn table4_resumable(
    scale: ExperimentScale,
    seed: u64,
    dir: &Path,
    max_cells: Option<usize>,
) -> Result<(Option<Table4>, SweepProgress), NnError> {
    qnn_trace::span!("table4:resumable");
    std::fs::create_dir_all(dir).map_err(|e| StoreError::io("mkdir", dir, &e))?;
    let state_path = dir.join("table4.state.qnnf");
    let label = format!("table4/{scale:?}");
    let mut state = SweepState::load_or_new(&state_path, &label, seed)?;

    let precisions = Precision::paper_sweep();
    let (n_train, n_test) = scale.samples();
    let glyph_splits = standard_splits(DatasetKind::Glyphs28, n_train, n_test, seed);
    let mnist_spec = match scale {
        ExperimentScale::Full => zoo::lenet(),
        _ => zoo::lenet_small(),
    };
    let house_splits = standard_splits(DatasetKind::HouseDigits32, n_train, n_test, seed + 1);
    let svhn_spec = match scale {
        ExperimentScale::Full => zoo::convnet(),
        _ => zoo::convnet_small(),
    };
    let benches = [
        ("mnist", &mnist_spec, &glyph_splits, seed),
        ("svhn", &svhn_spec, &house_splits, seed + 1),
    ];

    // Phase-1 results are loaded (or trained and snapshotted) lazily, so
    // a resume whose remaining cells all sit on one benchmark never
    // redoes the other benchmark's pre-training.
    let mut pre: Vec<Option<(qnn_nn::Trainer, Vec<qnn_tensor::Tensor>)>> = vec![None, None];
    let mut budget = max_cells.unwrap_or(usize::MAX);
    for (b, (name, spec, splits, s)) in benches.iter().enumerate() {
        for &p in &precisions {
            let key = format!("{name}/{}", p.label());
            if state.get(&key).is_some() || budget == 0 {
                continue;
            }
            budget -= 1;
            if pre[b].is_none() {
                let snapshot = dir.join(format!("table4.pre-{name}.qnnf"));
                pre[b] = Some(pretrain_resumable(spec, splits, scale, *s, &snapshot)?);
            }
            let (trainer, fp_state) = pre[b].as_ref().expect("just populated");
            let outcome = run_cell(
                &key,
                *s,
                |acc: &Option<f32>| acc.is_none(),
                |cell_seed| {
                    qat_point(spec, splits, trainer, fp_state, p, cell_seed)
                        .map(|pt| pt.accuracy_pct)
                },
            );
            state.record(&state_path, &key, CellRecord::from_outcome(&outcome))?;
        }
    }

    let total = benches.len() * precisions.len();
    let completed = benches
        .iter()
        .flat_map(|(name, _, _, _)| {
            precisions
                .iter()
                .map(move |p| format!("{name}/{}", p.label()))
        })
        .filter(|key| state.get(key).is_some())
        .count();
    let progress = SweepProgress { completed, total };
    if !progress.is_complete() {
        return Ok((None, progress));
    }

    let paper_rows = crate::paper::table4_accuracies();
    let assemble = |name: &str,
                    energy_spec: &NetworkSpec,
                    paper_col: Vec<Option<f32>>|
     -> Result<Vec<Table4Row>, NnError> {
        let energies = energy_column(energy_spec, &precisions)?;
        Ok(precisions
            .iter()
            .zip(energies)
            .zip(paper_col)
            .map(|((&p, (e, sv)), pa)| Table4Row {
                precision: p,
                accuracy_pct: state
                    .get(&format!("{name}/{}", p.label()))
                    .and_then(CellRecord::accuracy_pct),
                paper_accuracy_pct: pa,
                energy_uj: e,
                energy_saving_pct: sv,
            })
            .collect())
    };
    let table = Table4 {
        mnist: assemble(
            "mnist",
            &zoo::lenet(),
            paper_rows.iter().map(|r| r.1).collect(),
        )?,
        svhn: assemble(
            "svhn",
            &zoo::convnet(),
            paper_rows.iter().map(|r| r.2).collect(),
        )?,
    };
    Ok((Some(table), progress))
}

impl Table4 {
    /// Renders both halves as markdown.
    pub fn render(&self) -> String {
        let mut out = String::from("### Table IV — MNIST-class (LeNet / Glyphs28)\n\n");
        out.push_str(&render_half(&self.mnist));
        out.push_str("\n### Table IV — SVHN-class (ConvNet / HouseDigits32)\n\n");
        out.push_str(&render_half(&self.svhn));
        out
    }
}

fn render_half(rows: &[Table4Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.precision.label(),
                report::pct_or_na(r.accuracy_pct),
                report::pct_or_na(r.paper_accuracy_pct),
                format!("{:.2}", r.energy_uj),
                format!("{:.2}", r.energy_saving_pct),
            ]
        })
        .collect();
    report::markdown_table(
        &[
            "Precision (w,in)",
            "Acc. % (ours)",
            "Acc. % (paper)",
            "Energy µJ",
            "Energy sav. %",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table_has_all_rows_and_monotone_savings() {
        let t = table4(ExperimentScale::Smoke, 11).unwrap();
        assert_eq!(t.mnist.len(), 7);
        assert_eq!(t.svhn.len(), 7);
        // Energy savings grow monotonically down the fixed-point rows.
        for half in [&t.mnist, &t.svhn] {
            assert!(half[0].energy_saving_pct.abs() < 1e-9);
            for i in 1..4 {
                assert!(half[i + 1].energy_saving_pct > half[i].energy_saving_pct);
            }
            // Binary saves the most.
            assert!(half[6].energy_saving_pct > 90.0);
        }
        // The easy benchmark converges at float precision even at smoke
        // scale.
        assert!(t.mnist[0].accuracy_pct.unwrap_or(0.0) > 30.0);
    }

    #[test]
    fn interrupted_resumable_sweep_matches_plain_table_bit_identically() {
        let dir = std::env::temp_dir().join("qnn-core-table4-resume-test");
        let _ = std::fs::remove_dir_all(&dir);

        // Interrupt after three cells: partial, no table yet.
        let (none, p1) = table4_resumable(ExperimentScale::Smoke, 11, &dir, Some(3)).unwrap();
        assert!(none.is_none());
        assert_eq!(p1.completed, 3);
        assert_eq!(p1.total, 14);
        assert!(!p1.is_complete());

        // Resume to completion ("the crash" is the dropped state above).
        let (resumed, p2) = table4_resumable(ExperimentScale::Smoke, 11, &dir, None).unwrap();
        assert!(p2.is_complete());
        let resumed = resumed.unwrap();

        // Bit-identical to the uninterrupted parallel runner.
        let plain = table4(ExperimentScale::Smoke, 11).unwrap();
        assert_eq!(resumed, plain);
        assert_eq!(resumed.render(), plain.render());

        // A foreign ledger (different seed) is rejected, not mixed in.
        assert!(matches!(
            table4_resumable(ExperimentScale::Smoke, 12, &dir, None),
            Err(NnError::CheckpointMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_mentions_both_benchmarks() {
        let t = table4(ExperimentScale::Smoke, 13).unwrap();
        let md = t.render();
        assert!(md.contains("MNIST-class"));
        assert!(md.contains("SVHN-class"));
        assert!(md.contains("Binary Net (1,16)"));
    }
}
