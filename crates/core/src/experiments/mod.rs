//! Experiment drivers, one submodule per paper artifact.

mod breakdown;
mod cell;
mod design_metrics;
mod energy_stages;
mod fault_curve;
mod memory_report;
mod minifloat;
mod resume;
mod table4;
mod table5;
mod tile_scaling;
mod tune;

pub use breakdown::{breakdown, BreakdownRow};
pub use cell::{run_cell, CellOutcome};
pub use design_metrics::{design_metrics, DesignRow};
pub use energy_stages::{energy_stages, energy_stages_from_trace, EnergyStageRow};
pub use fault_curve::{fault_curve, standard_fault_rates, FaultCurveRow};
pub use memory_report::{memory_report, MemoryRow};
pub use minifloat::{minifloat_sweep, standard_geometries, MinifloatRow};
pub use resume::{CellRecord, SweepProgress, SweepState};
pub use table4::{table4, table4_resumable, Table4, Table4Row};
pub use table5::{table5, table5_resumable, Table5Row};
pub use tile_scaling::{tile_scaling, TileRow};
pub use tune::{tune, tune_resumable, tune_resumable_with_hook, TunePoint, TuneResult};

use std::path::Path;

use qnn_data::Splits;
use qnn_nn::arch::NetworkSpec;
use qnn_nn::{Network, NnError, QatConfig, TrainOutcome, Trainer, TrainerConfig};
use qnn_quant::Precision;
use qnn_tensor::{par, Tensor};

/// How much compute an accuracy experiment may spend.
///
/// Hardware-side numbers (area, power, energy, memory) never depend on
/// this — they always use the full Table I/II architectures through the
/// workload model. Only the *training* side scales down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExperimentScale {
    /// Seconds: tiny sample budgets, width-reduced networks. For tests.
    Smoke,
    /// Minutes: a few thousand samples, width-reduced networks. The
    /// default for benches; preserves the paper's qualitative ordering.
    #[default]
    Reduced,
    /// Hours on a CPU: the exact Table I/II architectures at paper-like
    /// sample counts.
    Full,
}

impl ExperimentScale {
    /// `(train, test-pool)` sample counts.
    pub fn samples(&self) -> (usize, usize) {
        match self {
            ExperimentScale::Smoke => (240, 200),
            ExperimentScale::Reduced => (1500, 600),
            ExperimentScale::Full => (8000, 2000),
        }
    }

    /// Training epochs per run.
    pub fn epochs(&self) -> usize {
        match self {
            ExperimentScale::Smoke => 4,
            ExperimentScale::Reduced => 6,
            ExperimentScale::Full => 20,
        }
    }

    /// Trainer configuration at this scale.
    pub fn trainer(&self, seed: u64) -> TrainerConfig {
        TrainerConfig {
            epochs: self.epochs(),
            batch_size: 32,
            lr: 0.05,
            seed,
            ..TrainerConfig::default()
        }
    }
}

/// One accuracy measurement from a precision sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The precision trained and evaluated.
    pub precision: Precision,
    /// Test accuracy in percent; `None` reproduces the paper's NA rows
    /// (training failed to converge).
    pub accuracy_pct: Option<f32>,
}

/// Phase 1 of the paper's two-phase methodology: full-precision
/// pre-training, with learning-rate backoff — a diverged *baseline* is a
/// tuning artifact, not a quantization result, so it gets the retry the
/// paper's authors would have given it.
///
/// Returns the trainer that produced the baseline (phase 2 reuses its
/// configuration) and the pre-trained weights.
///
/// # Errors
///
/// Propagates network construction and training errors.
pub fn pretrain_fp(
    spec: &NetworkSpec,
    splits: &Splits,
    scale: ExperimentScale,
    seed: u64,
) -> Result<(Trainer, Vec<Tensor>), NnError> {
    qnn_trace::span!("pretrain:{}", spec.name());
    let base = scale.trainer(seed);
    let mut fp_net = Network::build(spec, seed)?;
    let mut trainer = Trainer::new(base)?;
    for attempt in 0..3 {
        let cfg = TrainerConfig {
            lr: base.lr * 0.5_f32.powi(attempt),
            ..base
        };
        trainer = Trainer::new(cfg)?;
        let mut net = Network::build(spec, seed + attempt as u64)?;
        let report = trainer.train(&mut net, splits.train.images(), splits.train.labels())?;
        if report.outcome == TrainOutcome::Converged {
            fp_net = net;
            break;
        }
    }
    Ok((trainer, fp_net.state_dict()))
}

/// [`pretrain_fp`] with a crash-safe snapshot: when `snapshot` already
/// holds a valid pre-training result, the backoff search is skipped and
/// the stored weights (plus the learning rate the search settled on)
/// are restored bit-identically; otherwise the pre-training runs and the
/// result is persisted before returning.
///
/// # Errors
///
/// Propagates training errors; a present-but-corrupt snapshot is a
/// typed [`NnError::Store`] rather than a silent retrain.
pub fn pretrain_resumable(
    spec: &NetworkSpec,
    splits: &Splits,
    scale: ExperimentScale,
    seed: u64,
    snapshot: &Path,
) -> Result<(Trainer, Vec<Tensor>), NnError> {
    if let Some((lr, state)) = resume::load_net_snapshot(snapshot)? {
        let trainer = Trainer::new(TrainerConfig {
            lr,
            ..scale.trainer(seed)
        })?;
        qnn_trace::counter!("sweep.pretrain.restored", 1);
        return Ok((trainer, state));
    }
    let (trainer, state) = pretrain_fp(spec, splits, scale, seed)?;
    resume::save_net_snapshot(snapshot, trainer.config().lr, &state)?;
    Ok((trainer, state))
}

/// Phase 2 for a single precision: retraining from the pre-trained
/// weights with the same fine-tune budget at every precision — including
/// the float32 row, so every row has seen identical total training and
/// the accuracy deltas isolate precision (the paper's "all design
/// parameters except for the bit precision are the same"). No retry
/// here: failure to converge at a precision is exactly the observation
/// the paper reports as NA.
///
/// # Errors
///
/// Propagates network construction and training errors (not divergence,
/// which is reported as `accuracy_pct: None`).
pub fn qat_point(
    spec: &NetworkSpec,
    splits: &Splits,
    trainer: &Trainer,
    fp_state: &[Tensor],
    precision: Precision,
    seed: u64,
) -> Result<SweepPoint, NnError> {
    qnn_trace::span!("qat:{}", precision.label());
    let mut net = Network::build(spec, seed)?;
    net.load_state(fp_state)?;
    let (report, acc) = if !precision.is_quantized() {
        let cfg = trainer.config();
        let fine_tune = Trainer::new(TrainerConfig {
            lr: cfg.lr * cfg.qat_lr_factor,
            ..*cfg
        })?;
        let report = fine_tune.train(&mut net, splits.train.images(), splits.train.labels())?;
        let acc = fine_tune.evaluate(&mut net, splits.test.images(), splits.test.labels())?;
        (report, acc)
    } else {
        let report = trainer.train_qat(
            &mut net,
            &QatConfig::new(precision),
            splits.train.images(),
            splits.train.labels(),
            64,
        )?;
        let acc = trainer.evaluate(&mut net, splits.test.images(), splits.test.labels())?;
        (report, acc)
    };
    Ok(SweepPoint {
        precision,
        accuracy_pct: (report.outcome == TrainOutcome::Converged).then_some(acc * 100.0),
    })
}

/// Runs the paper's two-phase methodology over a precision list:
/// full-precision pre-training once ([`pretrain_fp`]), then per-precision
/// QAT retraining initialized from those weights ([`qat_point`]),
/// evaluated on the test split.
///
/// The per-precision points are independent given the pre-trained
/// weights, so they run concurrently on the `qnn_tensor::par` pool. Each
/// point is seeded and internally deterministic, so the sweep's results
/// do not depend on the worker count.
///
/// # Errors
///
/// Propagates network construction and training errors (not divergence,
/// which is reported as `accuracy_pct: None`).
pub fn accuracy_sweep(
    spec: &NetworkSpec,
    splits: &Splits,
    precisions: &[Precision],
    scale: ExperimentScale,
    seed: u64,
) -> Result<Vec<SweepPoint>, NnError> {
    qnn_trace::span!("sweep:{}", spec.name());
    let (trainer, fp_state) = pretrain_fp(spec, splits, scale, seed)?;
    par::map(precisions.len(), |i| {
        qat_point(spec, splits, &trainer, &fp_state, precisions[i], seed)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_data::{standard_splits, DatasetKind};

    #[test]
    fn scale_budgets_are_ordered() {
        let (s, _) = ExperimentScale::Smoke.samples();
        let (r, _) = ExperimentScale::Reduced.samples();
        let (f, _) = ExperimentScale::Full.samples();
        assert!(s < r && r < f);
        assert!(ExperimentScale::Smoke.epochs() < ExperimentScale::Full.epochs());
    }

    #[test]
    fn sweep_produces_one_point_per_precision() {
        let spec = qnn_nn::arch::NetworkSpec::new("probe", (1, 28, 28))
            .conv(4, 5, 1, 0)
            .relu()
            .max_pool(2, 2)
            .dense(10);
        let splits = standard_splits(DatasetKind::Glyphs28, 240, 200, 3);
        let pts = accuracy_sweep(
            &spec,
            &splits,
            &[Precision::float32(), Precision::fixed(8, 8)],
            ExperimentScale::Smoke,
            7,
        )
        .unwrap();
        assert_eq!(pts.len(), 2);
        // Both should converge on the easy set even at smoke scale.
        assert!(pts[0].accuracy_pct.is_some());
        assert!(pts[1].accuracy_pct.is_some());
        assert!(pts[0].accuracy_pct.unwrap() > 50.0);
    }
}
