//! Figure 3 energy-stage attribution, driven from recorded telemetry.
//!
//! The accelerator model already narrates every `energy_per_image`
//! evaluation into `qnn_trace` — cycle counters per pipeline stage class
//! (`accel.cycles.{compute,dma_stall,fill}`) and the energy each class
//! accounts for (`accel.energy.*_uj`). This module closes the loop: the
//! per-stage figure dataset is *decoded from a recorded trace* rather
//! than recomputed from the analytical model, so the figure describes
//! what the simulated hardware actually reported. The drift test in
//! `crates/core/tests/energy_trace.rs` pins trace-derived rows to the
//! recomputed attribution bit for bit.

use qnn_accel::AcceleratorDesign;
use qnn_nn::arch::NetworkSpec;
use qnn_nn::NnError;
use qnn_quant::Precision;
use qnn_trace::Trace;

use crate::report;

/// Where one precision's per-image runtime and energy go, by pipeline
/// stage class — one stacked bar of the energy-stage figure.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyStageRow {
    /// The precision the bar describes.
    pub precision: Precision,
    /// Cycles the NFU pipeline spent computing.
    pub compute_cycles: u64,
    /// Cycles stalled on DMA (off-chip traffic).
    pub dma_stall_cycles: u64,
    /// Pipeline fill cycles across layers.
    pub fill_cycles: u64,
    /// Total per-image energy, µJ.
    pub total_uj: f64,
    /// Energy attributed to compute cycles, µJ.
    pub compute_uj: f64,
    /// Energy attributed to DMA stalls, µJ.
    pub dma_stall_uj: f64,
    /// Energy attributed to pipeline fill, µJ.
    pub fill_uj: f64,
}

impl EnergyStageRow {
    /// Sum of the attributed stage energies, µJ. Equals
    /// [`total_uj`](EnergyStageRow::total_uj) up to rounding in the
    /// stage shares.
    pub fn stage_sum_uj(&self) -> f64 {
        self.compute_uj + self.dma_stall_uj + self.fill_uj
    }

    /// Renders the figure dataset as markdown.
    pub fn render(rows: &[EnergyStageRow]) -> String {
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.precision.label(),
                    format!("{:.2}", r.total_uj),
                    format!("{:.2}", r.compute_uj),
                    format!("{:.2}", r.dma_stall_uj),
                    format!("{:.2}", r.fill_uj),
                    r.compute_cycles.to_string(),
                    r.dma_stall_cycles.to_string(),
                    r.fill_cycles.to_string(),
                ]
            })
            .collect();
        report::markdown_table(
            &[
                "Precision (w,in)",
                "Energy µJ",
                "Compute µJ",
                "DMA stall µJ",
                "Fill µJ",
                "Compute cyc",
                "Stall cyc",
                "Fill cyc",
            ],
            &body,
        )
    }
}

fn missing(kind: &str, name: &str) -> NnError {
    NnError::InvalidConfig {
        reason: format!("trace has no {kind} `{name}` — record it around one energy_per_image run"),
    }
}

/// Decodes one precision's stage attribution from a recorded trace.
///
/// The trace must cover exactly one `energy_per_image` evaluation:
/// the cycle counters are monotonic sums, so a trace spanning several
/// evaluations would silently merge their bars.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] when an expected counter or gauge
/// is absent (the trace was recorded without an accelerator run in it).
pub fn energy_stages_from_trace(
    trace: &Trace,
    precision: Precision,
) -> Result<EnergyStageRow, NnError> {
    let counter = |name: &str| {
        trace
            .counters
            .get(name)
            .copied()
            .ok_or_else(|| missing("counter", name))
    };
    let gauge = |name: &str| {
        trace
            .gauges
            .get(name)
            .copied()
            .ok_or_else(|| missing("gauge", name))
    };
    Ok(EnergyStageRow {
        precision,
        compute_cycles: counter("accel.cycles.compute")?,
        dma_stall_cycles: counter("accel.cycles.dma_stall")?,
        fill_cycles: counter("accel.cycles.fill")?,
        total_uj: gauge("accel.energy.total_uj")?,
        compute_uj: gauge("accel.energy.compute_uj")?,
        dma_stall_uj: gauge("accel.energy.dma_stall_uj")?,
        fill_uj: gauge("accel.energy.fill_uj")?,
    })
}

/// Generates the energy-stage figure for `spec` over the paper's seven
/// precisions, one short trace session per precision: run the
/// accelerator model traced, then decode the bar from what it reported.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] when a trace session is already
/// collecting (the collector is process-global and sessions cannot
/// nest), and propagates workload errors.
pub fn energy_stages(spec: &NetworkSpec) -> Result<Vec<EnergyStageRow>, NnError> {
    if qnn_trace::enabled() {
        return Err(NnError::InvalidConfig {
            reason: "energy_stages needs the trace collector, but a session is already active"
                .into(),
        });
    }
    let wl = spec.workload()?;
    Precision::paper_sweep()
        .into_iter()
        .map(|p| {
            qnn_trace::start();
            AcceleratorDesign::new(p).energy_per_image(&wl);
            let trace = qnn_trace::stop();
            energy_stages_from_trace(&trace, p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_trace() -> Trace {
        let mut t = Trace::default();
        t.counters.insert("accel.cycles.compute".into(), 100);
        t.counters.insert("accel.cycles.dma_stall".into(), 20);
        t.counters.insert("accel.cycles.fill".into(), 5);
        t.gauges.insert("accel.energy.total_uj".into(), 12.5);
        t.gauges.insert("accel.energy.compute_uj".into(), 10.0);
        t.gauges.insert("accel.energy.dma_stall_uj".into(), 2.0);
        t.gauges.insert("accel.energy.fill_uj".into(), 0.5);
        t
    }

    #[test]
    fn decodes_a_recorded_trace() {
        let row = energy_stages_from_trace(&probe_trace(), Precision::binary()).unwrap();
        assert_eq!(row.compute_cycles, 100);
        assert_eq!(row.total_uj, 12.5);
        assert!((row.stage_sum_uj() - row.total_uj).abs() < 1e-12);
    }

    #[test]
    fn missing_telemetry_is_a_typed_error() {
        let mut t = probe_trace();
        t.gauges.remove("accel.energy.fill_uj");
        let err = energy_stages_from_trace(&t, Precision::binary()).unwrap_err();
        match err {
            NnError::InvalidConfig { reason } => assert!(reason.contains("accel.energy.fill_uj")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        assert!(matches!(
            energy_stages_from_trace(&Trace::default(), Precision::binary()),
            Err(NnError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn render_lists_every_stage_column() {
        let row = energy_stages_from_trace(&probe_trace(), Precision::fixed(8, 8)).unwrap();
        let md = EnergyStageRow::render(&[row]);
        assert!(md.contains("DMA stall µJ"));
        assert!(md.contains("Fixed-Point (8,8)"));
    }
}
