//! Per-cell isolation for sweep runners.
//!
//! A long Table IV/V sweep is a grid of independent (benchmark,
//! precision) cells. One pathological cell — a panic out of a kernel, a
//! typed training error — must degrade *that cell*, not abort the whole
//! table. [`run_cell`] wraps a cell in `catch_unwind`, classifies the
//! result as a typed [`CellOutcome`], and gives genuinely failed cells
//! one retry with a derived seed before giving up.
//!
//! Divergence is *not* a failure: it is a deterministic measurement (the
//! paper's NA rows) and is never retried — reseeding a diverged cell
//! would be quietly changing the experiment.

use std::panic::{catch_unwind, AssertUnwindSafe};

use qnn_nn::NnError;
use qnn_tensor::rng::derive_seed;

/// Seed stream used when a failed cell is retried.
const RETRY_STREAM: u64 = 0x5EED_CE11;

/// The isolated result of one sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome<T> {
    /// The cell produced a converged measurement.
    Ok(T),
    /// The cell ran to completion but training diverged; the carried
    /// value is the cell's NA row. Deterministic, so never retried.
    Diverged(T),
    /// The cell panicked or returned an error on its original seed *and*
    /// on one reseeded retry.
    Failed {
        /// What the final attempt reported.
        reason: String,
    },
}

impl<T> CellOutcome<T> {
    /// The carried measurement, if the cell produced one.
    pub fn value(&self) -> Option<&T> {
        match self {
            CellOutcome::Ok(v) | CellOutcome::Diverged(v) => Some(v),
            CellOutcome::Failed { .. } => None,
        }
    }
}

/// One guarded attempt: panics and errors both become `Err(reason)`.
fn attempt<T>(seed: u64, run: &dyn Fn(u64) -> Result<T, NnError>) -> Result<T, String> {
    match catch_unwind(AssertUnwindSafe(|| run(seed))) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => Err(format!("error: {e}")),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            Err(format!("panic: {msg}"))
        }
    }
}

/// Runs one sweep cell in isolation.
///
/// `run` receives the seed to use and produces the cell's measurement;
/// `is_diverged` classifies a completed measurement as the paper's NA.
/// A panicking or erroring cell is retried once with
/// `derive_seed(seed, RETRY_STREAM)`; if the retry also fails the cell
/// is reported as [`CellOutcome::Failed`] and the sweep moves on.
///
/// Outcomes are tallied under `sweep.cells.{ok,diverged,failed}` and
/// retries under `sweep.cells.retries` when tracing is on.
pub fn run_cell<T>(
    label: &str,
    seed: u64,
    is_diverged: impl Fn(&T) -> bool,
    run: impl Fn(u64) -> Result<T, NnError>,
) -> CellOutcome<T> {
    qnn_trace::span!("cell:{label}");
    let first = attempt(seed, &run);
    let result = match first {
        Ok(v) => Ok(v),
        Err(first_reason) => {
            qnn_trace::counter!("sweep.cells.retries", 1);
            attempt(derive_seed(seed, RETRY_STREAM), &run).map_err(|retry_reason| {
                format!("{first_reason}; retry with reseed: {retry_reason}")
            })
        }
    };
    match result {
        Ok(v) if is_diverged(&v) => {
            qnn_trace::counter!("sweep.cells.diverged", 1);
            CellOutcome::Diverged(v)
        }
        Ok(v) => {
            qnn_trace::counter!("sweep.cells.ok", 1);
            CellOutcome::Ok(v)
        }
        Err(reason) => {
            qnn_trace::counter!("sweep.cells.failed", 1);
            CellOutcome::Failed { reason }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn healthy_cell_is_ok() {
        let out = run_cell("t", 7, |_| false, Ok);
        assert_eq!(out, CellOutcome::Ok(7));
    }

    #[test]
    fn diverged_cells_are_not_retried() {
        let calls = AtomicU64::new(0);
        let out = run_cell(
            "t",
            7,
            |_| true,
            |seed| {
                calls.fetch_add(1, Ordering::SeqCst);
                Ok(seed)
            },
        );
        assert_eq!(out, CellOutcome::Diverged(7));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panic_gets_one_reseeded_retry() {
        let calls = AtomicU64::new(0);
        let out = run_cell(
            "t",
            7,
            |_| false,
            |seed| {
                calls.fetch_add(1, Ordering::SeqCst);
                if seed == 7 {
                    panic!("kernel exploded");
                }
                Ok(seed)
            },
        );
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        match out {
            CellOutcome::Ok(reseeded) => assert_ne!(reseeded, 7),
            other => panic!("expected Ok after retry, got {other:?}"),
        }
    }

    #[test]
    fn persistent_failure_reports_both_attempts() {
        let out: CellOutcome<u64> = run_cell(
            "t",
            7,
            |_| false,
            |_| {
                Err(NnError::InvalidConfig {
                    reason: "bad cell".into(),
                })
            },
        );
        match out {
            CellOutcome::Failed { ref reason } => {
                assert!(reason.contains("bad cell"));
                assert!(reason.contains("retry with reseed"));
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(out.value().is_none());
    }
}
