//! Minifloat design-space sweep — the paper's named future work
//! ("analytically investigating ... effectively predicting the lower
//! precision accuracy and hardware metrics" for further formats).
//!
//! Sweeps custom float geometries `(exp, man)` through the same hardware
//! model and (optionally) the same QAT pipeline as the main study, so the
//! new points drop straight onto the Figure 4 axes.

use qnn_accel::AcceleratorDesign;
use qnn_data::{standard_splits, DatasetKind};
use qnn_nn::{zoo, NnError};
use qnn_quant::Precision;

use super::{accuracy_sweep, ExperimentScale};
use crate::report;

/// One minifloat sweep row.
#[derive(Debug, Clone, PartialEq)]
pub struct MinifloatRow {
    /// The geometry, as a precision.
    pub precision: Precision,
    /// Exponent/mantissa widths.
    pub geometry: (u32, u32),
    /// Design area, mm².
    pub area_mm2: f64,
    /// Design power, mW.
    pub power_mw: f64,
    /// Per-image LeNet energy, µJ.
    pub lenet_energy_uj: f64,
    /// Glyphs28 QAT accuracy (only populated when `train` was requested).
    pub accuracy_pct: Option<f32>,
}

/// The geometries swept: IEEE binary32 (the baseline, recovering the
/// Table III float row), binary16, bfloat16-like, and two 8-bit floats
/// (E4M3/E5M2, the formats later standardized for deep learning).
pub fn standard_geometries() -> Vec<(u32, u32)> {
    vec![(8, 23), (5, 10), (8, 7), (4, 3), (5, 2)]
}

/// Runs the sweep. With `train = true`, each geometry is also trained
/// (QAT) on the MNIST-class benchmark at `scale`.
///
/// # Errors
///
/// Propagates hardware-model and training errors.
pub fn minifloat_sweep(
    train: bool,
    scale: ExperimentScale,
    seed: u64,
) -> Result<Vec<MinifloatRow>, NnError> {
    let lenet_wl = zoo::lenet().workload()?;
    let mut rows = Vec::new();
    let precisions: Vec<Precision> = standard_geometries()
        .into_iter()
        .map(|(e, m)| Precision::minifloat(e, m))
        .collect();
    let accuracies: Vec<Option<f32>> = if train {
        let (n_train, n_test) = scale.samples();
        let splits = standard_splits(DatasetKind::Glyphs28, n_train, n_test, seed);
        let spec = match scale {
            ExperimentScale::Full => zoo::lenet(),
            _ => zoo::lenet_small(),
        };
        accuracy_sweep(&spec, &splits, &precisions, scale, seed)?
            .into_iter()
            .map(|p| p.accuracy_pct)
            .collect()
    } else {
        vec![None; precisions.len()]
    };
    for (p, acc) in precisions.into_iter().zip(accuracies) {
        let geometry = match p.weights() {
            qnn_quant::Scheme::Minifloat { exp_bits, man_bits } => (exp_bits, man_bits),
            _ => unreachable!("sweep builds only minifloat precisions"),
        };
        let design = AcceleratorDesign::new(p);
        let m = design.report();
        rows.push(MinifloatRow {
            precision: p,
            geometry,
            area_mm2: m.area_mm2,
            power_mw: m.power_mw,
            lenet_energy_uj: design.energy_per_image(&lenet_wl).total_uj(),
            accuracy_pct: acc,
        });
    }
    Ok(rows)
}

impl MinifloatRow {
    /// Renders the sweep as markdown.
    pub fn render(rows: &[MinifloatRow]) -> String {
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    format!("float {}e{}m", r.geometry.0, r.geometry.1),
                    format!("{}", 1 + r.geometry.0 + r.geometry.1),
                    format!("{:.2}", r.area_mm2),
                    format!("{:.1}", r.power_mw),
                    format!("{:.2}", r.lenet_energy_uj),
                    report::pct_or_na(r.accuracy_pct),
                ]
            })
            .collect();
        report::markdown_table(
            &[
                "Geometry",
                "Bits",
                "Area mm²",
                "Power mW",
                "LeNet µJ",
                "Acc. %",
            ],
            &body,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_geometry_recovers_table3_float_row() {
        let rows = minifloat_sweep(false, ExperimentScale::Smoke, 1).unwrap();
        let fp32 = &rows[0];
        assert_eq!(fp32.geometry, (8, 23));
        let table3_float = AcceleratorDesign::new(Precision::float32()).report();
        assert!((fp32.area_mm2 - table3_float.area_mm2).abs() / table3_float.area_mm2 < 0.01);
        assert!((fp32.power_mw - table3_float.power_mw).abs() / table3_float.power_mw < 0.01);
    }

    #[test]
    fn narrower_floats_cost_less() {
        let rows = minifloat_sweep(false, ExperimentScale::Smoke, 1).unwrap();
        // Sorted by total bits descending within the standard list:
        // 32 > 16 = 16 > 8 = 8.
        assert!(rows[0].area_mm2 > rows[1].area_mm2);
        assert!(rows[1].area_mm2 > rows[3].area_mm2);
        assert!(rows[0].power_mw > rows[3].power_mw);
        assert!(rows[0].lenet_energy_uj > rows[3].lenet_energy_uj);
    }

    #[test]
    fn eight_bit_float_beats_sixteen_bit_fixed_in_area() {
        let rows = minifloat_sweep(false, ExperimentScale::Smoke, 1).unwrap();
        let f8 = rows.iter().find(|r| r.geometry == (4, 3)).unwrap();
        let fix16 = AcceleratorDesign::new(Precision::fixed(16, 16)).report();
        assert!(f8.area_mm2 < fix16.area_mm2);
    }
}
