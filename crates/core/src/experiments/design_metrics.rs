//! Table III — design metrics of the evaluated precisions.

use qnn_accel::{paper, AcceleratorDesign};
use qnn_quant::Precision;

use crate::report;

/// One generated Table III row, with the paper's value alongside.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignRow {
    /// The precision this row describes.
    pub precision: Precision,
    /// Model area, mm².
    pub area_mm2: f64,
    /// Model power, mW.
    pub power_mw: f64,
    /// Model area saving vs. float32, percent.
    pub area_saving_pct: f64,
    /// Model power saving vs. float32, percent.
    pub power_saving_pct: f64,
    /// Published area, mm².
    pub paper_area_mm2: f64,
    /// Published power, mW.
    pub paper_power_mw: f64,
}

/// Generates Table III from the calibrated hardware model, paired with the
/// paper's published values.
pub fn design_metrics() -> Vec<DesignRow> {
    paper::table3()
        .into_iter()
        .map(|row| {
            let m = AcceleratorDesign::new(row.precision).report();
            DesignRow {
                precision: row.precision,
                area_mm2: m.area_mm2,
                power_mw: m.power_mw,
                area_saving_pct: m.area_saving_pct,
                power_saving_pct: m.power_saving_pct,
                paper_area_mm2: row.area_mm2,
                paper_power_mw: row.power_mw,
            }
        })
        .collect()
}

impl DesignRow {
    /// Renders the full table as markdown.
    pub fn render(rows: &[DesignRow]) -> String {
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.precision.label(),
                    format!("{:.2}", r.area_mm2),
                    format!("{:.2}", r.paper_area_mm2),
                    format!("{:.1}", r.power_mw),
                    format!("{:.1}", r.paper_power_mw),
                    format!("{:.2}", r.area_saving_pct),
                    format!("{:.2}", r.power_saving_pct),
                ]
            })
            .collect();
        report::markdown_table(
            &[
                "Precision (w,in)",
                "Area mm² (model)",
                "Area mm² (paper)",
                "Power mW (model)",
                "Power mW (paper)",
                "Area sav. %",
                "Power sav. %",
            ],
            &body,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_rows_in_table_order() {
        let rows = design_metrics();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].precision, Precision::float32());
        assert_eq!(rows[6].precision, Precision::binary());
    }

    #[test]
    fn savings_increase_down_the_fixed_column() {
        let rows = design_metrics();
        // fixed 32 → 16 → 8 → 4 rows are indices 1..=4.
        for w in 1..4 {
            assert!(rows[w + 1].power_saving_pct > rows[w].power_saving_pct);
            assert!(rows[w + 1].area_saving_pct > rows[w].area_saving_pct);
        }
    }

    #[test]
    fn render_contains_every_precision() {
        let md = DesignRow::render(&design_metrics());
        for p in Precision::paper_sweep() {
            assert!(md.contains(&p.label()), "missing {}", p.label());
        }
    }
}
