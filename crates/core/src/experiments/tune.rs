//! `qnn tune` — mixed-precision autotuning on the energy/accuracy
//! Pareto frontier.
//!
//! The paper sweeps *uniform* precisions (every layer shares one format,
//! Table IV). The tuner explores the larger per-layer space with a
//! deterministic two-stage search:
//!
//! 1. **Uniform stage** — the seven [`Precision::paper_sweep`] rows,
//!    trained through the same two-phase QAT methodology as Table IV.
//! 2. **Coordinate stage** — starting from the best uniform row (the
//!    *incumbent*: highest accuracy, ties broken by lower energy, then
//!    sweep order), each weighted layer in turn is swapped to every
//!    other Table III format while the rest keep the incumbent's. One
//!    swap per cell — a single coordinate-descent pass, not an
//!    exhaustive grid (5 formats over 4 layers would be 625 cells; the
//!    pass costs at most 20).
//!
//! Every candidate is costed on the accelerator model with a per-layer
//! energy composition ([`mixed energy`](self)): each weighted layer (and
//! the pooling/activation layers riding behind it) is scheduled on the
//! design synthesized for *its* format, and the accumulator width is
//! narrowed wherever `qnn_quant::packed::dot_exact_narrow_acc` certifies
//! the reduction exact — the third knob, traded alongside weight and
//! input precision. Dominated points are pruned with
//! [`crate::pareto::pareto_frontier`] and the survivors serialize to a
//! deterministic `PARETO_tune.json`.
//!
//! [`tune_resumable`] persists every evaluated cell to a
//! [`SweepState`] ledger, so a SIGKILLed sweep resumed from the same
//! directory produces an artifact **byte-identical** to an uninterrupted
//! run — the contract the `tune-resume` CI stage enforces.

use std::path::Path;

use qnn_accel::{layer_cycles, AcceleratorDesign};
use qnn_data::{standard_splits, DatasetKind, Splits};
use qnn_faults::StoreError;
use qnn_nn::arch::NetworkSpec;
use qnn_nn::workload::{WorkKind, Workload};
use qnn_nn::{zoo, Network, NnError, TrainOutcome, Trainer};
use qnn_quant::calibrate::Method;
use qnn_quant::{packed, Precision, Scheme};
use qnn_tensor::{par, Tensor};

use super::cell::run_cell;
use super::resume::{CellRecord, SweepProgress, SweepState};
use crate::pareto::{pareto_frontier, DesignPoint};

use super::{pretrain_fp, pretrain_resumable, qat_point, ExperimentScale};

/// Accumulator widths the tuner tries, narrowest first. Only widths the
/// certificate proves exact *below the design default* are ever used.
const ACC_WIDTH_MENU: [u32; 6] = [8, 12, 16, 20, 24, 28];

/// Scale exponent stand-in for the width certificate. The exactness of
/// the f32 bound holds for any in-range exponent, so a fixed
/// representative keeps the search independent of calibration.
const TUNE_LSB_EXP: i32 = -24;

/// The formats the coordinate stage may install per layer: the Table III
/// rows that synthesize to distinct datapaths. Float32 and fixed(32,32)
/// are omitted — both are energy-dominated by fixed(16,16) at
/// indistinguishable accuracy, so swapping *to* them never helps.
fn coordinate_menu() -> [Precision; 5] {
    [
        Precision::fixed(16, 16),
        Precision::fixed(8, 8),
        Precision::fixed(4, 4),
        Precision::power_of_two(),
        Precision::binary(),
    ]
}

/// One surviving design point of the tuned frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct TunePoint {
    /// Unique display label (the assignment signature, plus the narrowed
    /// accumulator widths when they differ from the defaults).
    pub label: String,
    /// Per-weighted-layer precision assignment.
    pub assignment: Vec<Precision>,
    /// Per-weighted-layer accumulator width the energy was costed at.
    pub acc_bits: Vec<u32>,
    /// Measured test accuracy, percent.
    pub accuracy_pct: f32,
    /// Per-image energy on the full benchmark workload, µJ.
    pub energy_uj: f64,
}

/// The assembled result of one tuning sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// Benchmark network the energy model used (always the full-scale
    /// architecture, like Table IV's energy column).
    pub benchmark: String,
    /// Training scale accuracies were measured at.
    pub scale: ExperimentScale,
    /// The sweep seed.
    pub seed: u64,
    /// Number of candidate assignments trained and evaluated (including
    /// diverged/NA cells that produced no point).
    pub evaluated: usize,
    /// Every costed design point, dominated or not.
    pub points: Vec<TunePoint>,
    /// The Pareto-optimal subset, sorted by increasing energy.
    pub frontier: Vec<TunePoint>,
}

impl TuneResult {
    /// Serializes the frontier as the `PARETO_tune.json` artifact.
    ///
    /// The writer is deterministic: fixed key order, `Display`-formatted
    /// numbers (shortest round-trip form), no timestamps — two runs that
    /// measured the same points emit byte-identical files.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"qnn-tune-pareto/v1\",\n");
        out.push_str(&format!("  \"benchmark\": \"{}\",\n", self.benchmark));
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"evaluated\": {},\n", self.evaluated));
        out.push_str("  \"frontier\": [\n");
        for (i, p) in self.frontier.iter().enumerate() {
            let formats: Vec<String> = p
                .assignment
                .iter()
                .map(|a| format!("\"{}\"", a.weights()))
                .collect();
            let widths: Vec<String> = p.acc_bits.iter().map(u32::to_string).collect();
            out.push_str("    {\n");
            out.push_str(&format!("      \"label\": \"{}\",\n", p.label));
            out.push_str(&format!(
                "      \"assignment\": [{}],\n",
                formats.join(", ")
            ));
            out.push_str(&format!("      \"acc_bits\": [{}],\n", widths.join(", ")));
            out.push_str(&format!("      \"accuracy_pct\": {},\n", p.accuracy_pct));
            out.push_str(&format!("      \"energy_uj\": {}\n", p.energy_uj));
            out.push_str(if i + 1 < self.frontier.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Compact signature of an assignment, e.g. `"fixed8|fixed8|pow2-6|binary"`.
/// Doubles as the ledger cell key (prefixed) and the point label.
fn signature(assignment: &[Precision]) -> String {
    assignment
        .iter()
        .map(|p| p.weights().to_string())
        .collect::<Vec<_>>()
        .join("|")
}

fn uniform_key(p: Precision) -> String {
    format!("uniform/{}", p.label())
}

fn mix_key(assignment: &[Precision]) -> String {
    format!("mix/{}", signature(assignment))
}

/// Everything the sweep needs besides training state: the training spec
/// and data at `scale`, and the full-architecture energy workload.
struct TuneSetting {
    spec: NetworkSpec,
    splits: Splits,
    wl: Workload,
    /// Fan-in (synapses per neuron) of each weighted layer, in order.
    fan_ins: Vec<u64>,
    /// Weighted (parameterized) layer count — the assignment length.
    n_layers: usize,
    /// Energy of each uniform paper-sweep assignment, for incumbent
    /// tie-breaking.
    uniform_energies: Vec<f64>,
}

impl TuneSetting {
    fn new(scale: ExperimentScale, seed: u64) -> Result<Self, NnError> {
        let (n_train, n_test) = scale.samples();
        let splits = standard_splits(DatasetKind::Glyphs28, n_train, n_test, seed);
        let spec = match scale {
            ExperimentScale::Full => zoo::lenet(),
            _ => zoo::lenet_small(),
        };
        let wl = zoo::lenet().workload()?;
        let fan_ins: Vec<u64> = wl
            .layers
            .iter()
            .filter(|l| matches!(l.kind, WorkKind::Conv | WorkKind::Dense))
            .map(|l| l.synapses_per_neuron)
            .collect();
        let n_layers = fan_ins.len();
        // The reduced training stand-in must mirror the full topology, or
        // per-layer assignments would not carry across.
        let train_weighted = spec
            .workload()?
            .layers
            .iter()
            .filter(|l| matches!(l.kind, WorkKind::Conv | WorkKind::Dense))
            .count();
        assert_eq!(
            train_weighted, n_layers,
            "training stand-in and energy benchmark disagree on weighted layers"
        );
        let uniform_energies = Precision::paper_sweep()
            .iter()
            .map(|&p| mixed_energy(&wl, &vec![p; n_layers], None))
            .collect();
        Ok(TuneSetting {
            spec,
            splits,
            wl,
            fan_ins,
            n_layers,
            uniform_energies,
        })
    }

    /// Upper bound on coordinate-stage cells, for progress totals while
    /// the uniform stage (which decides the incumbent) is still partial.
    fn stage2_upper(&self) -> usize {
        coordinate_menu().len() * self.n_layers
    }
}

/// Per-layer energy composition: every workload layer is scheduled on
/// the design synthesized for its owning weighted layer's precision
/// (pooling/activation layers ride with the weighted layer that feeds
/// them), and each design's power is charged for exactly the cycles its
/// layers occupy. A uniform assignment reproduces
/// [`AcceleratorDesign::energy_per_image`] up to float rounding.
///
/// `widths` optionally overrides each weighted layer's accumulator
/// width; an entry at or above the design default is ignored.
fn mixed_energy(wl: &Workload, assignment: &[Precision], widths: Option<&[u32]>) -> f64 {
    let designs: Vec<AcceleratorDesign> = assignment
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let d = AcceleratorDesign::new(p);
            match widths {
                Some(ws) if ws[i] < d.accumulator_bits() => d.with_accumulator_bits(ws[i]),
                _ => d,
            }
        })
        .collect();
    let mut group = vec![0u64; assignment.len()];
    let mut owner = 0usize;
    let mut seen_weighted = false;
    for l in &wl.layers {
        if matches!(l.kind, WorkKind::Conv | WorkKind::Dense) {
            owner = if seen_weighted { owner + 1 } else { 0 };
            seen_weighted = true;
        }
        let d = &designs[owner.min(assignment.len() - 1)];
        group[owner.min(assignment.len() - 1)] +=
            layer_cycles(l, d.config(), d.pipeline_stages()).total();
    }
    group
        .iter()
        .zip(&designs)
        .map(|(&cycles, d)| {
            let power_mw = d.synthesize().power_mw();
            power_mw * (cycles as f64 / d.config().clock_hz) * 1e3
        })
        .sum()
}

/// The narrowest accumulator width the exactness certificate admits for
/// this precision at this fan-in, if any beats the design default.
/// Formats without a bounded integer raw range (float32, powers of two —
/// the shift span blows the bound) never certify.
fn certified_acc_width(p: Precision, fan_in: u64, default: u32) -> Option<u32> {
    let max_raw = |s: Scheme| match s {
        Scheme::Fixed { bits } => Some((1i64 << (bits - 1)) - 1),
        Scheme::Binary => Some(1i64),
        _ => None,
    };
    let (max_w, max_a) = (max_raw(p.weights())?, max_raw(p.activations())?);
    let k = usize::try_from(fan_in).ok()?;
    ACC_WIDTH_MENU
        .iter()
        .copied()
        .find(|&b| b < default && packed::dot_exact_narrow_acc(max_a, max_w, k, TUNE_LSB_EXP, b))
}

/// Per-layer certified widths for an assignment (`default` where nothing
/// narrower certifies); `None` when no layer improves on its default.
fn certified_widths(assignment: &[Precision], fan_ins: &[u64]) -> Option<Vec<u32>> {
    let mut any = false;
    let widths: Vec<u32> = assignment
        .iter()
        .zip(fan_ins)
        .map(|(&p, &k)| {
            let default = AcceleratorDesign::new(p).accumulator_bits();
            match certified_acc_width(p, k, default) {
                Some(w) => {
                    any = true;
                    w
                }
                None => default,
            }
        })
        .collect();
    any.then_some(widths)
}

/// The best uniform row: highest accuracy, ties broken by lower energy,
/// then earlier sweep position. Falls back to fixed(8,8) — the paper's
/// robust row — should no uniform cell converge.
fn pick_incumbent(uniforms: &[Precision], accs: &[Option<f32>], energies: &[f64]) -> Precision {
    let mut best: Option<usize> = None;
    for (i, acc) in accs.iter().enumerate() {
        let Some(a) = acc else { continue };
        match best {
            None => best = Some(i),
            Some(b) => {
                let ba = accs[b].expect("incumbent converged");
                if *a > ba || (*a == ba && energies[i] < energies[b]) {
                    best = Some(i);
                }
            }
        }
    }
    best.map_or_else(|| Precision::fixed(8, 8), |i| uniforms[i])
}

/// The coordinate-stage candidate list: for each weighted layer, the
/// incumbent assignment with that one layer swapped to each other menu
/// format. Deterministic in the incumbent; all signatures distinct.
fn stage2_plan(incumbent: Precision, n_layers: usize) -> Vec<Vec<Precision>> {
    let mut plan = Vec::new();
    for layer in 0..n_layers {
        for alt in coordinate_menu() {
            if alt == incumbent {
                continue;
            }
            let mut a = vec![incumbent; n_layers];
            a[layer] = alt;
            plan.push(a);
        }
    }
    plan
}

/// QAT-evaluates one mixed assignment: load the shared pre-trained
/// weights, install the per-layer formats, fine-tune, evaluate —
/// exactly the [`qat_point`] flow with the per-layer calibration path.
fn mixed_point(
    spec: &NetworkSpec,
    splits: &Splits,
    trainer: &Trainer,
    fp_state: &[Tensor],
    assignment: &[Precision],
    seed: u64,
) -> Result<Option<f32>, NnError> {
    qnn_trace::span!("qat:mix");
    let mut net = Network::build(spec, seed)?;
    net.load_state(fp_state)?;
    let report = trainer.train_qat_per_layer(
        &mut net,
        assignment,
        Method::MaxAbs,
        splits.train.images(),
        splits.train.labels(),
        64,
    )?;
    let acc = trainer.evaluate(&mut net, splits.test.images(), splits.test.labels())?;
    Ok((report.outcome == TrainOutcome::Converged).then_some(acc * 100.0))
}

/// Builds the costed design points and prunes the frontier.
fn assemble(
    scale: ExperimentScale,
    seed: u64,
    entries: &[(Vec<Precision>, Option<f32>)],
    setting: &TuneSetting,
) -> TuneResult {
    let mut points = Vec::new();
    for (assignment, acc) in entries {
        let Some(a) = acc else { continue };
        let sig = signature(assignment);
        let defaults: Vec<u32> = assignment
            .iter()
            .map(|&p| AcceleratorDesign::new(p).accumulator_bits())
            .collect();
        points.push(TunePoint {
            label: sig.clone(),
            assignment: assignment.clone(),
            acc_bits: defaults,
            accuracy_pct: *a,
            energy_uj: mixed_energy(&setting.wl, assignment, None),
        });
        // Second point with certified-narrow accumulators: identical
        // accuracy by the exactness proof, strictly lower energy.
        if let Some(w) = certified_widths(assignment, &setting.fan_ins) {
            let widths: Vec<String> = w.iter().map(u32::to_string).collect();
            points.push(TunePoint {
                label: format!("{sig} @acc {}", widths.join("|")),
                assignment: assignment.clone(),
                acc_bits: w.clone(),
                accuracy_pct: *a,
                energy_uj: mixed_energy(&setting.wl, assignment, Some(&w)),
            });
        }
    }
    let dps: Vec<DesignPoint> = points
        .iter()
        .map(|t| DesignPoint::new(t.label.clone(), t.accuracy_pct, t.energy_uj))
        .collect();
    let frontier = pareto_frontier(&dps)
        .iter()
        .filter_map(|d| points.iter().find(|t| t.label == d.label).cloned())
        .collect();
    TuneResult {
        benchmark: setting.wl.network.clone(),
        scale,
        seed,
        evaluated: entries.len(),
        points,
        frontier,
    }
}

/// Runs the full tuning sweep in parallel on the `qnn_tensor::par` pool.
///
/// Each cell is seeded and internally deterministic, so the result does
/// not depend on the worker count — and it is bit-identical to a
/// [`tune_resumable`] run over the same `(scale, seed)`, interrupted or
/// not.
///
/// # Errors
///
/// Propagates network construction and training errors (not divergence,
/// which drops the candidate the way Table IV reports NA).
pub fn tune(scale: ExperimentScale, seed: u64) -> Result<TuneResult, NnError> {
    qnn_trace::span!("tune");
    let setting = TuneSetting::new(scale, seed)?;
    let (trainer, fp_state) = pretrain_fp(&setting.spec, &setting.splits, scale, seed)?;
    let uniforms = Precision::paper_sweep();
    let s1: Vec<Option<f32>> = par::map(uniforms.len(), |i| {
        qat_point(
            &setting.spec,
            &setting.splits,
            &trainer,
            &fp_state,
            uniforms[i],
            seed,
        )
        .map(|pt| pt.accuracy_pct)
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    let incumbent = pick_incumbent(&uniforms, &s1, &setting.uniform_energies);
    let plan = stage2_plan(incumbent, setting.n_layers);
    let s2: Vec<Option<f32>> = par::map(plan.len(), |i| {
        mixed_point(
            &setting.spec,
            &setting.splits,
            &trainer,
            &fp_state,
            &plan[i],
            seed,
        )
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    let mut entries: Vec<(Vec<Precision>, Option<f32>)> = uniforms
        .iter()
        .zip(&s1)
        .map(|(&p, &a)| (vec![p; setting.n_layers], a))
        .collect();
    entries.extend(plan.into_iter().zip(s2));
    Ok(assemble(scale, seed, &entries, &setting))
}

/// Crash-safe [`tune`]: every evaluated cell is persisted to a
/// [`SweepState`] ledger (`tune.state.qnnf` under `dir`) before the next
/// one starts, and phase-1 pre-training is snapshotted, so a sweep
/// killed at any point and resumed from the same directory produces a
/// [`TuneResult`] — and a `PARETO_tune.json` — **bit-identical** to an
/// uninterrupted run.
///
/// `max_cells` bounds how many *new* cells this invocation computes
/// (`None` = no bound). While the uniform stage is still partial the
/// reported [`SweepProgress::total`] is an upper bound (the coordinate
/// stage's exact cell list depends on which uniform row wins); it
/// settles to the exact total once the incumbent is known.
///
/// # Errors
///
/// Propagates dataset/workload errors and typed store errors (corrupt
/// ledger or snapshot, ledger from a different sweep kind, label or
/// seed).
pub fn tune_resumable(
    scale: ExperimentScale,
    seed: u64,
    dir: &Path,
    max_cells: Option<usize>,
) -> Result<(Option<TuneResult>, SweepProgress), NnError> {
    tune_resumable_with_hook(scale, seed, dir, max_cells, |_| {})
}

/// [`tune_resumable`] with a callback fired after each newly computed
/// cell is durably recorded, receiving the count of new cells so far in
/// this invocation. The CLI's `--kill-cell` harness uses it to die at a
/// deterministic point; tests use it to observe progress.
///
/// # Errors
///
/// See [`tune_resumable`].
pub fn tune_resumable_with_hook(
    scale: ExperimentScale,
    seed: u64,
    dir: &Path,
    max_cells: Option<usize>,
    mut hook: impl FnMut(usize),
) -> Result<(Option<TuneResult>, SweepProgress), NnError> {
    qnn_trace::span!("tune:resumable");
    std::fs::create_dir_all(dir).map_err(|e| StoreError::io("mkdir", dir, &e))?;
    let state_path = dir.join("tune.state.qnnf");
    let label = format!("tune/{scale:?}");
    let mut state = SweepState::load_or_new(&state_path, &label, seed)?;

    let setting = TuneSetting::new(scale, seed)?;
    let uniforms = Precision::paper_sweep();
    let mut pre: Option<(Trainer, Vec<Tensor>)> = None;
    let mut budget = max_cells.unwrap_or(usize::MAX);
    let mut new_cells = 0usize;
    let snapshot = dir.join("tune.pre.qnnf");

    for &p in &uniforms {
        let key = uniform_key(p);
        if state.get(&key).is_some() || budget == 0 {
            continue;
        }
        budget -= 1;
        if pre.is_none() {
            pre = Some(pretrain_resumable(
                &setting.spec,
                &setting.splits,
                scale,
                seed,
                &snapshot,
            )?);
        }
        let (trainer, fp_state) = pre.as_ref().expect("just populated");
        let outcome = run_cell(
            &key,
            seed,
            |acc: &Option<f32>| acc.is_none(),
            |cell_seed| {
                qat_point(
                    &setting.spec,
                    &setting.splits,
                    trainer,
                    fp_state,
                    p,
                    cell_seed,
                )
                .map(|pt| pt.accuracy_pct)
            },
        );
        state.record(&state_path, &key, CellRecord::from_outcome(&outcome))?;
        new_cells += 1;
        hook(new_cells);
    }

    let s1_done = uniforms
        .iter()
        .all(|&p| state.get(&uniform_key(p)).is_some());
    let mut plan: Vec<Vec<Precision>> = Vec::new();
    if s1_done {
        let s1: Vec<Option<f32>> = uniforms
            .iter()
            .map(|&p| {
                state
                    .get(&uniform_key(p))
                    .expect("stage 1 recorded")
                    .accuracy_pct()
            })
            .collect();
        let incumbent = pick_incumbent(&uniforms, &s1, &setting.uniform_energies);
        plan = stage2_plan(incumbent, setting.n_layers);
        for a in &plan {
            let key = mix_key(a);
            if state.get(&key).is_some() || budget == 0 {
                continue;
            }
            budget -= 1;
            if pre.is_none() {
                pre = Some(pretrain_resumable(
                    &setting.spec,
                    &setting.splits,
                    scale,
                    seed,
                    &snapshot,
                )?);
            }
            let (trainer, fp_state) = pre.as_ref().expect("just populated");
            let outcome = run_cell(
                &key,
                seed,
                |acc: &Option<f32>| acc.is_none(),
                |cell_seed| {
                    mixed_point(
                        &setting.spec,
                        &setting.splits,
                        trainer,
                        fp_state,
                        a,
                        cell_seed,
                    )
                },
            );
            state.record(&state_path, &key, CellRecord::from_outcome(&outcome))?;
            new_cells += 1;
            hook(new_cells);
        }
    }

    let total = uniforms.len()
        + if s1_done {
            plan.len()
        } else {
            setting.stage2_upper()
        };
    let completed = uniforms
        .iter()
        .map(|&p| uniform_key(p))
        .chain(plan.iter().map(|a| mix_key(a)))
        .filter(|key| state.get(key).is_some())
        .count();
    let progress = SweepProgress { completed, total };
    if !progress.is_complete() {
        return Ok((None, progress));
    }

    let mut entries: Vec<(Vec<Precision>, Option<f32>)> = uniforms
        .iter()
        .map(|&p| {
            let acc = state
                .get(&uniform_key(p))
                .expect("complete sweep")
                .accuracy_pct();
            (vec![p; setting.n_layers], acc)
        })
        .collect();
    entries.extend(plan.into_iter().map(|a| {
        let acc = state
            .get(&mix_key(&a))
            .expect("complete sweep")
            .accuracy_pct();
        (a, acc)
    }));
    Ok((Some(assemble(scale, seed, &entries, &setting)), progress))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_energy_composition_matches_energy_per_image() {
        let wl = zoo::lenet().workload().unwrap();
        for p in Precision::paper_sweep() {
            let composed = mixed_energy(&wl, &[p; 4], None);
            let direct = AcceleratorDesign::new(p).energy_per_image(&wl).total_uj();
            let rel = (composed - direct).abs() / direct;
            assert!(rel < 1e-9, "{}: {composed} vs {direct}", p.label());
        }
    }

    #[test]
    fn mixed_energy_sits_between_its_uniform_extremes() {
        let wl = zoo::lenet().workload().unwrap();
        let lo = mixed_energy(&wl, &[Precision::binary(); 4], None);
        let hi = mixed_energy(&wl, &[Precision::fixed(16, 16); 4], None);
        let mut mix = vec![Precision::fixed(16, 16); 4];
        mix[3] = Precision::binary();
        let m = mixed_energy(&wl, &mix, None);
        assert!(lo < m && m < hi, "{lo} < {m} < {hi}");
    }

    #[test]
    fn narrow_widths_certify_only_below_default_and_cut_energy() {
        let wl = zoo::lenet().workload().unwrap();
        let fan_ins: Vec<u64> = wl
            .layers
            .iter()
            .filter(|l| matches!(l.kind, WorkKind::Conv | WorkKind::Dense))
            .map(|l| l.synapses_per_neuron)
            .collect();
        assert_eq!(fan_ins, [25, 500, 800, 500]);

        let a8 = vec![Precision::fixed(8, 8); 4];
        let w = certified_widths(&a8, &fan_ins).expect("conv1 certifies narrow");
        // conv1: 127·127·25 = 403 225 fits 20 signed bits (< default 24);
        // the deeper fan-ins exceed every sub-default menu width.
        assert_eq!(w, [20, 24, 24, 24]);
        let full = mixed_energy(&wl, &a8, None);
        let narrow = mixed_energy(&wl, &a8, Some(&w));
        assert!(narrow < full, "{narrow} vs {full}");

        // Unbounded raw ranges never certify.
        assert!(certified_widths(&[Precision::float32(); 4], &fan_ins).is_none());
        assert!(certified_widths(&[Precision::power_of_two(); 4], &fan_ins).is_none());
        // fixed(16,16) products blow the base certificate entirely.
        assert!(certified_widths(&[Precision::fixed(16, 16); 4], &fan_ins).is_none());
    }

    #[test]
    fn stage2_plan_is_one_swap_per_layer() {
        let plan = stage2_plan(Precision::fixed(8, 8), 4);
        assert_eq!(plan.len(), 16); // 4 layers × (5 menu − incumbent)
        let mut sigs: Vec<String> = plan.iter().map(|a| signature(a)).collect();
        sigs.sort();
        sigs.dedup();
        assert_eq!(sigs.len(), 16, "signatures must be distinct");
        for a in &plan {
            let swaps = a.iter().filter(|&&p| p != Precision::fixed(8, 8)).count();
            assert_eq!(swaps, 1);
        }
        // An incumbent outside the menu swaps every slot.
        assert_eq!(stage2_plan(Precision::float32(), 4).len(), 20);
    }

    #[test]
    fn incumbent_prefers_accuracy_then_energy_then_order() {
        let u = [
            Precision::float32(),
            Precision::fixed(8, 8),
            Precision::binary(),
        ];
        let e = [100.0, 40.0, 10.0];
        let pick = |accs: &[Option<f32>]| pick_incumbent(&u, accs, &e);
        assert_eq!(pick(&[Some(90.0), Some(91.0), Some(80.0)]), u[1]);
        // Accuracy tie → lower energy wins.
        assert_eq!(pick(&[Some(91.0), Some(91.0), Some(80.0)]), u[1]);
        // Full tie → earlier sweep position.
        assert_eq!(pick(&[Some(91.0), Some(91.0), Some(91.0)]), u[2]);
        // Nothing converged → the robust fallback.
        assert_eq!(pick(&[None, None, None]), Precision::fixed(8, 8));
    }

    #[test]
    fn assembled_artifact_is_wellformed_and_pruned() {
        let setting = TuneSetting::new(ExperimentScale::Smoke, 1).unwrap();
        let entries = vec![
            (vec![Precision::float32(); 4], Some(91.0)),
            (vec![Precision::fixed(8, 8); 4], Some(90.5)),
            (vec![Precision::binary(); 4], Some(70.0)),
            // Dominated: float32 energy at worse accuracy.
            (vec![Precision::fixed(32, 32); 4], Some(60.0)),
            // NA rows produce no point at all.
            (vec![Precision::fixed(4, 4); 4], None),
        ];
        let r = assemble(ExperimentScale::Smoke, 1, &entries, &setting);
        assert_eq!(r.evaluated, 5);
        assert!(r.points.len() >= 4, "fixed8 also spawns a narrow-acc point");
        assert!(!r.frontier.is_empty());
        assert!(!r.frontier.iter().any(|p| p.label.contains("fixed32")));
        let energies: Vec<f64> = r.frontier.iter().map(|p| p.energy_uj).collect();
        assert!(
            energies.windows(2).all(|w| w[0] <= w[1]),
            "sorted by energy"
        );

        let json = r.render_json();
        assert!(json.contains("\"schema\": \"qnn-tune-pareto/v1\""));
        assert!(json.contains("\"benchmark\": \"lenet\""));
        assert!(json.contains("\"frontier\": ["));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        // Two identical assemblies serialize byte-identically.
        let again = assemble(ExperimentScale::Smoke, 1, &entries, &setting);
        assert_eq!(json, again.render_json());
    }

    #[test]
    fn hook_fires_once_per_new_cell() {
        let dir = std::env::temp_dir().join("qnn-core-tune-hook-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut seen = Vec::new();
        let (none, p) =
            tune_resumable_with_hook(ExperimentScale::Smoke, 23, &dir, Some(2), |n| seen.push(n))
                .unwrap();
        assert!(none.is_none());
        assert_eq!(seen, [1, 2]);
        assert_eq!(p.completed, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_resumable_tune_matches_plain_tune_bit_identically() {
        let dir = std::env::temp_dir().join("qnn-core-tune-resume-test");
        let _ = std::fs::remove_dir_all(&dir);

        // Interrupt after three cells: partial, upper-bound total.
        let (none, p1) = tune_resumable(ExperimentScale::Smoke, 11, &dir, Some(3)).unwrap();
        assert!(none.is_none());
        assert_eq!(p1.completed, 3);
        assert_eq!(p1.total, 27, "upper bound until the incumbent is known");
        assert!(!p1.is_complete());

        // Resume to completion ("the crash" is the dropped state above).
        let (resumed, p2) = tune_resumable(ExperimentScale::Smoke, 11, &dir, None).unwrap();
        assert!(p2.is_complete());
        assert!(p2.total >= 7 + 16 && p2.total <= 7 + 20);
        let resumed = resumed.unwrap();

        // Bit-identical to the uninterrupted parallel runner.
        let plain = tune(ExperimentScale::Smoke, 11).unwrap();
        assert_eq!(resumed, plain);
        assert_eq!(resumed.render_json(), plain.render_json());
        assert!(!resumed.frontier.is_empty());

        // A foreign ledger (different seed) is rejected, not mixed in.
        assert!(matches!(
            tune_resumable(ExperimentScale::Smoke, 12, &dir, None),
            Err(NnError::CheckpointMismatch { .. })
        ));

        // A tune ledger masquerading as a table4 ledger is a typed kind
        // mismatch, end to end.
        std::fs::copy(dir.join("tune.state.qnnf"), dir.join("table4.state.qnnf")).unwrap();
        assert!(matches!(
            super::super::table4_resumable(ExperimentScale::Smoke, 11, &dir, Some(0)),
            Err(NnError::SweepKindMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
