//! Figure 3 — area and power breakdowns by synthesis category.

use qnn_accel::AcceleratorDesign;
use qnn_hw::Category;
use qnn_quant::Precision;

use crate::report;

/// One stacked bar of Figure 3: a precision's per-category totals.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// The precision the bar describes.
    pub precision: Precision,
    /// `(category label, area mm², power mW)` in legend order.
    pub categories: Vec<(&'static str, f64, f64)>,
}

impl BreakdownRow {
    /// Total bar height (area).
    pub fn total_area_mm2(&self) -> f64 {
        self.categories.iter().map(|c| c.1).sum()
    }

    /// Total bar height (power).
    pub fn total_power_mw(&self) -> f64 {
        self.categories.iter().map(|c| c.2).sum()
    }

    /// Renders both stacked-bar datasets as markdown.
    pub fn render(rows: &[BreakdownRow]) -> String {
        let mut body = Vec::new();
        for r in rows {
            for (label, area, power) in &r.categories {
                body.push(vec![
                    r.precision.label(),
                    (*label).to_string(),
                    format!("{:.3}", area),
                    format!("{:.1}", power),
                ]);
            }
        }
        report::markdown_table(
            &["Precision (w,in)", "Category", "Area mm²", "Power mW"],
            &body,
        )
    }
}

/// Generates the Figure 3 dataset over the paper's seven precisions.
pub fn breakdown() -> Vec<BreakdownRow> {
    Precision::paper_sweep()
        .into_iter()
        .map(|p| {
            let design = AcceleratorDesign::new(p).synthesize();
            let map = design.breakdown();
            let categories = Category::ALL
                .iter()
                .map(|c| {
                    let b = map[c.label()];
                    (c.label(), b.area_mm2, b.power_mw)
                })
                .collect();
            BreakdownRow {
                precision: p,
                categories,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_match_design_totals() {
        for row in breakdown() {
            let m = AcceleratorDesign::new(row.precision).report();
            assert!((row.total_area_mm2() - m.area_mm2).abs() < 1e-9);
            assert!((row.total_power_mw() - m.power_mw).abs() < 1e-9);
        }
    }

    #[test]
    fn memory_is_the_tallest_segment_everywhere() {
        for row in breakdown() {
            let mem = row.categories.iter().find(|c| c.0 == "Memory").unwrap();
            for other in row.categories.iter().filter(|c| c.0 != "Memory") {
                assert!(mem.1 > other.1, "{}: area", row.precision.label());
                assert!(mem.2 > other.2, "{}: power", row.precision.label());
            }
        }
    }

    #[test]
    fn buffer_dominance_ranges() {
        // §V-B: buffers take 75–93 % of power and 76–96 % of area. Our
        // model's ranges (printed in EXPERIMENTS.md) must overlap squarely.
        for row in breakdown() {
            let mem = row.categories.iter().find(|c| c.0 == "Memory").unwrap();
            let fa = mem.1 / row.total_area_mm2();
            let fp = mem.2 / row.total_power_mw();
            assert!(
                (0.70..=0.97).contains(&fa),
                "{}: {fa}",
                row.precision.label()
            );
            assert!(
                (0.55..=0.95).contains(&fp),
                "{}: {fp}",
                row.precision.label()
            );
        }
    }
}
