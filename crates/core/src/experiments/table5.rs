//! Table V — CIFAR-class accuracy/energy for ALEX and the expanded
//! ALEX+ / ALEX++ networks, plus the Figure 4 point set.

use std::path::Path;

use qnn_accel::AcceleratorDesign;
use qnn_data::{standard_splits, DatasetKind};
use qnn_faults::StoreError;
use qnn_nn::arch::NetworkSpec;
use qnn_nn::{zoo, NnError};
use qnn_quant::Precision;

use super::cell::run_cell;
use super::resume::{CellRecord, SweepProgress, SweepState};
use super::{pretrain_fp, pretrain_resumable, qat_point, ExperimentScale};
use crate::pareto::DesignPoint;
use crate::report;
use qnn_tensor::par;

/// One generated Table V row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Network name (`alex`, `alex+`, `alex++`).
    pub network: String,
    /// The precision this row describes.
    pub precision: Precision,
    /// Measured test accuracy, percent (`None` = failed to converge).
    pub accuracy_pct: Option<f32>,
    /// Per-image energy on the full Table I/II architecture, µJ.
    pub energy_uj: f64,
    /// Energy saving vs. ALEX float32, percent (negative = costs more,
    /// the paper's "×more" rows).
    pub energy_saving_pct: f64,
}

/// The precisions Table V sweeps per network. The paper includes
/// fixed (32,32) only for the base network and drops fixed (4,4) (it
/// diverges on CIFAR for all three networks).
fn precisions_for(network: &str) -> Vec<Precision> {
    let mut v = vec![Precision::float32()];
    if network == "alex" {
        v.push(Precision::fixed(32, 32));
    }
    v.extend([
        Precision::fixed(16, 16),
        Precision::fixed(8, 8),
        Precision::power_of_two(),
        Precision::binary(),
    ]);
    v
}

/// Regenerates Table V over the three CIFAR-class networks.
///
/// Accuracy trains the (width-reduced below `Full` scale) ALEX variants
/// on TexturedObjects32; energy uses the full Table I/II workloads, all
/// referenced to ALEX float32 as in the paper.
///
/// # Errors
///
/// Propagates training and workload errors.
pub fn table5(scale: ExperimentScale, seed: u64) -> Result<Vec<Table5Row>, NnError> {
    qnn_trace::span!("table5");
    let (n_train, n_test) = scale.samples();
    let splits = standard_splits(DatasetKind::TexturedObjects32, n_train, n_test, seed);
    let networks: Vec<(&str, NetworkSpec, NetworkSpec)> = match scale {
        ExperimentScale::Full => vec![
            ("alex", zoo::alex(), zoo::alex()),
            ("alex+", zoo::alex_plus(), zoo::alex_plus()),
            ("alex++", zoo::alex_plus_plus(), zoo::alex_plus_plus()),
        ],
        _ => vec![
            ("alex", zoo::alex_small(), zoo::alex()),
            ("alex+", zoo::alex_plus_small(), zoo::alex_plus()),
            ("alex++", zoo::alex_plus_plus_small(), zoo::alex_plus_plus()),
        ],
    };
    // Energy reference: ALEX at float32.
    let alex_wl = zoo::alex().workload()?;
    let base_uj = AcceleratorDesign::new(Precision::float32())
        .energy_per_image(&alex_wl)
        .total_uj();
    // Phase 1 (FP pre-training) runs once per network, concurrently.
    let pre: Vec<_> = par::map(networks.len(), |ni| {
        pretrain_fp(&networks[ni].1, &splits, scale, seed)
    })
    .into_iter()
    .collect::<Result<_, _>>()?;

    // Phase 2: flatten the (network, precision) grid so every point runs
    // concurrently on the worker pool — the points are independent given
    // each network's pre-trained weights.
    let grid: Vec<(usize, Precision)> = networks
        .iter()
        .enumerate()
        .flat_map(|(ni, (name, _, _))| precisions_for(name).into_iter().map(move |p| (ni, p)))
        .collect();
    let points = par::map(grid.len(), |i| {
        let (ni, p) = grid[i];
        let (trainer, fp_state) = &pre[ni];
        qat_point(&networks[ni].1, &splits, trainer, fp_state, p, seed)
    });

    let mut rows = Vec::new();
    for ((ni, _), pt) in grid.iter().zip(points) {
        let pt = pt?;
        let (name, _, energy_spec) = &networks[*ni];
        // The paper's expanded-network table reports only quantized
        // rows for ALEX+/ALEX++ (their float rows appear in Figure 4);
        // we keep all rows and let callers filter.
        let wl = energy_spec.workload()?;
        let e = AcceleratorDesign::new(pt.precision)
            .energy_per_image(&wl)
            .total_uj();
        rows.push(Table5Row {
            network: name.to_string(),
            precision: pt.precision,
            accuracy_pct: pt.accuracy_pct,
            energy_uj: e,
            energy_saving_pct: (1.0 - e / base_uj) * 100.0,
        });
    }
    Ok(rows)
}

/// Crash-safe Table V: the (network × precision) grid with the same
/// per-cell persistence, isolation and resume semantics as
/// [`table4_resumable`](super::table4_resumable) — completed cells and
/// per-network pre-trainings live in `QNNF` containers under `dir`, and
/// a resumed sweep reproduces an uninterrupted one bit-identically.
///
/// # Errors
///
/// Propagates dataset/workload errors and typed store errors.
pub fn table5_resumable(
    scale: ExperimentScale,
    seed: u64,
    dir: &Path,
    max_cells: Option<usize>,
) -> Result<(Option<Vec<Table5Row>>, SweepProgress), NnError> {
    qnn_trace::span!("table5:resumable");
    std::fs::create_dir_all(dir).map_err(|e| StoreError::io("mkdir", dir, &e))?;
    let state_path = dir.join("table5.state.qnnf");
    let label = format!("table5/{scale:?}");
    let mut state = SweepState::load_or_new(&state_path, &label, seed)?;

    let (n_train, n_test) = scale.samples();
    let splits = standard_splits(DatasetKind::TexturedObjects32, n_train, n_test, seed);
    let networks: Vec<(&str, NetworkSpec, NetworkSpec)> = match scale {
        ExperimentScale::Full => vec![
            ("alex", zoo::alex(), zoo::alex()),
            ("alex+", zoo::alex_plus(), zoo::alex_plus()),
            ("alex++", zoo::alex_plus_plus(), zoo::alex_plus_plus()),
        ],
        _ => vec![
            ("alex", zoo::alex_small(), zoo::alex()),
            ("alex+", zoo::alex_plus_small(), zoo::alex_plus()),
            ("alex++", zoo::alex_plus_plus_small(), zoo::alex_plus_plus()),
        ],
    };

    let mut pre: Vec<Option<(qnn_nn::Trainer, Vec<qnn_tensor::Tensor>)>> =
        vec![None; networks.len()];
    let mut budget = max_cells.unwrap_or(usize::MAX);
    for (ni, (name, train_spec, _)) in networks.iter().enumerate() {
        for p in precisions_for(name) {
            let key = format!("{name}/{}", p.label());
            if state.get(&key).is_some() || budget == 0 {
                continue;
            }
            budget -= 1;
            if pre[ni].is_none() {
                // '+' is filesystem-safe, so network names key snapshots.
                let snapshot = dir.join(format!("table5.pre-{name}.qnnf"));
                pre[ni] = Some(pretrain_resumable(
                    train_spec, &splits, scale, seed, &snapshot,
                )?);
            }
            let (trainer, fp_state) = pre[ni].as_ref().expect("just populated");
            let outcome = run_cell(
                &key,
                seed,
                |acc: &Option<f32>| acc.is_none(),
                |cell_seed| {
                    qat_point(train_spec, &splits, trainer, fp_state, p, cell_seed)
                        .map(|pt| pt.accuracy_pct)
                },
            );
            state.record(&state_path, &key, CellRecord::from_outcome(&outcome))?;
        }
    }

    let grid: Vec<(usize, String, Precision)> = networks
        .iter()
        .enumerate()
        .flat_map(|(ni, (name, _, _))| {
            precisions_for(name)
                .into_iter()
                .map(move |p| (ni, format!("{name}/{}", p.label()), p))
        })
        .collect();
    let completed = grid
        .iter()
        .filter(|(_, key, _)| state.get(key).is_some())
        .count();
    let progress = SweepProgress {
        completed,
        total: grid.len(),
    };
    if !progress.is_complete() {
        return Ok((None, progress));
    }

    let alex_wl = zoo::alex().workload()?;
    let base_uj = AcceleratorDesign::new(Precision::float32())
        .energy_per_image(&alex_wl)
        .total_uj();
    let mut rows = Vec::with_capacity(grid.len());
    for (ni, key, p) in &grid {
        let (name, _, energy_spec) = &networks[*ni];
        let wl = energy_spec.workload()?;
        let e = AcceleratorDesign::new(*p).energy_per_image(&wl).total_uj();
        rows.push(Table5Row {
            network: name.to_string(),
            precision: *p,
            accuracy_pct: state.get(key).and_then(CellRecord::accuracy_pct),
            energy_uj: e,
            energy_saving_pct: (1.0 - e / base_uj) * 100.0,
        });
    }
    Ok((Some(rows), progress))
}

impl Table5Row {
    /// Renders the table as markdown, using the paper's `n.n× More`
    /// notation for rows costlier than the baseline.
    pub fn render(rows: &[Table5Row]) -> String {
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let saving = if r.energy_saving_pct < 0.0 {
                    format!("{:.1}x More", 1.0 - r.energy_saving_pct / 100.0)
                } else {
                    format!("{:.2}", r.energy_saving_pct)
                };
                vec![
                    r.network.clone(),
                    r.precision.label(),
                    report::pct_or_na(r.accuracy_pct),
                    format!("{:.2}", r.energy_uj),
                    saving,
                ]
            })
            .collect();
        report::markdown_table(
            &[
                "Network",
                "Precision (w,in)",
                "Acc. % (ours)",
                "Energy µJ",
                "Energy sav. %",
            ],
            &body,
        )
    }

    /// Converts generated rows into Figure 4 design points (rows that
    /// failed to converge are skipped, as in the paper's figure).
    pub fn to_design_points(rows: &[Table5Row]) -> Vec<DesignPoint> {
        rows.iter()
            .filter_map(|r| {
                r.accuracy_pct.map(|a| {
                    let suffix = match r.network.as_str() {
                        "alex+" => "+",
                        "alex++" => "++",
                        _ => "",
                    };
                    DesignPoint::new(format!("{}{}", r.precision.label(), suffix), a, r.energy_uj)
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table5_shapes() {
        let rows = table5(ExperimentScale::Smoke, 5).unwrap();
        // 6 rows for alex, 5 each for alex+ / alex++.
        assert_eq!(rows.len(), 6 + 5 + 5);
        // Expanded networks at low precision still save energy vs FP32
        // ALEX? Not all — fixed16+ costs more (paper: "1.5× More").
        let f16_plus = rows
            .iter()
            .find(|r| r.network == "alex+" && r.precision == Precision::fixed(16, 16))
            .unwrap();
        assert!(
            f16_plus.energy_saving_pct < 0.0,
            "{}",
            f16_plus.energy_saving_pct
        );
        // Binary++ saves vs FP32 ALEX (paper: 72.89 %).
        let binpp = rows
            .iter()
            .find(|r| r.network == "alex++" && r.precision == Precision::binary())
            .unwrap();
        assert!(
            binpp.energy_saving_pct > 40.0,
            "{}",
            binpp.energy_saving_pct
        );
    }

    #[test]
    fn design_points_skip_na() {
        let rows = vec![
            Table5Row {
                network: "alex".into(),
                precision: Precision::float32(),
                accuracy_pct: Some(80.0),
                energy_uj: 300.0,
                energy_saving_pct: 0.0,
            },
            Table5Row {
                network: "alex".into(),
                precision: Precision::fixed(4, 4),
                accuracy_pct: None,
                energy_uj: 10.0,
                energy_saving_pct: 95.0,
            },
        ];
        let pts = Table5Row::to_design_points(&rows);
        assert_eq!(pts.len(), 1);
    }

    #[test]
    fn more_notation_in_render() {
        let rows = vec![Table5Row {
            network: "alex+".into(),
            precision: Precision::fixed(16, 16),
            accuracy_pct: Some(81.0),
            energy_uj: 500.0,
            energy_saving_pct: -50.0,
        }];
        let md = Table5Row::render(&rows);
        assert!(md.contains("1.5x More"));
    }
}
