//! Accuracy-vs-fault-rate curves — the fault-injection experiment.
//!
//! For every Table III precision, a network is QAT-trained once (the
//! standard two-phase methodology), snapshotted, and then evaluated
//! under increasing per-bit fault rates: weight faults flip stored bits
//! of the SB (synaptic) buffer image through each layer's bit codec,
//! activation faults strike every forward tensor at its quantization
//! point (the Bin buffer model). The network is restored bit-identically
//! from the snapshot between rates, so each point on the curve measures
//! *only* its own fault rate.
//!
//! Injection draws from [`FaultInjector`] streams derived from the sweep
//! seed, serially per tensor — the curve is reproducible at any
//! `QNN_THREADS`.

use qnn_data::{standard_splits, DatasetKind};
use qnn_faults::FaultInjector;
use qnn_nn::{zoo, Network, NnError, QatConfig, TrainOutcome, Trainer, TrainerConfig};
use qnn_quant::Precision;
use qnn_tensor::rng::derive_seed;

use super::{pretrain_fp, ExperimentScale};
use crate::report;

/// One point of the fault curve: a precision evaluated at one rate.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCurveRow {
    /// The precision whose trained network was corrupted.
    pub precision: Precision,
    /// Per-bit fault probability applied to weights and activations.
    pub rate: f64,
    /// Test accuracy under faults, percent (`None` = the precision
    /// itself failed to converge during training, the paper's NA — no
    /// fault measurement is meaningful there).
    pub accuracy_pct: Option<f32>,
    /// Weight bits actually flipped for this point.
    pub weight_flips: u64,
}

impl FaultCurveRow {
    /// Renders the curve as markdown, one row per (precision, rate).
    pub fn render(rows: &[FaultCurveRow]) -> String {
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.precision.label(),
                    format!("{:.0e}", r.rate),
                    report::pct_or_na(r.accuracy_pct),
                    r.weight_flips.to_string(),
                ]
            })
            .collect();
        report::markdown_table(
            &["Precision (w,in)", "Fault rate", "Acc. %", "Weight flips"],
            &body,
        )
    }
}

/// The default rate ladder: a clean reference point plus four decades.
pub fn standard_fault_rates() -> Vec<f64> {
    vec![0.0, 1e-5, 1e-4, 1e-3, 1e-2]
}

fn injector(rate: f64, seed: u64) -> Result<FaultInjector, NnError> {
    FaultInjector::new(rate, seed).map_err(|e| NnError::InvalidConfig {
        reason: format!("fault curve: {e}"),
    })
}

/// Generates the accuracy-vs-fault-rate curve over the paper's seven
/// precisions on the MNIST-class benchmark.
///
/// Each precision trains once; each rate then corrupts a fresh copy of
/// the trained weights (and installs an activation injector for the
/// evaluation pass) before the network is restored from its snapshot.
/// Rows come out in `(precision, rate)` grid order. The whole curve is
/// deterministic in `seed` and independent of the worker thread count.
///
/// # Errors
///
/// Rejects invalid fault rates up front and propagates training and
/// evaluation errors.
pub fn fault_curve(
    scale: ExperimentScale,
    seed: u64,
    rates: &[f64],
) -> Result<Vec<FaultCurveRow>, NnError> {
    qnn_trace::span!("faultcurve");
    // Validate the whole ladder before spending any training time.
    for &r in rates {
        if r > 0.0 {
            injector(r, 0)?;
        }
    }
    let (n_train, n_test) = scale.samples();
    let splits = standard_splits(DatasetKind::Glyphs28, n_train, n_test, seed);
    let spec = match scale {
        ExperimentScale::Full => zoo::lenet(),
        _ => zoo::lenet_small(),
    };
    let (trainer, fp_state) = pretrain_fp(&spec, &splits, scale, seed)?;

    let mut rows = Vec::with_capacity(Precision::paper_sweep().len() * rates.len());
    for (pi, p) in Precision::paper_sweep().into_iter().enumerate() {
        qnn_trace::span!("faultcurve:{}", p.label());
        let seed_p = derive_seed(seed, pi as u64);
        let mut net = Network::build(&spec, seed)?;
        net.load_state(&fp_state)?;
        let outcome = if !p.is_quantized() {
            let cfg = trainer.config();
            let fine_tune = Trainer::new(TrainerConfig {
                lr: cfg.lr * cfg.qat_lr_factor,
                ..*cfg
            })?;
            fine_tune
                .train(&mut net, splits.train.images(), splits.train.labels())?
                .outcome
        } else {
            trainer
                .train_qat(
                    &mut net,
                    &QatConfig::new(p),
                    splits.train.images(),
                    splits.train.labels(),
                    64,
                )?
                .outcome
        };
        if outcome != TrainOutcome::Converged {
            // The paper's NA: there is no trained network to corrupt.
            rows.extend(rates.iter().map(|&rate| FaultCurveRow {
                precision: p,
                rate,
                accuracy_pct: None,
                weight_flips: 0,
            }));
            continue;
        }
        let snapshot = net.state_dict();
        for (ri, &rate) in rates.iter().enumerate() {
            let mut weight_flips = 0;
            if rate > 0.0 {
                // Streams 2k / 2k+1 of this precision's seed: weights,
                // then activations.
                let mut w_inj = injector(rate, derive_seed(seed_p, 2 * ri as u64))?;
                weight_flips = net.inject_weight_faults(&mut w_inj);
                net.set_activation_faults(Some(injector(
                    rate,
                    derive_seed(seed_p, 2 * ri as u64 + 1),
                )?));
            }
            let acc = trainer.evaluate(&mut net, splits.test.images(), splits.test.labels())?;
            rows.push(FaultCurveRow {
                precision: p,
                rate,
                accuracy_pct: Some(acc * 100.0),
                weight_flips,
            });
            net.set_activation_faults(None);
            net.load_state(&snapshot)?;
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_rates_start_clean_and_ascend() {
        let rates = standard_fault_rates();
        assert_eq!(rates[0], 0.0);
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(rates.len(), 5);
    }

    #[test]
    fn bad_rates_are_rejected_before_training() {
        assert!(matches!(
            fault_curve(ExperimentScale::Smoke, 3, &[0.0, 1.5]),
            Err(NnError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn curve_is_deterministic_and_rate_zero_is_clean() {
        let rates = [0.0, 1e-2];
        let a = fault_curve(ExperimentScale::Smoke, 9, &rates).unwrap();
        let b = fault_curve(ExperimentScale::Smoke, 9, &rates).unwrap();
        assert_eq!(a, b, "fault curve must be bit-identical run to run");
        assert_eq!(a.len(), Precision::paper_sweep().len() * rates.len());

        // Rate 0 never flips a bit; converged rows report an accuracy.
        for row in a.iter().filter(|r| r.rate == 0.0) {
            assert_eq!(row.weight_flips, 0, "{}", row.precision.label());
        }
        // At 1e-2 the injector must actually strike converged networks.
        let struck: u64 = a
            .iter()
            .filter(|r| r.rate > 0.0 && r.accuracy_pct.is_some())
            .map(|r| r.weight_flips)
            .sum();
        assert!(struck > 0, "no weight faults landed at 1e-2");
        // The easy benchmark converges at float precision even at smoke
        // scale, and heavy corruption should not *improve* it.
        let clean = a
            .iter()
            .find(|r| r.precision == Precision::float32() && r.rate == 0.0)
            .unwrap();
        let hit = a
            .iter()
            .find(|r| r.precision == Precision::float32() && r.rate == 1e-2)
            .unwrap();
        assert!(clean.accuracy_pct.unwrap() > 30.0);
        assert!(hit.accuracy_pct.unwrap() <= clean.accuracy_pct.unwrap() + 1.0);
    }
}
