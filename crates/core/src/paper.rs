//! The paper's published accuracy numbers (Tables IV and V), kept so
//! generated reports can print paper vs. measured side by side.
//!
//! Hardware-side reference data (Table III, published energies) lives in
//! [`qnn_accel::paper`]; this module holds the accuracy columns, which our
//! synthetic-dataset reproduction matches in *shape* (ordering,
//! convergence failures), not absolute value.

use qnn_quant::Precision;

/// One accuracy cell: `None` is the paper's NA (failed to converge).
pub type Acc = Option<f32>;

/// Table IV accuracy columns: `(precision, MNIST %, SVHN %)`.
pub fn table4_accuracies() -> Vec<(Precision, Acc, Acc)> {
    vec![
        (Precision::float32(), Some(99.20), Some(86.77)),
        (Precision::fixed(32, 32), Some(99.22), Some(86.78)),
        (Precision::fixed(16, 16), Some(99.21), Some(86.77)),
        (Precision::fixed(8, 8), Some(99.22), Some(84.03)),
        (Precision::fixed(4, 4), Some(95.76), None),
        (Precision::power_of_two(), Some(99.14), Some(84.85)),
        (Precision::binary(), Some(99.40), Some(19.57)),
    ]
}

/// Table V rows: `(network, precision, accuracy %, energy µJ,
/// energy saving % vs ALEX float32 — negative values mean "× more")`.
///
/// The paper omits fixed-point (32,32) for the expanded networks and drops
/// the diverging fixed-point (4,4) rows entirely; this list mirrors that.
pub fn table5() -> Vec<(&'static str, Precision, f32, f64)> {
    vec![
        ("alex", Precision::float32(), 81.22, 335.68),
        ("alex", Precision::fixed(32, 32), 79.71, 293.90),
        ("alex", Precision::fixed(16, 16), 79.77, 136.61),
        ("alex+", Precision::fixed(16, 16), 81.86, 491.32),
        ("alex++", Precision::fixed(16, 16), 82.26, 628.17),
        ("alex", Precision::fixed(8, 8), 77.99, 49.22),
        ("alex+", Precision::fixed(8, 8), 78.71, 177.02),
        ("alex++", Precision::fixed(8, 8), 75.03, 226.32),
        ("alex", Precision::power_of_two(), 77.03, 46.77),
        ("alex+", Precision::power_of_two(), 77.34, 168.21),
        ("alex++", Precision::power_of_two(), 81.26, 215.05),
        ("alex", Precision::binary(), 74.84, 19.79),
        ("alex+", Precision::binary(), 77.91, 71.18),
        ("alex++", Precision::binary(), 80.52, 91.00),
    ]
}

/// The qualitative claims the reproduction must reproduce (asserted by
/// integration tests):
///
/// 1. MNIST-difficulty: every precision except fixed (4,4) ≈ FP32.
/// 2. SVHN-difficulty: fixed (4,4) diverges; binary collapses to ~chance.
/// 3. CIFAR-difficulty: expansion (ALEX+ / ALEX++) recovers low-precision
///    accuracy while keeping energy below the FP32 baseline.
/// 4. Buffers dominate power (75–93 %) and area (76–96 %).
/// 5. Parameter memory shrinks 2–32× across the sweep.
pub const QUALITATIVE_CLAIMS: usize = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_seven_rows_with_two_nas() {
        let t = table4_accuracies();
        assert_eq!(t.len(), 7);
        let nas = t
            .iter()
            .filter(|(_, m, s)| m.is_none() || s.is_none())
            .count();
        assert_eq!(nas, 1); // SVHN (4,4) only
    }

    #[test]
    fn table5_has_fourteen_rows() {
        assert_eq!(table5().len(), 14);
    }

    #[test]
    fn table5_expansion_recovers_accuracy() {
        // The paper's headline: Powers-of-Two++ beats FP32 ALEX in accuracy
        // at 35.93 % less energy.
        let t = table5();
        let fp = t
            .iter()
            .find(|r| r.0 == "alex" && r.1 == Precision::float32())
            .unwrap();
        let p2pp = t
            .iter()
            .find(|r| r.0 == "alex++" && r.1 == Precision::power_of_two())
            .unwrap();
        assert!(p2pp.2 > fp.2);
        assert!(p2pp.3 < fp.3);
    }
}
