//! Accuracy-vs-energy design points and Pareto frontier (Figure 4).

/// One point of Figure 4: a (network, precision) combination.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Display label, e.g. `"Powers of Two++ (6,16)"`.
    pub label: String,
    /// Classification accuracy, percent.
    pub accuracy_pct: f32,
    /// Per-image energy, µJ.
    pub energy_uj: f64,
}

impl DesignPoint {
    /// Creates a point.
    pub fn new(label: impl Into<String>, accuracy_pct: f32, energy_uj: f64) -> Self {
        DesignPoint {
            label: label.into(),
            accuracy_pct,
            energy_uj,
        }
    }

    /// Whether `self` dominates `other` (no worse on both axes, strictly
    /// better on at least one; lower energy and higher accuracy are
    /// better).
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let no_worse = self.accuracy_pct >= other.accuracy_pct && self.energy_uj <= other.energy_uj;
        let better = self.accuracy_pct > other.accuracy_pct || self.energy_uj < other.energy_uj;
        no_worse && better
    }
}

/// Extracts the Pareto-optimal subset, sorted by increasing energy.
///
/// Points dominated by any other point are removed; ties (identical on
/// both axes) keep their first occurrence.
pub fn pareto_frontier(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut frontier: Vec<DesignPoint> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let dominated = points
            .iter()
            .enumerate()
            .any(|(j, q)| (j != i) && q.dominates(p))
            || frontier.iter().any(|q| q == p);
        if !dominated {
            frontier.push(p.clone());
        }
    }
    frontier.sort_by(|a, b| {
        a.energy_uj
            .partial_cmp(&b.energy_uj)
            .expect("finite energies")
    });
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(l: &str, a: f32, e: f64) -> DesignPoint {
        DesignPoint::new(l, a, e)
    }

    #[test]
    fn domination_rules() {
        let a = p("a", 80.0, 100.0);
        let b = p("b", 81.0, 90.0); // better on both
        let c = p("c", 80.0, 100.0); // equal
        let d = p("d", 85.0, 200.0); // trade-off
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
        assert!(!a.dominates(&c) && !c.dominates(&a));
        assert!(!b.dominates(&d) && !d.dominates(&b));
    }

    #[test]
    fn frontier_removes_dominated_points() {
        let pts = vec![
            p("fp32", 81.22, 335.68),
            p("fix16", 79.77, 136.61),
            p("fix8", 77.99, 49.22),
            p("worse", 70.0, 400.0), // dominated by fp32
            p("pow2++", 81.26, 215.05),
        ];
        let f = pareto_frontier(&pts);
        let labels: Vec<&str> = f.iter().map(|d| d.label.as_str()).collect();
        assert!(!labels.contains(&"worse"));
        // fp32 is dominated by pow2++ (higher acc, lower energy).
        assert!(!labels.contains(&"fp32"));
        assert_eq!(labels, ["fix8", "fix16", "pow2++"]);
    }

    #[test]
    fn frontier_sorted_by_energy() {
        let pts = vec![
            p("a", 70.0, 300.0),
            p("b", 60.0, 100.0),
            p("c", 80.0, 500.0),
        ];
        let f = pareto_frontier(&pts);
        let energies: Vec<f64> = f.iter().map(|d| d.energy_uj).collect();
        assert_eq!(energies, vec![100.0, 300.0, 500.0]);
    }

    #[test]
    fn duplicate_points_kept_once() {
        let pts = vec![p("x", 80.0, 100.0), p("x", 80.0, 100.0)];
        assert_eq!(pareto_frontier(&pts).len(), 1);
    }

    #[test]
    fn empty_input_empty_frontier() {
        assert!(pareto_frontier(&[]).is_empty());
    }
}
