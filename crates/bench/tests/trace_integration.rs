//! End-to-end checks of the tracing layer and benchmark artifacts:
//! the committed baseline round-trips through the JSON parser, traces
//! are deterministic across worker counts, and tracing a Table IV run
//! changes neither its results nor its accounting.

use std::sync::Mutex;

use qnn_bench::json::Json;
use qnn_bench::tracereport;
use qnn_core::experiments::{table4, ExperimentScale};
use qnn_quant::{quantize_inplace_par, Fixed};
use qnn_tensor::conv::{conv2d, Geometry};
use qnn_tensor::{par, rng, Shape, Tensor};

/// The global trace collector is process-wide state: tests that
/// start/stop it must not interleave.
static LOCK: Mutex<()> = Mutex::new(());

fn random(shape: Shape, seed: u64) -> Tensor {
    let mut r = rng::seeded(seed);
    let n = shape.len();
    Tensor::from_vec(shape, (0..n).map(|_| r.gen_range(-1.0f32..1.0)).collect()).unwrap()
}

#[test]
fn committed_baseline_parses_field_for_field() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let text = std::fs::read_to_string(path).expect("committed BENCH_kernels.json");
    let parsed = Json::parse(&text).expect("baseline is valid JSON");
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some("qnn-bench/kernels/v1")
    );
    let benches = parsed
        .get("benchmarks")
        .and_then(Json::as_arr)
        .expect("benchmarks array");
    assert!(!benches.is_empty());
    for b in benches {
        let name = b.get("name").and_then(Json::as_str).expect("entry name");
        // Every entry is either a timing (with calibration metadata) or
        // a derived ratio — never both, never neither.
        match (b.get("ns_per_op"), b.get("ratio")) {
            (Some(ns), None) => {
                assert!(ns.as_f64().unwrap() > 0.0, "{name}");
                assert!(
                    b.get("iters").and_then(Json::as_f64).unwrap() >= 1.0,
                    "{name}"
                );
                assert!(
                    b.get("reps").and_then(Json::as_f64).unwrap() >= 1.0,
                    "{name}"
                );
            }
            (None, Some(r)) => assert!(r.as_f64().unwrap() > 0.0, "{name}"),
            other => panic!("{name}: unexpected field combination {other:?}"),
        }
    }
    // Field-for-field round trip: render the parsed value and parse it
    // back; nothing may be lost or reordered.
    assert_eq!(Json::parse(&parsed.render()).unwrap(), parsed);
}

fn traced_workload() -> qnn_trace::Trace {
    qnn_trace::start();
    {
        qnn_trace::span!("workload");
        let a = random(Shape::d2(48, 64), 1);
        let b = random(Shape::d2(64, 32), 2);
        std::hint::black_box(a.matmul(&b).unwrap());
        let x = random(Shape::d4(2, 3, 12, 12), 3);
        let w = random(Shape::d4(4, 3, 3, 3), 4);
        let bias = Tensor::zeros(Shape::d1(4));
        std::hint::black_box(conv2d(&x, &w, &bias, Geometry::square(3, 1, 0)).unwrap());
        let q = Fixed::new(8, 4).unwrap();
        let mut big = random(Shape::d1(1 << 14), 5);
        quantize_inplace_par(&q, &mut big);
        std::hint::black_box(&big);
    }
    qnn_trace::stop()
}

#[test]
fn trace_is_identical_at_one_and_four_threads() {
    let _guard = LOCK.lock().unwrap();
    par::set_threads(Some(1));
    let t1 = traced_workload();
    par::set_threads(Some(4));
    let t4 = traced_workload();
    par::set_threads(None);
    // Same span event sequence, same counter totals, same histogram
    // shapes — the worker count must be unobservable in the trace.
    assert_eq!(t1.signature(), t4.signature());
    assert_eq!(t1.counters, t4.counters);
    assert_eq!(
        t1.hists.keys().collect::<Vec<_>>(),
        t4.hists.keys().collect::<Vec<_>>()
    );
    assert!(t1.counters["tensor.gemm.calls"] >= 1);
    assert!(t1.counters["tensor.conv.fwd.calls"] >= 1);
    assert!(t1.counters.contains_key("tensor.conv.fwd.macs"));
    assert!(t1.hists.keys().any(|k| k.starts_with("quant.abs_err/")));
}

#[test]
fn traced_table4_is_bit_identical_with_consistent_accounting() {
    let _guard = LOCK.lock().unwrap();
    // Single worker: spans nest serially, so child durations must sum
    // to no more than the experiment span.
    par::set_threads(Some(1));
    let plain = table4(ExperimentScale::Smoke, 11).unwrap();
    qnn_trace::start();
    let traced = table4(ExperimentScale::Smoke, 11).unwrap();
    let trace = qnn_trace::stop();
    par::set_threads(None);

    // Tracing must not perturb the computation at all.
    assert_eq!(plain, traced);

    let total = trace.path_total_ns("table4").expect("table4 span recorded");
    let rows = trace.summary_rows();
    let direct_child_sum: u64 = rows
        .iter()
        .filter(|r| r.path.starts_with("table4/") && !r.path["table4/".len()..].contains('/'))
        .map(|r| r.total_ns)
        .sum();
    assert!(
        direct_child_sum <= total,
        "children {direct_child_sum} ns exceed experiment span {total} ns"
    );
    assert!(
        direct_child_sum > 0,
        "no nested spans recorded under table4"
    );
    // The expected structure is present: pre-training, QAT points, and
    // per-layer forward/backward spans below them.
    assert!(rows.iter().any(|r| r.path.contains("pretrain:")));
    assert!(rows.iter().any(|r| r.path.contains("qat:")));
    assert!(rows.iter().any(|r| r.path.contains("fwd:")));
    assert!(rows.iter().any(|r| r.path.contains("bwd:")));
    assert!(trace.counters["tensor.gemm.calls"] > 0);
    assert!(trace.counters["accel.cycles.compute"] > 0);
    assert!(trace.gauges.contains_key("accel.energy.total_uj"));

    // The JSONL writer and the offline reader agree on the schema.
    let jsonl = trace.to_jsonl();
    let summary = tracereport::summarize(&jsonl).expect("summarize own trace");
    assert!(summary.contains("table4"));
    assert!(summary.contains("tensor.gemm.calls"));
}
