//! Figure 3 — area and power breakdown by synthesis category.
//!
//! Prints the stacked-bar dataset (Memory / Registers / Combinational /
//! Buf-Inv per precision) plus the buffer-dominance fractions, then
//! benchmarks the breakdown computation.

use criterion::{criterion_group, criterion_main, Criterion};
use qnn_accel::AcceleratorDesign;
use qnn_core::experiments::{breakdown, BreakdownRow};
use qnn_quant::Precision;
use std::hint::black_box;

fn print_figure() {
    println!("\n=== Figure 3 — area & power breakdown by category ===\n");
    let bars = breakdown();
    println!("{}", BreakdownRow::render(&bars));
    println!("Buffer dominance (paper: 75-93% power, 76-96% area):");
    for p in Precision::paper_sweep() {
        let d = AcceleratorDesign::new(p);
        println!(
            "  {:26} {:5.1}% power, {:5.1}% area",
            p.label(),
            d.buffer_power_fraction() * 100.0,
            d.buffer_area_fraction() * 100.0
        );
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    c.bench_function("fig3/breakdown_all_precisions", |b| {
        b.iter(|| black_box(breakdown()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
