//! Table III — design metrics of the evaluated precisions.
//!
//! Prints the regenerated table (model vs. paper) once, then benchmarks
//! the synthesis-estimation kernel that produces each row.

use criterion::{criterion_group, criterion_main, Criterion};
use qnn_accel::AcceleratorDesign;
use qnn_core::experiments::{design_metrics, DesignRow};
use qnn_quant::Precision;
use std::hint::black_box;

fn print_table() {
    println!("\n=== Table III — design metrics per precision (model vs paper) ===\n");
    println!("{}", DesignRow::render(&design_metrics()));
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("table3");
    for p in [
        Precision::float32(),
        Precision::fixed(8, 8),
        Precision::binary(),
    ] {
        g.bench_function(format!("synthesize/{}", p.label()), |b| {
            b.iter(|| black_box(AcceleratorDesign::new(black_box(p)).synthesize().power_mw()))
        });
    }
    g.bench_function("full_table", |b| b.iter(|| black_box(design_metrics())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
