//! Figure 4 — the accuracy-vs-energy Pareto frontier on the CIFAR-class
//! benchmark.
//!
//! Prints two frontiers: one over the paper's own published Table V points
//! (exact reproduction of the figure's geometry) and one over points
//! regenerated at smoke scale, then benchmarks the frontier extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use qnn_core::experiments::{table5, ExperimentScale, Table5Row};
use qnn_core::pareto::{pareto_frontier, DesignPoint};
use std::hint::black_box;

fn published_points() -> Vec<DesignPoint> {
    qnn_core::paper::table5()
        .into_iter()
        .map(|(net, p, acc, e)| {
            let suffix = match net {
                "alex+" => "+",
                "alex++" => "++",
                _ => "",
            };
            DesignPoint::new(format!("{}{}", p.label(), suffix), acc, e)
        })
        .collect()
}

fn print_figure() {
    println!("\n=== Figure 4 — Pareto frontier over the paper's published points ===\n");
    let points = published_points();
    let frontier = pareto_frontier(&points);
    for p in &points {
        let on = frontier.iter().any(|f| f == p);
        println!(
            "{} {:28} {:9.2} uJ  {:5.2}%",
            if on { "*" } else { " " },
            p.label,
            p.energy_uj,
            p.accuracy_pct
        );
    }
    println!("\n=== Figure 4 — regenerated at smoke scale ===\n");
    match table5(ExperimentScale::Smoke, 42) {
        Ok(rows) => {
            let pts = Table5Row::to_design_points(&rows);
            let front = pareto_frontier(&pts);
            for p in &front {
                println!(
                    "* {:32} {:9.2} uJ  {:5.1}%",
                    p.label, p.energy_uj, p.accuracy_pct
                );
            }
        }
        Err(e) => println!("regeneration failed: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    print_figure();
    let points = published_points();
    c.bench_function("fig4/pareto_frontier_published_points", |b| {
        b.iter(|| black_box(pareto_frontier(black_box(&points))))
    });
    // Scaling behaviour on larger synthetic point clouds.
    let big: Vec<DesignPoint> = (0..1000)
        .map(|i| {
            let x = i as f32;
            DesignPoint::new(
                format!("p{i}"),
                50.0 + (x * 0.37).sin() * 25.0,
                (100.0 + x * 3.0) as f64,
            )
        })
        .collect();
    c.bench_function("fig4/pareto_frontier_1000_points", |b| {
        b.iter(|| black_box(pareto_frontier(black_box(&big))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
