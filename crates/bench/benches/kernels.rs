//! Microbenchmarks of the computational substrate: matmul, im2col
//! convolution (forward and backward), pooling, and a full LeNet-small
//! forward pass — the kernels every experiment above spends its time in.

use criterion::{criterion_group, criterion_main, Criterion};
use qnn_nn::{zoo, Mode, Network};
use qnn_tensor::conv::{conv2d, conv2d_backward, Geometry};
use qnn_tensor::pool::max_pool2d;
use qnn_tensor::{rng, Shape, Tensor};
use rand::Rng;
use std::hint::black_box;

fn random(shape: Shape, seed: u64) -> Tensor {
    let mut r = rng::seeded(seed);
    let n = shape.len();
    Tensor::from_vec(shape, (0..n).map(|_| r.gen_range(-1.0..1.0)).collect()).unwrap()
}

fn bench(c: &mut Criterion) {
    // Matmul at the FC-layer sizes of LeNet.
    let a = random(Shape::d2(64, 800), 1);
    let b = random(Shape::d2(800, 500), 2);
    c.bench_function("kernels/matmul_64x800x500", |bch| {
        bch.iter(|| black_box(a.matmul(black_box(&b)).unwrap()))
    });

    // Convolution at LeNet conv2 size: 50×(20,5,5) over (20,12,12).
    let x = random(Shape::d4(4, 20, 12, 12), 3);
    let w = random(Shape::d4(50, 20, 5, 5), 4);
    let bias = Tensor::zeros(Shape::d1(50));
    let geom = Geometry::square(5, 1, 0);
    c.bench_function("kernels/conv2d_lenet_conv2_batch4", |bch| {
        bch.iter(|| black_box(conv2d(black_box(&x), &w, &bias, geom).unwrap()))
    });
    let y = conv2d(&x, &w, &bias, geom).unwrap();
    let gout = Tensor::ones(y.shape().clone());
    c.bench_function("kernels/conv2d_backward_lenet_conv2_batch4", |bch| {
        bch.iter(|| black_box(conv2d_backward(black_box(&x), &w, &gout, geom).unwrap()))
    });

    // Pooling over a large feature map.
    let p = random(Shape::d4(4, 32, 32, 32), 5);
    c.bench_function("kernels/maxpool_3x3s2_batch4", |bch| {
        bch.iter(|| black_box(max_pool2d(black_box(&p), Geometry::square(3, 2, 0)).unwrap()))
    });

    // Whole-network forward at batch 8.
    let mut net = Network::build(&zoo::lenet_small(), 7).unwrap();
    let batch = random(Shape::d4(8, 1, 28, 28), 6);
    c.bench_function("kernels/forward_lenet_small_batch8", |bch| {
        bch.iter(|| black_box(net.forward(black_box(&batch), Mode::Eval).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
