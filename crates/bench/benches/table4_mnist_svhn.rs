//! Table IV — accuracy, per-image energy and savings on the MNIST- and
//! SVHN-class benchmarks.
//!
//! Regenerates the table once at `QNN_BENCH_SCALE` (default `reduced`:
//! width-reduced networks, a few thousand synthetic samples — several
//! minutes of QAT training) and prints it with the paper's accuracies
//! alongside, then benchmarks the per-image energy evaluation and a
//! quantized forward pass.

use criterion::{criterion_group, criterion_main, Criterion};
use qnn_accel::AcceleratorDesign;
use qnn_bench::bench_scale;
use qnn_core::experiments::table4;
use qnn_nn::{zoo, Mode, Network};
use qnn_quant::Precision;
use qnn_tensor::{Shape, Tensor};
use std::hint::black_box;

fn regenerate() {
    let scale = bench_scale();
    println!("\n=== Table IV (accuracy at {scale:?} scale; energy from full Table I nets) ===\n");
    match table4(scale, 42) {
        Ok(t) => println!("{}", t.render()),
        Err(e) => println!("table4 failed: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let lenet_wl = zoo::lenet().workload().unwrap();
    c.bench_function("table4/energy_eval_lenet_all_precisions", |b| {
        b.iter(|| {
            for p in Precision::paper_sweep() {
                black_box(
                    AcceleratorDesign::new(p)
                        .energy_per_image(black_box(&lenet_wl))
                        .total_uj(),
                );
            }
        })
    });
    // A single quantized LeNet-small forward pass (the accuracy side's
    // inner kernel).
    let mut net = Network::build(&zoo::lenet_small(), 1).unwrap();
    let x = Tensor::zeros(Shape::d4(1, 1, 28, 28));
    net.set_precision(
        Precision::fixed(8, 8),
        qnn_quant::calibrate::Method::MaxAbs,
        &x,
        qnn_nn::ActivationCalibration::PerLayer,
    )
    .unwrap();
    c.bench_function("table4/quantized_forward_lenet_small", |b| {
        b.iter(|| black_box(net.forward(black_box(&x), Mode::Eval).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
