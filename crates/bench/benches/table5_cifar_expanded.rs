//! Table V — CIFAR-class accuracy/energy for ALEX, ALEX+ and ALEX++.
//!
//! Regenerates the table once at `QNN_BENCH_SCALE` (default `reduced`)
//! and prints it with the paper's `n.n× More` notation for rows costlier
//! than the FP32 baseline, then benchmarks the energy evaluation across
//! the three network sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use qnn_accel::AcceleratorDesign;
use qnn_bench::bench_scale;
use qnn_core::experiments::{table5, Table5Row};
use qnn_nn::zoo;
use qnn_quant::Precision;
use std::hint::black_box;

fn regenerate() {
    let scale = bench_scale();
    println!("\n=== Table V (accuracy at {scale:?} scale; energy from full Table I/II nets) ===\n");
    match table5(scale, 42) {
        Ok(rows) => println!("{}", Table5Row::render(&rows)),
        Err(e) => println!("table5 failed: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let workloads = [
        zoo::alex().workload().unwrap(),
        zoo::alex_plus().workload().unwrap(),
        zoo::alex_plus_plus().workload().unwrap(),
    ];
    c.bench_function("table5/energy_eval_three_networks", |b| {
        b.iter(|| {
            for wl in &workloads {
                for p in [Precision::fixed(8, 8), Precision::binary()] {
                    black_box(AcceleratorDesign::new(p).energy_per_image(wl).total_uj());
                }
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
