//! §V-B memory footprints — parameter memory per network per precision
//! and the 2–32× reduction claim.

use criterion::{criterion_group, criterion_main, Criterion};
use qnn_core::experiments::{memory_report, MemoryRow};
use qnn_nn::{memory, zoo};
use qnn_quant::Precision;
use std::hint::black_box;

fn print_report() {
    println!("\n=== §V-B — parameter memory (paper: ~1650/2150/350/1250/9400 KB at FP32) ===\n");
    match memory_report() {
        Ok(rows) => println!("{}", MemoryRow::render(&rows)),
        Err(e) => println!("memory report failed: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    print_report();
    let specs = zoo::all_paper_networks();
    c.bench_function("memory/footprint_all_networks_all_precisions", |b| {
        b.iter(|| {
            for spec in &specs {
                for p in Precision::paper_sweep() {
                    black_box(memory::footprint(spec, p).unwrap());
                }
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
