//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. **QAT vs. post-training quantization** — is the retraining phase
//!    (the paper's §IV-A techniques) actually earning its keep?
//! 2. **STE clipping on/off** — BinaryConnect's clipped estimator vs. the
//!    plain pass-through.
//! 3. **Calibration rule** — max-abs vs. 99th-percentile range fitting.
//! 4. **Binary scale** — plain ±1 vs. the XNOR mean-|w| refinement.
//! 5. **Activation radix** — per-layer (Ristretto) vs. one global radix
//!    (single-radix hardware; the paper's future-work motivation).
//!
//! Each ablation trains at smoke scale and prints a comparison, then the
//! quantization kernels are benchmarked.

use criterion::{criterion_group, criterion_main, Criterion};
use qnn_data::{standard_splits, DatasetKind, Splits};
use qnn_nn::{zoo, ActivationCalibration, Network, QatConfig, Trainer, TrainerConfig};
use qnn_quant::calibrate::Method;
use qnn_quant::{Binary, Fixed, PowerOfTwo, Precision, Quantizer};
use qnn_tensor::{Shape, Tensor};
use std::hint::black_box;

fn trainer(ste_clip: bool) -> Trainer {
    Trainer::new(TrainerConfig {
        epochs: 4,
        batch_size: 32,
        lr: 0.05,
        ste_clip,
        ..TrainerConfig::default()
    })
}

/// Returns (fp_accuracy, pretrained state) on the glyphs benchmark.
fn pretrain(splits: &Splits) -> (f32, Network, Trainer) {
    let t = trainer(true);
    let mut net = Network::build(&zoo::lenet_small(), 5).unwrap();
    t.train(&mut net, splits.train.images(), splits.train.labels())
        .unwrap();
    let acc = t
        .evaluate(&mut net, splits.test.images(), splits.test.labels())
        .unwrap();
    (acc * 100.0, net, t)
}

fn qat_accuracy(splits: &Splits, state: &[Tensor], qat: &QatConfig, t: &Trainer) -> f32 {
    let mut net = Network::build(&zoo::lenet_small(), 5).unwrap();
    net.load_state(state).unwrap();
    t.train_qat(
        &mut net,
        qat,
        splits.train.images(),
        splits.train.labels(),
        64,
    )
    .unwrap();
    t.evaluate(&mut net, splits.test.images(), splits.test.labels())
        .unwrap()
        * 100.0
}

fn ptq_accuracy(splits: &Splits, state: &[Tensor], precision: Precision, t: &Trainer) -> f32 {
    let mut net = Network::build(&zoo::lenet_small(), 5).unwrap();
    net.load_state(state).unwrap();
    let calib = splits.train.take(&(0..64).collect::<Vec<_>>());
    net.set_precision(
        precision,
        Method::MaxAbs,
        calib.images(),
        ActivationCalibration::PerLayer,
    )
    .unwrap();
    t.evaluate(&mut net, splits.test.images(), splits.test.labels())
        .unwrap()
        * 100.0
}

fn run_ablations() {
    println!("\n=== Ablations (glyphs28 @ smoke scale, lenet-small) ===\n");
    let splits = standard_splits(DatasetKind::Glyphs28, 400, 300, 77);
    let (fp, fp_net, t) = pretrain(&splits);
    let state = fp_net.state_dict();
    println!("full-precision baseline: {fp:.1}%\n");

    // 1. QAT vs PTQ at aggressive precisions.
    for p in [Precision::fixed(4, 4), Precision::binary()] {
        let ptq = ptq_accuracy(&splits, &state, p, &t);
        let qat = qat_accuracy(&splits, &state, &QatConfig::new(p), &t);
        println!(
            "[qat-vs-ptq]    {:24} PTQ {ptq:5.1}%  QAT {qat:5.1}%  (QAT gain {:+.1})",
            p.label(),
            qat - ptq
        );
    }

    // 2. STE clip on/off for binary.
    let t_noclip = trainer(false);
    let clip = qat_accuracy(&splits, &state, &QatConfig::new(Precision::binary()), &t);
    let noclip = qat_accuracy(
        &splits,
        &state,
        &QatConfig::new(Precision::binary()),
        &t_noclip,
    );
    println!("\n[ste-clip]      binary: clipped {clip:.1}%  unclipped {noclip:.1}%");

    // 3. Calibration rule at 4 bits.
    let maxabs = qat_accuracy(&splits, &state, &QatConfig::new(Precision::fixed(4, 4)), &t);
    let pct = qat_accuracy(
        &splits,
        &state,
        &QatConfig {
            method: Method::Percentile(0.99),
            ..QatConfig::new(Precision::fixed(4, 4))
        },
        &t,
    );
    println!("\n[calibration]   fixed(4,4): max-abs {maxabs:.1}%  p99 {pct:.1}%");

    // 5. Per-layer vs global activation radix at 8 bits.
    let per_layer = qat_accuracy(&splits, &state, &QatConfig::new(Precision::fixed(8, 8)), &t);
    let global = qat_accuracy(
        &splits,
        &state,
        &QatConfig {
            activation_calibration: ActivationCalibration::Global,
            ..QatConfig::new(Precision::fixed(8, 8))
        },
        &t,
    );
    println!("\n[act-radix]     fixed(8,8): per-layer {per_layer:.1}%  global {global:.1}%");
    println!("                (per-layer radix is the multi-radix hardware the paper names as future work)");

    // Extension sweeps enabled by the model (dimensions the paper scoped out).
    println!("\n[minifloat]     custom float geometries (future work):");
    match qnn_core::experiments::minifloat_sweep(
        false,
        qnn_core::experiments::ExperimentScale::Smoke,
        1,
    ) {
        Ok(rows) => println!("{}", qnn_core::experiments::MinifloatRow::render(&rows)),
        Err(e) => println!("  failed: {e}"),
    }
    println!("[tile-scaling]  accelerator size at fixed(16,16) (dimension the paper scoped out):");
    match qnn_core::experiments::tile_scaling(Precision::fixed(16, 16)) {
        Ok(rows) => println!("{}", qnn_core::experiments::TileRow::render(&rows)),
        Err(e) => println!("  failed: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    run_ablations();
    // Quantization kernel costs (the inner loops of everything above).
    let data = Tensor::from_vec(
        Shape::d1(4096),
        (0..4096).map(|i| ((i as f32) * 0.37).sin() * 4.0).collect(),
    )
    .unwrap();
    let fixed = Fixed::new(8, 5).unwrap();
    let pow2 = PowerOfTwo::new(6, 1).unwrap();
    let binary = Binary::new();
    let mut g = c.benchmark_group("quantize_4096");
    g.bench_function("fixed8", |b| b.iter(|| black_box(fixed.quantize(&data))));
    g.bench_function("pow2", |b| b.iter(|| black_box(pow2.quantize(&data))));
    g.bench_function("binary", |b| b.iter(|| black_box(binary.quantize(&data))));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
