//! `reload-soak` — the live-reload chaos harness behind the reload-soak
//! and reload-chaos CI stages.
//!
//! Like [`crate::soak`], but while the client threads hammer inference,
//! a control thread cycles the server through **live model reloads**:
//! it authors a fresh `QNNF` bank checkpoint per cycle (seed derived
//! from the base seed, so both ends can reconstruct it), asks the
//! server to hot-swap to it, and records the promoted `(version, seed)`
//! from the `ReloadOk` ack. Every inference response carries the model
//! version that computed it in the `InferOk` tag byte, so each client
//! verifies every response **bit-identically against a locally built
//! bank of whichever version the server accepted that request under** —
//! a response computed on version 3 must match a local version-3
//! forward even if version 5 is live by the time it is checked. No
//! dropped or hung request, no torn answer, ever.
//!
//! The chaos variant (`--kill-pid`) fires `SIGKILL` at the server
//! immediately after *sending* one seed-chosen cycle's reload request —
//! landing inside the load/canary/persist/swap window. The process dies
//! mid-lifecycle; [`verify`] then probes the restarted server and
//! proves it serves exactly one complete version from the candidate
//! set (old or new, never a torn hybrid).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qnn_serve::{BankCheckpoint, ModelBank, ServeClient, MODEL_SEED, NUM_PRECISIONS};
use qnn_tensor::rng::derive_seed;

/// Retry budget per request (`Busy` backpressure is retried, never
/// excused into a failure).
const MAX_RETRIES: usize = 10_000;

/// Seed domain for per-cycle checkpoint seeds.
const CYCLE_DOMAIN: u64 = 0x7E10AD;

/// How long a client will wait for the version map to learn a version
/// byte it has not seen yet (the tiny window between the server's swap
/// and the control thread's receipt of the `ReloadOk` ack).
const VERSION_WAIT: Duration = Duration::from_secs(30);

/// The checkpoint seed for reload cycle `k` (cycle 0 is the base seed
/// the server booted with). Pure function of the base seed, so
/// [`verify`] can reconstruct the full candidate set after a crash.
pub fn cycle_seed(base: u64, k: usize) -> u64 {
    if k == 0 {
        base
    } else {
        derive_seed(base, CYCLE_DOMAIN + k as u64)
    }
}

/// Load-generator knobs, filled from `qnn-bench reload-soak` flags.
#[derive(Debug, Clone)]
pub struct ReloadSoakConfig {
    /// Server address (usually read from the server's `--port-file`).
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Total requests, striped across the client threads.
    pub requests: usize,
    /// Live reload cycles to run mid-soak.
    pub cycles: usize,
    /// Directory the per-cycle checkpoint files are written to.
    pub dir: PathBuf,
    /// Base model-bank seed; must match the server's.
    pub seed: u64,
    /// Send a `Shutdown` frame when done.
    pub shutdown: bool,
    /// Chaos mode: OS pid of the server to `SIGKILL` immediately after
    /// sending one seed-chosen cycle's reload request.
    pub kill_pid: Option<u32>,
}

impl Default for ReloadSoakConfig {
    fn default() -> Self {
        ReloadSoakConfig {
            addr: String::new(),
            clients: 4,
            requests: 256,
            cycles: 8,
            dir: std::env::temp_dir().join(format!("qnn-reload-soak-{}", std::process::id())),
            seed: MODEL_SEED,
            shutdown: false,
            kill_pid: None,
        }
    }
}

impl ReloadSoakConfig {
    /// The cycle whose reload the chaos kill rides on: seed-derived,
    /// never cycle 0 (there must be a version to roll back to).
    pub fn kill_cycle(&self) -> usize {
        1 + (derive_seed(self.seed, 0xC1A0) % self.cycles.max(1) as u64) as usize
    }
}

/// What one reload soak did.
#[derive(Debug)]
pub struct ReloadSoakOutcome {
    /// Responses verified bit-identical to their version's local bank.
    pub verified: usize,
    /// Requests abandoned because the server was deliberately killed
    /// (chaos mode only; zero otherwise).
    pub aborted_after_kill: usize,
    /// Total `Busy` retries across all threads.
    pub busy_retries: usize,
    /// Reload cycles the server promoted.
    pub promoted: usize,
    /// Distinct model versions observed in responses.
    pub versions_seen: usize,
    /// Whether the chaos kill fired.
    pub killed: bool,
    /// Human-readable failures; empty iff the run passed.
    pub failures: Vec<String>,
}

impl ReloadSoakOutcome {
    /// Pass criteria. Normal mode: every request answered and verified,
    /// every cycle promoted, more than one version actually observed.
    /// Chaos mode: the kill fired, and everything answered *before* the
    /// kill verified bit-identically (completeness is impossible — the
    /// server is dead).
    pub fn passed(&self, cfg: &ReloadSoakConfig) -> bool {
        if !self.failures.is_empty() {
            return false;
        }
        if cfg.kill_pid.is_some() {
            self.killed && self.verified + self.aborted_after_kill == cfg.requests
        } else {
            self.verified == cfg.requests && self.promoted == cfg.cycles && self.versions_seen > 1
        }
    }
}

/// Precision tag for the `i`-th request: round-robin through the whole
/// Table III sweep, same as `serve-soak`.
fn tag_for(i: usize) -> u8 {
    (i % NUM_PRECISIONS as usize) as u8
}

/// Shared version ledger: `InferOk` version byte → bank seed. Clients
/// block (briefly) on bytes the control thread has not recorded yet.
struct VersionMap {
    seeds: Mutex<HashMap<u8, u64>>,
}

impl VersionMap {
    fn new(initial_version: u8, seed: u64) -> VersionMap {
        VersionMap {
            seeds: Mutex::new(HashMap::from([(initial_version, seed)])),
        }
    }

    fn record(&self, version: u32, seed: u64) {
        self.seeds
            .lock()
            .unwrap()
            .insert((version & 0xFF) as u8, seed);
    }

    /// The seed for `version`, waiting up to [`VERSION_WAIT`] for the
    /// control thread to learn it (the swap happens before the ack is
    /// sent, so a response can beat the ledger by a frame or two).
    fn seed_for(&self, version: u8) -> Option<u64> {
        let deadline = Instant::now() + VERSION_WAIT;
        loop {
            if let Some(&s) = self.seeds.lock().unwrap().get(&version) {
                return Some(s);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Runs the reload soak. Prints a summary; returns the outcome for the
/// caller to turn into an exit code.
///
/// # Errors
///
/// A `String` for setup failures (checkpoint dir, initial bank);
/// per-request and per-cycle failures land in
/// [`ReloadSoakOutcome::failures`] instead.
pub fn run(cfg: &ReloadSoakConfig) -> Result<ReloadSoakOutcome, String> {
    let started = Instant::now();
    std::fs::create_dir_all(&cfg.dir).map_err(|e| format!("checkpoint dir: {e}"))?;
    let input_len = ModelBank::build(cfg.seed)
        .map_err(|e| format!("model bank: {e}"))?
        .input_len();
    let images: Arc<Vec<Vec<f32>>> = Arc::new(
        (0..cfg.requests)
            .map(|i| qnn_serve::model::test_image(cfg.seed, i as u64, input_len))
            .collect(),
    );
    println!(
        "reload-soak: {} request(s) x {} client thread(s) across {} live reload cycle(s) -> {}",
        cfg.requests, cfg.clients, cfg.cycles, cfg.addr
    );

    // Version 1 is live at boot with the base seed; each promoted cycle
    // k becomes version k+1. The ledger maps the wire's version *byte*.
    let versions = Arc::new(VersionMap::new(1, cfg.seed));
    let done = Arc::new(AtomicUsize::new(0));
    let killed = Arc::new(AtomicBool::new(false));
    let promoted = Arc::new(AtomicUsize::new(0));
    let finished = Arc::new(AtomicBool::new(false));

    // Control thread: spread the reload cycles across the soak by
    // progress (not time), firing cycle k once k/(cycles+1) of the
    // requests have completed — every cycle lands mid-traffic.
    let control = {
        let versions = Arc::clone(&versions);
        let done = Arc::clone(&done);
        let killed = Arc::clone(&killed);
        let promoted = Arc::clone(&promoted);
        let finished = Arc::clone(&finished);
        let cfg = cfg.clone();
        std::thread::spawn(move || -> Vec<String> {
            let mut failures = Vec::new();
            let mut client = match ServeClient::connect(&cfg.addr) {
                Ok(c) => c,
                Err(e) => return vec![format!("control: connect: {e}")],
            };
            let kill_cycle = cfg.kill_pid.map(|_| cfg.kill_cycle());
            for k in 1..=cfg.cycles {
                let gate = k * cfg.requests / (cfg.cycles + 1);
                while done.load(Ordering::SeqCst) < gate {
                    if finished.load(Ordering::SeqCst)
                        || done.load(Ordering::SeqCst) >= cfg.requests
                    {
                        break; // soak over (or dead) before this gate
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                if finished.load(Ordering::SeqCst) && done.load(Ordering::SeqCst) < gate {
                    failures.push(format!("cycle {k}: soak ended before its gate"));
                    break;
                }
                let path = cfg.dir.join(format!("cycle-{k}.qnnf"));
                let cp = match BankCheckpoint::capture(cycle_seed(cfg.seed, k)) {
                    Ok(cp) => cp,
                    Err(e) => {
                        failures.push(format!("cycle {k}: capture: {e}"));
                        continue;
                    }
                };
                if let Err(e) = cp.save(&path) {
                    failures.push(format!("cycle {k}: save: {e}"));
                    continue;
                }
                if kill_cycle == Some(k) {
                    // Chaos: get the reload in flight, then kill the
                    // server under it. No ack will come.
                    let pid = cfg.kill_pid.expect("kill_cycle implies kill_pid");
                    let frame = qnn_serve::Frame::reload(u64::MAX, &path.display().to_string());
                    let _ = client.send_raw(&frame.encode());
                    // Record the intent *before* the signal lands: the
                    // server can die (and clients can see broken pipes)
                    // before the kill command even returns. A failed
                    // kill still fails the run via `failures`.
                    killed.store(true, Ordering::SeqCst);
                    let status = std::process::Command::new("kill")
                        .args(["-9", &pid.to_string()])
                        .status();
                    match status {
                        Ok(s) if s.success() => {
                            println!(
                                "reload-soak: SIGKILL delivered to pid {pid} \
                                 mid-reload (cycle {k})"
                            );
                        }
                        Ok(s) => failures.push(format!("kill -9 {pid} exited with {s}")),
                        Err(e) => failures.push(format!("kill -9 {pid}: {e}")),
                    }
                    return failures;
                }
                match client.reload(&path.display().to_string()) {
                    Ok((version, seed)) => {
                        versions.record(version, seed);
                        promoted.fetch_add(1, Ordering::SeqCst);
                        println!(
                            "reload-soak: cycle {k} promoted as version {version} \
                             (seed {seed:#x}) at {} completed",
                            done.load(Ordering::SeqCst)
                        );
                    }
                    Err(e) => failures.push(format!("cycle {k}: reload: {e}")),
                }
            }
            failures
        })
    };

    let clients = cfg.clients.max(1);
    let mut threads = Vec::new();
    for t in 0..clients {
        let images = Arc::clone(&images);
        let versions = Arc::clone(&versions);
        let done = Arc::clone(&done);
        let killed = Arc::clone(&killed);
        let addr = cfg.addr.clone();
        let total = cfg.requests;
        threads.push(std::thread::spawn(move || {
            let mut verified = 0usize;
            let mut aborted = 0usize;
            let mut busy = 0usize;
            let mut failures: Vec<String> = Vec::new();
            // Version byte → locally built bank of that version's seed.
            // Built lazily: most threads only ever see a handful of
            // versions, and every build is deterministic from the seed.
            let mut banks: HashMap<u8, ModelBank> = HashMap::new();
            let mut seen: std::collections::BTreeSet<u8> = std::collections::BTreeSet::new();
            // Version bytes that already timed out of the ledger once:
            // fail the rest fast instead of paying the full wait per
            // request (the server is on a version this soak never
            // promoted — a seed mismatch, not a transient race).
            let mut unknown: std::collections::BTreeSet<u8> = std::collections::BTreeSet::new();
            let mut client = match ServeClient::connect(&addr) {
                Ok(c) => c,
                Err(e) => {
                    failures.push(format!("thread {t}: connect: {e}"));
                    return (verified, aborted, busy, seen, failures);
                }
            };
            'requests: for i in (t..total).step_by(clients) {
                let tag = tag_for(i);
                let mut retries = 0usize;
                let (version, logits) = loop {
                    match client.infer_versioned(tag, &images[i]) {
                        Ok(ok) => break ok,
                        Err(e) if e.is_busy() && retries < MAX_RETRIES => {
                            busy += 1;
                            retries += 1;
                            let hint = match &e {
                                qnn_serve::ServeError::Rejected { retry_after_us, .. } => {
                                    *retry_after_us
                                }
                                _ => 0,
                            };
                            std::thread::sleep(Duration::from_micros(u64::from(
                                hint.clamp(100, 50_000),
                            )));
                        }
                        Err(e) => {
                            if killed.load(Ordering::SeqCst) {
                                // Chaos: the server is gone by design;
                                // everything unanswered is aborted, not
                                // failed.
                                aborted += 1 + (i + clients..total).step_by(clients).count();
                                break 'requests;
                            }
                            failures.push(format!("request {i} (tag {tag}): {e}"));
                            done.fetch_add(1, Ordering::SeqCst);
                            continue 'requests;
                        }
                    }
                };
                seen.insert(version);
                if unknown.contains(&version) {
                    failures.push(format!(
                        "request {i}: version byte {version} already known-unpromoted"
                    ));
                    done.fetch_add(1, Ordering::SeqCst);
                    continue;
                }
                let Some(seed) = versions.seed_for(version) else {
                    unknown.insert(version);
                    failures.push(format!(
                        "request {i}: response claims version byte {version} but no \
                         promoted reload ever acked that version"
                    ));
                    done.fetch_add(1, Ordering::SeqCst);
                    continue;
                };
                let bank = match banks.entry(version) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => match ModelBank::build(seed) {
                        Ok(b) => e.insert(b),
                        Err(err) => {
                            failures.push(format!("local bank for version {version}: {err}"));
                            done.fetch_add(1, Ordering::SeqCst);
                            continue;
                        }
                    },
                };
                match bank.forward_single(tag, &images[i]) {
                    Ok(expect) => {
                        let same = expect.len() == logits.len()
                            && expect
                                .iter()
                                .zip(&logits)
                                .all(|(a, b)| a.to_bits() == b.to_bits());
                        if same {
                            verified += 1;
                        } else {
                            failures.push(format!(
                                "request {i} (tag {tag}): logits differ from the \
                                 version-{version} bank the server accepted it under"
                            ));
                        }
                    }
                    Err(e) => failures.push(format!("request {i}: local forward: {e}")),
                }
                done.fetch_add(1, Ordering::SeqCst);
            }
            (verified, aborted, busy, seen, failures)
        }));
    }

    let mut outcome = ReloadSoakOutcome {
        verified: 0,
        aborted_after_kill: 0,
        busy_retries: 0,
        promoted: 0,
        versions_seen: 0,
        killed: false,
        failures: Vec::new(),
    };
    let mut all_seen: std::collections::BTreeSet<u8> = std::collections::BTreeSet::new();
    for (t, th) in threads.into_iter().enumerate() {
        match th.join() {
            Ok((verified, aborted, busy, seen, fails)) => {
                outcome.verified += verified;
                outcome.aborted_after_kill += aborted;
                outcome.busy_retries += busy;
                all_seen.extend(seen);
                outcome.failures.extend(fails);
            }
            Err(_) => outcome.failures.push(format!("thread {t} panicked")),
        }
    }
    // Unstick the control thread if the clients bailed out before any
    // cycle's progress gate was reached (it reports the starved cycle).
    finished.store(true, Ordering::SeqCst);
    match control.join() {
        Ok(fails) => outcome.failures.extend(fails),
        Err(_) => outcome.failures.push("control thread panicked".to_string()),
    }
    outcome.versions_seen = all_seen.len();
    outcome.promoted = promoted.load(Ordering::SeqCst);
    outcome.killed = killed.load(Ordering::SeqCst);
    if cfg.kill_pid.is_some() && !outcome.killed {
        outcome
            .failures
            .push("the seeded mid-reload kill never fired".to_string());
    }

    if cfg.shutdown && !outcome.killed {
        match ServeClient::connect(&cfg.addr).and_then(|mut c| c.shutdown_server()) {
            Ok(()) => println!("reload-soak: server drained and shut down"),
            Err(e) => outcome.failures.push(format!("shutdown: {e}")),
        }
    }

    let secs = started.elapsed().as_secs_f64();
    println!(
        "reload-soak: {}/{} bit-identical across version(s) {:?}, {} reload(s) promoted, \
         {} busy retries, {} aborted-after-kill, {:.2}s",
        outcome.verified,
        cfg.requests,
        all_seen,
        outcome.promoted,
        outcome.busy_retries,
        outcome.aborted_after_kill,
        secs,
    );
    for f in &outcome.failures {
        eprintln!("reload-soak: FAIL: {f}");
    }
    Ok(outcome)
}

/// `reload-verify` — the post-crash probe: proves a restarted server is
/// serving exactly one *complete* version out of `candidates` (seed
/// values), bit-identically across every precision tag. A torn bank —
/// some tags answering one version, some another, or logits matching no
/// candidate — fails. Returns the matching seed.
///
/// # Errors
///
/// A `String` naming what went wrong: no candidate matched, more than
/// one matched (candidate seeds collide — a config error), a mixed
/// match across tags, or transport trouble.
pub fn verify(addr: &str, candidates: &[u64]) -> Result<u64, String> {
    if candidates.is_empty() {
        return Err("reload-verify: no candidate seeds given".to_string());
    }
    let mut client =
        ServeClient::connect(addr).map_err(|e| format!("reload-verify: connect: {e}"))?;
    let mut banks: Vec<(u64, ModelBank)> = Vec::with_capacity(candidates.len());
    for &seed in candidates {
        banks.push((
            seed,
            ModelBank::build(seed).map_err(|e| format!("bank {seed:#x}: {e}"))?,
        ));
    }
    let input_len = banks[0].1.input_len();
    // Still-matching candidates; probes across every tag narrow it.
    let mut alive: Vec<bool> = vec![true; banks.len()];
    for tag in 0..NUM_PRECISIONS {
        for probe in 0..2u64 {
            let image =
                qnn_serve::model::test_image(0xFE11F, u64::from(tag) * 16 + probe, input_len);
            let got = client
                .infer(tag, &image)
                .map_err(|e| format!("probe tag {tag}: {e}"))?;
            let got_bits: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
            for (i, (_, bank)) in banks.iter_mut().enumerate() {
                if !alive[i] {
                    continue;
                }
                let local = bank
                    .forward_single(tag, &image)
                    .map_err(|e| format!("local forward: {e}"))?;
                let local_bits: Vec<u32> = local.iter().map(|x| x.to_bits()).collect();
                if local_bits != got_bits {
                    alive[i] = false;
                }
            }
        }
    }
    let matches: Vec<u64> = banks
        .iter()
        .zip(&alive)
        .filter(|(_, &a)| a)
        .map(|((s, _), _)| *s)
        .collect();
    match matches.as_slice() {
        [seed] => {
            println!(
                "reload-verify: server at {addr} serves seed {seed:#x} completely \
                 and bit-identically across all {NUM_PRECISIONS} precisions"
            );
            Ok(*seed)
        }
        [] => Err(format!(
            "reload-verify: server matches NO candidate ({candidates:#x?}) — \
             torn or unknown bank"
        )),
        many => Err(format!(
            "reload-verify: server matches {} candidates {many:#x?} — \
             candidate seeds collide",
            many.len()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_serve::{ServeConfig, Server};

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("qnn-reloadsoak-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn cycle_seeds_are_distinct_and_pure() {
        let base = 7u64;
        let mut seen = std::collections::BTreeSet::new();
        for k in 0..=12 {
            assert_eq!(cycle_seed(base, k), cycle_seed(base, k), "pure");
            assert!(seen.insert(cycle_seed(base, k)), "distinct at k={k}");
        }
        assert_eq!(cycle_seed(base, 0), base, "cycle 0 is the base seed");
    }

    #[test]
    fn kill_cycle_is_seeded_and_never_zero() {
        let cfg = ReloadSoakConfig {
            cycles: 8,
            ..ReloadSoakConfig::default()
        };
        let k = cfg.kill_cycle();
        assert_eq!(k, cfg.kill_cycle(), "pure function of the seed");
        assert!((1..=8).contains(&k), "got {k}");
    }

    #[test]
    fn mini_reload_soak_against_in_process_server() {
        // The whole loop in miniature: 3 clients, 2 live reload cycles,
        // every response verified against the version that accepted it.
        let dir = temp_dir("mini");
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            seed: 11,
            ..ServeConfig::default()
        })
        .unwrap();
        let cfg = ReloadSoakConfig {
            addr: server.local_addr().to_string(),
            clients: 3,
            requests: 48,
            cycles: 2,
            dir: dir.clone(),
            seed: 11,
            shutdown: true,
            kill_pid: None,
        };
        let outcome = run(&cfg).unwrap();
        assert!(outcome.passed(&cfg), "failures: {:?}", outcome.failures);
        assert_eq!(outcome.promoted, 2);
        assert!(outcome.versions_seen >= 2, "swap must be visible mid-soak");
        let stats = server.join();
        assert_eq!(stats.requests, 48);
        assert_eq!(stats.reloads_promoted, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_finds_the_live_seed_among_candidates() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            seed: 21,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let found = verify(&addr, &[19, 21, 23]).unwrap();
        assert_eq!(found, 21);
        // A candidate set that excludes the live seed is a typed miss.
        let err = verify(&addr, &[19, 23]).unwrap_err();
        assert!(err.contains("NO candidate"), "{err}");
        let mut c = ServeClient::connect(&addr).unwrap();
        c.shutdown_server().unwrap();
        server.join();
    }
}
