//! `serve-bench` — the serving-throughput benchmark behind the committed
//! `BENCH_serve.json` artifact and the `serve-bench` CI stage.
//!
//! Starts a loopback `qnn-serve` server in-process (release profile, the
//! same engine CI soaks) once per `--engine-threads` setting, and drives
//! each Table III precision with a pipelined single-connection client:
//! `N` requests in flight behind a fixed window, per-request latency
//! stamped at send and receive. Per precision and engine setting it
//! records images/sec plus p50/p99 latency (informational); the
//! `total_e1` entry aggregating the single-engine sweep carries
//! `ns_per_op` and is what the regression gate holds — multi-replica
//! totals are recorded but not gated (see `drive_sweep` for why).
//! `--attach ADDR` additionally drives
//! an externally started server (e.g. a pre-change build from a git
//! worktree) and records it under `*_attached` names — those entries ride
//! along in the committed baseline as an honest historical comparison and
//! are excused from the gate via the `serve/*_attached` allowlist (the
//! checking run has no attached server to re-measure them against).
//!
//! `--write` regenerates `BENCH_serve.json`; the default mode re-measures
//! and fails (exit 1) when any shared entry regressed by more than the
//! [`crate::regression`] tolerance (>25 % by default), exactly like
//! `bench-check` does for kernels.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::regression;
use qnn_quant::Precision;
use qnn_serve::{ErrorCode, FrameKind, ModelBank, ServeClient, ServeConfig, Server};

/// Where the committed serving baseline lives, next to `BENCH_kernels.json`.
pub const BASELINE_PATH: &str = "BENCH_serve.json";

/// Engine fan-out settings measured per run (`--engine-threads`).
const ENGINE_THREADS: &[usize] = &[1, 4];

/// In-flight request window per connection: comfortably above the
/// default `max_batch` (16) so batches flush on size rather than waiting
/// out `max_wait`, and below the default queue capacity so `Busy` stays
/// the exception.
const WINDOW: usize = 32;

/// `serve-bench` knobs, filled from CLI flags.
#[derive(Debug, Clone, Default)]
pub struct ServeBenchConfig {
    /// Fewer requests per precision (CI gating; the tolerance absorbs
    /// the extra noise).
    pub quick: bool,
    /// Write `BENCH_serve.json` instead of checking against it.
    pub write: bool,
    /// Also bench an externally started server at this address.
    pub attach: Option<String>,
    /// Baseline path override (defaults to [`BASELINE_PATH`]).
    pub baseline: Option<String>,
}

/// One precision's measured serving numbers.
struct TagTiming {
    ns_per_image: f64,
    images_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    busy_retries: usize,
}

/// Latency percentile over an unsorted sample set (nearest-rank).
fn percentile(sorted_us: &[f64], pct: usize) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = (sorted_us.len() * pct / 100).min(sorted_us.len() - 1);
    sorted_us[idx]
}

/// Runs `n` pipelined requests of one precision over `c`, returning
/// throughput and latency stats. `Busy` rejections sleep out the server's
/// hint and resend — that is the backpressure contract working, and the
/// retry count is reported rather than failed.
fn drive_tag(c: &mut ServeClient, tag: u8, image: &[f32], n: usize) -> Result<TagTiming, String> {
    let fail = |what: &str, e: &dyn std::fmt::Display| format!("tag {tag}: {what}: {e}");
    let mut send_at: HashMap<u64, Instant> = HashMap::with_capacity(WINDOW * 2);
    let mut lat_us: Vec<f64> = Vec::with_capacity(n);
    let mut sent = 0usize;
    let mut busy_retries = 0usize;
    let started = Instant::now();
    while lat_us.len() < n {
        while send_at.len() < WINDOW && sent < n {
            let id = c.send_infer(tag, image).map_err(|e| fail("send", &e))?;
            send_at.insert(id, Instant::now());
            sent += 1;
        }
        let f = c.recv_frame().map_err(|e| fail("recv", &e))?;
        let t0 = send_at
            .remove(&f.req_id)
            .ok_or_else(|| format!("tag {tag}: response for unknown request {}", f.req_id))?;
        match f.kind {
            FrameKind::InferOk => {
                lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
            }
            FrameKind::Error => {
                let (code, retry_after_us, msg) =
                    f.error_info().map_err(|e| fail("error frame", &e))?;
                if code != ErrorCode::Busy {
                    return Err(format!("tag {tag}: server error {code:?}: {msg}"));
                }
                busy_retries += 1;
                std::thread::sleep(Duration::from_micros(u64::from(
                    retry_after_us.clamp(100, 50_000),
                )));
                sent -= 1;
            }
            other => return Err(format!("tag {tag}: unexpected frame {other:?}")),
        }
    }
    let total = started.elapsed();
    lat_us.sort_by(|a, b| a.total_cmp(b));
    Ok(TagTiming {
        ns_per_image: total.as_nanos() as f64 / n as f64,
        images_per_sec: n as f64 / total.as_secs_f64(),
        p50_us: percentile(&lat_us, 50),
        p99_us: percentile(&lat_us, 99),
        busy_retries,
    })
}

/// Flat slug for a Table III row label: `"Fixed-Point (8,8)"` →
/// `fixed_point_8_8`, usable inside a `group/case` benchmark name.
fn slug(p: &Precision) -> String {
    let mut out = String::new();
    for ch in p.label().to_lowercase().chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else if !out.is_empty() && !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_end_matches('_').to_string()
}

/// [`drive_tag`] repeated `PASSES` times (after a warmup), keeping the
/// median-throughput pass — single passes finish in milliseconds at
/// serving speed, far too little to gate a 25% tolerance on.
fn drive_tag_median(
    c: &mut ServeClient,
    tag: u8,
    image: &[f32],
    n: usize,
) -> Result<TagTiming, String> {
    const PASSES: usize = 3;
    for _ in 0..8 {
        c.infer_retry(tag, image, 1_000)
            .map_err(|e| format!("tag {tag}: warmup: {e}"))?;
    }
    let mut runs: Vec<TagTiming> = (0..PASSES)
        .map(|_| drive_tag(c, tag, image, n))
        .collect::<Result<_, _>>()?;
    let busy: usize = runs.iter().map(|t| t.busy_retries).sum();
    runs.sort_by(|a, b| a.ns_per_image.total_cmp(&b.ns_per_image));
    let mut median = runs.swap_remove(PASSES / 2);
    median.busy_retries = busy;
    Ok(median)
}

/// Benches every Table III precision against the server at `addr` on one
/// connection, pushing a `serve/{slug}_{suffix}` entry per precision and
/// a `serve/total_{suffix}` aggregate. Returns the aggregate ns/image.
fn drive_sweep(
    addr: &str,
    images: &[Vec<f32>],
    n: usize,
    suffix: &str,
    entries: &mut Vec<Json>,
) -> Result<f64, String> {
    let mut c = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    c.set_read_timeout(Duration::from_secs(60))
        .map_err(|e| format!("read timeout: {e}"))?;
    let sweep = Precision::paper_sweep();
    let mut total_ns = 0.0f64;
    let mut total_busy = 0usize;
    for (tag, p) in sweep.iter().enumerate() {
        let t = drive_tag_median(&mut c, tag as u8, &images[tag], n)?;
        total_ns += t.ns_per_image * n as f64;
        total_busy += t.busy_retries;
        println!(
            "  serve/{:<28} {:>9.1} img/s  p50 {:>8.0}us  p99 {:>8.0}us{}",
            format!("{}_{suffix}", slug(p)),
            t.images_per_sec,
            t.p50_us,
            t.p99_us,
            if t.busy_retries > 0 {
                format!("  ({} busy retries)", t.busy_retries)
            } else {
                String::new()
            }
        );
        // Per-precision entries are informational: carrying the timing
        // as `ns_per_image` (not `ns_per_op`) keeps them out of the
        // regression gate, whose 25% tolerance only holds statistically
        // over the whole-sweep totals — a single ~10 ms scheduler hiccup
        // is enough to swing one precision's short window past it.
        entries.push(Json::obj(vec![
            ("name", Json::str(format!("serve/{}_{suffix}", slug(p)))),
            ("ns_per_image", Json::Num(t.ns_per_image)),
            ("images_per_sec", Json::Num(t.images_per_sec)),
            ("p50_us", Json::Num(t.p50_us)),
            ("p99_us", Json::Num(t.p99_us)),
            ("requests", Json::Num(n as f64)),
        ]));
    }
    let images_total = (sweep.len() * n) as f64;
    let agg_ips = images_total / (total_ns / 1e9);
    println!("  serve/total_{suffix:<22} {agg_ips:>9.1} img/s  ({total_busy} busy retries)");
    // Only the single-engine total carries `ns_per_op` (the gated
    // field): with more engine replicas than cores, the fan-out's
    // overlap with the reader/writer/client threads is scheduling luck,
    // and its run-to-run spread exceeds the gate's tolerance.
    let timing_field = if suffix == "e1" {
        "ns_per_op"
    } else {
        "ns_per_image"
    };
    entries.push(Json::obj(vec![
        ("name", Json::str(format!("serve/total_{suffix}"))),
        (timing_field, Json::Num(total_ns / images_total)),
        ("images_per_sec", Json::Num(agg_ips)),
        ("busy_retries", Json::Num(total_busy as f64)),
    ]));
    Ok(total_ns / images_total)
}

/// Measures every scenario and assembles the `qnn-bench/serve/v1` report.
fn measure(cfg: &ServeBenchConfig) -> Result<Json, String> {
    let n = if cfg.quick { 256 } else { 1024 };
    let input_len = ModelBank::default_bank()
        .map_err(|e| format!("model bank: {e}"))?
        .input_len();
    let images: Vec<Vec<f32>> = (0..Precision::paper_sweep().len())
        .map(|tag| qnn_serve::model::test_image(qnn_serve::MODEL_SEED, tag as u64, input_len))
        .collect();

    let mut entries: Vec<Json> = Vec::new();
    let mut totals: Vec<(String, f64)> = Vec::new();
    for &et in ENGINE_THREADS {
        println!("== serve-bench: {n} req/precision, engine-threads {et} ==");
        // Default config apart from the engine fan-out, so the in-process
        // scenarios and an `--attach`ed default-config server differ only
        // in the build and engine threads being measured.
        let server = Server::start(ServeConfig {
            engine_threads: et,
            ..ServeConfig::default()
        })
        .map_err(|e| format!("server start: {e}"))?;
        let addr = server.local_addr().to_string();
        let suffix = format!("e{et}");
        let total = drive_sweep(&addr, &images, n, &suffix, &mut entries)?;
        totals.push((suffix, total));
        server.shutdown();
        server.join();
    }
    if let Some(addr) = &cfg.attach {
        println!("== serve-bench: {n} req/precision, attached server {addr} ==");
        let total = drive_sweep(addr, &images, n, "attached", &mut entries)?;
        totals.push(("attached".to_string(), total));
    }

    // Derived ratios (>1 = the left side is faster). No `ns_per_op`, so
    // the regression gate skips them.
    let get = |s: &str| totals.iter().find(|(k, _)| k == s).map(|(_, v)| *v);
    if let (Some(e1), Some(e4)) = (get("e1"), get("e4")) {
        entries.push(Json::obj(vec![
            ("name", Json::str("serve/speedup_e4_vs_e1")),
            ("ratio", Json::Num(e1 / e4)),
        ]));
    }
    if let (Some(att), Some(e4)) = (get("attached"), get("e4")) {
        entries.push(Json::obj(vec![
            ("name", Json::str("serve/speedup_e4_vs_attached")),
            ("ratio", Json::Num(att / e4)),
        ]));
    }

    Ok(Json::obj(vec![
        ("schema", Json::str("qnn-bench/serve/v1")),
        ("requests_per_precision", Json::Num(n as f64)),
        ("window", Json::Num(WINDOW as f64)),
        (
            "profile",
            Json::str(if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }),
        ),
        ("benchmarks", Json::Arr(entries)),
    ]))
}

/// Entry point behind `qnn-bench serve-bench`; returns the process exit
/// code. `--write` regenerates the baseline; otherwise the fresh numbers
/// are gated against it exactly like `bench-check`.
pub fn run(cfg: &ServeBenchConfig) -> i32 {
    let baseline_path = cfg.baseline.as_deref().unwrap_or(BASELINE_PATH);
    let current = match measure(cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("serve-bench: {e}");
            return 1;
        }
    };
    if cfg.write {
        if let Err(e) = std::fs::write(baseline_path, current.render()) {
            eprintln!("serve-bench: cannot write {baseline_path}: {e}");
            return 1;
        }
        println!("\nwrote {baseline_path}");
        return 0;
    }
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "serve-bench: cannot read baseline {baseline_path}: {e} \
                 (regenerate with `qnn-bench serve-bench --write`)"
            );
            return 1;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("serve-bench: baseline {baseline_path} is not valid JSON: {e}");
            return 1;
        }
    };
    println!("serve-bench: gating against {baseline_path}");
    // A checking run has no attached server, so `*_attached` baseline
    // entries are excused; any other gated entry must be re-measured.
    let allowed = ["serve/*_attached"];
    match regression::check_with(
        &baseline,
        &current,
        regression::tolerance_from_env(),
        &allowed,
    ) {
        Ok(outcome) => {
            print!("\n{}", outcome.render());
            i32::from(!outcome.passed())
        }
        Err(e) => {
            eprintln!("serve-bench: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_flat_and_lowercase() {
        let sweep = Precision::paper_sweep();
        for p in &sweep {
            let s = slug(p);
            assert!(!s.is_empty());
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "slug {s:?} has odd characters"
            );
            assert!(!s.ends_with('_'), "slug {s:?} has a trailing separator");
        }
        assert_eq!(slug(&Precision::fixed(8, 8)), "fixed_point_8_8");
    }

    #[test]
    fn percentile_is_nearest_rank_and_total_on_singletons() {
        assert_eq!(percentile(&[], 99), 0.0);
        assert_eq!(percentile(&[5.0], 50), 5.0);
        assert_eq!(percentile(&[5.0], 99), 5.0);
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50), 51.0);
        assert_eq!(percentile(&v, 99), 100.0);
    }

    #[test]
    fn mini_serve_bench_round_trips_against_itself() {
        // A tiny end-to-end run: write a baseline into a temp dir, then
        // re-check against it — same machine, moments apart, must pass.
        let dir = std::env::temp_dir().join(format!("serve-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("BENCH_serve.json");
        let mut cfg = ServeBenchConfig {
            quick: true,
            write: true,
            attach: None,
            baseline: Some(baseline.to_string_lossy().into_owned()),
        };
        assert_eq!(run(&cfg), 0, "write run must succeed");
        let text = std::fs::read_to_string(&baseline).unwrap();
        let report = Json::parse(&text).unwrap();
        let names: Vec<&str> = report
            .get("benchmarks")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(|b| b.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"serve/total_e1"));
        assert!(names.contains(&"serve/total_e4"));
        assert!(names.contains(&"serve/fixed_point_8_8_e1"));
        assert!(names.contains(&"serve/speedup_e4_vs_e1"));
        // Re-measure in check mode with a generous tolerance: the point
        // is the plumbing (parse, compare, exit code), not the timing.
        std::env::set_var("QNN_BENCH_TOLERANCE", "1000.0");
        cfg.write = false;
        let code = run(&cfg);
        std::env::remove_var("QNN_BENCH_TOLERANCE");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(code, 0, "self-check must pass");
    }
}
