//! Benchmark regression gate behind `qnn-bench bench-check`.
//!
//! Compares a freshly measured kernel report against the committed
//! `BENCH_kernels.json` baseline and fails when any shared benchmark's
//! median slowed down by more than the tolerance factor.
//!
//! Only entries carrying `ns_per_op` in *both* reports are compared:
//! that automatically skips derived ratio-only entries (e.g. the
//! blocked-vs-naive speedup) and machine-dependent names (the threaded
//! GEMM embeds the worker count in its name).
//!
//! A baseline entry that the fresh run did not produce is a **failure**
//! (`missing_gated`) unless the caller allowlists it via
//! [`check_with`]'s single-`*` wildcard patterns — a gate that silently
//! skips a vanished suite is not a gate. Expected gaps (quick CI runs
//! skip the mini-sweep; no attached server during bench-check) are
//! declared at the call site, e.g. `table4/*` or `serve/*_attached`,
//! and render as `allowed` rather than `MISSING`. Entries only in the
//! current run stay informational. The rendered report ends with a
//! one-line verdict per suite (the name segment before the first `/`).
//!
//! Native-kernel speedup ratios (`speedup_*_vs_f32*` entries) are
//! additionally gated in the *current* run: a ratio below 1.0 means a
//! "fast path" that is slower than the f32 reference, which is a
//! failure with its own `NATIVE-SLOWDOWN` verdict — not a silently
//! committed number.

use crate::json::Json;

/// Default slowdown tolerance: fail when `current > baseline * 1.25`
/// (a >25 % regression of the median).
pub const DEFAULT_TOLERANCE: f64 = 1.25;

/// One benchmark present in both reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Baseline median, ns/op.
    pub baseline_ns: f64,
    /// Current median, ns/op.
    pub current_ns: f64,
}

impl Comparison {
    /// Current-over-baseline slowdown factor (>1 = slower now).
    pub fn factor(&self) -> f64 {
        self.current_ns / self.baseline_ns
    }
}

/// The result of one baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// Every benchmark present (with `ns_per_op`) in both reports.
    pub compared: Vec<Comparison>,
    /// The subset of `compared` exceeding the tolerance.
    pub regressions: Vec<Comparison>,
    /// Names with timings only in the baseline report.
    pub only_baseline: Vec<String>,
    /// The subset of `only_baseline` NOT covered by an allowed-missing
    /// pattern: gated benchmarks the fresh run failed to produce. Any
    /// entry here fails the check.
    pub missing_gated: Vec<String>,
    /// Names with timings only in the current report.
    pub only_current: Vec<String>,
    /// `speedup_*_vs_f32*` ratios from the current run that fell below
    /// 1.0 — native kernels slower than the f32 reference. Any entry
    /// here fails the check.
    pub native_slowdowns: Vec<(String, f64)>,
    /// The slowdown factor the check ran with.
    pub tolerance: f64,
}

impl CheckOutcome {
    /// Whether the gate passes: no benchmark regressed past tolerance,
    /// every gated baseline entry was produced by the fresh run, AND no
    /// native kernel ran slower than its f32 reference.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
            && self.missing_gated.is_empty()
            && self.native_slowdowns.is_empty()
    }

    /// One verdict line per suite (the name segment before the first
    /// `/`): `REGRESSED` beats `MISSING` beats `ok` beats `allowed`.
    fn suite_verdicts(&self) -> Vec<String> {
        // suite -> (compared, regressed, slowdowns, missing, allowed)
        let mut suites: std::collections::BTreeMap<&str, (u64, u64, u64, u64, u64)> =
            std::collections::BTreeMap::new();
        fn suite_of(name: &str) -> &str {
            name.split('/').next().unwrap_or(name)
        }
        for c in &self.compared {
            suites.entry(suite_of(&c.name)).or_default().0 += 1;
        }
        for c in &self.regressions {
            suites.entry(suite_of(&c.name)).or_default().1 += 1;
        }
        for (n, _) in &self.native_slowdowns {
            suites.entry(suite_of(n)).or_default().2 += 1;
        }
        for n in &self.missing_gated {
            suites.entry(suite_of(n)).or_default().3 += 1;
        }
        for n in &self.only_baseline {
            if !self.missing_gated.contains(n) {
                suites.entry(suite_of(n)).or_default().4 += 1;
            }
        }
        suites
            .iter()
            .map(
                |(suite, &(compared, regressed, slowdowns, missing, allowed))| {
                    let verdict = if regressed > 0 {
                        format!("REGRESSED ({regressed} of {compared})")
                    } else if slowdowns > 0 {
                        format!("NATIVE-SLOWDOWN ({slowdowns} kernel(s) below 1.0x vs f32)")
                    } else if missing > 0 {
                        format!("MISSING ({missing} gated entr{} absent)", plural_y(missing))
                    } else if compared > 0 {
                        format!("ok ({compared} compared)")
                    } else {
                        format!("allowed-skip ({allowed} baseline-only)")
                    };
                    format!("  {suite:<24} {verdict}\n")
                },
            )
            .collect()
    }

    /// Human-readable report, one line per compared benchmark, with
    /// regressions and gated-but-missing entries called out by name, and
    /// a per-suite verdict summary at the end.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let pct = |f: f64| (f - 1.0) * 100.0;
        for c in &self.compared {
            let f = c.factor();
            let verdict = if f > self.tolerance {
                "REGRESSED"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "  {verdict:9} {:44} {:>12.0} -> {:>12.0} ns/op ({:+.1}%)\n",
                c.name,
                c.baseline_ns,
                c.current_ns,
                pct(f)
            ));
        }
        for n in &self.only_baseline {
            if self.missing_gated.contains(n) {
                out.push_str(&format!(
                    "  MISSING   {n:44} (in baseline, absent from this run)\n"
                ));
            } else {
                out.push_str(&format!(
                    "  allowed   {n:44} (baseline only, allowlisted)\n"
                ));
            }
        }
        for n in &self.only_current {
            out.push_str(&format!("  skipped   {n:44} (current only)\n"));
        }
        for (n, ratio) in &self.native_slowdowns {
            out.push_str(&format!(
                "  SLOWDOWN  {n:44} native kernel at {ratio:.2}x vs f32 (must be >= 1.0)\n"
            ));
        }
        out.push_str("suite verdicts:\n");
        for line in self.suite_verdicts() {
            out.push_str(&line);
        }
        if self.passed() {
            out.push_str(&format!(
                "bench-check passed: {} benchmarks within {:.0}% of baseline\n",
                self.compared.len(),
                pct(self.tolerance)
            ));
        } else {
            out.push_str(&format!(
                "bench-check FAILED: {} of {} benchmarks regressed more than {:.0}%, \
                 {} gated benchmark(s) missing from this run, \
                 {} native kernel(s) slower than f32:\n",
                self.regressions.len(),
                self.compared.len(),
                pct(self.tolerance),
                self.missing_gated.len(),
                self.native_slowdowns.len()
            ));
            for c in &self.regressions {
                out.push_str(&format!(
                    "  {} is {:.1}% slower than the committed baseline\n",
                    c.name,
                    pct(c.factor())
                ));
            }
            for n in &self.missing_gated {
                out.push_str(&format!(
                    "  {n} is in the committed baseline but this run did not produce it\n"
                ));
            }
            for (n, ratio) in &self.native_slowdowns {
                out.push_str(&format!(
                    "  {n} reports a native kernel at {ratio:.2}x vs f32 — a slowdown, not a speedup\n"
                ));
            }
        }
        out
    }
}

fn plural_y(n: u64) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

/// Single-`*` glob used by the allowed-missing lists: `table4/*` matches
/// any name under that prefix, `serve/*_attached` a prefix and a suffix,
/// a pattern without `*` matches exactly. One wildcard is all the
/// allowlists need; a second `*` is treated literally.
pub fn wildcard_match(pattern: &str, name: &str) -> bool {
    match pattern.split_once('*') {
        None => pattern == name,
        Some((prefix, suffix)) => {
            name.len() >= prefix.len() + suffix.len()
                && name.starts_with(prefix)
                && name.ends_with(suffix)
        }
    }
}

/// Extracts `name -> ns_per_op` from a kernels report, ignoring entries
/// without a timing (ratio-only rows).
fn timings(report: &Json) -> Result<Vec<(String, f64)>, String> {
    let benches = report
        .get("benchmarks")
        .and_then(Json::as_arr)
        .ok_or("report has no \"benchmarks\" array")?;
    let mut out = Vec::new();
    for b in benches {
        let name = b
            .get("name")
            .and_then(Json::as_str)
            .ok_or("benchmark entry without a \"name\"")?;
        if let Some(ns) = b.get("ns_per_op").and_then(Json::as_f64) {
            out.push((name.to_string(), ns));
        }
    }
    Ok(out)
}

/// Extracts `speedup_*_vs_f32*` ratio entries — the native-kernel
/// speedups each kernel suite derives from its own f32 reference. Other
/// ratio entries (e.g. blocked-vs-naive) are not native-vs-f32 claims
/// and are left alone.
fn native_speedups(report: &Json) -> Vec<(String, f64)> {
    let Some(benches) = report.get("benchmarks").and_then(Json::as_arr) else {
        return Vec::new();
    };
    benches
        .iter()
        .filter_map(|b| {
            let name = b.get("name").and_then(Json::as_str)?;
            let case = name.split('/').next_back().unwrap_or(name);
            if !(wildcard_match("speedup_*_vs_f32", case)
                || wildcard_match("speedup_*_vs_f32_1t", case))
            {
                return None;
            }
            Some((name.to_string(), b.get("ratio").and_then(Json::as_f64)?))
        })
        .collect()
}

/// [`check_with`] and an empty allowlist: every baseline entry the
/// fresh run did not produce fails the gate.
pub fn check(baseline: &Json, current: &Json, tolerance: f64) -> Result<CheckOutcome, String> {
    check_with(baseline, current, tolerance, &[])
}

/// Compares two kernel reports (parsed `qnn-bench/kernels/v1` JSON).
///
/// `allowed_missing` is a list of [`wildcard_match`] patterns naming
/// baseline entries the fresh run is excused from producing; any other
/// baseline-only entry lands in [`CheckOutcome::missing_gated`] and
/// fails the check.
///
/// # Errors
///
/// Returns a message when either report is structurally not a kernels
/// report, or when a baseline timing is non-positive (a corrupt
/// baseline must not silently pass the gate).
pub fn check_with(
    baseline: &Json,
    current: &Json,
    tolerance: f64,
    allowed_missing: &[&str],
) -> Result<CheckOutcome, String> {
    if !(tolerance.is_finite() && tolerance > 0.0) {
        return Err(format!(
            "tolerance must be a positive factor, got {tolerance}"
        ));
    }
    let base = timings(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = timings(current).map_err(|e| format!("current: {e}"))?;
    let mut compared = Vec::new();
    let mut only_baseline = Vec::new();
    for (name, baseline_ns) in &base {
        match cur.iter().find(|(n, _)| n == name) {
            Some((_, current_ns)) => {
                if *baseline_ns <= 0.0 {
                    return Err(format!(
                        "baseline: benchmark {name} has non-positive ns_per_op {baseline_ns}"
                    ));
                }
                compared.push(Comparison {
                    name: name.clone(),
                    baseline_ns: *baseline_ns,
                    current_ns: *current_ns,
                });
            }
            None => only_baseline.push(name.clone()),
        }
    }
    let only_current = cur
        .iter()
        .filter(|(n, _)| !base.iter().any(|(bn, _)| bn == n))
        .map(|(n, _)| n.clone())
        .collect();
    let regressions = compared
        .iter()
        .filter(|c| c.factor() > tolerance)
        .cloned()
        .collect();
    let missing_gated = only_baseline
        .iter()
        .filter(|n| !allowed_missing.iter().any(|p| wildcard_match(p, n)))
        .cloned()
        .collect();
    let native_slowdowns = native_speedups(current)
        .into_iter()
        .filter(|(_, ratio)| *ratio < 1.0)
        .collect();
    Ok(CheckOutcome {
        compared,
        regressions,
        only_baseline,
        missing_gated,
        only_current,
        native_slowdowns,
        tolerance,
    })
}

/// The tolerance to run with: `QNN_BENCH_TOLERANCE` (a slowdown factor,
/// e.g. `1.5`) or [`DEFAULT_TOLERANCE`].
pub fn tolerance_from_env() -> f64 {
    tolerance_from_env_or(DEFAULT_TOLERANCE)
}

/// Like [`tolerance_from_env`] but with a caller-chosen fallback, for
/// gates whose binding contract is same-run ratios rather than absolute
/// ns/op (absolute timings on shared CI hosts spike; ratios divide out
/// machine speed).
pub fn tolerance_from_env_or(default: f64) -> f64 {
    std::env::var("QNN_BENCH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t > 0.0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, Option<f64>)]) -> Json {
        Json::obj(vec![
            ("schema", Json::str("qnn-bench/kernels/v1")),
            (
                "benchmarks",
                Json::Arr(
                    entries
                        .iter()
                        .map(|(name, ns)| {
                            let mut pairs = vec![("name", Json::str(*name))];
                            match ns {
                                Some(ns) => pairs.push(("ns_per_op", Json::Num(*ns))),
                                None => pairs.push(("ratio", Json::Num(10.0))),
                            }
                            Json::obj(pairs)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn passes_within_tolerance_fails_beyond() {
        let base = report(&[("a", Some(100.0)), ("b", Some(100.0))]);
        // 24% slower is within the 25% gate; 26% slower is not.
        let ok = check(
            &base,
            &report(&[("a", Some(124.0)), ("b", Some(90.0))]),
            1.25,
        )
        .unwrap();
        assert!(ok.passed());
        assert_eq!(ok.compared.len(), 2);
        let bad = check(
            &base,
            &report(&[("a", Some(126.0)), ("b", Some(90.0))]),
            1.25,
        )
        .unwrap();
        assert!(!bad.passed());
        assert_eq!(bad.regressions.len(), 1);
        assert_eq!(bad.regressions[0].name, "a");
    }

    #[test]
    fn boundary_factor_exactly_at_tolerance_passes() {
        let base = report(&[("a", Some(100.0))]);
        let out = check(&base, &report(&[("a", Some(125.0))]), 1.25).unwrap();
        assert!(out.passed(), "gate is strict-greater-than");
    }

    #[test]
    fn ratio_only_and_current_only_entries_are_skipped_not_failed() {
        let base = report(&[("a", Some(100.0)), ("speedup", None)]);
        let cur = report(&[
            ("a", Some(100.0)),
            ("speedup", None),
            ("pool_4t", Some(999999.0)),
        ]);
        let out = check(&base, &cur, 1.25).unwrap();
        assert!(out.passed());
        assert_eq!(out.compared.len(), 1);
        assert_eq!(out.only_current, vec!["pool_4t".to_string()]);
        assert!(out.render().contains("current only"));
    }

    #[test]
    fn baseline_only_entries_fail_unless_allowlisted() {
        // The bug this pins: a gated suite vanishing from the fresh run
        // used to render as "skipped" and pass. It must fail now.
        let base = report(&[("a", Some(100.0)), ("serve/soak", Some(50.0))]);
        let cur = report(&[("a", Some(100.0))]);
        let out = check(&base, &cur, 1.25).unwrap();
        assert!(!out.passed());
        assert_eq!(out.missing_gated, vec!["serve/soak".to_string()]);
        let text = out.render();
        assert!(text.contains("MISSING"), "{text}");
        assert!(text.contains("did not produce"), "{text}");

        // The same gap, declared at the call site, is an allowed skip.
        let out = check_with(&base, &cur, 1.25, &["serve/*"]).unwrap();
        assert!(out.passed());
        assert!(out.missing_gated.is_empty());
        assert_eq!(out.only_baseline, vec!["serve/soak".to_string()]);
        assert!(out.render().contains("allowlisted"), "{}", out.render());
    }

    #[test]
    fn wildcard_patterns_match_prefix_suffix_and_exact() {
        assert!(wildcard_match("table4/*", "table4/mini_sweep"));
        assert!(!wildcard_match("table4/*", "table5/mini_sweep"));
        assert!(wildcard_match("serve/*_attached", "serve/p50_attached"));
        assert!(!wildcard_match("serve/*_attached", "serve/p50_local"));
        assert!(wildcard_match("exact/name", "exact/name"));
        assert!(!wildcard_match("exact/name", "exact/name2"));
        // The pattern's fixed parts may not overlap in the name.
        assert!(!wildcard_match("abc*bcd", "abcd"));
    }

    #[test]
    fn per_suite_verdicts_rank_regressed_over_missing_over_ok() {
        let base = report(&[
            ("gemm/a", Some(100.0)),
            ("gemm/b", Some(100.0)),
            ("serve/x", Some(100.0)),
            ("table4/y", Some(100.0)),
        ]);
        let cur = report(&[("gemm/a", Some(200.0)), ("gemm/b", Some(100.0))]);
        let out = check_with(&base, &cur, 1.25, &["table4/*"]).unwrap();
        let text = out.render();
        assert!(text.contains("suite verdicts:"), "{text}");
        assert!(
            text.contains("gemm") && text.contains("REGRESSED (1 of 2)"),
            "{text}"
        );
        assert!(text.contains("MISSING (1 gated entry absent)"), "{text}");
        assert!(text.contains("allowed-skip (1 baseline-only)"), "{text}");
    }

    #[test]
    fn render_names_the_offender_and_percentage() {
        let base = report(&[("gemm/blocked", Some(100.0))]);
        let out = check(&base, &report(&[("gemm/blocked", Some(200.0))]), 1.25).unwrap();
        let text = out.render();
        assert!(text.contains("bench-check FAILED"));
        assert!(text.contains("gemm/blocked is 100.0% slower"));
    }

    fn with_ratio(name: &str, ratio: f64) -> Json {
        Json::obj(vec![("name", Json::str(name)), ("ratio", Json::Num(ratio))])
    }

    fn report_plus(entries: &[(&str, Option<f64>)], extra: Vec<Json>) -> Json {
        let r = report(entries);
        let mut benches: Vec<Json> = r.get("benchmarks").and_then(Json::as_arr).unwrap().to_vec();
        benches.extend(extra);
        Json::obj(vec![
            ("schema", Json::str("qnn-bench/kernels/v1")),
            ("benchmarks", Json::Arr(benches)),
        ])
    }

    #[test]
    fn native_speedup_below_one_fails_with_named_verdict() {
        // The bug this pins: wide-span pow2 shipped a 0.38x "speedup" and
        // the gate let it through because ratio entries were skipped. A
        // sub-1.0 native-vs-f32 ratio in the fresh run must now fail.
        let base = report(&[("qgemm_256/f32_nt_1t", Some(100.0))]);
        let cur = report_plus(
            &[("qgemm_256/f32_nt_1t", Some(100.0))],
            vec![with_ratio("qgemm_256/speedup_pow2_wide_vs_f32_1t", 0.38)],
        );
        let out = check(&base, &cur, 1.25).unwrap();
        assert!(!out.passed());
        assert_eq!(out.native_slowdowns.len(), 1);
        assert_eq!(
            out.native_slowdowns[0].0,
            "qgemm_256/speedup_pow2_wide_vs_f32_1t"
        );
        let text = out.render();
        assert!(text.contains("NATIVE-SLOWDOWN"), "{text}");
        assert!(text.contains("0.38x vs f32"), "{text}");
        assert!(text.contains("a slowdown, not a speedup"), "{text}");
    }

    #[test]
    fn native_speedup_at_or_above_one_passes() {
        let base = report(&[("qgemm_256/f32_nt_1t", Some(100.0))]);
        let cur = report_plus(
            &[("qgemm_256/f32_nt_1t", Some(100.0))],
            vec![
                with_ratio("qgemm_256/speedup_fixed8_vs_f32_1t", 3.3),
                with_ratio("qgemm_256/speedup_pow2_wide_vs_f32_1t", 1.0),
            ],
        );
        let out = check(&base, &cur, 1.25).unwrap();
        assert!(out.passed(), "{}", out.render());
        assert!(out.native_slowdowns.is_empty());
    }

    #[test]
    fn non_f32_ratio_entries_are_not_slowdown_gated() {
        // blocked-vs-naive compares two of our own kernels; it makes no
        // native-vs-reference claim and stays informational.
        let base = report(&[("matmul_256/naive_1t", Some(100.0))]);
        let cur = report_plus(
            &[("matmul_256/naive_1t", Some(100.0))],
            vec![with_ratio("matmul_256/speedup_blocked_vs_naive_1t", 0.5)],
        );
        let out = check(&base, &cur, 1.25).unwrap();
        assert!(out.passed(), "{}", out.render());
    }

    #[test]
    fn baseline_slowdown_does_not_fail_only_current_run_is_gated() {
        // The committed history may contain pre-overhaul sub-1.0 ratios;
        // the gate judges what this run produced, not the archive.
        let base = report_plus(
            &[("qgemm_256/f32_nt_1t", Some(100.0))],
            vec![with_ratio("qgemm_256/speedup_pow2_vs_f32_1t", 0.91)],
        );
        let cur = report_plus(
            &[("qgemm_256/f32_nt_1t", Some(100.0))],
            vec![with_ratio("qgemm_256/speedup_pow2_vs_f32_1t", 1.4)],
        );
        let out = check(&base, &cur, 1.25).unwrap();
        assert!(out.passed(), "{}", out.render());
    }

    #[test]
    fn structural_errors_are_reported() {
        let not_a_report = Json::obj(vec![("schema", Json::str("x"))]);
        let base = report(&[("a", Some(100.0))]);
        assert!(check(&not_a_report, &base, 1.25)
            .unwrap_err()
            .contains("baseline"));
        assert!(check(&base, &not_a_report, 1.25)
            .unwrap_err()
            .contains("current"));
        assert!(check(&base, &base, 0.0).is_err());
        let zero = report(&[("a", Some(0.0))]);
        assert!(check(&zero, &base, 1.25)
            .unwrap_err()
            .contains("non-positive"));
    }

    #[test]
    fn parses_committed_baseline_shape() {
        // A miniature of the committed artifact: mixed ns_per_op and
        // ratio entries parse and compare cleanly against themselves.
        let text = report(&[("m/naive_1t", Some(123.0)), ("m/speedup", None)]).render();
        let parsed = Json::parse(&text).unwrap();
        let out = check(&parsed, &parsed, DEFAULT_TOLERANCE).unwrap();
        assert!(out.passed());
        assert_eq!(out.compared.len(), 1);
    }
}
