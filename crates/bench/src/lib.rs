#![warn(missing_docs)]

//! # qnn-bench — benchmark harness
//!
//! This crate exists for its `benches/` directory: one Criterion target
//! per table/figure of the paper (see DESIGN.md §5 for the index). Each
//! bench regenerates its artifact's dataset, prints it paper-vs-measured,
//! and times the representative computational kernels.
//!
//! Run everything with `cargo bench --workspace`, or one artifact with
//! e.g. `cargo bench -p qnn-bench --bench table3_design_metrics`.

/// Scale selector shared by the heavy (training-based) benches: set
/// `QNN_BENCH_SCALE=smoke|reduced|full` (default `reduced`).
pub fn bench_scale() -> qnn_core::experiments::ExperimentScale {
    match std::env::var("QNN_BENCH_SCALE").as_deref() {
        Ok("smoke") => qnn_core::experiments::ExperimentScale::Smoke,
        Ok("full") => qnn_core::experiments::ExperimentScale::Full,
        _ => qnn_core::experiments::ExperimentScale::Reduced,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_scale_is_reduced() {
        // Only meaningful when the env var is unset, which is the CI case.
        if std::env::var("QNN_BENCH_SCALE").is_err() {
            assert_eq!(
                super::bench_scale(),
                qnn_core::experiments::ExperimentScale::Reduced
            );
        }
    }
}
