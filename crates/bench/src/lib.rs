#![warn(missing_docs)]

//! # qnn-bench — offline benchmark harness
//!
//! A zero-dependency benchmark suite: [`timer`] is a hand-rolled
//! warmup + median-of-N timer, [`kernels`] benchmarks the compute core's
//! hot paths (blocked vs naive GEMM, convolution, quantization, a full
//! training step) and emits the committed `BENCH_kernels.json` artifact,
//! [`regression`] gates CI against that committed baseline
//! (`bench-check`), [`pareto`] gates the committed autotuner frontier
//! `PARETO_tune.json` against a fresh `qnn tune` run
//! (`bench-check --pareto`), [`tracereport`] summarizes `qnn-trace`
//! JSONL files,
//! [`soak`] is the `serve-soak` load generator that proves every
//! `qnn-serve` response bit-identical to a single-shot forward,
//! [`clustersoak`] is its cluster-level sibling (`cluster-soak`): the
//! same bit-identity verifier aimed at a `qnn router`, with a
//! deterministic mid-soak `SIGKILL` of a shard worker,
//! [`servebench`] is the `serve-bench` serving-throughput benchmark that
//! emits and gates the committed `BENCH_serve.json` artifact,
//! [`sync`] is the `sync-check` gate that `ci.sh` and the workflow file
//! mirror each other, and [`artifacts`] regenerates every table/figure
//! of the paper (see DESIGN.md §5 for the index).
//!
//! Run the kernel suite (and write `BENCH_kernels.json`) with
//! `cargo run -p qnn-bench --release --bin qnn-bench`, or a single
//! artifact with e.g. `cargo run -p qnn-bench --release -- table3`.

pub mod artifacts;
pub mod clustersoak;
pub mod json;
pub mod kernels;
pub mod pareto;
pub mod qcheck;
pub mod regression;
pub mod reloadsoak;
pub mod servebench;
pub mod soak;
pub mod sync;
pub mod timer;
pub mod tracereport;

/// Scale selector shared by the heavy (training-based) artifacts: set
/// `QNN_BENCH_SCALE=smoke|reduced|full` (default `reduced`).
pub fn bench_scale() -> qnn_core::experiments::ExperimentScale {
    match std::env::var("QNN_BENCH_SCALE").as_deref() {
        Ok("smoke") => qnn_core::experiments::ExperimentScale::Smoke,
        Ok("full") => qnn_core::experiments::ExperimentScale::Full,
        _ => qnn_core::experiments::ExperimentScale::Reduced,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_scale_is_reduced() {
        // Only meaningful when the env var is unset, which is the CI case.
        if std::env::var("QNN_BENCH_SCALE").is_err() {
            assert_eq!(
                super::bench_scale(),
                qnn_core::experiments::ExperimentScale::Reduced
            );
        }
    }
}
