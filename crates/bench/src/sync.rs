//! `sync-check` — proves `ci.sh` and `.github/workflows/ci.yml` agree.
//!
//! Both files promise, in their own header comments, to mirror each
//! other stage-for-stage. This module makes that promise a gate: it
//! parses the ordered list of `stage NAME ...` invocations out of the
//! shell script and the ordered list of job ids out of the workflow's
//! `jobs:` mapping, and fails on any drift — a stage missing from either
//! side, or the two lists disagreeing on order.

use std::fmt::Write as _;

/// Stage names from a `ci.sh`-style script: the second token of every
/// line whose first token is `stage`, in file order.
pub fn sh_stages(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let mut tokens = line.split_whitespace();
        if tokens.next() == Some("stage") {
            if let Some(name) = tokens.next() {
                out.push(name.to_string());
            }
        }
    }
    out
}

/// Job ids from a GitHub-Actions workflow: the keys indented exactly two
/// spaces under the top-level `jobs:` mapping, in file order. This is a
/// deliberately narrow parser — it understands the one YAML shape our
/// workflow uses, not YAML.
pub fn yml_jobs(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_jobs = false;
    for line in text.lines() {
        if line.trim_end() == "jobs:" {
            in_jobs = true;
            continue;
        }
        if !in_jobs {
            continue;
        }
        // Another top-level key ends the jobs mapping.
        if !line.is_empty() && !line.starts_with(' ') && !line.starts_with('#') {
            break;
        }
        // A job id: exactly two spaces of indent, `name:` with nothing
        // after the colon but trailing space/comment.
        if let Some(rest) = line.strip_prefix("  ") {
            if rest.starts_with(' ') || rest.starts_with('#') {
                continue;
            }
            if let Some(key) = rest.trim_end().strip_suffix(':') {
                if !key.is_empty() && !key.contains(' ') {
                    out.push(key.to_string());
                }
            }
        }
    }
    out
}

/// Compares the two ordered stage lists; `Ok` holds the report for a
/// matching pair, `Err` the drift diagnosis.
///
/// # Errors
///
/// A rendered report naming every stage missing from either side (or the
/// order mismatch), ready to print.
pub fn compare(sh: &[String], yml: &[String]) -> Result<String, String> {
    if sh == yml {
        let mut report = format!("sync-check: {} stage(s) in lockstep\n", sh.len());
        for name in sh {
            let _ = writeln!(report, "  {name}");
        }
        return Ok(report);
    }
    let mut report = String::from("sync-check: ci.sh and ci.yml have drifted\n");
    for name in sh {
        if !yml.contains(name) {
            let _ = writeln!(report, "  missing from ci.yml jobs: {name}");
        }
    }
    for name in yml {
        if !sh.contains(name) {
            let _ = writeln!(report, "  missing from ci.sh stages: {name}");
        }
    }
    if sh
        .iter()
        .filter(|n| yml.contains(*n))
        .ne(yml.iter().filter(|n| sh.contains(*n)))
    {
        let _ = writeln!(report, "  shared stages are ordered differently");
    }
    let _ = writeln!(report, "  ci.sh : {}", sh.join(" "));
    let _ = writeln!(report, "  ci.yml: {}", yml.join(" "));
    Err(report)
}

/// Reads both files, parses, compares, prints; returns the process exit
/// code (0 in sync, 1 on drift or unreadable files).
pub fn run(sh_path: &str, yml_path: &str) -> i32 {
    let sh_text = match std::fs::read_to_string(sh_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sync-check: cannot read {sh_path}: {e}");
            return 1;
        }
    };
    let yml_text = match std::fs::read_to_string(yml_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sync-check: cannot read {yml_path}: {e}");
            return 1;
        }
    };
    let sh = sh_stages(&sh_text);
    let yml = yml_jobs(&yml_text);
    if sh.is_empty() {
        eprintln!("sync-check: no `stage NAME` lines found in {sh_path}");
        return 1;
    }
    match compare(&sh, &yml) {
        Ok(report) => {
            print!("{report}");
            0
        }
        Err(report) => {
            eprint!("{report}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn sh_parser_takes_the_second_token_of_stage_lines() {
        let text = "#!/bin/sh\nstage fmt cargo fmt\n  indented stage not-counted\n\
                    stage build cargo build\nSTAGES=\"x\"\n";
        assert_eq!(sh_stages(text), v(&["fmt", "build"]));
    }

    #[test]
    fn yml_parser_takes_two_space_keys_under_jobs() {
        let text = "name: ci\non:\n  push:\njobs:\n  fmt:\n    name: fmt\n    steps:\n\
                    \x20     - run: x\n  build:\n    runs-on: ubuntu\nextra: 1\n  straggler:\n";
        assert_eq!(yml_jobs(text), v(&["fmt", "build"]));
    }

    #[test]
    fn matching_lists_pass() {
        assert!(compare(&v(&["a", "b"]), &v(&["a", "b"])).is_ok());
    }

    #[test]
    fn missing_stage_is_named() {
        let err = compare(&v(&["a", "b"]), &v(&["a"])).unwrap_err();
        assert!(err.contains("missing from ci.yml jobs: b"), "{err}");
    }

    #[test]
    fn order_drift_is_detected() {
        let err = compare(&v(&["a", "b"]), &v(&["b", "a"])).unwrap_err();
        assert!(err.contains("ordered differently"), "{err}");
    }

    #[test]
    fn the_repo_ci_files_are_actually_in_sync() {
        // The gate, run as a unit test too: the committed ci.sh and
        // ci.yml must agree right now, not just when the CI stage runs.
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let sh = std::fs::read_to_string(format!("{root}/ci.sh")).unwrap();
        let yml = std::fs::read_to_string(format!("{root}/.github/workflows/ci.yml")).unwrap();
        let report = compare(&sh_stages(&sh), &yml_jobs(&yml));
        assert!(report.is_ok(), "{}", report.unwrap_err());
    }
}
