//! `bench-check --pareto` — gates the committed autotuner Pareto front.
//!
//! `qnn tune` commits its energy/accuracy frontier as `PARETO_tune.json`
//! (schema `qnn-tune-pareto/v1`). This module makes that artifact a
//! regression gate: every committed frontier point must still be
//! *attainable* by a freshly tuned front. A committed point `c` is
//! covered when some fresh point `f` satisfies
//!
//! ```text
//! f.accuracy_pct >= c.accuracy_pct - acc_tol
//! f.energy_uj    <= c.energy_uj * (1 + energy_tol)
//! ```
//!
//! i.e. the fresh front reaches at least the committed accuracy at no
//! more than the committed energy, within small tolerances. A committed
//! point with no such witness fails with its own `PARETO-DOMINATED`
//! verdict — the code change pushed the frontier backwards (or the
//! artifact is stale and must be regenerated). An artifact that fails to
//! parse, or a fresh front with zero points, is likewise a failure: a
//! gate that silently accepts an empty frontier is not a gate.
//!
//! The tune pipeline is bit-deterministic at a fixed seed, so at head
//! the fresh and committed fronts are identical and the tolerances only
//! absorb deliberate, reviewed movement.

use crate::json::Json;

/// Default accuracy slack, in percentage points: a fresh point may sit
/// this far below a committed point's accuracy and still cover it.
pub const DEFAULT_ACC_TOL_PCT: f64 = 0.5;

/// Default energy slack, as a fraction: a fresh point may cost this much
/// more than a committed point and still cover it.
pub const DEFAULT_ENERGY_TOL: f64 = 0.05;

/// One frontier point read back from a `qnn-tune-pareto/v1` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// The assignment label (unique within a front).
    pub label: String,
    /// Test accuracy, percent.
    pub accuracy_pct: f64,
    /// Energy per image, microjoules.
    pub energy_uj: f64,
}

/// A committed point and the fresh point that covers it, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct Coverage {
    /// The committed frontier point being gated.
    pub point: ParetoPoint,
    /// Label of the first fresh point within tolerance; `None` means the
    /// committed point is no longer attainable (`PARETO-DOMINATED`).
    pub covered_by: Option<String>,
}

/// The result of one committed-vs-fresh frontier comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoOutcome {
    /// One entry per committed frontier point, in artifact order.
    pub coverage: Vec<Coverage>,
    /// Size of the fresh front the committed points were matched against.
    pub fresh_count: usize,
    /// Accuracy slack the check ran with, percentage points.
    pub acc_tol: f64,
    /// Energy slack the check ran with, a fraction.
    pub energy_tol: f64,
}

impl ParetoOutcome {
    /// Whether the gate passes: every committed point is covered.
    pub fn passed(&self) -> bool {
        self.coverage.iter().all(|c| c.covered_by.is_some())
    }

    /// The committed points no fresh point covers.
    pub fn dominated(&self) -> Vec<&Coverage> {
        self.coverage
            .iter()
            .filter(|c| c.covered_by.is_none())
            .collect()
    }

    /// Human-readable report: one line per committed point, a suite
    /// verdict, and a pass/fail summary naming each lost point.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.coverage {
            match &c.covered_by {
                Some(f) => out.push_str(&format!(
                    "  ok        {:48} {:6.2} % {:9.3} uJ  covered by {f}\n",
                    c.point.label, c.point.accuracy_pct, c.point.energy_uj
                )),
                None => out.push_str(&format!(
                    "  DOMINATED {:48} {:6.2} % {:9.3} uJ  no fresh point within \
                     {:.2} pct-pt / +{:.0}% energy\n",
                    c.point.label,
                    c.point.accuracy_pct,
                    c.point.energy_uj,
                    self.acc_tol,
                    self.energy_tol * 100.0
                )),
            }
        }
        let lost = self.dominated();
        out.push_str("suite verdicts:\n");
        if lost.is_empty() {
            out.push_str(&format!(
                "  tune-pareto              ok ({} committed point(s) covered)\n",
                self.coverage.len()
            ));
            out.push_str(&format!(
                "pareto-check passed: {} committed frontier point(s) covered by a \
                 {}-point fresh front\n",
                self.coverage.len(),
                self.fresh_count
            ));
        } else {
            out.push_str(&format!(
                "  tune-pareto              PARETO-DOMINATED ({} of {} committed \
                 points uncovered)\n",
                lost.len(),
                self.coverage.len()
            ));
            out.push_str(&format!(
                "pareto-check FAILED: {} of {} committed frontier points have no \
                 fresh point within {:.2} accuracy pct-pt and +{:.0}% energy:\n",
                lost.len(),
                self.coverage.len(),
                self.acc_tol,
                self.energy_tol * 100.0
            ));
            for c in &lost {
                out.push_str(&format!(
                    "  {} ({:.2} % / {:.3} uJ) is no longer attainable — \
                     regenerate PARETO_tune.json or fix the regression\n",
                    c.point.label, c.point.accuracy_pct, c.point.energy_uj
                ));
            }
        }
        out
    }
}

/// Reads the frontier out of a parsed `qnn-tune-pareto/v1` artifact.
///
/// # Errors
///
/// Returns a message when the schema tag is wrong, the `frontier` array
/// is missing, or any point lacks a label / finite accuracy / positive
/// finite energy — a corrupt artifact must not silently pass the gate.
pub fn parse_front(doc: &Json) -> Result<Vec<ParetoPoint>, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("artifact has no \"schema\" string")?;
    if schema != "qnn-tune-pareto/v1" {
        return Err(format!(
            "unexpected schema \"{schema}\" (want qnn-tune-pareto/v1)"
        ));
    }
    let frontier = doc
        .get("frontier")
        .and_then(Json::as_arr)
        .ok_or("artifact has no \"frontier\" array")?;
    let mut out = Vec::new();
    for p in frontier {
        let label = p
            .get("label")
            .and_then(Json::as_str)
            .ok_or("frontier entry without a \"label\"")?;
        let accuracy_pct = p
            .get("accuracy_pct")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("frontier point {label} has no numeric \"accuracy_pct\""))?;
        let energy_uj = p
            .get("energy_uj")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("frontier point {label} has no numeric \"energy_uj\""))?;
        if !(accuracy_pct.is_finite() && energy_uj.is_finite() && energy_uj > 0.0) {
            return Err(format!(
                "frontier point {label} has unusable numbers \
                 (accuracy {accuracy_pct}, energy {energy_uj})"
            ));
        }
        out.push(ParetoPoint {
            label: label.to_string(),
            accuracy_pct,
            energy_uj,
        });
    }
    Ok(out)
}

/// Gates a committed front against a freshly tuned one.
///
/// # Errors
///
/// Returns a message when either artifact is structurally not a tune
/// front, when either frontier is empty (an empty fresh front means the
/// tune produced no converged points — a failure, not a vacuous pass),
/// or when a tolerance is negative or non-finite.
pub fn check(
    committed: &Json,
    fresh: &Json,
    acc_tol: f64,
    energy_tol: f64,
) -> Result<ParetoOutcome, String> {
    if !(acc_tol.is_finite() && acc_tol >= 0.0 && energy_tol.is_finite() && energy_tol >= 0.0) {
        return Err(format!(
            "tolerances must be non-negative and finite, got {acc_tol} pct-pt / {energy_tol}"
        ));
    }
    let commit = parse_front(committed).map_err(|e| format!("committed: {e}"))?;
    let fresh_pts = parse_front(fresh).map_err(|e| format!("fresh: {e}"))?;
    if commit.is_empty() {
        return Err("committed: frontier is empty — regenerate PARETO_tune.json".into());
    }
    if fresh_pts.is_empty() {
        return Err("fresh: frontier is empty — the tune run produced no converged points".into());
    }
    let coverage = commit
        .iter()
        .map(|c| {
            let covered_by = fresh_pts
                .iter()
                .find(|f| {
                    f.accuracy_pct >= c.accuracy_pct - acc_tol
                        && f.energy_uj <= c.energy_uj * (1.0 + energy_tol)
                })
                .map(|f| f.label.clone());
            Coverage {
                point: c.clone(),
                covered_by,
            }
        })
        .collect();
    Ok(ParetoOutcome {
        coverage,
        fresh_count: fresh_pts.len(),
        acc_tol,
        energy_tol,
    })
}

/// The accuracy slack to run with: `QNN_PARETO_ACC_TOL` (percentage
/// points) or [`DEFAULT_ACC_TOL_PCT`].
pub fn acc_tol_from_env() -> f64 {
    tol_env("QNN_PARETO_ACC_TOL", DEFAULT_ACC_TOL_PCT)
}

/// The energy slack to run with: `QNN_PARETO_ENERGY_TOL` (a fraction,
/// e.g. `0.05`) or [`DEFAULT_ENERGY_TOL`].
pub fn energy_tol_from_env() -> f64 {
    tol_env("QNN_PARETO_ENERGY_TOL", DEFAULT_ENERGY_TOL)
}

fn tol_env(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 0.0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn front(points: &[(&str, f64, f64)]) -> Json {
        Json::obj(vec![
            ("schema", Json::str("qnn-tune-pareto/v1")),
            (
                "frontier",
                Json::Arr(
                    points
                        .iter()
                        .map(|(label, acc, uj)| {
                            Json::obj(vec![
                                ("label", Json::str(*label)),
                                ("accuracy_pct", Json::Num(*acc)),
                                ("energy_uj", Json::Num(*uj)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn identical_fronts_pass_even_at_zero_tolerance() {
        let f = front(&[("a", 95.0, 10.0), ("b", 80.0, 5.0)]);
        let out = check(&f, &f, 0.0, 0.0).unwrap();
        assert!(out.passed(), "{}", out.render());
        assert_eq!(out.coverage.len(), 2);
        assert!(out.render().contains("pareto-check passed"));
    }

    #[test]
    fn a_strictly_better_fresh_front_covers_the_committed_one() {
        let committed = front(&[("a", 95.0, 10.0)]);
        let fresh = front(&[("better", 96.0, 9.0)]);
        let out = check(&committed, &fresh, 0.0, 0.0).unwrap();
        assert!(out.passed());
        assert_eq!(out.coverage[0].covered_by.as_deref(), Some("better"));
        assert!(out.render().contains("covered by better"));
    }

    #[test]
    fn an_uncovered_committed_point_fails_with_the_dominated_verdict() {
        // Fresh accuracy dropped 2 pct-pt at the committed energy: the
        // committed point is no longer attainable.
        let committed = front(&[("good", 95.0, 10.0), ("cheap", 80.0, 5.0)]);
        let fresh = front(&[("worse", 93.0, 10.0), ("cheap", 80.0, 5.0)]);
        let out = check(&committed, &fresh, 0.5, 0.05).unwrap();
        assert!(!out.passed());
        assert_eq!(out.dominated().len(), 1);
        assert_eq!(out.dominated()[0].point.label, "good");
        let text = out.render();
        assert!(text.contains("PARETO-DOMINATED (1 of 2"), "{text}");
        assert!(text.contains("good"), "{text}");
        assert!(text.contains("no longer attainable"), "{text}");
    }

    #[test]
    fn coverage_is_inclusive_at_the_tolerance_boundary() {
        let committed = front(&[("a", 95.0, 10.0)]);
        // Exactly acc_tol below and exactly (1 + energy_tol) above.
        let fresh = front(&[("edge", 94.5, 10.5)]);
        let out = check(&committed, &fresh, 0.5, 0.05).unwrap();
        assert!(out.passed(), "{}", out.render());
        // One hair past either bound fails.
        let fresh = front(&[("past", 94.4, 10.5)]);
        assert!(!check(&committed, &fresh, 0.5, 0.05).unwrap().passed());
        let fresh = front(&[("past", 94.5, 10.6)]);
        assert!(!check(&committed, &fresh, 0.5, 0.05).unwrap().passed());
    }

    #[test]
    fn energy_tolerance_is_relative_not_absolute() {
        let committed = front(&[("a", 95.0, 100.0)]);
        // +5 uJ on a 100 uJ point is within +5%; on a 10 uJ point it
        // would not be.
        let fresh = front(&[("a5", 95.0, 105.0)]);
        assert!(check(&committed, &fresh, 0.0, 0.05).unwrap().passed());
        let committed = front(&[("b", 95.0, 10.0)]);
        let fresh = front(&[("b5", 95.0, 15.0)]);
        assert!(!check(&committed, &fresh, 0.0, 0.05).unwrap().passed());
    }

    #[test]
    fn empty_fresh_front_is_an_error_not_a_vacuous_pass() {
        let committed = front(&[("a", 95.0, 10.0)]);
        let fresh = front(&[]);
        let e = check(&committed, &fresh, 0.5, 0.05).unwrap_err();
        assert!(e.contains("no converged points"), "{e}");
        let e = check(&fresh, &committed, 0.5, 0.05).unwrap_err();
        assert!(e.contains("committed"), "{e}");
    }

    #[test]
    fn structural_errors_name_the_side_and_the_defect() {
        let good = front(&[("a", 95.0, 10.0)]);
        let wrong_schema = Json::obj(vec![
            ("schema", Json::str("qnn-bench/kernels/v1")),
            ("frontier", Json::Arr(vec![])),
        ]);
        let e = check(&wrong_schema, &good, 0.5, 0.05).unwrap_err();
        assert!(
            e.contains("committed") && e.contains("unexpected schema"),
            "{e}"
        );

        let no_energy = Json::obj(vec![
            ("schema", Json::str("qnn-tune-pareto/v1")),
            (
                "frontier",
                Json::Arr(vec![Json::obj(vec![
                    ("label", Json::str("x")),
                    ("accuracy_pct", Json::Num(90.0)),
                ])]),
            ),
        ]);
        let e = check(&good, &no_energy, 0.5, 0.05).unwrap_err();
        assert!(e.contains("fresh") && e.contains("energy_uj"), "{e}");

        let zero_energy = front(&[("x", 90.0, 0.0)]);
        assert!(check(&good, &zero_energy, 0.5, 0.05)
            .unwrap_err()
            .contains("unusable"));

        assert!(check(&good, &good, -1.0, 0.05).is_err());
        assert!(check(&good, &good, 0.5, f64::NAN).is_err());
    }

    #[test]
    fn parses_the_artifact_qnn_tune_actually_writes() {
        // Cross-crate contract: render_json from the tune driver must
        // stay readable by this gate.
        use qnn_core::experiments::{ExperimentScale, TunePoint, TuneResult};
        let point = |label: &str, acc: f32, uj: f64| TunePoint {
            label: label.to_string(),
            assignment: vec![qnn_quant::Precision::fixed(8, 8); 4],
            acc_bits: vec![20, 24, 24, 24],
            accuracy_pct: acc,
            energy_uj: uj,
        };
        let result = TuneResult {
            benchmark: "lenet".to_string(),
            scale: ExperimentScale::Smoke,
            seed: 42,
            evaluated: 23,
            points: vec![point("uniform/fixed<8,8>", 96.0, 8.0)],
            frontier: vec![
                point("mix/binary|binary|binary|binary", 72.0, 4.7),
                point("uniform/fixed<8,8>", 96.0, 8.0),
            ],
        };
        let doc = Json::parse(&result.render_json()).unwrap();
        let pts = parse_front(&doc).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].label, "uniform/fixed<8,8>");
        assert!((pts[1].accuracy_pct - 96.0).abs() < 1e-6);
        let out = check(&doc, &doc, 0.0, 0.0).unwrap();
        assert!(out.passed(), "{}", out.render());
    }
}
