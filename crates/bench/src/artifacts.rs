//! Paper-artifact regenerators: one function per table/figure, each
//! printing the regenerated dataset (model vs. paper where available)
//! with a short timing line from the hand-rolled [`crate::timer`].

use crate::bench_scale;
use crate::timer::{black_box, Bencher};
use qnn_accel::AcceleratorDesign;
use qnn_core::experiments::{
    breakdown, design_metrics, memory_report, table4, table5, BreakdownRow, DesignRow,
    ExperimentScale, MemoryRow, Table5Row,
};
use qnn_core::pareto::{pareto_frontier, DesignPoint};
use qnn_data::{standard_splits, DatasetKind, Splits};
use qnn_nn::{memory, zoo, ActivationCalibration, Network, QatConfig, Trainer, TrainerConfig};
use qnn_quant::calibrate::Method;
use qnn_quant::Precision;
use qnn_tensor::Tensor;

/// Table III — design metrics per precision (model vs paper).
pub fn table3() {
    println!("\n=== Table III — design metrics per precision (model vs paper) ===\n");
    println!("{}", DesignRow::render(&design_metrics()));
    let b = Bencher::default();
    let m = b.run("table3/full_table", || {
        black_box(design_metrics());
    });
    println!("[timing] full table: {:.1} µs/op", m.ns_per_op / 1e3);
}

/// Table IV — MNIST/SVHN-class accuracy and energy.
pub fn table4_artifact() {
    let scale = bench_scale();
    println!("\n=== Table IV (accuracy at {scale:?} scale; energy from full Table I nets) ===\n");
    match table4(scale, 42) {
        Ok(t) => println!("{}", t.render()),
        Err(e) => println!("table4 failed: {e}"),
    }
    let lenet_wl = zoo::lenet().workload().unwrap();
    let b = Bencher::default();
    let m = b.run("table4/energy_eval_lenet_all_precisions", || {
        for p in Precision::paper_sweep() {
            black_box(
                AcceleratorDesign::new(p)
                    .energy_per_image(black_box(&lenet_wl))
                    .total_uj(),
            );
        }
    });
    println!(
        "[timing] energy eval, all precisions: {:.1} µs/op",
        m.ns_per_op / 1e3
    );
}

/// Table V — CIFAR-class accuracy/energy for ALEX, ALEX+ and ALEX++.
pub fn table5_artifact() {
    let scale = bench_scale();
    println!("\n=== Table V (accuracy at {scale:?} scale; energy from full Table I/II nets) ===\n");
    match table5(scale, 42) {
        Ok(rows) => println!("{}", Table5Row::render(&rows)),
        Err(e) => println!("table5 failed: {e}"),
    }
}

/// Figure 3 — area and power breakdown by synthesis category.
pub fn fig3() {
    println!("\n=== Figure 3 — area & power breakdown by category ===\n");
    let bars = breakdown();
    println!("{}", BreakdownRow::render(&bars));
    println!("Buffer dominance (paper: 75-93% power, 76-96% area):");
    for p in Precision::paper_sweep() {
        let d = AcceleratorDesign::new(p);
        println!(
            "  {:26} {:5.1}% power, {:5.1}% area",
            p.label(),
            d.buffer_power_fraction() * 100.0,
            d.buffer_area_fraction() * 100.0
        );
    }
}

fn published_points() -> Vec<DesignPoint> {
    qnn_core::paper::table5()
        .into_iter()
        .map(|(net, p, acc, e)| {
            let suffix = match net {
                "alex+" => "+",
                "alex++" => "++",
                _ => "",
            };
            DesignPoint::new(format!("{}{}", p.label(), suffix), acc, e)
        })
        .collect()
}

/// Figure 4 — the accuracy-vs-energy Pareto frontier.
pub fn fig4() {
    println!("\n=== Figure 4 — Pareto frontier over the paper's published points ===\n");
    let points = published_points();
    let frontier = pareto_frontier(&points);
    for p in &points {
        let on = frontier.iter().any(|f| f == p);
        println!(
            "{} {:28} {:9.2} uJ  {:5.2}%",
            if on { "*" } else { " " },
            p.label,
            p.energy_uj,
            p.accuracy_pct
        );
    }
    println!("\n=== Figure 4 — regenerated at smoke scale ===\n");
    match table5(ExperimentScale::Smoke, 42) {
        Ok(rows) => {
            let pts = Table5Row::to_design_points(&rows);
            let front = pareto_frontier(&pts);
            for p in &front {
                println!(
                    "* {:32} {:9.2} uJ  {:5.1}%",
                    p.label, p.energy_uj, p.accuracy_pct
                );
            }
        }
        Err(e) => println!("regeneration failed: {e}"),
    }
    let b = Bencher::default();
    let m = b.run("fig4/pareto_frontier_published_points", || {
        black_box(pareto_frontier(black_box(&points)));
    });
    println!(
        "\n[timing] frontier extraction: {:.2} µs/op",
        m.ns_per_op / 1e3
    );
}

/// §V-B memory footprints — parameter memory per network per precision.
pub fn memory_artifact() {
    println!("\n=== §V-B — parameter memory (paper: ~1650/2150/350/1250/9400 KB at FP32) ===\n");
    match memory_report() {
        Ok(rows) => println!("{}", MemoryRow::render(&rows)),
        Err(e) => println!("memory report failed: {e}"),
    }
    let specs = zoo::all_paper_networks();
    let b = Bencher::default();
    let m = b.run("memory/footprint_all_networks_all_precisions", || {
        for spec in &specs {
            for p in Precision::paper_sweep() {
                black_box(memory::footprint(spec, p).unwrap());
            }
        }
    });
    println!("[timing] all footprints: {:.1} µs/op", m.ns_per_op / 1e3);
}

fn trainer(ste_clip: bool) -> Trainer {
    Trainer::new(TrainerConfig {
        epochs: 4,
        batch_size: 32,
        lr: 0.05,
        ste_clip,
        ..TrainerConfig::default()
    })
    .unwrap()
}

/// Returns (fp_accuracy, pretrained net, trainer) on the glyphs benchmark.
fn pretrain(splits: &Splits) -> (f32, Network, Trainer) {
    let t = trainer(true);
    let mut net = Network::build(&zoo::lenet_small(), 5).unwrap();
    t.train(&mut net, splits.train.images(), splits.train.labels())
        .unwrap();
    let acc = t
        .evaluate(&mut net, splits.test.images(), splits.test.labels())
        .unwrap();
    (acc * 100.0, net, t)
}

fn qat_accuracy(splits: &Splits, state: &[Tensor], qat: &QatConfig, t: &Trainer) -> f32 {
    let mut net = Network::build(&zoo::lenet_small(), 5).unwrap();
    net.load_state(state).unwrap();
    t.train_qat(
        &mut net,
        qat,
        splits.train.images(),
        splits.train.labels(),
        64,
    )
    .unwrap();
    t.evaluate(&mut net, splits.test.images(), splits.test.labels())
        .unwrap()
        * 100.0
}

fn ptq_accuracy(splits: &Splits, state: &[Tensor], precision: Precision, t: &Trainer) -> f32 {
    let mut net = Network::build(&zoo::lenet_small(), 5).unwrap();
    net.load_state(state).unwrap();
    let calib = splits.train.take(&(0..64).collect::<Vec<_>>());
    net.set_precision(
        precision,
        Method::MaxAbs,
        calib.images(),
        ActivationCalibration::PerLayer,
    )
    .unwrap();
    t.evaluate(&mut net, splits.test.images(), splits.test.labels())
        .unwrap()
        * 100.0
}

/// Ablations over the design choices DESIGN.md calls out:
///
/// 1. **QAT vs. post-training quantization** — is the retraining phase
///    (the paper's §IV-A techniques) actually earning its keep?
/// 2. **STE clipping on/off** — BinaryConnect's clipped estimator vs. the
///    plain pass-through.
/// 3. **Calibration rule** — max-abs vs. 99th-percentile range fitting.
/// 4. **Activation radix** — per-layer (Ristretto) vs. one global radix
///    (single-radix hardware; the paper's future-work motivation).
///
/// Each ablation trains at smoke scale and prints a comparison.
pub fn ablations() {
    println!("\n=== Ablations (glyphs28 @ smoke scale, lenet-small) ===\n");
    let splits = standard_splits(DatasetKind::Glyphs28, 400, 300, 77);
    let (fp, fp_net, t) = pretrain(&splits);
    let state = fp_net.state_dict();
    println!("full-precision baseline: {fp:.1}%\n");

    // 1. QAT vs PTQ at aggressive precisions.
    for p in [Precision::fixed(4, 4), Precision::binary()] {
        let ptq = ptq_accuracy(&splits, &state, p, &t);
        let qat = qat_accuracy(&splits, &state, &QatConfig::new(p), &t);
        println!(
            "[qat-vs-ptq]    {:24} PTQ {ptq:5.1}%  QAT {qat:5.1}%  (QAT gain {:+.1})",
            p.label(),
            qat - ptq
        );
    }

    // 2. STE clip on/off for binary.
    let t_noclip = trainer(false);
    let clip = qat_accuracy(&splits, &state, &QatConfig::new(Precision::binary()), &t);
    let noclip = qat_accuracy(
        &splits,
        &state,
        &QatConfig::new(Precision::binary()),
        &t_noclip,
    );
    println!("\n[ste-clip]      binary: clipped {clip:.1}%  unclipped {noclip:.1}%");

    // 3. Calibration rule at 4 bits.
    let maxabs = qat_accuracy(&splits, &state, &QatConfig::new(Precision::fixed(4, 4)), &t);
    let pct = qat_accuracy(
        &splits,
        &state,
        &QatConfig {
            method: Method::Percentile(0.99),
            ..QatConfig::new(Precision::fixed(4, 4))
        },
        &t,
    );
    println!("\n[calibration]   fixed(4,4): max-abs {maxabs:.1}%  p99 {pct:.1}%");

    // 4. Per-layer vs global activation radix at 8 bits.
    let per_layer = qat_accuracy(&splits, &state, &QatConfig::new(Precision::fixed(8, 8)), &t);
    let global = qat_accuracy(
        &splits,
        &state,
        &QatConfig {
            activation_calibration: ActivationCalibration::Global,
            ..QatConfig::new(Precision::fixed(8, 8))
        },
        &t,
    );
    println!("\n[act-radix]     fixed(8,8): per-layer {per_layer:.1}%  global {global:.1}%");
    println!("                (per-layer radix is the multi-radix hardware the paper names as future work)");

    // Extension sweeps enabled by the model (dimensions the paper scoped out).
    println!("\n[minifloat]     custom float geometries (future work):");
    match qnn_core::experiments::minifloat_sweep(false, ExperimentScale::Smoke, 1) {
        Ok(rows) => println!("{}", qnn_core::experiments::MinifloatRow::render(&rows)),
        Err(e) => println!("  failed: {e}"),
    }
    println!("[tile-scaling]  accelerator size at fixed(16,16) (dimension the paper scoped out):");
    match qnn_core::experiments::tile_scaling(Precision::fixed(16, 16)) {
        Ok(rows) => println!("{}", qnn_core::experiments::TileRow::render(&rows)),
        Err(e) => println!("  failed: {e}"),
    }
}
