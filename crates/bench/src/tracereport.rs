//! Offline reader for `qnn-trace/v1` JSONL files, behind
//! `qnn-bench trace-summary <path>`.
//!
//! A trace written with `qnn-bench --trace run.jsonl table4` can be
//! summarized later (or on another machine) without re-running the
//! experiment: spans aggregate by name, counters/gauges/histograms print
//! as recorded.

use std::collections::BTreeMap;

use qnn_trace::Histogram;

use crate::json::Json;

/// Per-span-name aggregate.
#[derive(Debug, Default, Clone, Copy)]
struct SpanAgg {
    calls: u64,
    total_ns: u64,
}

fn field_f64(obj: &Json, key: &str, line_no: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("line {line_no}: missing numeric field \"{key}\""))
}

fn field_str<'a>(obj: &'a Json, key: &str, line_no: usize) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {line_no}: missing string field \"{key}\""))
}

/// Parses a `qnn-trace/v1` JSONL document and renders an aggregate
/// summary: spans by name (call count, total milliseconds), then
/// counters, gauges, and histogram statistics.
///
/// # Errors
///
/// Returns a message naming the first malformed line: unparsable JSON,
/// a missing field, an unknown event type, or a wrong/missing schema
/// marker.
pub fn summarize(jsonl: &str) -> Result<String, String> {
    let mut spans: BTreeMap<String, SpanAgg> = BTreeMap::new();
    let mut counters: BTreeMap<String, f64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
    let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut saw_meta = false;
    let mut events = 0u64;

    for (i, line) in jsonl.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let obj = Json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        let ty = field_str(&obj, "type", line_no)?;
        match ty {
            "meta" => {
                let schema = field_str(&obj, "schema", line_no)?;
                if schema != "qnn-trace/v1" {
                    return Err(format!("line {line_no}: unsupported schema \"{schema}\""));
                }
                saw_meta = true;
            }
            "span_start" => events += 1,
            "span_end" => {
                events += 1;
                let name = field_str(&obj, "name", line_no)?.to_string();
                let dur = field_f64(&obj, "dur_ns", line_no)?;
                let agg = spans.entry(name).or_default();
                agg.calls += 1;
                agg.total_ns += dur as u64;
            }
            "counter" => {
                let name = field_str(&obj, "name", line_no)?.to_string();
                counters.insert(name, field_f64(&obj, "total", line_no)?);
            }
            "gauge" => {
                let name = field_str(&obj, "name", line_no)?.to_string();
                gauges.insert(name, field_f64(&obj, "value", line_no)?);
            }
            "hist" => {
                let name = field_str(&obj, "name", line_no)?.to_string();
                // Sparse [lower_edge, count] pairs reconstruct the full
                // log2-bucket histogram, so quantiles come back exact.
                let mut buckets: Vec<(f64, u64)> = Vec::new();
                let arr = obj
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("line {line_no}: missing array field \"buckets\""))?;
                for pair in arr {
                    let pair = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| format!("line {line_no}: bucket is not a pair"))?;
                    let lower = pair[0]
                        .as_f64()
                        .ok_or_else(|| format!("line {line_no}: bucket edge not numeric"))?;
                    let count = pair[1]
                        .as_f64()
                        .ok_or_else(|| format!("line {line_no}: bucket count not numeric"))?;
                    buckets.push((lower, count as u64));
                }
                let h = Histogram::from_sparse(
                    &buckets,
                    field_f64(&obj, "sum", line_no)?,
                    field_f64(&obj, "min", line_no)?,
                    field_f64(&obj, "max", line_no)?,
                );
                let declared = field_f64(&obj, "count", line_no)? as u64;
                if h.count != declared {
                    return Err(format!(
                        "line {line_no}: bucket counts sum to {}, \"count\" says {declared}",
                        h.count
                    ));
                }
                hists.insert(name, h);
            }
            other => return Err(format!("line {line_no}: unknown event type \"{other}\"")),
        }
    }
    if !saw_meta {
        return Err("no qnn-trace/v1 meta line found — is this a trace file?".into());
    }

    let mut out = String::new();
    out.push_str(&format!(
        "trace summary ({events} span events)\n\nspans by name (calls, total ms):\n"
    ));
    if spans.is_empty() {
        out.push_str("  (none)\n");
    }
    for (name, agg) in &spans {
        out.push_str(&format!(
            "  {:40} {:>8} {:>12.3}\n",
            name,
            agg.calls,
            agg.total_ns as f64 / 1e6
        ));
    }
    out.push_str("\ncounters:\n");
    if counters.is_empty() {
        out.push_str("  (none)\n");
    }
    for (name, total) in &counters {
        out.push_str(&format!("  {name:40} {total:>16.0}\n"));
    }
    // Derived line: what fraction of forward MAC flops took the native
    // quantized fast path. The two counters are emitted by qnn-nn's Eval
    // dispatch, so any trace of an inference run carries them.
    let native = counters.get("nn.fwd.flops.native").copied();
    let simulated = counters.get("nn.fwd.flops.simulated").copied();
    if native.is_some() || simulated.is_some() {
        let native = native.unwrap_or(0.0);
        let total = native + simulated.unwrap_or(0.0);
        let pct = if total > 0.0 {
            100.0 * native / total
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:40} {pct:>15.1}%\n",
            "fwd MACs on native fast path"
        ));
    }
    // Derived line: achieved serving throughput — requests the engine
    // answered per second of engine batch time. Any serve trace carries
    // both inputs (the `serve.requests` counter and the `serve.batch`
    // span), so serve-soak's summary reports images/sec for free.
    if let (Some(reqs), Some(batch)) = (counters.get("serve.requests"), spans.get("serve.batch")) {
        if batch.total_ns > 0 {
            let ips = reqs / (batch.total_ns as f64 / 1e9);
            out.push_str(&format!(
                "  {:40} {ips:>16.1}\n",
                "serve images/sec (engine busy time)"
            ));
        }
    }
    // Derived lines: cluster failover health. A router trace carries
    // `router.requests` (successful relays) plus the failure-path
    // counters; surfacing them as rates makes a cluster-soak artifact
    // readable at a glance — a healthy kill-one-shard run shows a small
    // failover count and zero (or few) ShardDown rejections.
    if let Some(reqs) = counters.get("router.requests").copied() {
        let failovers = counters.get("router.failover").copied().unwrap_or(0.0);
        let down = counters.get("router.shard_down").copied().unwrap_or(0.0);
        out.push_str(&format!(
            "  {:40} {failovers:>13.0} ({:.2}%)\n",
            "router failovers (vs requests)",
            if reqs > 0.0 {
                100.0 * failovers / reqs
            } else {
                0.0
            }
        ));
        out.push_str(&format!(
            "  {:40} {down:>13.0} ({:.2}%)\n",
            "router ShardDown rejections",
            if reqs > 0.0 { 100.0 * down / reqs } else { 0.0 }
        ));
    }
    // Derived lines: model-lifecycle health. A trace from a server that
    // saw hot-reload traffic carries `serve.reload.attempted` plus the
    // promoted/rejected split and the promote-latency histogram — the
    // reload-soak artifact's one-glance answer to "did the lifecycle
    // behave": attempts reconcile with outcomes, and time-to-promote
    // stays bounded.
    if let Some(attempted) = counters.get("serve.reload.attempted").copied() {
        let promoted = counters
            .get("serve.reload.promoted")
            .copied()
            .unwrap_or(0.0);
        let rejected = counters
            .get("serve.reload.rejected")
            .copied()
            .unwrap_or(0.0);
        out.push_str(&format!(
            "  {:40} {attempted:>5.0} attempted: {promoted:.0} promoted, {rejected:.0} rejected\n",
            "model reloads"
        ));
        if let Some(h) = hists.get("serve.reload.promote_us") {
            if h.count > 0 {
                out.push_str(&format!(
                    "  {:40} {:>9.0}us p50 {:>9.0}us p99\n",
                    "time to promote",
                    h.quantile(0.5),
                    h.quantile(0.99),
                ));
            }
        }
    }
    out.push_str("\ngauges:\n");
    if gauges.is_empty() {
        out.push_str("  (none)\n");
    }
    for (name, value) in &gauges {
        out.push_str(&format!("  {name:40} {value:>16.4}\n"));
    }
    out.push_str("\nhistograms (count, mean, p50, p99, min, max):\n");
    if hists.is_empty() {
        out.push_str("  (none)\n");
    }
    for (name, h) in &hists {
        let (min, max) = if h.count == 0 {
            (0.0, 0.0)
        } else {
            (h.min, h.max)
        };
        out.push_str(&format!(
            "  {name:40} {:>8} {:>12.5} {:>12.5} {:>12.5} {min:>12.5} {max:>12.5}\n",
            h.count,
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.99),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_a_real_trace() {
        // Build a trace through the real collector so the test pins the
        // writer and the reader to the same schema.
        qnn_trace::start();
        {
            qnn_trace::span!("outer");
            {
                qnn_trace::span!("inner");
            }
            {
                qnn_trace::span!("inner");
            }
            qnn_trace::counter!("work.items", 42);
            qnn_trace::gauge!("energy.uj", 1.5);
            qnn_trace::observe!("err", 0.25);
        }
        let trace = qnn_trace::stop();
        let text = summarize(&trace.to_jsonl()).unwrap();
        assert!(text.contains("outer"), "{text}");
        assert!(text.contains("inner"), "{text}");
        assert!(text.contains("work.items"), "{text}");
        assert!(text.contains("42"), "{text}");
        assert!(text.contains("energy.uj"), "{text}");
        assert!(text.contains("err"), "{text}");
        // Two "inner" calls aggregate into one row.
        assert_eq!(text.matches("inner").count(), 1, "{text}");
    }

    #[test]
    fn derives_native_fast_path_fraction() {
        let jsonl = "\
{\"type\": \"meta\", \"schema\": \"qnn-trace/v1\"}\n\
{\"type\": \"counter\", \"name\": \"nn.fwd.flops.native\", \"total\": 300}\n\
{\"type\": \"counter\", \"name\": \"nn.fwd.flops.simulated\", \"total\": 100}";
        let text = summarize(jsonl).unwrap();
        assert!(text.contains("fwd MACs on native fast path"), "{text}");
        assert!(text.contains("75.0%"), "{text}");

        // One counter alone still yields the line (all-simulated run).
        let sim_only = "\
{\"type\": \"meta\", \"schema\": \"qnn-trace/v1\"}\n\
{\"type\": \"counter\", \"name\": \"nn.fwd.flops.simulated\", \"total\": 100}";
        let text = summarize(sim_only).unwrap();
        assert!(text.contains("fwd MACs on native fast path"), "{text}");
        assert!(text.contains("0.0%"), "{text}");

        // No MAC counters at all: no derived line.
        let unrelated = "\
{\"type\": \"meta\", \"schema\": \"qnn-trace/v1\"}\n\
{\"type\": \"counter\", \"name\": \"work.items\", \"total\": 7}";
        let text = summarize(unrelated).unwrap();
        assert!(!text.contains("fast path"), "{text}");
    }

    #[test]
    fn derives_achieved_serving_throughput() {
        // 500 requests over 0.25 s of engine batch time = 2000 images/sec.
        let jsonl = "\
{\"type\": \"meta\", \"schema\": \"qnn-trace/v1\"}\n\
{\"type\": \"counter\", \"name\": \"serve.requests\", \"total\": 500}\n\
{\"type\": \"span_end\", \"name\": \"serve.batch\", \"dur_ns\": 250000000}";
        let text = summarize(jsonl).unwrap();
        assert!(text.contains("serve images/sec"), "{text}");
        assert!(text.contains("2000.0"), "{text}");

        // A trace with no serve events has no derived throughput line.
        let other = "{\"type\": \"meta\", \"schema\": \"qnn-trace/v1\"}";
        assert!(!summarize(other).unwrap().contains("images/sec"));
    }

    #[test]
    fn derives_router_failover_health() {
        // 200 routed requests, 4 failovers, 1 ShardDown rejection.
        let jsonl = "\
{\"type\": \"meta\", \"schema\": \"qnn-trace/v1\"}\n\
{\"type\": \"counter\", \"name\": \"router.requests\", \"total\": 200}\n\
{\"type\": \"counter\", \"name\": \"router.failover\", \"total\": 4}\n\
{\"type\": \"counter\", \"name\": \"router.shard_down\", \"total\": 1}";
        let text = summarize(jsonl).unwrap();
        assert!(text.contains("router failovers"), "{text}");
        assert!(text.contains("(2.00%)"), "{text}");
        assert!(text.contains("router ShardDown rejections"), "{text}");
        assert!(text.contains("(0.50%)"), "{text}");

        // A non-router trace has no cluster lines.
        let other = "{\"type\": \"meta\", \"schema\": \"qnn-trace/v1\"}";
        assert!(!summarize(other).unwrap().contains("failover"));
    }

    #[test]
    fn derives_reload_lifecycle_health() {
        // 5 reload attempts: 3 promoted, 2 rejected, with a promote
        // histogram for the time-to-promote line.
        let jsonl = "\
{\"type\": \"meta\", \"schema\": \"qnn-trace/v1\"}\n\
{\"type\": \"counter\", \"name\": \"serve.reload.attempted\", \"total\": 5}\n\
{\"type\": \"counter\", \"name\": \"serve.reload.promoted\", \"total\": 3}\n\
{\"type\": \"counter\", \"name\": \"serve.reload.rejected\", \"total\": 2}\n\
{\"type\": \"hist\", \"name\": \"serve.reload.promote_us\", \"count\": 3, \"sum\": 3600, \
\"min\": 1000, \"max\": 1400, \"buckets\": [[1024, 3]]}";
        let text = summarize(jsonl).unwrap();
        assert!(text.contains("model reloads"), "{text}");
        assert!(
            text.contains("5 attempted: 3 promoted, 2 rejected"),
            "{text}"
        );
        assert!(text.contains("time to promote"), "{text}");

        // Attempts without the histogram still yield the summary line.
        let no_hist = "\
{\"type\": \"meta\", \"schema\": \"qnn-trace/v1\"}\n\
{\"type\": \"counter\", \"name\": \"serve.reload.attempted\", \"total\": 1}\n\
{\"type\": \"counter\", \"name\": \"serve.reload.rejected\", \"total\": 1}";
        let text = summarize(no_hist).unwrap();
        assert!(
            text.contains("1 attempted: 0 promoted, 1 rejected"),
            "{text}"
        );
        assert!(!text.contains("time to promote"), "{text}");

        // A trace with no reload traffic has no lifecycle lines.
        let other = "{\"type\": \"meta\", \"schema\": \"qnn-trace/v1\"}";
        assert!(!summarize(other).unwrap().contains("model reloads"));
    }

    #[test]
    fn histogram_quantiles_recovered_from_sparse_buckets() {
        // 9 samples near 100 (bucket lower edge 64) and one at 100000
        // (bucket lower edge 65536): p50 sits in the low bucket, p99 in
        // the high one — recovered offline from the sparse encoding.
        let jsonl = "\
{\"type\": \"meta\", \"schema\": \"qnn-trace/v1\"}\n\
{\"type\": \"hist\", \"name\": \"lat.us\", \"count\": 10, \"sum\": 100900, \
\"min\": 100, \"max\": 100000, \"buckets\": [[64, 9], [65536, 1]]}";
        let text = summarize(jsonl).unwrap();
        assert!(text.contains("p50"), "{text}");
        assert!(text.contains("64.00000"), "p50 bucket edge: {text}");
        assert!(text.contains("65536.00000"), "p99 bucket edge: {text}");

        // A count that disagrees with the buckets is a corrupt trace.
        let bad = "\
{\"type\": \"meta\", \"schema\": \"qnn-trace/v1\"}\n\
{\"type\": \"hist\", \"name\": \"lat.us\", \"count\": 3, \"sum\": 1, \
\"min\": 1, \"max\": 1, \"buckets\": [[64, 9]]}";
        assert!(summarize(bad).unwrap_err().contains("bucket counts"), "");
    }

    #[test]
    fn rejects_non_trace_input() {
        assert!(summarize("{\"type\": \"meta\", \"schema\": \"other/v9\"}")
            .unwrap_err()
            .contains("unsupported schema"));
        assert!(summarize("{\"no_type\": 1}")
            .unwrap_err()
            .contains("line 1"));
        assert!(summarize("not json").unwrap_err().contains("line 1"));
        assert!(summarize("").unwrap_err().contains("meta"));
        let unknown = "{\"type\": \"meta\", \"schema\": \"qnn-trace/v1\"}\n{\"type\": \"mystery\"}";
        assert!(summarize(unknown).unwrap_err().contains("line 2"));
    }
}
