//! A minimal JSON writer — just enough to emit benchmark artifacts
//! without a serialization dependency.

/// A JSON value. Construct with the helper constructors and render with
/// [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite values render as `null`, as in
    /// `JSON.stringify`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        out.push_str(&format!("{}", *x as i64));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push('\n');
                    indent(out, depth + 1);
                    Json::Str(k.clone()).write(out, depth + 1);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj(vec![
            ("name", Json::str("matmul")),
            ("ns", Json::Num(1928000.0)),
            ("ratio", Json::Num(10.11)),
            ("tags", Json::Arr(vec![Json::str("a"), Json::str("b")])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = j.render();
        assert!(s.contains("\"name\": \"matmul\""));
        assert!(s.contains("\"ns\": 1928000"));
        assert!(s.contains("\"ratio\": 10.11"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::str("a\"b\\c\nd").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }
}
