//! A minimal JSON reader/writer — just enough to emit and read back
//! benchmark artifacts without a serialization dependency.

/// A JSON value. Construct with the helper constructors and render with
/// [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite values render as `null`, as in
    /// `JSON.stringify`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        out.push_str(&format!("{}", *x as i64));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push('\n');
                    indent(out, depth + 1);
                    Json::Str(k.clone()).write(out, depth + 1);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// A JSON parse failure: byte offset plus what was expected there.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parses one JSON document (rejecting trailing non-whitespace).
    ///
    /// Accepts everything [`Json::render`] and the `qnn-trace` JSONL
    /// writer emit, plus standard string escapes (`\uXXXX` including
    /// surrogate pairs) and scientific-notation numbers.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with the byte offset of the first
    /// malformed construct.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Recursive-descent parser state over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?,
                            );
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{s}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj(vec![
            ("name", Json::str("matmul")),
            ("ns", Json::Num(1928000.0)),
            ("ratio", Json::Num(10.11)),
            ("tags", Json::Arr(vec![Json::str("a"), Json::str("b")])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = j.render();
        assert!(s.contains("\"name\": \"matmul\""));
        assert!(s.contains("\"ns\": 1928000"));
        assert!(s.contains("\"ratio\": 10.11"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::str("a\"b\\c\nd").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("0").unwrap(), Json::Num(0.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\ndAé""#).unwrap(),
            Json::Str("a\"b\\c\ndAé".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn parses_nested_containers() {
        let j = Json::parse(r#"{"a": [1, {"b": null}], "c": {}}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[0].as_f64(), Some(1.0));
        assert_eq!(j.get("c"), Some(&Json::Obj(vec![])));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn round_trips_render_output() {
        let j = Json::obj(vec![
            ("name", Json::str("matmul \"x\"\n")),
            ("ns", Json::Num(1928000.0)),
            ("ratio", Json::Num(10.11)),
            ("flag", Json::Bool(false)),
            ("none", Json::Null),
            (
                "rows",
                Json::Arr(vec![
                    Json::Num(-0.5),
                    Json::Arr(vec![]),
                    Json::obj(vec![("k", Json::str("v"))]),
                ]),
            ),
        ]);
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }

    #[test]
    fn reports_error_offsets() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(e.offset, 6);
        assert!(e.to_string().contains("byte 6"));
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("01x").is_err());
        assert!(Json::parse("{} {}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
