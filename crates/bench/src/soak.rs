//! `serve-soak` — the load generator behind the serve-soak CI stage.
//!
//! Hammers a running `qnn serve` instance from several client threads,
//! cycling every request through all Table III precisions, and verifies
//! each response is **bit-identical** to a single-shot forward of the
//! same image computed locally from the shared [`qnn_serve::MODEL_SEED`]
//! model bank. `Busy` rejections are retried after the server's hint
//! (that is the backpressure contract working, and the run reports how
//! often it engaged); any other error frame, any logits mismatch, or any
//! missing response fails the run.

use std::sync::Arc;
use std::time::Instant;

use qnn_serve::{ModelBank, ServeClient, MODEL_SEED, NUM_PRECISIONS};

/// Load-generator knobs, filled from `qnn-bench serve-soak` flags.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Server address, e.g. `127.0.0.1:7117` (usually read from the
    /// server's `--port-file`).
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Total requests, striped across the client threads.
    pub requests: usize,
    /// Send a `Shutdown` frame when the soak is done (the CI stage uses
    /// this to bring the background server down and collect its trace).
    pub shutdown: bool,
    /// Model-bank seed; must match the server's.
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            addr: String::new(),
            clients: 4,
            requests: 256,
            shutdown: false,
            seed: MODEL_SEED,
        }
    }
}

/// What one soak run did.
#[derive(Debug)]
pub struct SoakOutcome {
    /// Responses verified bit-identical to their single-shot forward.
    pub verified: usize,
    /// Total `Busy` retries across all threads (backpressure engaging).
    pub busy_retries: usize,
    /// Human-readable failures; empty iff the run passed.
    pub failures: Vec<String>,
}

impl SoakOutcome {
    /// True when every request was answered and bit-identical.
    pub fn passed(&self, cfg: &SoakConfig) -> bool {
        self.failures.is_empty() && self.verified == cfg.requests
    }
}

/// Precision tag for the `i`-th soak request: round-robin through the
/// whole Table III sweep so every precision is exercised.
fn tag_for(i: usize) -> u8 {
    (i % NUM_PRECISIONS as usize) as u8
}

/// Runs the soak. Prints a progress line per thread and a summary;
/// returns the outcome for the caller to turn into an exit code.
///
/// # Errors
///
/// A `String` describing setup failures (model bank construction); the
/// per-request failures land in [`SoakOutcome::failures`] instead so one
/// bad response does not mask the rest of the report.
pub fn run(cfg: &SoakConfig) -> Result<SoakOutcome, String> {
    let started = Instant::now();
    let mut bank = ModelBank::build(cfg.seed).map_err(|e| format!("model bank: {e}"))?;
    let input_len = bank.input_len();

    // Expected logits, computed single-shot up front: the soak threads
    // themselves only move bytes and compare bits.
    let images: Vec<Vec<f32>> = (0..cfg.requests)
        .map(|i| qnn_serve::model::test_image(cfg.seed, i as u64, input_len))
        .collect();
    let mut expected: Vec<Vec<u32>> = Vec::with_capacity(cfg.requests);
    for (i, img) in images.iter().enumerate() {
        let logits = bank
            .forward_single(tag_for(i), img)
            .map_err(|e| format!("single-shot forward {i}: {e}"))?;
        expected.push(logits.iter().map(|x| x.to_bits()).collect());
    }
    println!(
        "serve-soak: {} request(s) x {} precision(s), {} client thread(s) -> {}",
        cfg.requests, NUM_PRECISIONS, cfg.clients, cfg.addr
    );

    let shared = Arc::new((images, expected));
    let clients = cfg.clients.max(1);
    let mut threads = Vec::new();
    for t in 0..clients {
        let shared = Arc::clone(&shared);
        let addr = cfg.addr.clone();
        let total = cfg.requests;
        threads.push(std::thread::spawn(move || {
            let (images, expected) = &*shared;
            let mut verified = 0usize;
            let mut busy_retries = 0usize;
            let mut failures: Vec<String> = Vec::new();
            let mut client = match ServeClient::connect(&addr) {
                Ok(c) => c,
                Err(e) => {
                    failures.push(format!("thread {t}: connect: {e}"));
                    return (verified, busy_retries, failures);
                }
            };
            for i in (t..total).step_by(clients) {
                let tag = tag_for(i);
                match client.infer_retry(tag, &images[i], 10_000) {
                    Ok((logits, retries)) => {
                        busy_retries += retries;
                        let got: Vec<u32> = logits.iter().map(|x| x.to_bits()).collect();
                        if got == expected[i] {
                            verified += 1;
                        } else {
                            failures.push(format!(
                                "request {i} (tag {tag}): logits differ from single-shot forward"
                            ));
                        }
                    }
                    Err(e) => failures.push(format!("request {i} (tag {tag}): {e}")),
                }
            }
            (verified, busy_retries, failures)
        }));
    }

    let mut outcome = SoakOutcome {
        verified: 0,
        busy_retries: 0,
        failures: Vec::new(),
    };
    for (t, th) in threads.into_iter().enumerate() {
        match th.join() {
            Ok((verified, busy, fails)) => {
                outcome.verified += verified;
                outcome.busy_retries += busy;
                outcome.failures.extend(fails);
            }
            Err(_) => outcome.failures.push(format!("thread {t} panicked")),
        }
    }

    if cfg.shutdown {
        match ServeClient::connect(&cfg.addr).and_then(|mut c| c.shutdown_server()) {
            Ok(()) => println!("serve-soak: server drained and shut down"),
            Err(e) => outcome.failures.push(format!("shutdown: {e}")),
        }
    }

    let secs = started.elapsed().as_secs_f64();
    println!(
        "serve-soak: {}/{} bit-identical, {} busy retr{}, {:.2}s ({:.0} images/sec achieved)",
        outcome.verified,
        cfg.requests,
        outcome.busy_retries,
        if outcome.busy_retries == 1 {
            "y"
        } else {
            "ies"
        },
        secs,
        if secs > 0.0 {
            outcome.verified as f64 / secs
        } else {
            0.0
        },
    );
    for f in &outcome.failures {
        eprintln!("serve-soak: FAIL: {f}");
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_serve::{ServeConfig, Server};
    use std::time::Duration;

    #[test]
    fn mini_soak_against_in_process_server() {
        let server = Server::start(ServeConfig {
            // A small queue so the soak exercises the Busy-retry path at
            // least plausibly, without making the test slow.
            max_batch: 8,
            max_wait: Duration::from_micros(500),
            queue_cap: 8,
            ..ServeConfig::default()
        })
        .unwrap();
        let cfg = SoakConfig {
            addr: server.local_addr().to_string(),
            clients: 3,
            requests: 21,
            shutdown: true,
            ..SoakConfig::default()
        };
        let outcome = run(&cfg).unwrap();
        assert!(outcome.passed(&cfg), "failures: {:?}", outcome.failures);
        let stats = server.join();
        // Retries mean a request may be *submitted* more than once, but
        // the engine answers each exactly once on its successful pass.
        assert_eq!(stats.requests, 21);
        assert_eq!(stats.rejected_busy as usize, outcome.busy_retries);
    }
}
