//! `qnn-bench` — the offline benchmark/artifact entry point.
//!
//! With no arguments it runs the kernel suite and writes
//! `BENCH_kernels.json` to the current directory. Subcommands regenerate
//! individual paper artifacts; `all` chains every one of them;
//! `bench-check` gates against the committed kernel baseline and
//! `trace-summary` reads back a `--trace` JSONL file.

use qnn_bench::json::Json;
use qnn_bench::{
    artifacts, clustersoak, kernels, pareto, qcheck, regression, reloadsoak, servebench, soak,
    sync, tracereport,
};

const USAGE: &str = "\
usage: qnn-bench [--quick] [--trace <path>] [SUBCOMMAND]

  kernels        kernel benchmarks; writes BENCH_kernels.json (default)
  bench-check [--baseline <path>] [--pareto <fresh>]
                 quick kernel run compared against the committed
                 BENCH_kernels.json; exits 1 on any >25% regression
                 (tolerance factor via QNN_BENCH_TOLERANCE, e.g. 1.25).
                 With --pareto FRESH it instead gates the committed
                 autotuner frontier (--baseline, default
                 PARETO_tune.json) against the freshly tuned front in
                 FRESH: a committed point no fresh point matches within
                 QNN_PARETO_ACC_TOL accuracy pct-pt (default 0.5) and
                 QNN_PARETO_ENERGY_TOL relative energy (default 0.05)
                 fails with a PARETO-DOMINATED verdict, as do parse
                 failures and an empty fresh front
  kernels-bench [--baseline <path>]
                 full-repetition re-run of the qgemm_256 microkernel
                 suite compared against the committed BENCH_kernels.json
                 with per-kernel verdicts; exits 1 on any >75% regression
                 or any native speedup_*_vs_f32 ratio below 1.0; a
                 failure on the absolute ns/op backstop alone gets one
                 clean re-run (recorded in the verdict) before it gates
  qkernels       native-vs-simulated bit-identity self-check of the
                 quantized fast path on this host's CPU; exits 1 on any
                 mismatch or never-dispatched packable precision
  trace-summary <path>
                 summarize a qnn-trace JSONL file written by --trace
  serve-soak --addr HOST:PORT [--clients N] [--requests M] [--shutdown]
                 load-generate against a running `qnn serve` and verify
                 every response bit-identical to a single-shot forward;
                 --shutdown drains and stops the server afterwards
  cluster-soak --addr HOST:PORT [--clients N] [--requests M]
               [--kill-pid PID] [--kill-after K] [--shutdown]
                 load-generate against a running `qnn router` and verify
                 every response bit-identical to a single-shot forward;
                 --kill-pid SIGKILLs that shard worker at a seed-derived
                 point mid-soak (override with --kill-after), --shutdown
                 drains the whole cluster afterwards
  cluster-bench  informational routed-vs-direct throughput over an
                 in-process 3-shard cluster (honours --quick; not gated)
  reload-soak --addr HOST:PORT [--clients N] [--requests M] [--cycles K]
              [--dir DIR] [--seed S] [--kill-pid PID] [--shutdown]
                 hammer a running `qnn serve` while cycling K live model
                 reloads through it; every response is verified
                 bit-identical against a local bank of whichever model
                 version the server accepted it under; --kill-pid
                 SIGKILLs the server mid-reload at a seed-chosen cycle
                 (the reload-chaos stage's crash injection)
  reload-verify --addr HOST:PORT [--seeds A,B,...] [--base S --cycles K]
                 probe a (restarted) server across every precision and
                 prove it serves exactly one complete candidate seed
                 bit-identically — never a torn bank; seeds are decimal
                 or 0x-hex, and --base/--cycles expands to the same
                 cycle-seed schedule reload-soak used (base plus K
                 derived reload seeds)
  serve-bench [--write] [--attach HOST:PORT] [--baseline <path>]
                 serving-throughput benchmark: loopback servers at 1 and
                 4 engine threads, every Table III precision, pipelined
                 client; default mode gates against the committed
                 BENCH_serve.json (exit 1 on >25% regression), --write
                 regenerates it, --attach also measures an externally
                 started server (recorded as *_attached entries)
  sync-check [--sh PATH] [--yml PATH]
                 fail if ci.sh stages and ci.yml jobs have drifted
                 (defaults: ci.sh, .github/workflows/ci.yml)
  table3         Table III  — design metrics per precision
  table4         Table IV   — MNIST/SVHN-class accuracy + energy
  table5         Table V    — CIFAR-class accuracy + energy
  fig3           Figure 3   — area/power breakdown, buffer dominance
  fig4           Figure 4   — accuracy-vs-energy Pareto frontier
  memory         \u{a7}V-B       — parameter memory per network per precision
  ablations      QAT-vs-PTQ, STE clip, calibration, radix ablations
  all            every artifact above, then the kernel suite

Flags:
  --quick        shorter kernel repetitions, mini-sweep skipped
  --trace <path> record a qnn-trace JSONL of the run to <path>

Training-based artifacts honour QNN_BENCH_SCALE=smoke|reduced|full
(default reduced) and QNN_THREADS=<n>.";

fn run_kernels(quick: bool) {
    let report = kernels::run_with(quick);
    let path = "BENCH_kernels.json";
    std::fs::write(path, report.render()).expect("write BENCH_kernels.json");
    println!("\nwrote {path}");
}

fn bench_check(baseline_path: &str) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-check: cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench-check: baseline {baseline_path} is not valid JSON: {e}");
            return 1;
        }
    };
    println!("bench-check: quick kernel run vs {baseline_path}");
    let current = kernels::run_with(true);
    let tolerance = regression::tolerance_from_env();
    // The quick run deliberately skips the mini-sweep; everything else
    // in the committed baseline must show up or the check fails.
    match regression::check_with(&baseline, &current, tolerance, &["table4/*"]) {
        Ok(outcome) => {
            print!("\n{}", outcome.render());
            i32::from(!outcome.passed())
        }
        Err(e) => {
            eprintln!("bench-check: {e}");
            1
        }
    }
}

fn kernels_bench(baseline_path: &str) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("kernels-bench: cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("kernels-bench: baseline {baseline_path} is not valid JSON: {e}");
            return 1;
        }
    };
    println!("kernels-bench: full qgemm_256 microkernel re-run vs {baseline_path}");
    // The binding contract for this leg is the same-run
    // speedup_*_vs_f32 ratios (NATIVE-SLOWDOWN verdicts), which divide
    // out machine speed; the absolute ns/op comparison is only a
    // backstop, so it gets a wider default than bench-check — one-off
    // 1.5x spikes are routine on shared single-core runners.
    let tolerance = regression::tolerance_from_env_or(1.75);
    // This leg re-runs only the microkernel suite; every other suite in
    // the committed baseline is out of scope. The qgemm entries stay
    // gated — one vanishing is a MISSING failure — and a fresh
    // speedup_*_vs_f32 ratio below 1.0 fails with its own verdict.
    const OUT_OF_SCOPE: &[&str] = &[
        "matmul_256/*",
        "conv2d/*",
        "maxpool/*",
        "quantize_4096/*",
        "quantize_262144/*",
        "lenet_small/*",
        "table4/*",
    ];
    let mut current = kernels::run_qgemm();
    let mut retried = false;
    loop {
        let outcome = match regression::check_with(&baseline, &current, tolerance, OUT_OF_SCOPE) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("kernels-bench: {e}");
                return 1;
            }
        };
        // Because the absolute comparison is only a backstop, a failure
        // on it *alone* — REGRESSED verdicts with no NATIVE-SLOWDOWN
        // and nothing MISSING — gets one clean re-run of the suite
        // before it gates: a scheduler spike on a shared runner is not
        // reproducible, a real regression is.
        let backstop_only = !outcome.passed()
            && outcome.missing_gated.is_empty()
            && outcome.native_slowdowns.is_empty();
        if backstop_only && !retried {
            retried = true;
            println!(
                "\nabsolute ns/op backstop exceeded ({} REGRESSED, nothing missing or \
                 slowed down natively); re-running the qgemm_256 suite once",
                outcome.regressions.len()
            );
            current = kernels::run_qgemm();
            continue;
        }
        print!("\n{}", outcome.render());
        if retried {
            println!(
                "verdict above is from retry 1 of 1: the first run failed only the \
                 absolute ns/op backstop"
            );
        }
        return i32::from(!outcome.passed());
    }
}

fn pareto_check(committed_path: &str, fresh_path: &str) -> i32 {
    let read = |role: &str, path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {role} front {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{role} front {path} is not valid JSON: {e}"))
    };
    let committed = match read("committed", committed_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("pareto-check: {e}");
            return 1;
        }
    };
    let fresh = match read("fresh", fresh_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("pareto-check: {e}");
            return 1;
        }
    };
    println!("pareto-check: fresh front {fresh_path} vs committed {committed_path}");
    match pareto::check(
        &committed,
        &fresh,
        pareto::acc_tol_from_env(),
        pareto::energy_tol_from_env(),
    ) {
        Ok(outcome) => {
            print!("\n{}", outcome.render());
            i32::from(!outcome.passed())
        }
        Err(e) => {
            eprintln!("pareto-check: {e}");
            1
        }
    }
}

fn trace_summary(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-summary: cannot read {path}: {e}");
            return 1;
        }
    };
    match tracereport::summarize(&text) {
        Ok(report) => {
            print!("{report}");
            0
        }
        Err(e) => {
            eprintln!("trace-summary: {path}: {e}");
            1
        }
    }
}

fn serve_soak(args: &[String]) -> i32 {
    let mut cfg = soak::SoakConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("serve-soak: {flag} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = next("--addr"),
            "--shutdown" => cfg.shutdown = true,
            "--clients" => {
                let v = next("--clients");
                cfg.clients = v.parse().unwrap_or_else(|_| {
                    eprintln!("serve-soak: --clients `{v}` is not a count");
                    std::process::exit(2);
                });
            }
            "--requests" => {
                let v = next("--requests");
                cfg.requests = v.parse().unwrap_or_else(|_| {
                    eprintln!("serve-soak: --requests `{v}` is not a count");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("serve-soak: unknown argument {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if cfg.addr.is_empty() {
        eprintln!("serve-soak: --addr is required\n\n{USAGE}");
        std::process::exit(2);
    }
    match soak::run(&cfg) {
        Ok(outcome) => i32::from(!outcome.passed(&cfg)),
        Err(e) => {
            eprintln!("serve-soak: {e}");
            1
        }
    }
}

fn cluster_soak(args: &[String]) -> i32 {
    let mut cfg = clustersoak::ClusterSoakConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("cluster-soak: {flag} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        let parse = |flag: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("cluster-soak: {flag} `{v}` is not a count");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = next("--addr"),
            "--shutdown" => cfg.shutdown = true,
            "--clients" => cfg.clients = parse("--clients", next("--clients")),
            "--requests" => cfg.requests = parse("--requests", next("--requests")),
            "--kill-after" => cfg.kill_after = Some(parse("--kill-after", next("--kill-after"))),
            "--kill-pid" => {
                let v = next("--kill-pid");
                cfg.kill_pid = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("cluster-soak: --kill-pid `{v}` is not a pid");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("cluster-soak: unknown argument {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if cfg.addr.is_empty() {
        eprintln!("cluster-soak: --addr is required\n\n{USAGE}");
        std::process::exit(2);
    }
    match clustersoak::run(&cfg) {
        Ok(outcome) => i32::from(!outcome.passed(&cfg)),
        Err(e) => {
            eprintln!("cluster-soak: {e}");
            1
        }
    }
}

fn parse_seed_arg(ctx: &str, v: &str) -> u64 {
    let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    };
    parsed.unwrap_or_else(|| {
        eprintln!("{ctx}: `{v}` is not a seed (decimal or 0x-hex)");
        std::process::exit(2);
    })
}

fn reload_soak(args: &[String]) -> i32 {
    let mut cfg = reloadsoak::ReloadSoakConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("reload-soak: {flag} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        let parse = |flag: &str, v: String| -> usize {
            v.parse().unwrap_or_else(|_| {
                eprintln!("reload-soak: {flag} `{v}` is not a count");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = next("--addr"),
            "--shutdown" => cfg.shutdown = true,
            "--clients" => cfg.clients = parse("--clients", next("--clients")),
            "--requests" => cfg.requests = parse("--requests", next("--requests")),
            "--cycles" => cfg.cycles = parse("--cycles", next("--cycles")),
            "--dir" => cfg.dir = std::path::PathBuf::from(next("--dir")),
            "--seed" => cfg.seed = parse_seed_arg("reload-soak: --seed", &next("--seed")),
            "--kill-pid" => {
                let v = next("--kill-pid");
                cfg.kill_pid = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("reload-soak: --kill-pid `{v}` is not a pid");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("reload-soak: unknown argument {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if cfg.addr.is_empty() {
        eprintln!("reload-soak: --addr is required\n\n{USAGE}");
        std::process::exit(2);
    }
    match reloadsoak::run(&cfg) {
        Ok(outcome) => i32::from(!outcome.passed(&cfg)),
        Err(e) => {
            eprintln!("reload-soak: {e}");
            1
        }
    }
}

fn reload_verify(args: &[String]) -> i32 {
    let mut addr = String::new();
    let mut seeds: Vec<u64> = Vec::new();
    let mut base: Option<u64> = None;
    let mut cycles = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("reload-verify: {flag} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = next("--addr"),
            "--seeds" => {
                seeds = next("--seeds")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| parse_seed_arg("reload-verify: --seeds", s))
                    .collect();
            }
            "--base" => base = Some(parse_seed_arg("reload-verify: --base", &next("--base"))),
            "--cycles" => {
                let v = next("--cycles");
                cycles = v.parse().unwrap_or_else(|_| {
                    eprintln!("reload-verify: --cycles `{v}` is not a count");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("reload-verify: unknown argument {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if let Some(b) = base {
        // Expand the same pure cycle-seed schedule reload-soak walked:
        // the base bank plus one derived seed per reload cycle.
        seeds.extend((0..=cycles).map(|k| reloadsoak::cycle_seed(b, k)));
        seeds.dedup();
    }
    if addr.is_empty() || seeds.is_empty() {
        eprintln!("reload-verify: --addr plus --seeds or --base is required\n\n{USAGE}");
        std::process::exit(2);
    }
    match reloadsoak::verify(&addr, &seeds) {
        Ok(seed) => {
            println!("reload-verify: server is complete on seed {seed:#x}");
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn serve_bench(quick: bool, args: &[String]) -> i32 {
    let mut cfg = servebench::ServeBenchConfig {
        quick,
        ..Default::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("serve-bench: {flag} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--write" => cfg.write = true,
            "--attach" => cfg.attach = Some(next("--attach")),
            "--baseline" => cfg.baseline = Some(next("--baseline")),
            other => {
                eprintln!("serve-bench: unknown argument {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    servebench::run(&cfg)
}

fn sync_check(args: &[String]) -> i32 {
    let mut sh_path = "ci.sh".to_string();
    let mut yml_path = ".github/workflows/ci.yml".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("sync-check: {flag} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--sh" => sh_path = next("--sh"),
            "--yml" => yml_path = next("--yml"),
            other => {
                eprintln!("sync-check: unknown argument {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    sync::run(&sh_path, &yml_path)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut trace_path: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p),
                None => {
                    eprintln!("--trace needs a path\n\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            _ => rest.push(a),
        }
    }

    if trace_path.is_some() {
        qnn_trace::start();
    }
    let code = match rest.first().map(String::as_str) {
        None | Some("kernels") => {
            run_kernels(quick);
            0
        }
        Some("bench-check") => {
            let mut baseline: Option<&str> = None;
            let mut pareto_fresh: Option<&str> = None;
            let mut i = 1;
            while i < rest.len() {
                match rest[i].as_str() {
                    flag @ ("--baseline" | "--pareto") => {
                        let Some(value) = rest.get(i + 1) else {
                            eprintln!("bench-check {flag} needs a path\n\n{USAGE}");
                            std::process::exit(2);
                        };
                        if flag == "--baseline" {
                            baseline = Some(value.as_str());
                        } else {
                            pareto_fresh = Some(value.as_str());
                        }
                        i += 2;
                    }
                    other => {
                        eprintln!("unknown bench-check argument: {other}\n\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            match pareto_fresh {
                Some(fresh) => pareto_check(baseline.unwrap_or("PARETO_tune.json"), fresh),
                None => bench_check(baseline.unwrap_or("BENCH_kernels.json")),
            }
        }
        Some("kernels-bench") => {
            let baseline = match rest.get(1).map(String::as_str) {
                None => "BENCH_kernels.json",
                Some("--baseline") => match rest.get(2) {
                    Some(p) => p.as_str(),
                    None => {
                        eprintln!("kernels-bench --baseline needs a path\n\n{USAGE}");
                        std::process::exit(2);
                    }
                },
                Some(other) => {
                    eprintln!("unknown kernels-bench argument: {other}\n\n{USAGE}");
                    std::process::exit(2);
                }
            };
            kernels_bench(baseline)
        }
        Some("qkernels") => i32::from(!qcheck::run(quick)),
        Some("serve-bench") => serve_bench(quick, &rest[1..]),
        Some("serve-soak") => serve_soak(&rest[1..]),
        Some("cluster-soak") => cluster_soak(&rest[1..]),
        Some("cluster-bench") => clustersoak::bench(quick),
        Some("reload-soak") => reload_soak(&rest[1..]),
        Some("reload-verify") => reload_verify(&rest[1..]),
        Some("sync-check") => sync_check(&rest[1..]),
        Some("trace-summary") => match rest.get(1) {
            Some(p) => trace_summary(p),
            None => {
                eprintln!("trace-summary needs a path\n\n{USAGE}");
                std::process::exit(2);
            }
        },
        Some("table3") => {
            artifacts::table3();
            0
        }
        Some("table4") => {
            artifacts::table4_artifact();
            0
        }
        Some("table5") => {
            artifacts::table5_artifact();
            0
        }
        Some("fig3") => {
            artifacts::fig3();
            0
        }
        Some("fig4") => {
            artifacts::fig4();
            0
        }
        Some("memory") => {
            artifacts::memory_artifact();
            0
        }
        Some("ablations") => {
            artifacts::ablations();
            0
        }
        Some("all") => {
            artifacts::table3();
            artifacts::fig3();
            artifacts::memory_artifact();
            artifacts::fig4();
            artifacts::table4_artifact();
            artifacts::table5_artifact();
            artifacts::ablations();
            run_kernels(quick);
            0
        }
        Some(other) => {
            eprintln!("unknown subcommand: {other}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Some(path) = trace_path {
        let trace = qnn_trace::stop();
        std::fs::write(&path, trace.to_jsonl()).expect("write trace JSONL");
        println!("wrote trace to {path}");
    }
    if code != 0 {
        std::process::exit(code);
    }
}
