//! `qnn-bench` — the offline benchmark/artifact entry point.
//!
//! With no arguments it runs the kernel suite and writes
//! `BENCH_kernels.json` to the current directory. Subcommands regenerate
//! individual paper artifacts; `all` chains every one of them.

use qnn_bench::{artifacts, kernels};

const USAGE: &str = "\
usage: qnn-bench [SUBCOMMAND]

  kernels    kernel benchmarks; writes BENCH_kernels.json (default)
  table3     Table III  — design metrics per precision
  table4     Table IV   — MNIST/SVHN-class accuracy + energy
  table5     Table V    — CIFAR-class accuracy + energy
  fig3       Figure 3   — area/power breakdown, buffer dominance
  fig4       Figure 4   — accuracy-vs-energy Pareto frontier
  memory     §V-B       — parameter memory per network per precision
  ablations  QAT-vs-PTQ, STE clip, calibration, radix ablations
  all        every artifact above, then the kernel suite

Training-based artifacts honour QNN_BENCH_SCALE=smoke|reduced|full
(default reduced) and QNN_THREADS=<n>.";

fn run_kernels() {
    let report = kernels::run();
    let path = "BENCH_kernels.json";
    std::fs::write(path, report.render()).expect("write BENCH_kernels.json");
    println!("\nwrote {path}");
}

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        None | Some("kernels") => run_kernels(),
        Some("table3") => artifacts::table3(),
        Some("table4") => artifacts::table4_artifact(),
        Some("table5") => artifacts::table5_artifact(),
        Some("fig3") => artifacts::fig3(),
        Some("fig4") => artifacts::fig4(),
        Some("memory") => artifacts::memory_artifact(),
        Some("ablations") => artifacts::ablations(),
        Some("all") => {
            artifacts::table3();
            artifacts::fig3();
            artifacts::memory_artifact();
            artifacts::fig4();
            artifacts::table4_artifact();
            artifacts::table5_artifact();
            artifacts::ablations();
            run_kernels();
        }
        Some("-h") | Some("--help") => println!("{USAGE}"),
        Some(other) => {
            eprintln!("unknown subcommand: {other}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}
