//! `qkernels` — release-binary self-check of the native quantized kernels.
//!
//! Runs a LeNet-style conv/pool/dense network under every Table III
//! precision with native dispatch forced off and forced on, and demands
//! **bit-identical** logits, at 1 and 4 worker threads. This is the same
//! invariant the `qnn-nn` integration tests pin, packaged as a subcommand
//! so CI (and any user) can verify the fast path on the *installed*
//! release binary and CPU — the dispatch is feature-detected at runtime,
//! so the test suite's machine proves nothing about the deployment host.
//!
//! The check also reports what fraction of forward MAC flops actually took
//! the native path (from the `nn.fwd.flops.*` trace counters) and fails if
//! a precision with a packable format never dispatched natively: bitwise
//! equality alone would hold vacuously if the fast path never fired.

use qnn_nn::arch::NetworkSpec;
use qnn_nn::{set_native, ActivationCalibration, Mode, Network};
use qnn_quant::{calibrate::Method, Precision, Scheme};
use qnn_tensor::rng::{derive_seed, seeded};
use qnn_tensor::{par, Shape, Tensor};

/// Precisions whose Eval inference is expected to route at least some MACs
/// through the native kernels on a certified LeNet-scale network. Narrow
/// fixed formats always certify; the other packable schemes depend on
/// calibration outcomes (a binary scale must land on a power of two, a
/// pow2 exponent span must fit the certificate), so they are reported but
/// not required.
fn expects_native(p: &Precision) -> bool {
    matches!(p.weights(), Scheme::Fixed { bits } if bits <= 8)
        && matches!(p.activations(), Scheme::Fixed { bits } if bits <= 8)
}

fn spec() -> NetworkSpec {
    NetworkSpec::new("qcheck-lenet-8", (1, 8, 8))
        .conv(6, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .conv(10, 3, 1, 1)
        .relu()
        .max_pool(2, 2)
        .dense(3)
}

fn batch(n: usize, seed: u64) -> Tensor {
    let mut r = seeded(seed);
    let data: Vec<f32> = (0..n * 64).map(|_| r.gen_range(-1.0f32..1.0)).collect();
    Tensor::from_vec(Shape::d4(n, 1, 8, 8), data).unwrap()
}

/// Forwards `x` through `net` twice — native off, then on — returning the
/// bit-mismatch count and the (native, simulated) MAC flop counters of the
/// native-enabled pass.
fn compare_paths(net: &mut Network, x: &Tensor) -> (usize, u64, u64) {
    set_native(Some(false));
    let simulated = net.forward(x, Mode::Eval).unwrap();
    set_native(Some(true));
    qnn_trace::start();
    let native = net.forward(x, Mode::Eval).unwrap();
    let trace = qnn_trace::stop();
    let mismatches = simulated
        .as_slice()
        .iter()
        .zip(native.as_slice().iter())
        .filter(|(a, b)| a.to_bits() != b.to_bits())
        .count();
    let nat = trace
        .counters
        .get("nn.fwd.flops.native")
        .copied()
        .unwrap_or(0);
    let sim = trace
        .counters
        .get("nn.fwd.flops.simulated")
        .copied()
        .unwrap_or(0);
    (mismatches, nat, sim)
}

/// Runs the self-check; returns `true` when every precision passed. With
/// `quick`, one seed instead of three (the thread sweep is kept — the
/// parallel partition is the part a host difference could break).
pub fn run(quick: bool) -> bool {
    let seeds = if quick { 1u64 } else { 3 };
    let mut ok = true;
    println!("qkernels: native-vs-simulated bit-identity on a LeNet-style conv/pool/dense net");
    for precision in Precision::paper_sweep() {
        let mut mismatches = 0usize;
        let mut nat_total = 0u64;
        let mut sim_total = 0u64;
        for seed in 0..seeds {
            let mut net = Network::build(&spec(), derive_seed(0x9c, seed)).unwrap();
            net.set_precision(
                precision,
                Method::MaxAbs,
                &batch(8, derive_seed(0xca, seed)),
                ActivationCalibration::PerLayer,
            )
            .unwrap();
            let x = batch(4, derive_seed(0xba, seed));
            for threads in [1usize, 4] {
                par::set_threads(Some(threads));
                let (m, nat, sim) = compare_paths(&mut net, &x);
                mismatches += m;
                nat_total += nat;
                sim_total += sim;
            }
        }
        set_native(None);
        par::set_threads(None);
        let total = nat_total + sim_total;
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * nat_total as f64 / total as f64
        };
        let vacuous = expects_native(&precision) && nat_total == 0;
        let verdict = if mismatches > 0 {
            "MISMATCH"
        } else if vacuous {
            "NEVER-DISPATCHED"
        } else {
            "ok"
        };
        ok &= mismatches == 0 && !vacuous;
        let label = precision.label();
        println!("  {label:<22} {verdict:<16} native MACs {pct:5.1}% ({nat_total}/{total})");
        if mismatches > 0 {
            println!("    {mismatches} logit(s) differ between simulated and native paths");
        }
    }
    if ok {
        println!("qkernels: all precisions bit-identical across paths");
    } else {
        println!("qkernels: FAILED");
    }
    ok
}
