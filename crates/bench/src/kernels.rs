//! The kernel benchmark suite behind `qnn-bench kernels` and the
//! committed `BENCH_kernels.json` artifact.
//!
//! Covers the compute core's hot paths: the blocked GEMM against the
//! retained naive kernel (single- and multi-threaded), im2col convolution
//! forward/backward, the fake-quantize passes, a full LeNet-small
//! training step, and a Table IV mini-sweep timed end-to-end.

use crate::json::Json;
use crate::timer::{black_box, Bencher, Measurement};
use qnn_core::experiments::{accuracy_sweep, ExperimentScale};
use qnn_data::{standard_splits, DatasetKind};
use qnn_nn::loss::softmax_cross_entropy;
use qnn_nn::{zoo, Mode, Network, Sgd};
use qnn_quant::packed::{matmul_on_grid, PackedWeights};
use qnn_quant::{Binary, BitCodec, Fixed, PowerOfTwo, Precision, Quantizer};
use qnn_tensor::conv::{conv2d, conv2d_backward, Geometry};
use qnn_tensor::pool::max_pool2d;
use qnn_tensor::{par, rng, Shape, Tensor};

fn random(shape: Shape, seed: u64) -> Tensor {
    let mut r = rng::seeded(seed);
    let n = shape.len();
    Tensor::from_vec(shape, (0..n).map(|_| r.gen_range(-1.0f32..1.0)).collect()).unwrap()
}

/// On-grid fixed-point values with raw magnitude ≤ `max_raw`, so the
/// native certificate holds and both GEMM paths compute the identical
/// product — making the timed ratio a true like-for-like speedup.
fn grid_fixed(f: &Fixed, len: usize, max_raw: i64, seed: u64) -> Vec<f32> {
    let mut r = rng::seeded(seed);
    (0..len)
        .map(|_| f.decode(r.gen_range(-max_raw..max_raw + 1)))
        .collect()
}

/// One entry of the kernels report: a measurement plus optional
/// throughput in GFLOP/s.
fn entry(m: &Measurement, flops_per_op: Option<f64>) -> Json {
    let mut pairs = vec![
        ("name", Json::str(m.name.clone())),
        ("ns_per_op", Json::Num(m.ns_per_op)),
        ("iters", Json::Num(m.iters as f64)),
        ("reps", Json::Num(m.reps as f64)),
    ];
    if let Some(f) = flops_per_op {
        pairs.push(("gflops", Json::Num(m.gflops(f))));
    }
    Json::obj(pairs)
}

/// The quantized-GEMM microkernel suite (single-threaded 256³): the f32
/// reference, each native kernel through the exact dispatch entry the
/// layers call, and the derived `speedup_*_vs_f32_1t` ratios that the
/// bench-check / kernels-bench gates judge (a ratio below 1.0 fails).
///
/// Every operand sits on its format's grid with raw magnitudes inside
/// the exactness certificate, so the native kernels produce bit-identical
/// output to the f32 baseline — the sanity asserts pin that before
/// anything is timed. Timings include the per-batch work a real forward
/// pays (activation packing, certificate check, requantize); weight
/// packing is excluded, matching the per-layer plan cache.
fn qgemm_suite(b: &Bencher, push: &mut dyn FnMut(Json)) {
    println!("== quantized GEMM 256x256x256 (native kernels vs simulated f32, 1 thread) ==");
    par::set_threads(Some(1));
    let q = 256usize;
    let flops_q = 2.0 * (q as f64).powi(3);
    let mut out = vec![0.0f32; q * q];

    let f8 = Fixed::new(8, 7).unwrap();
    let acts8 = grid_fixed(&f8, q * q, 127, 11);
    let w8 = grid_fixed(&f8, q * q, 127, 12);
    let m = b.run("qgemm_256/f32_nt_1t", || {
        qnn_tensor::gemm::gemm_nt(
            q,
            q,
            q,
            black_box(&acts8),
            black_box(&w8),
            black_box(&mut out),
        );
    });
    let f32_ns = m.ns_per_op;
    push(entry(&m, Some(flops_q)));

    let codec8 = BitCodec::Fixed(f8);
    let plan8 = PackedWeights::pack(&codec8, q, q, &w8).expect("fixed8 weights pack");
    assert!(
        matmul_on_grid(&codec8, &acts8, q, q, false, &plan8, &mut out),
        "fixed8 certificate must hold at 256^3"
    );
    let m = b.run("qgemm_256/fixed8_native_1t", || {
        black_box(matmul_on_grid(
            &codec8,
            black_box(&acts8),
            q,
            q,
            false,
            &plan8,
            black_box(&mut out),
        ));
    });
    let fixed8_ns = m.ns_per_op;
    push(entry(&m, Some(flops_q)));

    // Raw magnitudes ≤ 256: 256·256·256 = 2^24, the certificate's edge.
    let f16 = Fixed::new(16, 12).unwrap();
    let acts16 = grid_fixed(&f16, q * q, 255, 13);
    let w16 = grid_fixed(&f16, q * q, 255, 14);
    let codec16 = BitCodec::Fixed(f16);
    let plan16 = PackedWeights::pack(&codec16, q, q, &w16).expect("fixed16 weights pack");
    assert!(
        matmul_on_grid(&codec16, &acts16, q, q, false, &plan16, &mut out),
        "fixed16 certificate must hold at 256^3 with raws <= 255"
    );
    let m = b.run("qgemm_256/fixed16_native_1t", || {
        black_box(matmul_on_grid(
            &codec16,
            black_box(&acts16),
            q,
            q,
            false,
            &plan16,
            black_box(&mut out),
        ));
    });
    let fixed16_ns = m.ns_per_op;
    push(entry(&m, Some(flops_q)));

    let bin = Binary::new();
    let bcodec = BitCodec::Binary(bin);
    let mut r = rng::seeded(15);
    let bacts: Vec<f32> = (0..q * q).map(|_| bin.decode(r.gen_bool(0.5))).collect();
    let bw: Vec<f32> = (0..q * q).map(|_| bin.decode(r.gen_bool(0.5))).collect();
    let bplan = PackedWeights::pack(&bcodec, q, q, &bw).expect("binary weights pack");
    assert!(
        matmul_on_grid(&bcodec, &bacts, q, q, false, &bplan, &mut out),
        "binary certificate must hold at 256^3"
    );
    let m = b.run("qgemm_256/binary_xnor_1t", || {
        black_box(matmul_on_grid(
            &bcodec,
            black_box(&bacts),
            q,
            q,
            false,
            &bplan,
            black_box(&mut out),
        ));
    });
    let binary_ns = m.ns_per_op;
    push(entry(&m, Some(flops_q)));

    // Pow2 weights in a narrow exponent band (span ≤ 6) against fixed8
    // activations with raws ≤ 64, keeping the shifted products certified.
    let p2 = PowerOfTwo::new(6, 0).unwrap();
    let mut r = rng::seeded(16);
    let span = p2.max_exp() - p2.min_exp();
    let low_code = (span + 1 - 6).max(0) as u32 + 1;
    let hi_code = span as u32 + 1;
    let pw: Vec<f32> = (0..q * q)
        .map(|_| p2.decode(r.gen_bool(0.5), r.gen_range(low_code..hi_code + 1)))
        .collect();
    let pacts = grid_fixed(&f8, q * q, 64, 17);
    let pplan = PackedWeights::pack(&BitCodec::PowerOfTwo(p2), q, q, &pw).expect("pow2 pack");
    assert!(
        matmul_on_grid(&codec8, &pacts, q, q, false, &pplan, &mut out),
        "pow2 certificate must hold at 256^3 with a narrow exponent band"
    );
    let m = b.run("qgemm_256/pow2_native_1t", || {
        black_box(matmul_on_grid(
            &codec8,
            black_box(&pacts),
            q,
            q,
            false,
            &pplan,
            black_box(&mut out),
        ));
    });
    let pow2_ns = m.ns_per_op;
    push(entry(&m, Some(flops_q)));

    // A 15-exponent span (codes 1..=16) is past the i16 view (spans ≤ 14)
    // and lands on the two-panel shift-add microkernel. Certification at
    // 256³ then requires unit activation raws: 2·2^15·256 = 2^24, the
    // certificate's edge.
    let mut r = rng::seeded(18);
    let ww: Vec<f32> = (0..q * q)
        .map(|_| p2.decode(r.gen_bool(0.5), r.gen_range(1u32..17)))
        .collect();
    let funit = Fixed::new(8, 0).unwrap();
    let ucodec = BitCodec::Fixed(funit);
    let uacts: Vec<f32> = (0..q * q)
        .map(|_| if r.gen_bool(0.5) { 1.0 } else { -1.0 })
        .collect();
    let wplan = PackedWeights::pack(&BitCodec::PowerOfTwo(p2), q, q, &ww).expect("pow2 wide pack");
    if let PackedWeights::Pow2(p) = &wplan {
        assert!(
            p.words16().is_none() && p.shift_add_panels().is_some(),
            "span 15 must use the shift-add panel microkernel"
        );
    }
    assert!(
        matmul_on_grid(&ucodec, &uacts, q, q, false, &wplan, &mut out),
        "wide-span pow2 certificate must hold at 256^3 with unit acts"
    );
    let m = b.run("qgemm_256/pow2_shift_wide_1t", || {
        black_box(matmul_on_grid(
            &ucodec,
            black_box(&uacts),
            q,
            q,
            false,
            &wplan,
            black_box(&mut out),
        ));
    });
    let pow2_wide_ns = m.ns_per_op;
    push(entry(&m, Some(flops_q)));

    for (name, ns) in [
        ("qgemm_256/speedup_fixed8_vs_f32_1t", fixed8_ns),
        ("qgemm_256/speedup_fixed16_vs_f32_1t", fixed16_ns),
        ("qgemm_256/speedup_binary_vs_f32_1t", binary_ns),
        ("qgemm_256/speedup_pow2_vs_f32_1t", pow2_ns),
        ("qgemm_256/speedup_pow2_wide_vs_f32_1t", pow2_wide_ns),
    ] {
        push(Json::obj(vec![
            ("name", Json::str(name)),
            ("ratio", Json::Num(f32_ns / ns)),
        ]));
    }
    par::set_threads(None);
}

/// Runs the full kernel suite and returns the report as JSON.
///
/// Printed progress goes to stdout; the caller decides whether to also
/// write the artifact file.
pub fn run() -> Json {
    run_with(false)
}

/// Runs only the quantized-GEMM microkernel suite at full repetitions —
/// the `kernels-bench` CI leg re-checks the microkernel numbers and
/// their speedup ratios against the committed baseline without paying
/// for the rest of the suite.
pub fn run_qgemm() -> Json {
    let b = Bencher::default();
    let mut entries: Vec<Json> = Vec::new();
    let mut push = |e: Json| {
        println!(
            "  {}",
            e.render()
                .lines()
                .collect::<Vec<_>>()
                .join(" ")
                .replace("  ", " ")
        );
        entries.push(e);
    };
    qgemm_suite(&b, &mut push);
    Json::obj(vec![
        ("schema", Json::str("qnn-bench/kernels/v1")),
        ("threads_default", Json::Num(par::threads() as f64)),
        (
            "profile",
            Json::str(if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }),
        ),
        ("benchmarks", Json::Arr(entries)),
    ])
}

/// Runs the kernel suite; `quick` trades precision for speed (shorter
/// repetitions, the end-to-end mini-sweep skipped) for CI gating, where
/// the regression tolerance absorbs the extra timing noise.
pub fn run_with(quick: bool) -> Json {
    let b = if quick {
        Bencher {
            warmup_reps: 1,
            reps: 3,
            target_rep_ns: 20_000_000,
        }
    } else {
        Bencher::default()
    };
    let mut entries: Vec<Json> = Vec::new();
    let mut push = |e: Json| {
        println!(
            "  {}",
            e.render()
                .lines()
                .collect::<Vec<_>>()
                .join(" ")
                .replace("  ", " ")
        );
        entries.push(e);
    };

    println!("== matmul 256x256x256 (naive vs blocked vs threaded) ==");
    let a = random(Shape::d2(256, 256), 1);
    let bm = random(Shape::d2(256, 256), 2);
    let flops_256 = 2.0 * 256f64.powi(3);
    par::set_threads(Some(1));
    let m = b.run("matmul_256/naive_1t", || {
        black_box(a.matmul_naive(black_box(&bm)).unwrap());
    });
    let naive_ns = m.ns_per_op;
    push(entry(&m, Some(flops_256)));
    let m = b.run("matmul_256/blocked_1t", || {
        black_box(a.matmul(black_box(&bm)).unwrap());
    });
    let blocked_ns = m.ns_per_op;
    push(entry(&m, Some(flops_256)));
    par::set_threads(None);
    let m = b.run(
        &format!("matmul_256/blocked_pool_{}t", par::threads()),
        || {
            black_box(a.matmul(black_box(&bm)).unwrap());
        },
    );
    push(entry(&m, Some(flops_256)));
    push(Json::obj(vec![
        ("name", Json::str("matmul_256/speedup_blocked_vs_naive_1t")),
        ("ratio", Json::Num(naive_ns / blocked_ns)),
    ]));

    qgemm_suite(&b, &mut push);

    println!("== conv2d LeNet conv2 (50x(20,5,5) over (20,12,12), batch 4) ==");
    let x = random(Shape::d4(4, 20, 12, 12), 3);
    let w = random(Shape::d4(50, 20, 5, 5), 4);
    let bias = Tensor::zeros(Shape::d1(50));
    let geom = Geometry::square(5, 1, 0);
    let conv_macs = 4.0 * 50.0 * 20.0 * 25.0 * 64.0;
    let m = b.run("conv2d/forward_lenet_conv2_batch4", || {
        black_box(conv2d(black_box(&x), &w, &bias, geom).unwrap());
    });
    push(entry(&m, Some(2.0 * conv_macs)));
    let y = conv2d(&x, &w, &bias, geom).unwrap();
    let gout = Tensor::ones(y.shape().clone());
    let m = b.run("conv2d/backward_lenet_conv2_batch4", || {
        black_box(conv2d_backward(black_box(&x), &w, &gout, geom).unwrap());
    });
    push(entry(&m, Some(2.0 * 2.0 * conv_macs)));

    println!("== pooling ==");
    let p = random(Shape::d4(4, 32, 32, 32), 5);
    let m = b.run("maxpool/3x3s2_batch4", || {
        black_box(max_pool2d(black_box(&p), Geometry::square(3, 2, 0)).unwrap());
    });
    push(entry(&m, None));

    println!("== fake-quantize (4096 elements) ==");
    let data = Tensor::from_vec(
        Shape::d1(4096),
        (0..4096).map(|i| ((i as f32) * 0.37).sin() * 4.0).collect(),
    )
    .unwrap();
    let fixed = Fixed::new(8, 5).unwrap();
    let pow2 = PowerOfTwo::new(6, 1).unwrap();
    let binary = Binary::new();
    let m = b.run("quantize_4096/fixed8", || {
        black_box(fixed.quantize(&data));
    });
    push(entry(&m, None));
    let m = b.run("quantize_4096/pow2", || {
        black_box(pow2.quantize(&data));
    });
    push(entry(&m, None));
    let m = b.run("quantize_4096/binary", || {
        black_box(binary.quantize(&data));
    });
    push(entry(&m, None));
    let mut big = random(Shape::d1(1 << 18), 9);
    let m = b.run("quantize_262144/fixed8_pooled", || {
        qnn_quant::quantize_inplace_par(&fixed, black_box(&mut big));
    });
    push(entry(&m, None));

    println!("== LeNet-small (batch 8): forward and one training step ==");
    let mut net = Network::build(&zoo::lenet_small(), 7).unwrap();
    let batch = random(Shape::d4(8, 1, 28, 28), 6);
    let m = b.run("lenet_small/forward_batch8", || {
        black_box(net.forward(black_box(&batch), Mode::Eval).unwrap());
    });
    push(entry(&m, None));
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    let opt = Sgd::new(0.01);
    let m = b.run("lenet_small/train_step_batch8", || {
        net.zero_grads();
        let logits = net.forward(&batch, Mode::Train).unwrap();
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        net.backward(&out.grad).unwrap();
        opt.step(&mut net);
    });
    push(entry(&m, None));

    if !quick {
        println!("== Table IV mini-sweep (smoke scale, float32 + fixed(8,8)) ==");
        let once = Bencher::once();
        let splits = standard_splits(DatasetKind::Glyphs28, 240, 200, 3);
        let spec = zoo::lenet_small();
        let m = once.run("table4/mini_sweep_smoke_2_precisions", || {
            black_box(
                accuracy_sweep(
                    &spec,
                    &splits,
                    &[Precision::float32(), Precision::fixed(8, 8)],
                    ExperimentScale::Smoke,
                    7,
                )
                .unwrap(),
            );
        });
        push(entry(&m, None));
    }

    Json::obj(vec![
        ("schema", Json::str("qnn-bench/kernels/v1")),
        ("threads_default", Json::Num(par::threads() as f64)),
        (
            "profile",
            Json::str(if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }),
        ),
        ("benchmarks", Json::Arr(entries)),
    ])
}
