//! The kernel benchmark suite behind `qnn-bench kernels` and the
//! committed `BENCH_kernels.json` artifact.
//!
//! Covers the compute core's hot paths: the blocked GEMM against the
//! retained naive kernel (single- and multi-threaded), im2col convolution
//! forward/backward, the fake-quantize passes, a full LeNet-small
//! training step, and a Table IV mini-sweep timed end-to-end.

use crate::json::Json;
use crate::timer::{black_box, Bencher, Measurement};
use qnn_core::experiments::{accuracy_sweep, ExperimentScale};
use qnn_data::{standard_splits, DatasetKind};
use qnn_nn::loss::softmax_cross_entropy;
use qnn_nn::{zoo, Mode, Network, Sgd};
use qnn_quant::{Binary, Fixed, PowerOfTwo, Precision, Quantizer};
use qnn_tensor::conv::{conv2d, conv2d_backward, Geometry};
use qnn_tensor::pool::max_pool2d;
use qnn_tensor::{par, rng, Shape, Tensor};

fn random(shape: Shape, seed: u64) -> Tensor {
    let mut r = rng::seeded(seed);
    let n = shape.len();
    Tensor::from_vec(shape, (0..n).map(|_| r.gen_range(-1.0f32..1.0)).collect()).unwrap()
}

/// One entry of the kernels report: a measurement plus optional
/// throughput in GFLOP/s.
fn entry(m: &Measurement, flops_per_op: Option<f64>) -> Json {
    let mut pairs = vec![
        ("name", Json::str(m.name.clone())),
        ("ns_per_op", Json::Num(m.ns_per_op)),
        ("iters", Json::Num(m.iters as f64)),
        ("reps", Json::Num(m.reps as f64)),
    ];
    if let Some(f) = flops_per_op {
        pairs.push(("gflops", Json::Num(m.gflops(f))));
    }
    Json::obj(pairs)
}

/// Runs the full kernel suite and returns the report as JSON.
///
/// Printed progress goes to stdout; the caller decides whether to also
/// write the artifact file.
pub fn run() -> Json {
    run_with(false)
}

/// Runs the kernel suite; `quick` trades precision for speed (shorter
/// repetitions, the end-to-end mini-sweep skipped) for CI gating, where
/// the regression tolerance absorbs the extra timing noise.
pub fn run_with(quick: bool) -> Json {
    let b = if quick {
        Bencher {
            warmup_reps: 1,
            reps: 3,
            target_rep_ns: 20_000_000,
        }
    } else {
        Bencher::default()
    };
    let mut entries: Vec<Json> = Vec::new();
    let mut push = |e: Json| {
        println!(
            "  {}",
            e.render()
                .lines()
                .collect::<Vec<_>>()
                .join(" ")
                .replace("  ", " ")
        );
        entries.push(e);
    };

    println!("== matmul 256x256x256 (naive vs blocked vs threaded) ==");
    let a = random(Shape::d2(256, 256), 1);
    let bm = random(Shape::d2(256, 256), 2);
    let flops_256 = 2.0 * 256f64.powi(3);
    par::set_threads(Some(1));
    let m = b.run("matmul_256/naive_1t", || {
        black_box(a.matmul_naive(black_box(&bm)).unwrap());
    });
    let naive_ns = m.ns_per_op;
    push(entry(&m, Some(flops_256)));
    let m = b.run("matmul_256/blocked_1t", || {
        black_box(a.matmul(black_box(&bm)).unwrap());
    });
    let blocked_ns = m.ns_per_op;
    push(entry(&m, Some(flops_256)));
    par::set_threads(None);
    let m = b.run(
        &format!("matmul_256/blocked_pool_{}t", par::threads()),
        || {
            black_box(a.matmul(black_box(&bm)).unwrap());
        },
    );
    push(entry(&m, Some(flops_256)));
    push(Json::obj(vec![
        ("name", Json::str("matmul_256/speedup_blocked_vs_naive_1t")),
        ("ratio", Json::Num(naive_ns / blocked_ns)),
    ]));

    println!("== conv2d LeNet conv2 (50x(20,5,5) over (20,12,12), batch 4) ==");
    let x = random(Shape::d4(4, 20, 12, 12), 3);
    let w = random(Shape::d4(50, 20, 5, 5), 4);
    let bias = Tensor::zeros(Shape::d1(50));
    let geom = Geometry::square(5, 1, 0);
    let conv_macs = 4.0 * 50.0 * 20.0 * 25.0 * 64.0;
    let m = b.run("conv2d/forward_lenet_conv2_batch4", || {
        black_box(conv2d(black_box(&x), &w, &bias, geom).unwrap());
    });
    push(entry(&m, Some(2.0 * conv_macs)));
    let y = conv2d(&x, &w, &bias, geom).unwrap();
    let gout = Tensor::ones(y.shape().clone());
    let m = b.run("conv2d/backward_lenet_conv2_batch4", || {
        black_box(conv2d_backward(black_box(&x), &w, &gout, geom).unwrap());
    });
    push(entry(&m, Some(2.0 * 2.0 * conv_macs)));

    println!("== pooling ==");
    let p = random(Shape::d4(4, 32, 32, 32), 5);
    let m = b.run("maxpool/3x3s2_batch4", || {
        black_box(max_pool2d(black_box(&p), Geometry::square(3, 2, 0)).unwrap());
    });
    push(entry(&m, None));

    println!("== fake-quantize (4096 elements) ==");
    let data = Tensor::from_vec(
        Shape::d1(4096),
        (0..4096).map(|i| ((i as f32) * 0.37).sin() * 4.0).collect(),
    )
    .unwrap();
    let fixed = Fixed::new(8, 5).unwrap();
    let pow2 = PowerOfTwo::new(6, 1).unwrap();
    let binary = Binary::new();
    let m = b.run("quantize_4096/fixed8", || {
        black_box(fixed.quantize(&data));
    });
    push(entry(&m, None));
    let m = b.run("quantize_4096/pow2", || {
        black_box(pow2.quantize(&data));
    });
    push(entry(&m, None));
    let m = b.run("quantize_4096/binary", || {
        black_box(binary.quantize(&data));
    });
    push(entry(&m, None));
    let mut big = random(Shape::d1(1 << 18), 9);
    let m = b.run("quantize_262144/fixed8_pooled", || {
        qnn_quant::quantize_inplace_par(&fixed, black_box(&mut big));
    });
    push(entry(&m, None));

    println!("== LeNet-small (batch 8): forward and one training step ==");
    let mut net = Network::build(&zoo::lenet_small(), 7).unwrap();
    let batch = random(Shape::d4(8, 1, 28, 28), 6);
    let m = b.run("lenet_small/forward_batch8", || {
        black_box(net.forward(black_box(&batch), Mode::Eval).unwrap());
    });
    push(entry(&m, None));
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    let opt = Sgd::new(0.01);
    let m = b.run("lenet_small/train_step_batch8", || {
        net.zero_grads();
        let logits = net.forward(&batch, Mode::Train).unwrap();
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        net.backward(&out.grad).unwrap();
        opt.step(&mut net);
    });
    push(entry(&m, None));

    if !quick {
        println!("== Table IV mini-sweep (smoke scale, float32 + fixed(8,8)) ==");
        let once = Bencher::once();
        let splits = standard_splits(DatasetKind::Glyphs28, 240, 200, 3);
        let spec = zoo::lenet_small();
        let m = once.run("table4/mini_sweep_smoke_2_precisions", || {
            black_box(
                accuracy_sweep(
                    &spec,
                    &splits,
                    &[Precision::float32(), Precision::fixed(8, 8)],
                    ExperimentScale::Smoke,
                    7,
                )
                .unwrap(),
            );
        });
        push(entry(&m, None));
    }

    Json::obj(vec![
        ("schema", Json::str("qnn-bench/kernels/v1")),
        ("threads_default", Json::Num(par::threads() as f64)),
        (
            "profile",
            Json::str(if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }),
        ),
        ("benchmarks", Json::Arr(entries)),
    ])
}
