//! `cluster-soak` — the chaos-capable load generator behind the
//! cluster-soak CI stage, plus the informational `cluster-bench`
//! throughput measurement.
//!
//! Like [`crate::soak`], but aimed at a `qnn router` fronting N shard
//! workers, and with one extra move: a **deterministic mid-soak kill**.
//! When `--kill-pid` names a shard process, a killer thread delivers
//! `SIGKILL` the moment the soak's verified-response counter crosses a
//! seed-derived kill point (`qnn-faults` seeding discipline: the point
//! is a pure function of `--seed`, not of timing). The pass criterion is
//! the cluster contract verbatim: every request returns bits identical
//! to a local single-shot forward — possibly after typed retryable
//! rejections, which are counted, never excused into wrong answers — and
//! nothing hangs.
//!
//! With three shards and one kill, failover is normally invisible to
//! clients (the router re-routes to a live replica); `ShardDown`
//! rejections only surface in the window where a request's whole
//! candidate set is dead, and the summary reports how often that
//! happened.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use qnn_serve::{ModelBank, ServeClient, MODEL_SEED, NUM_PRECISIONS};
use qnn_tensor::rng::derive_seed;

/// Retry budget per request: generous, because a retry loop that gives
/// up during a failover window would fail the soak for the wrong reason.
const MAX_RETRIES: usize = 10_000;

/// Load-generator knobs, filled from `qnn-bench cluster-soak` flags.
#[derive(Debug, Clone)]
pub struct ClusterSoakConfig {
    /// Router address (usually read from the router's `--port-file`).
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Total requests, striped across the client threads.
    pub requests: usize,
    /// Send a `Shutdown` frame when done — the router drains the whole
    /// cluster, so the CI stage's shard processes exit too.
    pub shutdown: bool,
    /// Model-bank seed; must match the shards'. Also seeds the kill
    /// point.
    pub seed: u64,
    /// OS pid of a shard worker to `SIGKILL` mid-soak.
    pub kill_pid: Option<u32>,
    /// Explicit kill point (verified responses before the kill fires);
    /// defaults to a seed-derived point in the middle half of the soak.
    pub kill_after: Option<usize>,
}

impl Default for ClusterSoakConfig {
    fn default() -> Self {
        ClusterSoakConfig {
            addr: String::new(),
            clients: 4,
            requests: 256,
            shutdown: false,
            seed: MODEL_SEED,
            kill_pid: None,
            kill_after: None,
        }
    }
}

impl ClusterSoakConfig {
    /// The kill point this run will use: the explicit `--kill-after`, or
    /// a point in the middle half of the soak derived from the seed
    /// (never the very first or last response, so the kill lands
    /// mid-traffic).
    pub fn kill_point(&self) -> usize {
        self.kill_after.unwrap_or_else(|| {
            let quarter = (self.requests / 4).max(1);
            let span = (self.requests / 2).max(1) as u64;
            quarter + (derive_seed(self.seed, 0xC1A0) % span) as usize
        })
    }
}

/// What one cluster soak did.
#[derive(Debug)]
pub struct ClusterSoakOutcome {
    /// Responses verified bit-identical to their single-shot forward.
    pub verified: usize,
    /// Total `Busy` retries across all threads.
    pub busy_retries: usize,
    /// Total `ShardDown` retries across all threads (failover windows
    /// where a request's whole candidate set was dead).
    pub shard_down_retries: usize,
    /// Whether the killer thread delivered its signal.
    pub killed: bool,
    /// Human-readable failures; empty iff the run passed.
    pub failures: Vec<String>,
}

impl ClusterSoakOutcome {
    /// True when every request was answered bit-identically and the
    /// requested kill (if any) actually fired inside the soak.
    pub fn passed(&self, cfg: &ClusterSoakConfig) -> bool {
        self.failures.is_empty()
            && self.verified == cfg.requests
            && (cfg.kill_pid.is_none() || self.killed)
    }
}

/// Precision tag for the `i`-th request: round-robin through the whole
/// Table III sweep, same as `serve-soak`.
fn tag_for(i: usize) -> u8 {
    (i % NUM_PRECISIONS as usize) as u8
}

/// Runs the cluster soak. Prints a summary; returns the outcome for the
/// caller to turn into an exit code.
///
/// # Errors
///
/// A `String` for setup failures (model bank construction); per-request
/// failures land in [`ClusterSoakOutcome::failures`] instead.
pub fn run(cfg: &ClusterSoakConfig) -> Result<ClusterSoakOutcome, String> {
    let started = Instant::now();
    let mut bank = ModelBank::build(cfg.seed).map_err(|e| format!("model bank: {e}"))?;
    let input_len = bank.input_len();

    let images: Vec<Vec<f32>> = (0..cfg.requests)
        .map(|i| qnn_serve::model::test_image(cfg.seed, i as u64, input_len))
        .collect();
    let mut expected: Vec<Vec<u32>> = Vec::with_capacity(cfg.requests);
    for (i, img) in images.iter().enumerate() {
        let logits = bank
            .forward_single(tag_for(i), img)
            .map_err(|e| format!("single-shot forward {i}: {e}"))?;
        expected.push(logits.iter().map(|x| x.to_bits()).collect());
    }
    println!(
        "cluster-soak: {} request(s) x {} precision(s), {} client thread(s) -> router {}",
        cfg.requests, NUM_PRECISIONS, cfg.clients, cfg.addr
    );

    // The kill schedule: a killer thread watches the shared
    // verified-response counter and SIGKILLs the victim the moment it
    // crosses the seed-derived point. Progress-based, not time-based, so
    // the kill lands at the same place in the request stream regardless
    // of machine speed.
    let done = Arc::new(AtomicUsize::new(0));
    let killed = Arc::new(AtomicUsize::new(0));
    let killer = cfg.kill_pid.map(|pid| {
        let done = Arc::clone(&done);
        let killed = Arc::clone(&killed);
        let kill_point = cfg.kill_point().min(cfg.requests.saturating_sub(1));
        let total = cfg.requests;
        println!(
            "cluster-soak: will SIGKILL shard pid {pid} after {kill_point} verified responses"
        );
        std::thread::spawn(move || {
            while done.load(Ordering::SeqCst) < kill_point {
                if done.load(Ordering::SeqCst) >= total {
                    return; // soak finished early (config error); don't kill post-hoc
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            let status = std::process::Command::new("kill")
                .args(["-9", &pid.to_string()])
                .status();
            match status {
                Ok(s) if s.success() => {
                    killed.store(1, Ordering::SeqCst);
                    println!("cluster-soak: SIGKILL delivered to shard pid {pid}");
                }
                Ok(s) => eprintln!("cluster-soak: kill -9 {pid} exited with {s}"),
                Err(e) => eprintln!("cluster-soak: kill -9 {pid}: {e}"),
            }
        })
    });

    let shared = Arc::new((images, expected));
    let clients = cfg.clients.max(1);
    let mut threads = Vec::new();
    for t in 0..clients {
        let shared = Arc::clone(&shared);
        let done = Arc::clone(&done);
        let addr = cfg.addr.clone();
        let total = cfg.requests;
        threads.push(std::thread::spawn(move || {
            let (images, expected) = &*shared;
            let mut verified = 0usize;
            let (mut busy, mut down) = (0usize, 0usize);
            let mut failures: Vec<String> = Vec::new();
            let mut client = match ServeClient::connect(&addr) {
                Ok(c) => c,
                Err(e) => {
                    failures.push(format!("thread {t}: connect: {e}"));
                    return (verified, busy, down, failures);
                }
            };
            // A hang is a failure, not a wait: any single request
            // stalled past this deadline fails loudly.
            if let Err(e) = client.set_read_timeout(std::time::Duration::from_secs(30)) {
                failures.push(format!("thread {t}: read timeout: {e}"));
                return (verified, busy, down, failures);
            }
            for i in (t..total).step_by(clients) {
                let tag = tag_for(i);
                match client.infer_retry_routed(tag, &images[i], MAX_RETRIES) {
                    Ok((logits, b, d)) => {
                        busy += b;
                        down += d;
                        let got: Vec<u32> = logits.iter().map(|x| x.to_bits()).collect();
                        if got == expected[i] {
                            verified += 1;
                            done.fetch_add(1, Ordering::SeqCst);
                        } else {
                            failures.push(format!(
                                "request {i} (tag {tag}): logits differ from single-shot forward"
                            ));
                        }
                    }
                    Err(e) => failures.push(format!("request {i} (tag {tag}): {e}")),
                }
            }
            (verified, busy, down, failures)
        }));
    }

    let mut outcome = ClusterSoakOutcome {
        verified: 0,
        busy_retries: 0,
        shard_down_retries: 0,
        killed: false,
        failures: Vec::new(),
    };
    for (t, th) in threads.into_iter().enumerate() {
        match th.join() {
            Ok((verified, busy, down, fails)) => {
                outcome.verified += verified;
                outcome.busy_retries += busy;
                outcome.shard_down_retries += down;
                outcome.failures.extend(fails);
            }
            Err(_) => outcome.failures.push(format!("thread {t} panicked")),
        }
    }
    if let Some(k) = killer {
        let _ = k.join();
    }
    outcome.killed = killed.load(Ordering::SeqCst) == 1;
    if cfg.kill_pid.is_some() && !outcome.killed {
        outcome
            .failures
            .push("the seeded kill never fired inside the soak".to_string());
    }

    if cfg.shutdown {
        match ServeClient::connect(&cfg.addr).and_then(|mut c| c.shutdown_server()) {
            Ok(()) => println!("cluster-soak: cluster drained and shut down"),
            Err(e) => outcome.failures.push(format!("shutdown: {e}")),
        }
    }

    let secs = started.elapsed().as_secs_f64();
    println!(
        "cluster-soak: {}/{} bit-identical, {} busy / {} shard-down retries, {:.2}s \
         ({:.0} images/sec achieved through the router)",
        outcome.verified,
        cfg.requests,
        outcome.busy_retries,
        outcome.shard_down_retries,
        secs,
        if secs > 0.0 {
            outcome.verified as f64 / secs
        } else {
            0.0
        },
    );
    for f in &outcome.failures {
        eprintln!("cluster-soak: FAIL: {f}");
    }
    Ok(outcome)
}

/// `cluster-bench` — an informational routed-vs-direct throughput
/// measurement over an in-process 3-shard cluster. Not baseline-gated:
/// router throughput on a shared loopback host is dominated by how the
/// scheduler interleaves 3 shard engines with the router and client
/// threads, which is exactly the kind of number the regression gate's
/// tolerance cannot hold. The cluster-soak CI stage records the gated
/// contract (bit-identity under a kill); this prints the speed.
pub fn bench(quick: bool) -> i32 {
    use qnn_serve::cluster::{Router, RouterConfig};
    use qnn_serve::{ServeConfig, Server};

    let requests = if quick { 128 } else { 512 };
    let shards: Vec<Server> = (0..3)
        .map(|_| {
            Server::start(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServeConfig::default()
            })
        })
        .collect::<Result<_, _>>()
        .map_err(|e| eprintln!("cluster-bench: shard start: {e}"))
        .unwrap_or_default();
    if shards.len() != 3 {
        return 1;
    }
    let shard_addrs: Vec<String> = shards.iter().map(|s| s.local_addr().to_string()).collect();
    let direct_addr = shard_addrs[0].clone();
    let router = match Router::start(RouterConfig {
        shards: shard_addrs,
        ..RouterConfig::default()
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cluster-bench: router start: {e}");
            return 1;
        }
    };

    // Routed leg: the full soak verifier through the router.
    let cfg = ClusterSoakConfig {
        addr: router.local_addr().to_string(),
        clients: 4,
        requests,
        ..ClusterSoakConfig::default()
    };
    let routed = match run(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cluster-bench: {e}");
            return 1;
        }
    };
    // Direct leg: the same load straight at one shard, for the
    // router-hop comparison line.
    let direct_cfg = crate::soak::SoakConfig {
        addr: direct_addr,
        clients: 4,
        requests,
        ..crate::soak::SoakConfig::default()
    };
    let direct_started = Instant::now();
    let direct = match crate::soak::run(&direct_cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cluster-bench: direct leg: {e}");
            return 1;
        }
    };
    let direct_secs = direct_started.elapsed().as_secs_f64();
    println!(
        "cluster-bench: routed {} and direct {} of {} verified; \
         direct single-shard leg took {:.2}s (informational, not gated)",
        routed.verified, direct.verified, requests, direct_secs
    );

    router.shutdown();
    let stats = router.join();
    print!("{}", stats.render());
    for s in shards {
        s.shutdown();
        s.join();
    }
    i32::from(!(routed.passed(&cfg) && direct.passed(&direct_cfg)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_serve::cluster::{Router, RouterConfig};
    use qnn_serve::{ServeConfig, Server};

    #[test]
    fn kill_point_is_seeded_and_mid_soak() {
        let cfg = ClusterSoakConfig {
            requests: 256,
            ..ClusterSoakConfig::default()
        };
        let p = cfg.kill_point();
        assert_eq!(p, cfg.kill_point(), "pure function of the seed");
        assert!((64..192).contains(&p), "middle half, got {p}");
        let explicit = ClusterSoakConfig {
            kill_after: Some(7),
            ..cfg
        };
        assert_eq!(explicit.kill_point(), 7);
    }

    #[test]
    fn mini_cluster_soak_against_in_process_cluster() {
        // No OS-level kill here (that needs real processes — the CI
        // stage covers it); this pins the striped verifier, the retry
        // accounting, and the whole-cluster drain against a real router.
        let shards: Vec<Server> = (0..2)
            .map(|_| {
                Server::start(ServeConfig {
                    addr: "127.0.0.1:0".to_string(),
                    ..ServeConfig::default()
                })
                .unwrap()
            })
            .collect();
        let router = Router::start(RouterConfig {
            shards: shards.iter().map(|s| s.local_addr().to_string()).collect(),
            ..RouterConfig::default()
        })
        .unwrap();
        let cfg = ClusterSoakConfig {
            addr: router.local_addr().to_string(),
            clients: 3,
            requests: 21,
            shutdown: true,
            ..ClusterSoakConfig::default()
        };
        let outcome = run(&cfg).unwrap();
        assert!(outcome.passed(&cfg), "failures: {:?}", outcome.failures);
        assert!(!outcome.killed);
        let stats = router.join();
        assert_eq!(stats.requests, 21);
        let served: u64 = shards.into_iter().map(|s| s.join().requests).sum();
        assert_eq!(served, 21, "every request served by exactly one shard");
    }
}
