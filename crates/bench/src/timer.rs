//! Hand-rolled benchmark timer: auto-calibrated iteration counts, warmup
//! repetitions, and a median-of-N estimate.
//!
//! The median is the whole trick: on a shared machine the timing noise is
//! one-sided (preemption only ever makes a rep *slower*), so the median of
//! several repetitions is a far more stable location estimate than the
//! mean — the same reasoning criterion uses, in ~60 lines instead of a
//! dependency tree.

use std::time::Instant;

/// One benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name, `group/case` style.
    pub name: String,
    /// Median wall-clock nanoseconds per operation.
    pub ns_per_op: f64,
    /// Iterations per repetition (chosen by calibration).
    pub iters: u64,
    /// Timed repetitions the median was taken over.
    pub reps: usize,
}

impl Measurement {
    /// Throughput in GFLOP/s given the floating-point work of one
    /// operation. (1 FLOP/ns = 1 GFLOP/s.)
    pub fn gflops(&self, flops_per_op: f64) -> f64 {
        flops_per_op / self.ns_per_op
    }
}

/// Timer configuration.
#[derive(Debug, Clone, Copy)]
pub struct Bencher {
    /// Untimed warmup repetitions before measurement.
    pub warmup_reps: usize,
    /// Timed repetitions; the reported value is their median.
    pub reps: usize,
    /// Target wall-clock time per repetition, used to calibrate the
    /// iteration count (ns).
    pub target_rep_ns: u64,
}

impl Default for Bencher {
    fn default() -> Self {
        Bencher {
            warmup_reps: 2,
            reps: 7,
            target_rep_ns: 100_000_000,
        }
    }
}

impl Bencher {
    /// A configuration for expensive operations (whole experiments):
    /// single timed repetition, no calibration loop.
    pub fn once() -> Self {
        Bencher {
            warmup_reps: 0,
            reps: 1,
            target_rep_ns: 0,
        }
    }

    /// Times `f`, returning the median ns/op over the configured reps.
    pub fn run<F: FnMut()>(&self, name: &str, mut f: F) -> Measurement {
        // Calibration: one untimed-then-timed call sizes the iteration
        // count so a repetition lasts about `target_rep_ns`.
        let t0 = Instant::now();
        f();
        let first_ns = t0.elapsed().as_nanos().max(1) as u64;
        let iters = if self.target_rep_ns == 0 {
            1
        } else {
            (self.target_rep_ns / first_ns).clamp(1, 1_000_000_000)
        };
        for _ in 0..self.warmup_reps {
            for _ in 0..iters {
                f();
            }
        }
        let mut samples: Vec<f64> = (0..self.reps.max(1))
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        Measurement {
            name: name.to_string(),
            ns_per_op: samples[samples.len() / 2],
            iters,
            reps: samples.len(),
        }
    }
}

/// Prevents the optimizer from discarding a benchmarked computation.
///
/// Thin wrapper over [`std::hint::black_box`], re-exported so benchmark
/// code reads uniformly.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let b = Bencher {
            warmup_reps: 1,
            reps: 3,
            target_rep_ns: 1_000_000,
        };
        let mut acc = 0u64;
        let m = b.run("spin", || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
        });
        assert!(m.ns_per_op > 0.0);
        assert!(m.iters >= 1);
        assert_eq!(m.reps, 3);
    }

    #[test]
    fn gflops_inverts_ns() {
        let m = Measurement {
            name: "x".into(),
            ns_per_op: 2.0,
            iters: 1,
            reps: 1,
        };
        assert!((m.gflops(4.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn once_runs_single_rep() {
        let b = Bencher::once();
        let m = b.run("one", || {});
        assert_eq!(m.iters, 1);
        assert_eq!(m.reps, 1);
    }
}
