use crate::error::FormatError;
use crate::quantizer::Quantizer;

/// Binary weight quantization: every weight becomes `±scale`.
///
/// This is the BinaryConnect scheme the paper adopts (§IV-A4): weights use
/// one bit, while the input layer and feature maps keep a multi-bit
/// fixed-point representation, so the accelerator's weight block degenerates
/// to a sign-controlled negate and the WB/adder-tree pipeline stages can be
/// merged.
///
/// `scale` defaults to `1.0` (pure ±1 weights). Calibration can instead set
/// it to the mean absolute weight of the tensor (the XNOR-Net refinement),
/// which the hardware folds into the nonlinearity stage at no per-MAC cost.
///
/// ```
/// use qnn_quant::{Binary, Quantizer};
///
/// let q = Binary::new();
/// assert_eq!(q.quantize_value(0.3), 1.0);
/// assert_eq!(q.quantize_value(-7.0), -1.0);
/// assert_eq!(q.quantize_value(0.0), 1.0); // sign(0) → +1 by convention
/// assert_eq!(q.bits(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binary {
    scale: f32,
}

impl Binary {
    /// Pure ±1 binarization.
    pub fn new() -> Self {
        Binary { scale: 1.0 }
    }

    /// Binarization to `±scale`.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidParameter`] if `scale` is not a finite
    /// positive number.
    pub fn with_scale(scale: f32) -> Result<Self, FormatError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(FormatError::InvalidParameter {
                format: "binary",
                reason: format!("scale must be finite and positive, got {scale}"),
            });
        }
        Ok(Binary { scale })
    }

    /// The magnitude both representable values share.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Encodes the sign bit: `true` for negative.
    pub fn encode(&self, x: f32) -> bool {
        x < 0.0
    }

    /// Decodes a sign bit back to `±scale`.
    pub fn decode(&self, sign: bool) -> f32 {
        if sign {
            -self.scale
        } else {
            self.scale
        }
    }
}

impl Default for Binary {
    fn default() -> Self {
        Binary::new()
    }
}

impl Quantizer for Binary {
    fn bit_codec(&self) -> Option<crate::codec::BitCodec> {
        Some(crate::codec::BitCodec::Binary(*self))
    }

    fn quantize_value(&self, x: f32) -> f32 {
        self.decode(self.encode(x))
    }

    fn quantize_slice(&self, data: &mut [f32]) {
        // Branch-free sign select (a `< 0.0` compare and two constants) so
        // the activation fake-quantize pass vectorizes; same NaN/±0.0
        // convention as `encode` (both pick +scale).
        let scale = self.scale;
        for v in data {
            *v = if *v < 0.0 { -scale } else { scale };
        }
    }

    fn bits(&self) -> u32 {
        1
    }

    fn describe(&self) -> String {
        if self.scale == 1.0 {
            "binary[±1]".to_string()
        } else {
            format!("binary[±{}]", self.scale)
        }
    }

    fn max_value(&self) -> f32 {
        self.scale
    }

    fn min_value(&self) -> f32 {
        -self.scale
    }

    /// BinaryConnect clips shadow weights at ±1, not at ±scale — the
    /// representable set is two points, and freezing every weight whose
    /// shadow exceeds the (typically small) scale would stall training.
    fn ste_clip_range(&self) -> (f32, f32) {
        (-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binarizes_to_plus_minus_one() {
        let q = Binary::new();
        assert_eq!(q.quantize_value(2.7), 1.0);
        assert_eq!(q.quantize_value(-0.001), -1.0);
        assert_eq!(q.quantize_value(0.0), 1.0);
    }

    #[test]
    fn scaled_variant() {
        let q = Binary::with_scale(0.25).unwrap();
        assert_eq!(q.quantize_value(9.0), 0.25);
        assert_eq!(q.quantize_value(-9.0), -0.25);
        assert_eq!(q.max_value(), 0.25);
    }

    #[test]
    fn rejects_bad_scale() {
        assert!(Binary::with_scale(0.0).is_err());
        assert!(Binary::with_scale(-1.0).is_err());
        assert!(Binary::with_scale(f32::NAN).is_err());
        assert!(Binary::with_scale(f32::INFINITY).is_err());
    }

    #[test]
    fn nan_input_picks_positive() {
        // NaN < 0.0 is false, so NaN deterministically maps to +scale.
        assert_eq!(Binary::new().quantize_value(f32::NAN), 1.0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let q = Binary::with_scale(0.5).unwrap();
        for &x in &[1.0f32, -1.0, 0.0, -0.0, 42.0] {
            assert_eq!(q.decode(q.encode(x)), q.quantize_value(x));
        }
    }
}
