//! Straight-through estimator (STE) for training through quantizers.
//!
//! Quantization is a staircase: its true derivative is zero almost
//! everywhere, which would stall SGD. Courbariaux et al. (the paper's
//! train-time technique, §IV-A) instead keep a *shadow* full-precision
//! copy of each weight tensor, run the forward pass on the quantized copy,
//! and pass the upstream gradient straight through to the shadow copy —
//! optionally zeroing it where the shadow value already exceeds the
//! representable range (so saturated weights stop drifting outward).

use qnn_tensor::{Tensor, TensorError};

use crate::quantizer::Quantizer;

/// Straight-through gradient: `grad` passed through unchanged except where
/// the shadow value lies outside `[min_value, max_value]` of the target
/// format, where it is zeroed.
///
/// This is the "clipped STE" of BinaryConnect; with an unbounded format it
/// degenerates to the identity.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `shadow` and `grad` differ in
/// shape.
pub fn clipped_pass_through(
    shadow: &Tensor,
    grad: &Tensor,
    quantizer: &dyn Quantizer,
) -> Result<Tensor, TensorError> {
    let (lo, hi) = quantizer.ste_clip_range();
    shadow.zip(grad, |w, g| if w < lo || w > hi { 0.0 } else { g })
}

/// Unclipped straight-through gradient (pure identity on the gradient).
///
/// Exposed so the QAT ablation can compare clipped vs. unclipped STE.
pub fn pass_through(grad: &Tensor) -> Tensor {
    grad.clone()
}

/// One shadow-weight update step:
/// `shadow ← shadow - lr · ste_grad`, then returns the re-quantized copy
/// for the next forward pass.
///
/// This is the inner loop of the paper's training methodology — gradients
/// accumulate in full precision so updates smaller than a quantization step
/// are not lost.
///
/// # Errors
///
/// Returns a shape error if `shadow` and `grad` differ in shape.
pub fn update_shadow(
    shadow: &mut Tensor,
    grad: &Tensor,
    lr: f32,
    quantizer: &dyn Quantizer,
    clip: bool,
) -> Result<Tensor, TensorError> {
    let g = if clip {
        clipped_pass_through(shadow, grad, quantizer)?
    } else {
        pass_through(grad)
    };
    shadow.axpy(-lr, &g)?;
    Ok(quantizer.quantize(shadow))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::Fixed;
    use crate::quantizer::IdentityQuantizer;
    use qnn_tensor::Shape;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(Shape::d1(n), v).unwrap()
    }

    #[test]
    fn identity_format_passes_everything() {
        let w = t(vec![1e10, -1e10]);
        let g = t(vec![1.0, 2.0]);
        let out = clipped_pass_through(&w, &g, &IdentityQuantizer).unwrap();
        assert_eq!(out, g);
    }

    #[test]
    fn clipping_zeroes_saturated_weights() {
        let q = Fixed::new(8, 4).unwrap(); // range [-8, 7.9375]
        let w = t(vec![0.5, 9.0, -9.0, 7.9]);
        let g = t(vec![1.0, 1.0, 1.0, 1.0]);
        let out = clipped_pass_through(&w, &g, &q).unwrap();
        assert_eq!(out.as_slice(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn shadow_accumulates_sub_step_updates() {
        // Ten updates of 0.01 on a grid of step 1/16: individually invisible
        // after quantization, but the shadow carries them and eventually the
        // quantized copy moves — the whole point of shadow weights.
        let q = Fixed::new(8, 4).unwrap();
        let mut shadow = t(vec![0.0]);
        let g = t(vec![-1.0]); // gradient pushing the weight up with lr 0.01
        let mut quantized = q.quantize(&shadow);
        assert_eq!(quantized.as_slice(), &[0.0]);
        for _ in 0..10 {
            quantized = update_shadow(&mut shadow, &g, 0.01, &q, true).unwrap();
        }
        assert!((shadow.as_slice()[0] - 0.1).abs() < 1e-6);
        assert_eq!(quantized.as_slice(), &[0.125]); // 2 grid steps up
    }

    #[test]
    fn unclipped_update_moves_saturated_weight_further() {
        let q = Fixed::new(4, 0).unwrap(); // range [-8, 7]
        let mut shadow = t(vec![20.0]);
        let g = t(vec![-1.0]);
        let before = shadow.as_slice()[0];
        update_shadow(&mut shadow, &g, 0.5, &q, false).unwrap();
        assert!(shadow.as_slice()[0] > before);
        // Clipped variant would freeze it:
        let mut shadow2 = t(vec![20.0]);
        update_shadow(&mut shadow2, &g, 0.5, &q, true).unwrap();
        assert_eq!(shadow2.as_slice()[0], 20.0);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let q = IdentityQuantizer;
        let w = t(vec![1.0, 2.0]);
        let g = t(vec![1.0]);
        assert!(clipped_pass_through(&w, &g, &q).is_err());
    }
}
