use std::error::Error;
use std::fmt;

/// Error raised when constructing a numeric format with impossible
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Word width outside the supported range for the format.
    InvalidWidth {
        /// Format family that rejected the width.
        format: &'static str,
        /// The requested width, in bits.
        bits: u32,
        /// Inclusive supported range.
        supported: (u32, u32),
    },
    /// A parameter combination that cannot represent any value (e.g. a
    /// power-of-two window of size zero).
    InvalidParameter {
        /// Format family that rejected the parameter.
        format: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::InvalidWidth {
                format,
                bits,
                supported,
            } => write!(
                f,
                "{format}: unsupported width {bits} bits (supported {}..={})",
                supported.0, supported.1
            ),
            FormatError::InvalidParameter { format, reason } => {
                write!(f, "{format}: {reason}")
            }
        }
    }
}

impl Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_bounds() {
        let e = FormatError::InvalidWidth {
            format: "fixed",
            bits: 64,
            supported: (2, 32),
        };
        let s = e.to_string();
        assert!(s.contains("64") && s.contains("2..=32"));
    }
}
