//! Packed integer representations and the exactness certificate behind the
//! native low-precision fast path.
//!
//! The simulated path (`Quantizer::quantize` + f32 GEMM) is the semantic
//! reference for every artifact in this repo, so the native kernels in
//! `qnn_tensor::qgemm` may only be used when they provably produce the
//! **same f32 bits**. This module supplies the three pieces that make that
//! a theorem rather than a hope:
//!
//! 1. **Packers** that re-encode quantized f32 tensors into integer words
//!    *through [`BitCodec`]* — the same encode/decode the fault injectors
//!    use — and verify round-trip bit-identity per element. A value that is
//!    not exactly on the format grid (or a format too wide to pack) makes
//!    the packer return `None`, and the caller falls back to the simulated
//!    path. No drift between fault encoding and kernel encoding is possible
//!    because there is only one encoding.
//! 2. **The certificate** [`dot_exact`]: native dispatch fires only when
//!    every product and partial sum of the dot is exactly representable in
//!    both the integer accumulator and f32. Then the sequential f32 dot the
//!    simulated path computes *is* the integer dot times the scale, bit for
//!    bit — see the function docs for the argument.
//! 3. **Requantizers** that convert the integer accumulators back to f32
//!    exactly (a single multiply by a power of two per element).
//!
//! All packed layouts are row-major with `k` (the reduction dimension)
//! contiguous, matching the NT kernels in `qnn_tensor::qgemm`.

use crate::{Binary, BitCodec, Fixed, PowerOfTwo, Quantizer, RoundMode};
use qnn_tensor::qgemm;

/// Trace counter: requantize (integer accumulator → f32) passes.
const CTR_REQUANT: &str = "quant.requantize.calls";

/// True when the AVX2 clones of the packing loops may run on this CPU.
/// Mirrors the dispatch in `qnn_tensor::qgemm`: this crate targets baseline
/// x86-64, so vector widths beyond SSE2 are only reachable through
/// `#[target_feature]` wrappers selected at runtime. Both instantiations
/// compile the *same* element-wise body, so results are bit-identical.
#[cfg(target_arch = "x86_64")]
fn simd_ok() -> bool {
    static OK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *OK.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Runtime-dispatched call of an `#[inline(always)]` loop body: through its
/// AVX2 `#[target_feature]` clone when the CPU allows, else the plain
/// instantiation.
macro_rules! dispatch {
    ($body:ident, $avx2:ident, ($($arg:expr),*)) => {{
        #[cfg(target_arch = "x86_64")]
        {
            if simd_ok() {
                // SAFETY: `simd_ok` verified AVX2 on this CPU, the only
                // precondition of the target_feature wrapper.
                unsafe { $avx2($($arg),*) }
            } else {
                $body($($arg),*)
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            $body($($arg),*)
        }
    }};
}

/// Declares the AVX2 clone of a loop body.
macro_rules! avx2_clone {
    ($name:ident = $body:ident ( $($arg:ident : $ty:ty),* ) -> $ret:ty) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $name($($arg: $ty),*) -> $ret {
            $body($($arg),*)
        }
    };
}

/// The exponent `e` such that `s == 2^e` exactly, if `s` is a positive
/// normal power of two. Binary scales that are not powers of two (e.g. the
/// calibrated mean-|w| scale) make the fast path inexact, so they return
/// `None` and the caller falls back.
pub fn pow2_scale_exp(s: f32) -> Option<i32> {
    let bits = s.to_bits();
    let exp = (bits >> 23) & 0xff;
    let mantissa = bits & 0x7f_ffff;
    if s > 0.0 && mantissa == 0 && exp != 0 && exp != 0xff {
        Some(exp as i32 - 127)
    } else {
        None
    }
}

/// The exactness certificate: may a dot product of length `k` between
/// integer raws bounded by `max_a_raw`/`max_w_raw`, whose value is
/// `S · 2^lsb_exp`, run natively and still match the simulated f32 path
/// bit for bit?
///
/// Requires `max_a_raw · max_w_raw · k <= 2^24` and `-149 <= lsb_exp <= 103`.
/// Under those bounds:
///
/// * every product and every partial sum is an integer `S_j` with
///   `|S_j| <= 2^24`, so the i32 accumulator cannot overflow — not even
///   reassociated SIMD partials, since the bound is on `Σ|products|`;
/// * every intermediate value `S_j · 2^lsb_exp` is exactly representable
///   in f32: its significand fits 24 bits, its least bit `2^lsb_exp` is on
///   or above the subnormal grid (`lsb_exp >= -149`), and its magnitude is
///   at most `2^24 · 2^103 = 2^127 < f32::MAX`;
/// * IEEE-754 multiplies and adds are correctly rounded, so when the true
///   result is representable they return it exactly.
///
/// Hence the simulated path's sequential f32 dot equals the integer dot
/// scaled by `2^lsb_exp` — which is exactly what [`requantize_i32`]
/// computes — and the two paths agree bit for bit.
pub fn dot_exact(max_a_raw: i64, max_w_raw: i64, k: usize, lsb_exp: i32) -> bool {
    if !(-149..=103).contains(&lsb_exp) || max_a_raw < 0 || max_w_raw < 0 {
        return false;
    }
    let Ok(k) = i64::try_from(k) else {
        return false;
    };
    max_a_raw
        .checked_mul(max_w_raw)
        .and_then(|p| p.checked_mul(k))
        .is_some_and(|total| total <= 1 << 24)
}

/// [`dot_exact`] extended to the two-panel shift-add pow2 path: the same
/// dot computed as `lo + (hi << base_shift)` over two i16 residual panels.
/// Beyond the base certificate it demands that the hi residuals fit i16
/// (`max_w_raw >> base_shift <= i16::MAX`) and that the base shift cannot
/// push a certified partial past i32 (`base_shift < 31`). Under
/// [`dot_exact`]'s `Σ|a·w| <= 2^24` bound, both panel products and the
/// shifted combine are partial sums of that same Σ, so no step can
/// overflow and the reassembled accumulator equals the direct integer dot
/// — which the base certificate already ties, bit for bit, to the
/// simulated f32 reference.
///
/// The fused requantize epilogue adds **no further obligations**: the
/// requantize multiply is the same exact power-of-two scaling
/// [`requantize_i32`] performs (exact under the `lsb_exp` bounds above),
/// and the bias add and output-precision snap that follow are the
/// identical elementwise f32 operations the layer and network would
/// otherwise run as separate whole-tensor passes — same values in, same
/// ops, same bits out (see [`Epilogue`]).
pub fn dot_exact_shift_add(
    max_a_raw: i64,
    max_w_raw: i64,
    k: usize,
    lsb_exp: i32,
    base_shift: u32,
) -> bool {
    dot_exact(max_a_raw, max_w_raw, k, lsb_exp)
        && base_shift < 31
        && (max_w_raw >> base_shift) <= i16::MAX as i64
}

/// [`dot_exact`] tightened to an accumulator of only `acc_bits` bits
/// (two's complement, so the representable range is
/// `[-2^(acc_bits-1), 2^(acc_bits-1) - 1]`).
///
/// The base certificate bounds every partial sum of the dot by
/// `Σ|a·w| <= max_a_raw · max_w_raw · k`, so it suffices to additionally
/// demand `max_a_raw · max_w_raw · k <= 2^(acc_bits-1) - 1`: then no
/// partial sum — in either association order — can leave the narrow
/// two's-complement range, the accumulator never saturates, and the
/// narrow-accumulator engine computes the same integer dot as the full
/// width. (The asymmetric negative endpoint `-2^(acc_bits-1)` is still
/// reachable but deliberately left out of the bound; keeping the
/// certificate symmetric keeps the argument one line.)
///
/// `acc_bits` outside `[2, 63]` returns `false`: one bit cannot hold a
/// signed sum, and 64 would overflow the i64 bound computation itself
/// (widths ≥ 26 are no stricter than [`dot_exact`]'s own `2^24` bound,
/// so the practical range is small). A dot *not* certified here must run
/// through the saturation-aware simulated path
/// (`TileSimulator::with_acc_bits`), which is the semantic reference for
/// narrow-accumulator designs.
pub fn dot_exact_narrow_acc(
    max_a_raw: i64,
    max_w_raw: i64,
    k: usize,
    lsb_exp: i32,
    acc_bits: u32,
) -> bool {
    if !(2..=63).contains(&acc_bits) || !dot_exact(max_a_raw, max_w_raw, k, lsb_exp) {
        return false;
    }
    let Ok(k) = i64::try_from(k) else {
        return false;
    };
    let limit = (1i64 << (acc_bits - 1)) - 1;
    max_a_raw
        .checked_mul(max_w_raw)
        .and_then(|p| p.checked_mul(k))
        .is_some_and(|total| total <= limit)
}

/// Converts i32 accumulators to f32 by scaling with `2^lsb_exp`. Exact
/// under the [`dot_exact`] certificate: the product is computed in f64
/// (24-bit significand × exact power of two) and narrowed to an f32 that
/// represents it exactly.
pub fn requantize_i32(acc: &[i32], lsb_exp: i32, out: &mut [f32]) {
    let step = (lsb_exp as f64).exp2();
    dispatch!(requant_body, requant_avx2, (acc, step, out));
    qnn_trace::counter!(CTR_REQUANT, 1);
}

#[inline(always)]
fn requant_body(acc: &[i32], step: f64, out: &mut [f32]) {
    for (o, &s) in out.iter_mut().zip(acc.iter()) {
        *o = (s as f64 * step) as f32;
    }
}
avx2_clone!(requant_avx2 = requant_body(acc: &[i32], step: f64, out: &mut [f32]) -> ());

/// [`requantize_i32`] for the i64 accumulators of the pow2 kernel.
pub fn requantize_i64(acc: &[i64], lsb_exp: i32, out: &mut [f32]) {
    let step = (lsb_exp as f64).exp2();
    for (o, &s) in out.iter_mut().zip(acc.iter()) {
        *o = (s as f64 * step) as f32;
    }
    qnn_trace::counter!(CTR_REQUANT, 1);
}

/// Encodes one value through `codec` and demands exact round-trip: the
/// stored word must decode back to the *same bits*. Off-grid values (and
/// `-0.0`, which no codec produces) yield `None`.
#[inline]
fn encode_on_grid(codec: &BitCodec, x: f32) -> Option<u64> {
    let bits = codec.encode_bits(x);
    if codec.decode_bits(bits).to_bits() == x.to_bits() {
        Some(bits)
    } else {
        None
    }
}

/// A fixed-point tensor packed as two's-complement i16 raws (the widest
/// packable fixed format is 16 bits). Narrower formats use the same i16
/// words: the `vpmaddwd`-shaped i16 kernel outruns a dedicated i8 kernel,
/// so a second storage width would only add packing cost.
#[derive(Debug, Clone)]
pub struct PackedFixed {
    rows: usize,
    cols: usize,
    frac_bits: i32,
    max_abs_raw: i64,
    words16: Vec<i16>,
    /// Register-blocked microkernel panels of [`Self::words16`] — built
    /// only for weight tensors (see [`Self::build_panel`]); activations are
    /// packed fresh every call and read row-major, so a panel would be pure
    /// overhead on their side.
    panel: Option<qgemm::PanelB>,
}

impl PackedFixed {
    /// Packs a `rows×cols` row-major tensor of values already on the grid
    /// of `format`. Returns `None` if the format is wider than 16 bits or
    /// any value fails the round-trip check.
    pub fn pack(format: &Fixed, rows: usize, cols: usize, data: &[f32]) -> Option<Self> {
        Self::pack_with(format, rows, cols, data, false)
    }

    /// Packs the **transpose** of a `rows×cols` row-major tensor: packed
    /// row `j` holds source column `j`. Used for im2col patch matrices,
    /// whose reduction dimension is the *row* index.
    pub fn pack_transposed(format: &Fixed, rows: usize, cols: usize, data: &[f32]) -> Option<Self> {
        Self::pack_with(format, rows, cols, data, true)
    }

    fn pack_with(
        format: &Fixed,
        rows: usize,
        cols: usize,
        data: &[f32],
        transpose: bool,
    ) -> Option<Self> {
        assert_eq!(data.len(), rows * cols, "packed tensor shape mismatch");
        let width = format.word_bits();
        if width > 16 {
            return None;
        }
        let (prows, pcols) = if transpose {
            (cols, rows)
        } else {
            (rows, cols)
        };
        let mut words16 = vec![0i16; data.len()];
        // The loop bodies below do a per-element encode + round-trip check
        // through `encode_f64_with_scale` / `decode_f64_with_scale` — the
        // very kernels `BitCodec::Fixed`'s encode/decode narrow to i64, so
        // this is still the single fault-codec encoding (see
        // `packers_share_the_fault_codec`). The format's 2^frac scale is
        // hoisted here so the `exp2` libm call runs once, not per element.
        // One switch-free monomorphization of the loops per rounding mode —
        // a switch inside the loop body is the one control-flow shape the
        // auto-vectorizer rejects outright (see `Fixed::encode_f64_mode`).
        let scale = format.scale_f64();
        let off_grid = if let Some(flag) = fast_pack(format, data, &mut words16, transpose) {
            flag
        } else {
            match format.round_mode() {
                RoundMode::NearestAway => run_pack::<{ RoundMode::AWAY }>(
                    format,
                    scale,
                    cols,
                    pcols,
                    data,
                    &mut words16,
                    transpose,
                ),
                RoundMode::NearestEven => run_pack::<{ RoundMode::EVEN }>(
                    format,
                    scale,
                    cols,
                    pcols,
                    data,
                    &mut words16,
                    transpose,
                ),
                RoundMode::Floor => run_pack::<{ RoundMode::FLOOR }>(
                    format,
                    scale,
                    cols,
                    pcols,
                    data,
                    &mut words16,
                    transpose,
                ),
            }
        };
        if off_grid {
            return None;
        }
        let max_abs_raw = words16
            .iter()
            .map(|&w| (w as i32).unsigned_abs())
            .max()
            .unwrap_or(0) as i64;
        Some(PackedFixed {
            rows: prows,
            cols: pcols,
            frac_bits: format.frac_bits(),
            max_abs_raw,
            words16,
            panel: None,
        })
    }

    /// Packs [`Self::words16`] into register-blocked microkernel panels
    /// (see `qnn_tensor::qgemm::PanelB`). Called once per *weight* tensor
    /// by [`PackedWeights::pack`] — the panel then lives as long as the
    /// plan, amortizing over every batched forward and serve request.
    pub fn build_panel(&mut self) {
        self.panel = Some(qgemm::PanelB::pack(self.rows, self.cols, &self.words16));
    }

    /// The microkernel panel, when [`Self::build_panel`] has run.
    pub fn panel(&self) -> Option<&qgemm::PanelB> {
        self.panel.as_ref()
    }

    /// Builds the ±1 fixed-point view of a sign tensor: raw `+1` or `-1`
    /// with `frac_bits = -scale_exp`, so a binary weight `±2^scale_exp`
    /// participates in the fixed-point kernels unchanged.
    fn from_signs(rows: usize, cols: usize, signs: &[bool], scale_exp: i32) -> Self {
        let words16: Vec<i16> = signs.iter().map(|&neg| if neg { -1 } else { 1 }).collect();
        PackedFixed {
            rows,
            cols,
            frac_bits: -scale_exp,
            max_abs_raw: 1,
            words16,
            panel: None,
        }
    }

    /// Packed row count (the reduction dimension is [`Self::cols`]).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Packed column count — the length of each contiguous dot operand.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Fractional bits of the packed format: a raw `r` means `r · 2^-frac`.
    pub fn frac_bits(&self) -> i32 {
        self.frac_bits
    }

    /// Largest `|raw|` actually present — the certificate's operand bound.
    pub fn max_abs_raw(&self) -> i64 {
        self.max_abs_raw
    }

    /// The i16 words, row-major.
    pub fn words16(&self) -> &[i16] {
        &self.words16
    }
}

/// Runtime-dispatched fixed-point pack loop, monomorphized over the
/// rounding mode `M` (see [`Fixed::encode_f64_mode`]): through the AVX2
/// `#[target_feature]` clone when the CPU allows, else the plain
/// instantiation of the identical body.
#[allow(clippy::too_many_arguments)]
fn run_pack<const M: u8>(
    format: &Fixed,
    scale: f64,
    cols: usize,
    pcols: usize,
    data: &[f32],
    words: &mut [i16],
    transpose: bool,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_ok() {
            // SAFETY: `simd_ok` verified AVX2 on this CPU, the only
            // precondition of the target_feature wrapper.
            unsafe { pack_avx2::<M>(format, scale, cols, pcols, data, words, transpose) }
        } else {
            pack_body::<M>(format, scale, cols, pcols, data, words, transpose)
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        pack_body::<M>(format, scale, cols, pcols, data, words, transpose)
    }
}

/// Fixed-point pack loop: encode each value, fold round-trip failures into
/// the returned flag (no early exit — a data-dependent branch would defeat
/// vectorization), store the i16 word. The raw stays in its integral-f64
/// form throughout: AVX2 has no vectorized f64→i64 convert, while f64→i16
/// lowers through `vcvttpd2dq`. The max-|raw| reduction happens in a
/// separate pass over the words so the only loop-carried state here is the
/// or-flag. With `transpose`, packed row `j` is source column `j` of the
/// `cols`-wide row-major `data`: the writes stay linear and the strided
/// reads are the price of the im2col layout.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn pack_body<const M: u8>(
    format: &Fixed,
    scale: f64,
    cols: usize,
    pcols: usize,
    data: &[f32],
    words: &mut [i16],
    transpose: bool,
) -> bool {
    let mut off_grid = false;
    if transpose {
        for (pr, w_row) in words.chunks_exact_mut(pcols).enumerate() {
            for (pc, w) in w_row.iter_mut().enumerate() {
                let x = data[pc * cols + pr];
                let raw = format.encode_f64_mode::<M>(x, scale);
                off_grid |= format.decode_f64_with_scale(raw, scale).to_bits() != x.to_bits();
                *w = raw as i16;
            }
        }
    } else {
        for (w, &x) in words.iter_mut().zip(data) {
            let raw = format.encode_f64_mode::<M>(x, scale);
            off_grid |= format.decode_f64_with_scale(raw, scale).to_bits() != x.to_bits();
            *w = raw as i16;
        }
    }
    off_grid
}

/// The AVX2 clone of [`pack_body`].
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pack_avx2<const M: u8>(
    format: &Fixed,
    scale: f64,
    cols: usize,
    pcols: usize,
    data: &[f32],
    words: &mut [i16],
    transpose: bool,
) -> bool {
    pack_body::<M>(format, scale, cols, pcols, data, words, transpose)
}

/// The wide f32 fast path for the row-major pack, when applicable (AVX2
/// CPU, no transpose, `|frac_bits| <= 32`): `Some(off_grid)` with the words
/// filled in, `None` to run the general f64 loop instead.
///
/// Why the fast path is **exactly** the slow path despite using a
/// different rounding pipeline: the pack's contract is *verify and
/// transcribe*, not *round*. For any input `x`,
///
/// * if `x = r·2^-frac` for an integer `r` in the format's raw range
///   (`x` is representable), then `x·2^frac` is exactly `r` in f32
///   (product of an on-grid f32 by a power of two, `|r| <= 2^15`, no
///   rounding), every rounding mode maps it to `r`, and both decode
///   checks pass — both paths store `r` with the flag clear;
/// * otherwise no raw in range decodes to `x` — decode (`raw·2^-frac`
///   under the gates above) is an exact product, hence injective — so
///   *whatever* candidate raw either path rounds to, its decode-compare
///   fails and both paths raise the flag. NaN, ±infinity, `-0.0` and
///   overflowing magnitudes (where `vcvtps2dq` returns the `i32::MIN`
///   sentinel) all land here.
///
/// The flag agrees in every case and the stored words agree whenever the
/// flag is clear (when set, `pack_with` discards the words entirely), so
/// the two paths are interchangeable bit for bit.
#[cfg(target_arch = "x86_64")]
fn fast_pack(format: &Fixed, data: &[f32], words: &mut [i16], transpose: bool) -> Option<bool> {
    if transpose || !simd_ok() || !(-32..=32).contains(&format.frac_bits()) {
        return None;
    }
    // SAFETY: `simd_ok` verified AVX2 on this CPU.
    Some(unsafe { pack_grid_avx2(format, data, words) })
}

#[cfg(not(target_arch = "x86_64"))]
fn fast_pack(_format: &Fixed, _data: &[f32], _words: &mut [i16], _transpose: bool) -> Option<bool> {
    None
}

/// One 8-lane step of [`pack_grid_avx2`]: returns the candidate raws and a
/// lane mask of round-trip/range failures.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn pack_grid_step8(
    p: *const f32,
    scale: std::arch::x86_64::__m256,
    inv: std::arch::x86_64::__m256,
    min_raw: std::arch::x86_64::__m256i,
    max_raw: std::arch::x86_64::__m256i,
) -> (std::arch::x86_64::__m256i, std::arch::x86_64::__m256i) {
    use std::arch::x86_64::*;
    let v = _mm256_loadu_ps(p);
    // Round-to-nearest-even via the default MXCSR mode; out-of-range
    // products become the i32::MIN sentinel, which the range check flags.
    let raw = _mm256_cvtps_epi32(_mm256_mul_ps(v, scale));
    let dec = _mm256_mul_ps(_mm256_cvtepi32_ps(raw), inv);
    // Bitwise compare (not float ==): -0.0 and NaN must fail.
    let eq = _mm256_cmpeq_epi32(_mm256_castps_si256(dec), _mm256_castps_si256(v));
    let out_rng = _mm256_or_si256(
        _mm256_cmpgt_epi32(raw, max_raw),
        _mm256_cmpgt_epi32(min_raw, raw),
    );
    let bad = _mm256_or_si256(_mm256_andnot_si256(eq, _mm256_set1_epi32(-1)), out_rng);
    (raw, bad)
}

/// The vectorized verify-and-transcribe loop behind [`fast_pack`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pack_grid_avx2(format: &Fixed, data: &[f32], words: &mut [i16]) -> bool {
    use std::arch::x86_64::*;
    let rail = 1i32 << (format.word_bits() - 1);
    let scale = _mm256_set1_ps((format.frac_bits() as f32).exp2());
    let inv = _mm256_set1_ps((-format.frac_bits() as f32).exp2());
    let min_raw = _mm256_set1_epi32(-rail);
    let max_raw = _mm256_set1_epi32(rail - 1);
    let mut bad = _mm256_setzero_si256();
    let n = data.len();
    let mut i = 0;
    while i + 16 <= n {
        // SAFETY: lanes i..i+16 are in bounds for both slices.
        let (r0, b0) = pack_grid_step8(data.as_ptr().add(i), scale, inv, min_raw, max_raw);
        let (r1, b1) = pack_grid_step8(data.as_ptr().add(i + 8), scale, inv, min_raw, max_raw);
        bad = _mm256_or_si256(bad, _mm256_or_si256(b0, b1));
        // packs interleaves the two sources per 128-bit half; the permute
        // restores element order. Saturation can only fire on raws the
        // range check already flagged, whose words are discarded anyway.
        let w = _mm256_permute4x64_epi64(_mm256_packs_epi32(r0, r1), 0b11011000);
        _mm256_storeu_si256(words.as_mut_ptr().add(i) as *mut __m256i, w);
        i += 16;
    }
    if i < n {
        // Ragged tail through the same 16-lane body over a zero-padded
        // buffer: a 0.0 pad lane encodes to raw 0, decodes back to +0.0,
        // stays in range — never a spurious flag.
        let mut buf = [0.0f32; 16];
        buf[..n - i].copy_from_slice(&data[i..]);
        let (r0, b0) = pack_grid_step8(buf.as_ptr(), scale, inv, min_raw, max_raw);
        let (r1, b1) = pack_grid_step8(buf.as_ptr().add(8), scale, inv, min_raw, max_raw);
        bad = _mm256_or_si256(bad, _mm256_or_si256(b0, b1));
        let w = _mm256_permute4x64_epi64(_mm256_packs_epi32(r0, r1), 0b11011000);
        let mut tmp = [0i16; 16];
        _mm256_storeu_si256(tmp.as_mut_ptr() as *mut __m256i, w);
        words[i..].copy_from_slice(&tmp[..n - i]);
    }
    _mm256_movemask_epi8(bad) != 0
}

/// A binary (±scale) tensor packed both as XNOR sign planes and as ±1
/// fixed-point words, so it can meet either a binary or a fixed-point
/// opposite operand. Only power-of-two scales pack (see [`pow2_scale_exp`]).
#[derive(Debug, Clone)]
pub struct PackedBinary {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    scale_exp: i32,
    planes: Vec<u64>,
    as_fixed: PackedFixed,
}

impl PackedBinary {
    /// Packs a `rows×cols` row-major tensor of values that are exactly
    /// `±scale` with `scale = 2^e`. Returns `None` for non-power-of-two
    /// scales or off-grid values.
    pub fn pack(format: &Binary, rows: usize, cols: usize, data: &[f32]) -> Option<Self> {
        assert_eq!(data.len(), rows * cols, "packed tensor shape mismatch");
        let scale_exp = pow2_scale_exp(format.scale())?;
        // On-grid for a binary codec means bit-equal to `+scale` or
        // `-scale` (the only two values `BitCodec::Binary` can decode);
        // comparing bit patterns directly is the same check as the
        // encode/decode round trip without the per-element calls.
        let pos_bits = format.scale().to_bits();
        let neg_bits = (-format.scale()).to_bits();
        let mut signs = Vec::with_capacity(data.len());
        for &x in data {
            let bits = x.to_bits();
            if bits == neg_bits {
                signs.push(true);
            } else if bits == pos_bits {
                signs.push(false);
            } else {
                return None;
            }
        }
        let words_per_row = cols.div_ceil(64);
        let mut planes = vec![0u64; rows * words_per_row];
        for (r, row) in signs.chunks_exact(cols.max(1)).enumerate().take(rows) {
            qnn_tensor::qgemm::pack_sign_row(
                row.iter().copied(),
                &mut planes[r * words_per_row..(r + 1) * words_per_row],
            );
        }
        let mut as_fixed = PackedFixed::from_signs(rows, cols, &signs, scale_exp);
        // Binary tensors only pack as weights (activations go through
        // `pack_act_planes`), so the ±1 fixed view always gets a panel.
        as_fixed.build_panel();
        Some(PackedBinary {
            rows,
            cols,
            words_per_row,
            scale_exp,
            planes,
            as_fixed,
        })
    }

    /// Packed row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Elements per row (sign bits used per plane row).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `u64` words per plane row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The scale exponent: values are `±2^scale_exp`.
    pub fn scale_exp(&self) -> i32 {
        self.scale_exp
    }

    /// The packed sign planes, row-major (1 = negative).
    pub fn planes(&self) -> &[u64] {
        &self.planes
    }

    /// The ±1 fixed-point view for mixed binary×fixed dispatch.
    pub fn as_fixed(&self) -> &PackedFixed {
        &self.as_fixed
    }
}

/// Base shift of the two-panel shift-add decomposition for wide-span pow2
/// weights: a relative exponent `e` lands in the **lo** residual table as
/// `±2^e` when `e < 15`, else in the **hi** table as `±2^(e-15)`, and the
/// kernel reassembles `acc = lo + (hi << 15)`. Both residuals fit i16
/// (`2^14` max), so the inner loops are pure `vpmaddwd` adds over small
/// residuals — the only shift is the one per-accumulator base shift.
pub const POW2_PANEL_SHIFT: u32 = 15;

/// A power-of-two weight tensor packed as relative exponent codes for the
/// shift-add kernel: code `0` is a zero weight, `±q` is `±2^(q-1)` in units
/// of `2^emin_used`.
#[derive(Debug, Clone)]
pub struct PackedPow2 {
    rows: usize,
    cols: usize,
    emin_used: i32,
    max_w_raw: i64,
    codes: Vec<i8>,
    words16: Option<Vec<i16>>,
    words32: Option<Vec<i32>>,
    /// Microkernel panel of `words16` (span ≤ 14).
    panel16: Option<qgemm::PanelB>,
    /// Shift-add residual panels `(lo, hi)` for spans 15..=29 (see
    /// [`POW2_PANEL_SHIFT`]). Spans 30 keep the one-multiply i32 kernel,
    /// span 31 the shift-add-chain codes kernel.
    panels_sa: Option<Box<(qgemm::PanelB, qgemm::PanelB)>>,
}

impl PackedPow2 {
    /// Packs a `rows×cols` row-major tensor of values on the grid of
    /// `format`. Returns `None` if any value fails the round-trip check or
    /// the used exponent span exceeds the kernel's shift budget (31).
    pub fn pack(format: &PowerOfTwo, rows: usize, cols: usize, data: &[f32]) -> Option<Self> {
        assert_eq!(data.len(), rows * cols, "packed tensor shape mismatch");
        let codec = BitCodec::PowerOfTwo(*format);
        let width = codec.width();
        // First pass: validate and find the used exponent window.
        let mut raws = Vec::with_capacity(data.len());
        let mut emin_used = i32::MAX;
        let mut emax_used = i32::MIN;
        for &x in data {
            let bits = encode_on_grid(&codec, x)?;
            let sign = (bits >> (width - 1)) & 1 == 1;
            let code = (bits & ((1u64 << (width - 1)) - 1)) as u32;
            if code != 0 {
                let e = format.min_exp() + code as i32 - 1;
                emin_used = emin_used.min(e);
                emax_used = emax_used.max(e);
            }
            raws.push((sign, code));
        }
        if emin_used > emax_used {
            // All-zero tensor: any unit works, every code is 0.
            emin_used = 0;
            emax_used = 0;
        }
        let span = emax_used - emin_used;
        if span > 31 {
            return None;
        }
        let codes: Vec<i8> = raws
            .into_iter()
            .map(|(sign, code)| {
                if code == 0 {
                    0i8
                } else {
                    let q = (format.min_exp() + code as i32 - 1 - emin_used + 1) as i8;
                    if sign {
                        -q
                    } else {
                        q
                    }
                }
            })
            .collect();
        let max_w_raw = if span == 0 && emin_used == 0 && emax_used == 0 {
            // Either all-zero or genuinely single-exponent at e=0; 2^span
            // is correct for both (zero tensor gives a zero dot anyway).
            1
        } else {
            1i64 << span
        };
        // When every weight magnitude fits an i16 (span ≤ 14), also
        // materialize the codes as plain fixed-point raws `±2^(q-1)`: the
        // same integers the shift-add kernel would produce on the fly, but
        // eligible for the far faster `vpmaddwd` i16 kernel. The 2^24
        // certificate caps `acts·2^span·k`, so realistic dispatches satisfy
        // this and the shift-add kernel serves only the wide-span tail.
        let words16: Option<Vec<i16>> = (span <= 14).then(|| {
            codes
                .iter()
                .map(|&q| {
                    let mag = 1i32 << (q.unsigned_abs().wrapping_sub(1) & 31);
                    (if q == 0 {
                        0
                    } else if q < 0 {
                        -mag
                    } else {
                        mag
                    }) as i16
                })
                .collect()
        });
        // Spans past the i16 view but within i32 (15..=30) materialize as
        // i32 raws for the one-multiply wide kernel; only span 31 (where
        // +2^31 has no i32 representation) is left to shift-add.
        let words32 = (words16.is_none() && span <= 30).then(|| {
            codes
                .iter()
                .map(|&q| {
                    let mag = 1i32 << (q.unsigned_abs().wrapping_sub(1) & 31);
                    if q == 0 {
                        0
                    } else if q < 0 {
                        -mag
                    } else {
                        mag
                    }
                })
                .collect()
        });
        let panel16 = words16.as_ref().map(|w| qgemm::PanelB::pack(rows, cols, w));
        let panels_sa = (words16.is_none() && span <= 29).then(|| {
            // Decompose each weight into exactly one residual bucket:
            // `w = lo + hi·2^15` with the other bucket zero, so the two
            // panel products sum (after the base shift) to the exact dot.
            let mut lo = vec![0i16; codes.len()];
            let mut hi = vec![0i16; codes.len()];
            for (i, &q) in codes.iter().enumerate() {
                if q != 0 {
                    let e = q.unsigned_abs() as u32 - 1;
                    let (dst, er) = if e < POW2_PANEL_SHIFT {
                        (&mut lo, e)
                    } else {
                        (&mut hi, e - POW2_PANEL_SHIFT)
                    };
                    let mag = 1i16 << er;
                    dst[i] = if q < 0 { -mag } else { mag };
                }
            }
            Box::new((
                qgemm::PanelB::pack(rows, cols, &lo),
                qgemm::PanelB::pack(rows, cols, &hi),
            ))
        });
        Some(PackedPow2 {
            rows,
            cols,
            emin_used,
            max_w_raw,
            codes,
            words16,
            words32,
            panel16,
            panels_sa,
        })
    }

    /// Packed row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Elements per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The exponent of the code unit: a code `±q` means `±2^(q-1+emin_used)`.
    pub fn emin_used(&self) -> i32 {
        self.emin_used
    }

    /// Largest weight magnitude in units of `2^emin_used` (`2^span`) — the
    /// certificate's weight bound.
    pub fn max_w_raw(&self) -> i64 {
        self.max_w_raw
    }

    /// The relative exponent codes, row-major.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// The codes materialized as fixed-point raws `±2^(q-1)` in units of
    /// `2^emin_used`, when the span fits an i16 word (span ≤ 14).
    pub fn words16(&self) -> Option<&[i16]> {
        self.words16.as_deref()
    }

    /// The wide-span materialization: the same raws in i32 words, present
    /// exactly when the span is 15..=30 (too wide for the i16 view, still
    /// representable in i32).
    pub fn words32(&self) -> Option<&[i32]> {
        self.words32.as_deref()
    }

    /// Microkernel panel of [`Self::words16`] (span ≤ 14).
    pub fn panel16(&self) -> Option<&qgemm::PanelB> {
        self.panel16.as_ref()
    }

    /// The shift-add residual panels `(lo, hi)` for spans 15..=29.
    pub fn shift_add_panels(&self) -> Option<(&qgemm::PanelB, &qgemm::PanelB)> {
        self.panels_sa.as_ref().map(|b| (&b.0, &b.1))
    }
}

/// A weight tensor packed for the native kernels in one of the three
/// packed forms. Rows are output units; `cols` is the reduction length.
#[derive(Debug, Clone)]
pub enum PackedWeights {
    /// Two's-complement fixed-point raws (16 bits or narrower).
    Fixed(PackedFixed),
    /// Binary ±2^e weights: sign planes plus a ±1 fixed view.
    Binary(PackedBinary),
    /// Power-of-two weights as relative exponent codes.
    Pow2(PackedPow2),
}

impl PackedWeights {
    /// Packs quantized weights under their codec. `None` when the codec
    /// has no packed form (float32, minifloat, wide fixed) or any value
    /// fails the on-grid round trip.
    pub fn pack(codec: &BitCodec, rows: usize, cols: usize, data: &[f32]) -> Option<Self> {
        match codec {
            BitCodec::Fixed(f) => PackedFixed::pack(f, rows, cols, data).map(|mut p| {
                p.build_panel();
                PackedWeights::Fixed(p)
            }),
            BitCodec::Binary(b) => {
                PackedBinary::pack(b, rows, cols, data).map(PackedWeights::Binary)
            }
            BitCodec::PowerOfTwo(p) => {
                PackedPow2::pack(p, rows, cols, data).map(PackedWeights::Pow2)
            }
            _ => None,
        }
    }

    /// Output-unit (row) count.
    pub fn rows(&self) -> usize {
        match self {
            PackedWeights::Fixed(p) => p.rows(),
            PackedWeights::Binary(p) => p.rows(),
            PackedWeights::Pow2(p) => p.rows(),
        }
    }

    /// Reduction length each row dots against.
    pub fn cols(&self) -> usize {
        match self {
            PackedWeights::Fixed(p) => p.cols(),
            PackedWeights::Binary(p) => p.cols(),
            PackedWeights::Pow2(p) => p.cols(),
        }
    }
}

/// Conservative upper bound on the raw magnitude the activations will
/// encode to — `min(ceil(max|x|·2^frac)+1, 2^(w-1))` — computed without
/// encoding, so a certificate that cannot pass (e.g. fixed16 at realistic
/// reduction lengths) is rejected before any packing work is spent.
fn acts_raw_bound(f: &Fixed, acts: &[f32]) -> i64 {
    // Eight independent accumulators so the reduction vectorizes (a single
    // running max is a loop-carried dependency the compiler must honor).
    let mut lanes = [0.0f32; 8];
    let mut chunks = acts.chunks_exact(8);
    for c in &mut chunks {
        for (m, &v) in lanes.iter_mut().zip(c) {
            *m = m.max(v.abs());
        }
    }
    let mut max = 0.0f32;
    for &v in chunks.remainder() {
        max = max.max(v.abs());
    }
    for m in lanes {
        max = max.max(m);
    }
    let rail = 1i64 << (f.word_bits() - 1);
    let est = (max as f64 * (f.frac_bits() as f64).exp2()).ceil() + 1.0;
    if est >= rail as f64 {
        rail
    } else {
        est as i64
    }
}

fn pack_fixed_acts(
    f: &Fixed,
    acts: &[f32],
    m: usize,
    k: usize,
    transposed: bool,
) -> Option<PackedFixed> {
    if transposed {
        PackedFixed::pack_transposed(f, k, m, acts)
    } else {
        PackedFixed::pack(f, m, k, acts)
    }
}

/// The operations the fused microkernel tail applies to each output row
/// after the exact integer→f32 requantize: an optional per-output-column
/// bias add and an optional output-precision snap.
///
/// Both are the *same* elementwise f32 operations the dense/conv layer and
/// the network's activation-quantize pass would otherwise run as separate
/// whole-tensor passes. Elementwise f32 ops on identical inputs produce
/// identical bits wherever they run, so fusing them into the kernel tail
/// (while the tile is still cache-hot) changes when and where they
/// execute — never the result. The exactness burden stays entirely on
/// [`dot_exact`] / [`dot_exact_shift_add`].
#[derive(Clone, Copy, Default)]
pub struct Epilogue<'a> {
    /// Per-output-column bias (length `n`), added after requantize.
    pub bias: Option<&'a [f32]>,
    /// Output activation quantizer, applied last through the raw
    /// elementwise [`Quantizer::quantize_slice`] (no tracing side
    /// effects — callers that need quantization-error telemetry must keep
    /// the separate traced pass instead of fusing). `Send + Sync` because
    /// the fused tail runs inside the kernel's parallel row chunks (and it
    /// matches the layers' shared quantizer handles).
    pub out_quant: Option<&'a (dyn Quantizer + Send + Sync)>,
}

impl Epilogue<'_> {
    /// The empty epilogue: plain requantized GEMM output.
    pub fn none() -> Self {
        Self::default()
    }

    fn is_empty(&self) -> bool {
        self.bias.is_none() && self.out_quant.is_none()
    }

    /// Applies the epilogue to one already-requantized output row.
    #[inline]
    fn apply_row(&self, row: &mut [f32]) {
        if let Some(b) = self.bias {
            for (o, &bv) in row.iter_mut().zip(b) {
                *o += bv;
            }
        }
        if let Some(q) = self.out_quant {
            q.quantize_slice(row);
        }
    }

    /// Applies the epilogue to a full `m×n` buffer — the tail pass the
    /// non-panel fallback kernels use; bit-identical to the fused form.
    fn apply_all(&self, n: usize, out: &mut [f32]) {
        if self.is_empty() {
            return;
        }
        for row in out.chunks_mut(n.max(1)) {
            self.apply_row(row);
        }
    }
}

/// Requantize one accumulator row into `out` (exact power-of-two scaling,
/// same arithmetic as [`requantize_i32`]) and run the epilogue on it — the
/// closure body of every fused panel-kernel call.
#[inline]
fn emit_row(step: f64, epi: &Epilogue, acc: &[i32], out: &mut [f32]) {
    for (o, &s) in out.iter_mut().zip(acc.iter()) {
        *o = (s as f64 * step) as f32;
    }
    epi.apply_row(out);
}

#[allow(clippy::too_many_arguments)]
fn fixed_times_fixed(
    f: &Fixed,
    acts: &[f32],
    m: usize,
    k: usize,
    transposed: bool,
    pw: &PackedFixed,
    epi: &Epilogue,
    out: &mut [f32],
) -> bool {
    let n = pw.rows();
    let lsb = -(f.frac_bits() + pw.frac_bits());
    if !dot_exact(acts_raw_bound(f, acts), pw.max_abs_raw(), k, lsb) {
        return false;
    }
    let Some(pa) = pack_fixed_acts(f, acts, m, k, transposed) else {
        return false;
    };
    // The i16 kernel serves both widths (its widening dot compiles to
    // `vpmaddwd`, which the i8 kernel's sign-extension-heavy codegen never
    // reaches); integer arithmetic makes the choice invisible to results.
    // Weight tensors carry a register-blocked panel (built once per plan),
    // which takes the microkernel path with the epilogue fused into the
    // tile tail; panel-less weights fall back to the row-at-a-time kernel
    // plus separate passes — same bits either way.
    if let Some(panel) = pw.panel() {
        let step = (lsb as f64).exp2();
        qgemm::gemm_nt_i16_panel_emit(m, k, n, pa.words16(), panel, out, |_r, acc, orow| {
            emit_row(step, epi, acc, orow)
        });
        qnn_trace::counter!(CTR_REQUANT, 1);
    } else {
        let mut acc = vec![0i32; m * n];
        qgemm::gemm_nt_i16(m, k, n, pa.words16(), pw.words16(), &mut acc);
        requantize_i32(&acc, lsb, out);
        epi.apply_all(n, out);
    }
    true
}

/// Packs binary activations (`±scale` only) straight into XNOR sign
/// planes — the act side of the fully-binarized arm needs neither the ±1
/// fixed view nor a `PackedBinary`, and skipping both keeps the per-batch
/// cost at one bit test per element.
fn pack_act_planes(b: &Binary, m: usize, k: usize, acts: &[f32]) -> Option<Vec<u64>> {
    let words = k.div_ceil(64);
    let mut planes = vec![0u64; m * words];
    let pos_bits = b.scale().to_bits();
    let neg_bits = (-b.scale()).to_bits();
    for (r, row) in acts.chunks_exact(k.max(1)).enumerate().take(m) {
        let dst = &mut planes[r * words..(r + 1) * words];
        for (i, &x) in row.iter().enumerate() {
            let bits = x.to_bits();
            if bits == neg_bits {
                dst[i / 64] |= 1u64 << (i % 64);
            } else if bits != pos_bits {
                return None;
            }
        }
    }
    Some(planes)
}

/// Computes `out[i·n + j] = dot(acts_row_i, weight_row_j)` on the native
/// kernels, **bit-identical** to the simulated sequential-f32 product, or
/// returns `false` leaving `out` unspecified (caller must fall back).
///
/// `acts` is the already-quantized activation slice: `m×k` row-major, or
/// `k×m` when `acts_transposed` (the im2col patch layout — either way the
/// reduction dimension is packed contiguous). `act_codec` is the codec of
/// the quantizer that produced it. Dispatch fires only when [`dot_exact`]
/// certifies the whole computation; everything else — off-grid values,
/// unpackable formats, non-power-of-two binary activation scales —
/// returns `false`.
pub fn matmul_on_grid(
    act_codec: &BitCodec,
    acts: &[f32],
    m: usize,
    k: usize,
    acts_transposed: bool,
    plan: &PackedWeights,
    out: &mut [f32],
) -> bool {
    matmul_on_grid_fused(
        act_codec,
        acts,
        m,
        k,
        acts_transposed,
        plan,
        &Epilogue::none(),
        out,
    )
}

/// [`matmul_on_grid`] with a fused [`Epilogue`]: the requantize, bias add
/// and output-precision snap run in the microkernel tail per row chunk
/// instead of as whole-tensor passes, so the layers stop round-tripping
/// activations through intermediate f32 tensors. `out` holds the final
/// epilogue-applied activations on `true`; unspecified on `false`.
#[allow(clippy::too_many_arguments)]
pub fn matmul_on_grid_fused(
    act_codec: &BitCodec,
    acts: &[f32],
    m: usize,
    k: usize,
    acts_transposed: bool,
    plan: &PackedWeights,
    epi: &Epilogue,
    out: &mut [f32],
) -> bool {
    let n = plan.rows();
    if plan.cols() != k || out.len() != m * n || acts.len() != m * k {
        return false;
    }
    if epi.bias.is_some_and(|b| b.len() != n) {
        return false;
    }
    match (act_codec, plan) {
        (BitCodec::Fixed(f), PackedWeights::Fixed(pw)) => {
            fixed_times_fixed(f, acts, m, k, acts_transposed, pw, epi, out)
        }
        (BitCodec::Fixed(f), PackedWeights::Binary(pb)) => {
            fixed_times_fixed(f, acts, m, k, acts_transposed, pb.as_fixed(), epi, out)
        }
        (BitCodec::Fixed(f), PackedWeights::Pow2(pp)) => {
            let lsb = pp.emin_used() - f.frac_bits();
            if !dot_exact(acts_raw_bound(f, acts), pp.max_w_raw(), k, lsb) {
                return false;
            }
            let Some(pa) = pack_fixed_acts(f, acts, m, k, acts_transposed) else {
                return false;
            };
            let step = (lsb as f64).exp2();
            // Same integers every way (every view is the shift-add result
            // precomputed per weight), so the choice is purely a throughput
            // one: the `vpmaddwd` microkernel when the span fits i16, the
            // two-panel shift-add microkernel for spans 15..=29, one i32
            // multiply per element at span 30, and the shift-add chain
            // only for the span-31 edge.
            if let Some(panel) = pp.panel16() {
                qgemm::gemm_nt_i16_panel_emit(
                    m,
                    k,
                    n,
                    pa.words16(),
                    panel,
                    out,
                    |_r, acc, orow| emit_row(step, epi, acc, orow),
                );
                qnn_trace::counter!(CTR_REQUANT, 1);
            } else if let Some((lo, hi)) = pp.shift_add_panels() {
                if !dot_exact_shift_add(
                    acts_raw_bound(f, acts),
                    pp.max_w_raw(),
                    k,
                    lsb,
                    POW2_PANEL_SHIFT,
                ) {
                    return false;
                }
                qgemm::gemm_nt_i16_panel2_emit(
                    m,
                    k,
                    n,
                    pa.words16(),
                    lo,
                    hi,
                    POW2_PANEL_SHIFT,
                    out,
                    |_r, acc, orow| emit_row(step, epi, acc, orow),
                );
                qnn_trace::counter!(CTR_REQUANT, 1);
            } else {
                let mut acc = vec![0i32; m * n];
                match pp.words32() {
                    Some(w32) => qgemm::gemm_nt_pow2_wide(m, k, n, pa.words16(), w32, &mut acc),
                    None => qgemm::gemm_nt_pow2(m, k, n, pa.words16(), pp.codes(), &mut acc),
                }
                requantize_i32(&acc, lsb, out);
                epi.apply_all(n, out);
            }
            true
        }
        (BitCodec::Binary(ab), PackedWeights::Binary(pb)) => {
            // Binary activations only pack row-major (there is no
            // transposed sign packer); the im2col path falls back, which
            // the paper's sweeps never hit (binary uses fixed16 acts).
            if acts_transposed {
                return false;
            }
            let Some(ea) = pow2_scale_exp(ab.scale()) else {
                return false;
            };
            let lsb = ea + pb.scale_exp();
            if !dot_exact(1, 1, k, lsb) {
                return false;
            }
            let Some(planes) = pack_act_planes(ab, m, k, acts) else {
                return false;
            };
            let mut acc = vec![0i32; m * n];
            qgemm::gemm_nt_xnor(m, k, n, &planes, pb.planes(), &mut acc);
            requantize_i32(&acc, lsb, out);
            epi.apply_all(n, out);
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_scale_exp_accepts_only_powers_of_two() {
        assert_eq!(pow2_scale_exp(1.0), Some(0));
        assert_eq!(pow2_scale_exp(0.5), Some(-1));
        assert_eq!(pow2_scale_exp(4.0), Some(2));
        assert_eq!(pow2_scale_exp(0.3), None);
        assert_eq!(pow2_scale_exp(-1.0), None);
        assert_eq!(pow2_scale_exp(0.0), None);
        assert_eq!(pow2_scale_exp(f32::INFINITY), None);
    }

    #[test]
    fn certificate_bounds() {
        assert!(dot_exact(127, 127, 100, -8));
        assert!(!dot_exact(127, 127, 10_000_000, -8)); // magnitude
        assert!(!dot_exact(127, 127, 100, -150)); // below subnormal grid
        assert!(!dot_exact(127, 127, 100, 104)); // overflow risk
        assert!(dot_exact(0, 0, 1 << 40, 0)); // zero operands, huge k
        assert!(dot_exact(1 << 12, 1 << 12, 1, 0)); // exactly 2^24
        assert!(!dot_exact((1 << 12) + 1, 1 << 12, 1, 0));
    }

    #[test]
    fn narrow_acc_certificate_bounds() {
        // At 26+ bits the narrow bound (2^25 − 1) is looser than the base
        // certificate's 2^24, so narrow == base.
        assert!(dot_exact_narrow_acc(1 << 12, 1 << 12, 1, 0, 26));
        assert!(!dot_exact_narrow_acc((1 << 12) + 1, 1 << 12, 1, 0, 26));
        // 16-bit accumulator: limit is 2^15 − 1 = 32767.
        assert!(dot_exact_narrow_acc(127, 128, 2, -8, 16)); // 32512
        assert!(!dot_exact_narrow_acc(128, 129, 2, -8, 16)); // 33024 > 32767
        assert!(dot_exact_narrow_acc(1, 32767, 1, 0, 16)); // exactly the limit
        assert!(!dot_exact_narrow_acc(1, 32768, 1, 0, 16)); // one past
                                                            // Degenerate widths refuse.
        assert!(!dot_exact_narrow_acc(1, 1, 1, 0, 1));
        assert!(!dot_exact_narrow_acc(1, 1, 1, 0, 0));
        assert!(!dot_exact_narrow_acc(1, 1, 1, 0, 64));
        // Base-certificate failures still refuse regardless of width.
        assert!(!dot_exact_narrow_acc(127, 127, 100, -150, 32));
    }

    /// ≥256-case property check: for seeded (raw, raw, k, width) tuples at
    /// the exact representable boundary, the certificate must equal the
    /// i128 ground truth `dot_exact && Σ|a·w| <= 2^(bits−1) − 1`, and the
    /// verdict vector must be identical whether evaluated on 1 worker or 4.
    #[test]
    fn narrow_acc_certificate_boundary_property() {
        const CASES: usize = 288;
        fn case(i: usize) -> (i64, i64, usize, i32, u32) {
            // Deterministic splitmix-style expansion of the index.
            let mut z = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_7074;
            let mut next = move || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            let acc_bits = 2 + (next() % 62) as u32; // 2..=63
            let limit = (1i64 << (acc_bits - 1)) - 1;
            let max_a = 1 + (next() as i64).rem_euclid(1 << 12);
            let max_w = 1 + (next() as i64).rem_euclid(1 << 12);
            // k chosen so the product lands on, just under, or just past
            // the narrow limit — the boundary widths the tuner trades on.
            let k_exact = (limit / (max_a * max_w)).max(1) as usize;
            let k = match next() % 3 {
                0 => k_exact,
                1 => k_exact.saturating_sub(1).max(1),
                _ => k_exact + 1,
            };
            let lsb_exp = -140 + (next() % 240) as i32; // −140..=99, in range
            (max_a, max_w, k, lsb_exp, acc_bits)
        }
        let truth = |i: usize| {
            let (a, w, k, e, bits) = case(i);
            let total = a as i128 * w as i128 * k as i128;
            let expect = dot_exact(a, w, k, e)
                && total <= ((1i128 << (bits - 1)) - 1)
                && (2..=63).contains(&bits);
            let got = dot_exact_narrow_acc(a, w, k, e, bits);
            assert_eq!(got, expect, "case {i}: ({a},{w},{k},{e},{bits})");
            got
        };
        let one = qnn_tensor::par::map_capped(CASES, 1, truth);
        let four = qnn_tensor::par::map_capped(CASES, 4, truth);
        assert_eq!(one, four, "certificate must not depend on worker count");
        // The boundary sampler must exercise both verdicts.
        assert!(one.iter().any(|&b| b) && one.iter().any(|&b| !b));
    }

    #[test]
    fn fixed_pack_round_trips_and_rejects_off_grid() {
        let f = Fixed::new(8, 4).unwrap();
        let vals: Vec<f32> = (-8i64..8).map(|i| f.decode(i * 3)).collect();
        let p = PackedFixed::pack(&f, 4, 4, &vals).unwrap();
        assert_eq!(p.frac_bits(), 4);
        assert_eq!(p.max_abs_raw(), 24);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(p.words16()[i] as f32 / 16.0, v);
        }
        // 0.1 is not on the Q4.4 grid.
        let mut bad = vals.clone();
        bad[3] = 0.1;
        assert!(PackedFixed::pack(&f, 4, 4, &bad).is_none());
        // -0.0 is not a codec output.
        let mut negz = vals;
        negz[0] = -0.0;
        assert!(PackedFixed::pack(&f, 4, 4, &negz).is_none());
    }

    #[test]
    fn fixed_pack_rejects_wide_formats_but_packs_16() {
        let f32fmt = Fixed::new(32, 16).unwrap();
        assert!(PackedFixed::pack(&f32fmt, 1, 1, &[1.0]).is_none());
        let f16 = Fixed::new(16, 8).unwrap();
        let p = PackedFixed::pack(&f16, 1, 2, &[1.5, -2.0]).unwrap();
        assert_eq!(p.words16(), &[384, -512]);
    }

    #[test]
    fn fixed_pack_transposed_swaps_axes() {
        let f = Fixed::new(8, 2).unwrap();
        // 2×3 row-major: [a b c; d e f] → packed rows are columns.
        let vals = [1.0, 2.0, 3.0, -1.0, -2.0, -3.0];
        let p = PackedFixed::pack_transposed(&f, 2, 3, &vals).unwrap();
        assert_eq!((p.rows(), p.cols()), (3, 2));
        assert_eq!(p.words16(), &[4, -4, 8, -8, 12, -12]);
    }

    #[test]
    fn binary_pack_planes_and_fixed_view_agree() {
        let b = Binary::with_scale(0.5).unwrap();
        let vals = [0.5, -0.5, -0.5, 0.5, 0.5, 0.5];
        let p = PackedBinary::pack(&b, 2, 3, &vals).unwrap();
        assert_eq!(p.scale_exp(), -1);
        assert_eq!(p.words_per_row(), 1);
        assert_eq!(p.planes()[0], 0b110);
        assert_eq!(p.planes()[1], 0b000);
        assert_eq!(p.as_fixed().words16(), &[1, -1, -1, 1, 1, 1]);
        assert_eq!(p.as_fixed().frac_bits(), 1);
        // Non-power-of-two scale cannot pack.
        let b2 = Binary::with_scale(0.3).unwrap();
        assert!(PackedBinary::pack(&b2, 1, 1, &[0.3]).is_none());
    }

    #[test]
    fn pow2_pack_codes_are_relative_to_used_window() {
        let p2 = PowerOfTwo::new(6, 0).unwrap();
        // Values 2^0, -2^-2, 0 → emin_used = -2, codes 3, -1, 0.
        let vals = [1.0, -0.25, 0.0];
        let p = PackedPow2::pack(&p2, 1, 3, &vals).unwrap();
        assert_eq!(p.emin_used(), -2);
        assert_eq!(p.max_w_raw(), 4);
        assert_eq!(p.codes(), &[3, -1, 0]);
    }

    #[test]
    fn pow2_pack_materializes_by_span() {
        // Span ≤ 14 → i16 view; 15..=30 → i32 view; 31 → codes only
        // (+2^31 has no i32 representation); > 31 → refuses to pack.
        let p6 = PowerOfTwo::new(6, 30).unwrap();
        let narrow = PackedPow2::pack(&p6, 1, 2, &[1.0, 1024.0]).unwrap(); // span 10
        assert!(narrow.words16().is_some() && narrow.words32().is_none());

        let mid = PackedPow2::pack(&p6, 1, 2, &[1.0, (20f32).exp2()]).unwrap(); // span 20
        assert!(mid.words16().is_none());
        assert_eq!(mid.words32(), Some(&[1i32, 1 << 20][..]));

        let p7 = PowerOfTwo::new(7, 32).unwrap();
        let edge = PackedPow2::pack(&p7, 1, 2, &[1.0, (31f32).exp2()]).unwrap(); // span 31
        assert!(edge.words16().is_none() && edge.words32().is_none());
        assert_eq!(edge.codes(), &[1, 32]);

        assert!(PackedPow2::pack(&p7, 1, 2, &[1.0, (32f32).exp2()]).is_none()); // span 32
    }

    #[test]
    fn requantize_is_exact_under_certificate() {
        let acc = [3i32, -5, 0, (1 << 24), -(1 << 24)];
        let mut out = [0.0f32; 5];
        requantize_i32(&acc, -10, &mut out);
        for (i, &a) in acc.iter().enumerate() {
            assert_eq!(out[i].to_bits(), (a as f32 / 1024.0).to_bits());
        }
        // Subnormal edge: 3 · 2^-149.
        let mut tiny = [0.0f32; 1];
        requantize_i32(&[3], -149, &mut tiny);
        assert_eq!(tiny[0].to_bits(), f32::from_bits(3).to_bits());
        let mut big = [0.0f32; 1];
        requantize_i64(&[1 << 24], 103, &mut big);
        assert!(big[0].is_finite());
    }

    #[test]
    fn packers_share_the_fault_codec() {
        // The packer stores exactly the words BitCodec encodes — flip a bit
        // through the codec and the packed word flips identically.
        let f = Fixed::new(8, 4).unwrap();
        let codec = BitCodec::Fixed(f);
        let v = f.decode(37);
        let flipped = codec.flip(v, 2);
        let p = PackedFixed::pack(&f, 1, 2, &[v, flipped]).unwrap();
        assert_eq!(
            p.words16()[0] ^ p.words16()[1],
            0b100,
            "packed words must differ in exactly the flipped stored bit"
        );
    }
}
