//! Range calibration: fitting a format's free parameters to data.
//!
//! Fixed point needs a radix point, power-of-two needs an exponent-window
//! top, binary optionally needs a magnitude. Ristretto (which the paper's
//! software stack extends) derives these from the dynamic range of each
//! tensor; this module implements that *max-abs* rule plus a percentile
//! variant used as an ablation (clipping outliers buys the bulk of the
//! distribution an extra fractional bit).

use qnn_tensor::{stats, Tensor};

use crate::binary::Binary;
use crate::error::FormatError;
use crate::fixed::Fixed;
use crate::minifloat::Minifloat;
use crate::pow2::PowerOfTwo;
use crate::precision::{Precision, Scheme};
use crate::quantizer::{IdentityQuantizer, Quantizer, QuantizerPair};

/// How the representable range is derived from observed values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Method {
    /// Cover the largest absolute value exactly (Ristretto's rule; no
    /// saturation on the calibration data).
    #[default]
    MaxAbs,
    /// Cover the given quantile of absolute values (0–1); the tail
    /// saturates. `Percentile(1.0)` equals `MaxAbs`.
    Percentile(f32),
}

impl Method {
    /// The range statistic this method extracts from a sample.
    ///
    /// Returns `1.0` for empty or all-zero samples — a degenerate range
    /// would otherwise produce formats that can represent nothing.
    pub fn range_of(&self, samples: &[&Tensor]) -> f32 {
        let mut r = 0.0f32;
        for t in samples {
            let v = match self {
                Method::MaxAbs => stats::abs_max(t).unwrap_or(0.0),
                Method::Percentile(p) => stats::abs_percentile(t, *p).unwrap_or(0.0),
            };
            r = r.max(v);
        }
        if r > 0.0 && r.is_finite() {
            r
        } else {
            1.0
        }
    }
}

/// Number of integer bits (left of the radix) needed to represent
/// `max_abs` in a signed fixed-point word.
fn integer_bits_for(max_abs: f32) -> i32 {
    // Smallest il with 2^il > max_abs (so max_abs fits below the positive
    // saturation point given il integer bits).
    let mut il = max_abs.log2().ceil() as i32;
    if (il as f32).exp2() <= max_abs {
        il += 1;
    }
    il
}

/// Fits a fixed-point radix to a range: as many fractional bits as the
/// integer part allows.
///
/// # Errors
///
/// Propagates [`FormatError`] from [`Fixed::new`] for unsupported widths.
///
/// ```
/// use qnn_quant::calibrate::fixed_for_range;
/// use qnn_quant::Quantizer;
///
/// // Weights in ±0.8 with an 8-bit word: Q0.7, step 1/128.
/// let q = fixed_for_range(8, 0.8)?;
/// assert_eq!(q.frac_bits(), 7);
/// assert!(q.max_value() >= 0.8);
/// # Ok::<(), qnn_quant::FormatError>(())
/// ```
pub fn fixed_for_range(word_bits: u32, max_abs: f32) -> Result<Fixed, FormatError> {
    let max_abs = if max_abs > 0.0 && max_abs.is_finite() {
        max_abs
    } else {
        1.0
    };
    let il = integer_bits_for(max_abs);
    let q = Fixed::new(word_bits, word_bits as i32 - 1 - il)?;
    // `integer_bits_for` guarantees 2^il > max_abs, but the positive
    // saturation point is 2^il·(1 − 2^−(w−1)) — narrow words can leave
    // `max_abs` in the sliver just below 2^il. One more integer bit fixes
    // it (found by the calibration property test).
    if q.max_value() < max_abs {
        return Fixed::new(word_bits, word_bits as i32 - 2 - il);
    }
    Ok(q)
}

/// Fits a power-of-two exponent window to a range: the window top is the
/// exponent nearest `log2(max_abs)`.
///
/// # Errors
///
/// Propagates [`FormatError`] from [`PowerOfTwo::new`].
pub fn pow2_for_range(total_bits: u32, max_abs: f32) -> Result<PowerOfTwo, FormatError> {
    let max_abs = if max_abs > 0.0 && max_abs.is_finite() {
        max_abs
    } else {
        1.0
    };
    PowerOfTwo::new(total_bits, max_abs.log2().round() as i32)
}

/// Fits a binary magnitude to data: the mean absolute value (XNOR-Net
/// style). Pass `scaled = false` for the paper's plain ±1 variant.
///
/// # Errors
///
/// Propagates [`FormatError`] from [`Binary::with_scale`].
pub fn binary_for(samples: &[&Tensor], scaled: bool) -> Result<Binary, FormatError> {
    if !scaled {
        return Ok(Binary::new());
    }
    let (sum, n) = samples.iter().fold((0.0f64, 0usize), |(s, n), t| {
        (
            s + t.as_slice().iter().map(|x| x.abs() as f64).sum::<f64>(),
            n + t.len(),
        )
    });
    let mean = if n > 0 { (sum / n as f64) as f32 } else { 1.0 };
    if mean > 0.0 {
        Binary::with_scale(mean)
    } else {
        Ok(Binary::new())
    }
}

/// Calibrates one scheme against sample tensors.
///
/// # Errors
///
/// Propagates format construction errors.
pub fn scheme_for(
    scheme: Scheme,
    samples: &[&Tensor],
    method: Method,
) -> Result<Box<dyn Quantizer + Send + Sync>, FormatError> {
    let range = method.range_of(samples);
    Ok(match scheme {
        Scheme::Float32 => Box::new(IdentityQuantizer),
        Scheme::Fixed { bits } => Box::new(fixed_for_range(bits, range)?),
        Scheme::PowerOfTwo { bits } => Box::new(pow2_for_range(bits, range)?),
        // Binary uses the XNOR-Net per-tensor scale (mean |w|): weights
        // still cost one stored bit — the scale is per-tensor metadata the
        // accelerator folds into the nonlinearity stage — but the forward
        // pass keeps FP-like magnitudes, which our from-scratch synthetic
        // training needs for stability. Plain ±1 remains available via
        // `Binary::new` and is compared in the ablation bench.
        Scheme::Binary => Box::new(binary_for(samples, true)?),
        Scheme::Minifloat { exp_bits, man_bits } => Box::new(Minifloat::new(exp_bits, man_bits)?),
    })
}

/// Calibrates a full `(weights, inputs)` precision pair.
///
/// `weight_samples` should hold the network's weight tensors;
/// `activation_samples` the input batch and representative feature maps
/// collected from a forward pass over calibration data.
///
/// # Errors
///
/// Propagates format construction errors from either side.
pub fn precision_for(
    precision: Precision,
    weight_samples: &[&Tensor],
    activation_samples: &[&Tensor],
    method: Method,
) -> Result<QuantizerPair, FormatError> {
    Ok(QuantizerPair {
        weights: scheme_for(precision.weights(), weight_samples, method)?,
        activations: scheme_for(precision.activations(), activation_samples, method)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_tensor::Shape;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(Shape::d1(n), v).unwrap()
    }

    #[test]
    fn integer_bits_examples() {
        assert_eq!(integer_bits_for(0.8), 0); // fits in pure fraction
        assert_eq!(integer_bits_for(1.0), 1);
        assert_eq!(integer_bits_for(1.5), 1);
        assert_eq!(integer_bits_for(2.0), 2);
        assert_eq!(integer_bits_for(100.0), 7);
        assert_eq!(integer_bits_for(0.3), -1); // can shift radix left
    }

    #[test]
    fn fixed_range_always_covers_max() {
        for &m in &[0.01f32, 0.5, 0.99, 1.0, 3.7, 120.0, 4000.0] {
            let q = fixed_for_range(16, m).unwrap();
            assert!(
                q.max_value() >= m,
                "max {m}: format {} tops out at {}",
                q.describe(),
                q.max_value()
            );
            // And is not wastefully coarse: one less integer bit would clip.
            let tighter = Fixed::new(16, q.frac_bits() + 1).unwrap();
            assert!(tighter.max_value() < m || m <= tighter.max_value());
        }
    }

    #[test]
    fn sliver_below_power_of_two_is_covered() {
        // 15.31 sits in the top 1/8 sliver below 2^4: with 4 bits the
        // naive radix (step 2, max 14) cannot represent it. Found by the
        // `calibrated_fixed_covers_sample` property test.
        let q = fixed_for_range(4, 15.308563).unwrap();
        assert!(q.max_value() >= 15.308563, "max {}", q.max_value());
        // Wide words are unaffected (their saturation point is closer
        // to 2^il).
        let q16 = fixed_for_range(16, 15.308563).unwrap();
        assert!(q16.max_value() >= 15.308563);
        assert!(q16.step() < q.step());
    }

    #[test]
    fn small_ranges_gain_fraction_bits() {
        let wide = fixed_for_range(8, 100.0).unwrap();
        let narrow = fixed_for_range(8, 0.1).unwrap();
        assert!(narrow.frac_bits() > wide.frac_bits());
        assert!(narrow.step() < wide.step());
    }

    #[test]
    fn method_percentile_ignores_outliers() {
        let mut v = vec![0.5f32; 99];
        v.push(50.0);
        let x = t(v);
        let full = Method::MaxAbs.range_of(&[&x]);
        let clipped = Method::Percentile(0.95).range_of(&[&x]);
        assert_eq!(full, 50.0);
        assert_eq!(clipped, 0.5);
    }

    #[test]
    fn degenerate_samples_fall_back_to_unit_range() {
        let z = t(vec![0.0; 4]);
        assert_eq!(Method::MaxAbs.range_of(&[&z]), 1.0);
        assert_eq!(Method::MaxAbs.range_of(&[]), 1.0);
    }

    #[test]
    fn pow2_window_top_near_max() {
        let q = pow2_for_range(6, 0.9).unwrap();
        assert_eq!(q.max_exp(), 0);
        let q = pow2_for_range(6, 5.0).unwrap();
        assert_eq!(q.max_exp(), 2);
    }

    #[test]
    fn binary_scaled_uses_mean_abs() {
        let x = t(vec![0.5, -1.5, 1.0, -1.0]);
        let q = binary_for(&[&x], true).unwrap();
        assert_eq!(q.scale(), 1.0);
        let q = binary_for(&[&x], false).unwrap();
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn precision_pair_calibrates_both_sides() {
        let w = t(vec![0.1, -0.2, 0.05]);
        let a = t(vec![3.0, -7.0, 1.0]);
        let q = precision_for(Precision::fixed(8, 8), &[&w], &[&a], Method::MaxAbs).unwrap();
        // Weights get a fine grid, activations a coarse one.
        assert!(q.weights.max_value() < 1.0);
        assert!(q.activations.max_value() >= 7.0);
    }

    #[test]
    fn calibrated_fixed_does_not_saturate_calibration_data() {
        let w = t(vec![0.73, -0.11, 0.42, -0.68]);
        let q = scheme_for(Scheme::Fixed { bits: 8 }, &[&w], Method::MaxAbs).unwrap();
        for &x in w.as_slice() {
            let y = q.quantize_value(x);
            assert!((y - x).abs() <= q.max_value() / 64.0, "x={x} y={y}");
        }
    }
}
