use crate::error::FormatError;
use crate::quantizer::Quantizer;

/// Rounding mode used when snapping a value onto the fixed-point grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundMode {
    /// Round to nearest, ties away from zero (the common DSP default and
    /// what Ristretto's `round()` does).
    #[default]
    NearestAway,
    /// Round to nearest, ties to even (IEEE-754 style; eliminates the tiny
    /// upward bias of ties-away under repeated accumulation).
    NearestEven,
    /// Truncate toward negative infinity (cheapest hardware: drop bits).
    Floor,
}

impl RoundMode {
    /// Discriminant of [`RoundMode::NearestAway`] for const-generic encode
    /// specialization (see [`Fixed::encode_f64_mode`]).
    pub(crate) const AWAY: u8 = RoundMode::NearestAway as u8;
    /// Discriminant of [`RoundMode::NearestEven`].
    pub(crate) const EVEN: u8 = RoundMode::NearestEven as u8;
    /// Discriminant of [`RoundMode::Floor`].
    pub(crate) const FLOOR: u8 = RoundMode::Floor as u8;
}

/// Two's-complement fixed-point format: `word_bits` total bits with
/// `frac_bits` of them after the radix point.
///
/// The quantization step is `2^-frac_bits`; the representable range is
/// `[-2^(word-1), 2^(word-1) - 1] · 2^-frac_bits`, and out-of-range inputs
/// **saturate** (the paper's accelerator clamps rather than wraps —
/// wrap-around in a neural network is catastrophic, saturation is merely
/// lossy).
///
/// `frac_bits` may be negative (radix point right of the LSB, for tensors
/// with large dynamic range) or exceed `word_bits` (all-fractional formats
/// for tensors entirely inside (-1, 1)); both occur in practice when
/// Ristretto-style calibration picks the radix per tensor.
///
/// ```
/// use qnn_quant::{Fixed, Quantizer};
///
/// let q8 = Fixed::new(8, 6)?; // Q1.6: range [-2, 1.984375], step 1/64
/// assert_eq!(q8.quantize_value(0.5), 0.5);
/// assert_eq!(q8.quantize_value(0.009), 0.015625); // snaps to nearest step
/// assert_eq!(q8.quantize_value(3.0), 1.984375);
/// assert_eq!(q8.quantize_value(-3.0), -2.0);
/// # Ok::<(), qnn_quant::FormatError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fixed {
    word_bits: u32,
    frac_bits: i32,
    round: RoundMode,
}

impl Fixed {
    /// Supported word widths, inclusive.
    pub const SUPPORTED_WIDTHS: (u32, u32) = (2, 32);

    /// Creates a fixed-point format with the default rounding
    /// ([`RoundMode::NearestAway`]).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidWidth`] if `word_bits` is outside
    /// `2..=32`.
    pub fn new(word_bits: u32, frac_bits: i32) -> Result<Self, FormatError> {
        Self::with_rounding(word_bits, frac_bits, RoundMode::default())
    }

    /// Creates a fixed-point format with an explicit rounding mode.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidWidth`] if `word_bits` is outside
    /// `2..=32`.
    pub fn with_rounding(
        word_bits: u32,
        frac_bits: i32,
        round: RoundMode,
    ) -> Result<Self, FormatError> {
        if word_bits < Self::SUPPORTED_WIDTHS.0 || word_bits > Self::SUPPORTED_WIDTHS.1 {
            return Err(FormatError::InvalidWidth {
                format: "fixed",
                bits: word_bits,
                supported: Self::SUPPORTED_WIDTHS,
            });
        }
        // Keep the step representable in f32 with margin.
        if !(-96..=96).contains(&frac_bits) {
            return Err(FormatError::InvalidParameter {
                format: "fixed",
                reason: format!("frac_bits {frac_bits} outside supported -96..=96"),
            });
        }
        Ok(Fixed {
            word_bits,
            frac_bits,
            round,
        })
    }

    /// Total word width in bits.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Fractional bits (radix-point position).
    pub fn frac_bits(&self) -> i32 {
        self.frac_bits
    }

    /// The rounding mode.
    pub fn round_mode(&self) -> RoundMode {
        self.round
    }

    /// Quantization step `2^-frac_bits`.
    pub fn step(&self) -> f32 {
        (self.frac_bits as f32).exp2().recip()
    }

    /// Largest representable raw integer, `2^(word-1) - 1`.
    fn raw_max(&self) -> i64 {
        (1i64 << (self.word_bits - 1)) - 1
    }

    /// Smallest representable raw integer, `-2^(word-1)`.
    fn raw_min(&self) -> i64 {
        -(1i64 << (self.word_bits - 1))
    }

    /// `2^frac_bits` as f64 — the scale both [`encode`](Self::encode) and
    /// [`decode`](Self::decode) apply. Exposed so batch loops (the packers)
    /// can hoist the `exp2` libm call out of their per-element loop.
    #[inline(always)]
    pub(crate) fn scale_f64(&self) -> f64 {
        (self.frac_bits as f64).exp2()
    }

    /// The saturated raw code as an *integral f64* — the encode kernel that
    /// [`encode_with_scale`](Self::encode_with_scale) (and through it every
    /// codec path) narrows to i64. The packers consume the f64 form
    /// directly: AVX2 has no vectorized f64→i64 convert, so staying in f64
    /// lets their hot loop vectorize, while `as i64` on the same value is
    /// exact (the result is integral and within ±2^31).
    #[inline(always)]
    pub(crate) fn encode_f64_with_scale(&self, x: f32, scale: f64) -> f64 {
        match self.round {
            RoundMode::NearestAway => self.encode_f64_mode::<{ RoundMode::AWAY }>(x, scale),
            RoundMode::NearestEven => self.encode_f64_mode::<{ RoundMode::EVEN }>(x, scale),
            RoundMode::Floor => self.encode_f64_mode::<{ RoundMode::FLOOR }>(x, scale),
        }
    }

    /// The encode kernel with the rounding mode lifted to a compile-time
    /// constant (one of [`RoundMode::AWAY`]/[`RoundMode::EVEN`]/
    /// [`RoundMode::FLOOR`], which must match `self.round`). Batch loops
    /// monomorphize over `M` so their bodies contain no switch — a switch
    /// in the loop is the one shape the auto-vectorizer refuses outright.
    #[inline(always)]
    pub(crate) fn encode_f64_mode<const M: u8>(&self, x: f32, scale: f64) -> f64 {
        debug_assert_eq!(M, self.round as u8, "const mode must mirror self.round");
        let scaled = x as f64 * scale;
        let rounded = match M {
            RoundMode::AWAY => scaled.round(),
            RoundMode::EVEN => round_ties_even(scaled),
            _ => scaled.floor(),
        };
        if rounded.is_nan() {
            return 0.0;
        }
        // Clamping in f64 equals converting to i64 and clamping there:
        // `rounded` is integral or ±∞, and both rails are exact in f64.
        // `max().min()` rather than `clamp()`: for the non-NaN values that
        // reach it they agree, but `clamp` carries a `min <= max` assert
        // whose potential panic keeps the packers' loops from vectorizing.
        // Adding +0.0 collapses a `-0.0` result to `+0.0`, matching the
        // sign-less integer zero the i64 form produces (so a `-0.0` input
        // still fails the packers' round-trip check).
        rounded
            .max(self.raw_min() as f64)
            .min(self.raw_max() as f64)
            + 0.0
    }

    /// [`encode`](Self::encode) with the `2^frac_bits` scale precomputed by
    /// [`scale_f64`](Self::scale_f64); bit-identical to `encode`.
    #[inline(always)]
    pub(crate) fn encode_with_scale(&self, x: f32, scale: f64) -> i64 {
        self.encode_f64_with_scale(x, scale) as i64
    }

    /// [`decode`](Self::decode) with the scale precomputed (and the range
    /// assertion skipped — callers pass raws they just encoded).
    #[inline(always)]
    pub(crate) fn decode_with_scale(&self, raw: i64, scale: f64) -> f32 {
        self.decode_f64_with_scale(raw as f64, scale)
    }

    /// [`decode_with_scale`](Self::decode_with_scale) on the integral-f64
    /// raw form produced by
    /// [`encode_f64_with_scale`](Self::encode_f64_with_scale).
    #[inline(always)]
    pub(crate) fn decode_f64_with_scale(&self, raw: f64, scale: f64) -> f32 {
        // `scale` is an exact power of two well inside f64's normal range,
        // so its reciprocal is exact and multiplying by it is bit-identical
        // to dividing by it (both yield the exact product `raw · 2^-frac`,
        // since a 32-bit raw times a power of two never rounds in f64) —
        // but the multiply pipelines where `vdivpd` stalls, and the
        // reciprocal hoists out of the packers' per-element loops.
        (raw * scale.recip()) as f32
    }

    /// Encodes a value into its raw two's-complement integer, saturating.
    ///
    /// `decode(encode(x))` equals `quantize_value(x)` exactly.
    pub fn encode(&self, x: f32) -> i64 {
        self.encode_with_scale(x, self.scale_f64())
    }

    /// Encodes with *stochastic rounding* (Gupta et al., "Deep Learning
    /// with Limited Numerical Precision" — the paper's reference \[8\]):
    /// rounds up with probability equal to the fractional residue, so the
    /// quantization error is zero in expectation. Used as a training-time
    /// alternative to shadow weights; exposed for the rounding ablation.
    ///
    /// `u` must be a uniform sample in `[0, 1)` (passing the randomness in
    /// keeps this method deterministic for testing).
    pub fn encode_stochastic(&self, x: f32, u: f32) -> i64 {
        debug_assert!((0.0..1.0).contains(&u), "u must be uniform in [0,1)");
        let scaled = x as f64 * (self.frac_bits as f64).exp2();
        if scaled.is_nan() {
            return 0;
        }
        let floor = scaled.floor();
        let frac = scaled - floor;
        let rounded = if (u as f64) < frac {
            floor + 1.0
        } else {
            floor
        };
        (rounded as i64).clamp(self.raw_min(), self.raw_max())
    }

    /// Stochastically-rounded quantization (see
    /// [`encode_stochastic`](Fixed::encode_stochastic)).
    pub fn quantize_value_stochastic(&self, x: f32, u: f32) -> f32 {
        self.decode(self.encode_stochastic(x, u))
    }

    /// The slice-snap kernel with the rounding mode monomorphized (see
    /// [`encode_f64_mode`](Self::encode_f64_mode) for why the switch must
    /// leave the loop body). Stays on the integral-f64 raw form the whole
    /// way: `encode` narrows it through i64, which is the identity on
    /// these values (integral, within ±2^31), so skipping the round-trip
    /// is bit-identical to `decode(encode(x))` per element.
    #[inline(always)]
    fn quantize_slice_mode<const M: u8>(&self, data: &mut [f32], scale: f64, inv: f64) {
        for v in data {
            *v = (self.encode_f64_mode::<M>(*v, scale) * inv) as f32;
        }
    }

    /// Decodes a raw two's-complement integer back into the represented
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is outside the word's representable range — a raw
    /// code that the hardware could never hold indicates a caller bug.
    pub fn decode(&self, raw: i64) -> f32 {
        assert!(
            raw >= self.raw_min() && raw <= self.raw_max(),
            "raw code {raw} out of range for {}-bit word",
            self.word_bits
        );
        self.decode_with_scale(raw, self.scale_f64())
    }
}

/// f64 round-half-to-even (stabilized; `f64::round` is half-away).
fn round_ties_even(x: f64) -> f64 {
    let r = x.round();
    if (x - x.trunc()).abs() == 0.5 {
        // Tie: pick the even neighbour.
        if r % 2.0 == 0.0 {
            r
        } else {
            r - (r - x).signum()
        }
    } else {
        r
    }
}

impl Quantizer for Fixed {
    fn bit_codec(&self) -> Option<crate::codec::BitCodec> {
        Some(crate::codec::BitCodec::Fixed(*self))
    }

    fn quantize_value(&self, x: f32) -> f32 {
        self.decode(self.encode(x))
    }

    fn quantize_slice(&self, data: &mut [f32]) {
        // The per-value path pays two `exp2` libm calls per element (one
        // inside `encode`, one inside `decode`); hoisting the scale and its
        // reciprocal — both exact, see `decode_f64_with_scale` — leaves a
        // branch-free body the auto-vectorizer handles. Bit-identical to
        // the default (the property tests pin this).
        let scale = self.scale_f64();
        let inv = scale.recip();
        match self.round {
            RoundMode::NearestAway => {
                self.quantize_slice_mode::<{ RoundMode::AWAY }>(data, scale, inv)
            }
            RoundMode::NearestEven => {
                self.quantize_slice_mode::<{ RoundMode::EVEN }>(data, scale, inv)
            }
            RoundMode::Floor => self.quantize_slice_mode::<{ RoundMode::FLOOR }>(data, scale, inv),
        }
    }

    fn bits(&self) -> u32 {
        self.word_bits
    }

    fn describe(&self) -> String {
        let int_bits = self.word_bits as i32 - 1 - self.frac_bits;
        format!("Q{int_bits}.{}", self.frac_bits)
    }

    fn max_value(&self) -> f32 {
        self.decode(self.raw_max())
    }

    fn min_value(&self) -> f32 {
        self.decode(self.raw_min())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q4_4_grid() {
        let q = Fixed::new(8, 4).unwrap();
        assert_eq!(q.step(), 1.0 / 16.0);
        assert_eq!(q.max_value(), 127.0 / 16.0);
        assert_eq!(q.min_value(), -8.0);
        assert_eq!(q.quantize_value(1.0), 1.0);
        assert_eq!(q.quantize_value(1.04), 1.0625);
        assert_eq!(q.quantize_value(-0.49), -0.5);
    }

    #[test]
    fn saturation_not_wraparound() {
        let q = Fixed::new(4, 0).unwrap(); // integers -8..=7
        assert_eq!(q.quantize_value(100.0), 7.0);
        assert_eq!(q.quantize_value(-100.0), -8.0);
        assert_eq!(q.quantize_value(7.4), 7.0);
    }

    #[test]
    fn negative_frac_bits_coarse_grid() {
        let q = Fixed::new(8, -2).unwrap(); // step 4
        assert_eq!(q.step(), 4.0);
        assert_eq!(q.quantize_value(5.0), 4.0);
        assert_eq!(q.quantize_value(6.1), 8.0);
        assert_eq!(q.max_value(), 127.0 * 4.0);
    }

    #[test]
    fn frac_exceeding_word_all_fractional() {
        let q = Fixed::new(4, 6).unwrap(); // range ±(2^-3..2^-6 grid)
        assert_eq!(q.max_value(), 7.0 / 64.0);
        assert_eq!(q.quantize_value(0.05), 3.0 / 64.0);
    }

    #[test]
    fn encode_decode_round_trip_equals_quantize() {
        let q = Fixed::new(8, 5).unwrap();
        for &x in &[0.0f32, 0.37, -1.92, 3.999, -4.0, 17.0, -17.0, 1e-9] {
            assert_eq!(q.decode(q.encode(x)), q.quantize_value(x), "x={x}");
        }
    }

    #[test]
    fn rounding_modes_differ_on_ties() {
        let away = Fixed::with_rounding(8, 1, RoundMode::NearestAway).unwrap();
        let even = Fixed::with_rounding(8, 1, RoundMode::NearestEven).unwrap();
        let floor = Fixed::with_rounding(8, 1, RoundMode::Floor).unwrap();
        // 0.25 scaled by 2 = 0.5: tie.
        assert_eq!(away.quantize_value(0.25), 0.5);
        assert_eq!(even.quantize_value(0.25), 0.0);
        assert_eq!(floor.quantize_value(0.25), 0.0);
        assert_eq!(floor.quantize_value(-0.25), -0.5);
    }

    #[test]
    fn thirty_two_bit_word_is_supported() {
        let q = Fixed::new(32, 16).unwrap();
        assert_eq!(q.quantize_value(1.5), 1.5);
        assert!(q.max_value() > 32_000.0);
    }

    #[test]
    fn rejects_bad_widths() {
        assert!(Fixed::new(1, 0).is_err());
        assert!(Fixed::new(33, 0).is_err());
        assert!(Fixed::new(0, 0).is_err());
    }

    #[test]
    fn nan_maps_to_zero() {
        let q = Fixed::new(8, 4).unwrap();
        assert_eq!(q.quantize_value(f32::NAN), 0.0);
    }

    #[test]
    fn infinities_saturate() {
        let q = Fixed::new(8, 4).unwrap();
        assert_eq!(q.quantize_value(f32::INFINITY), q.max_value());
        assert_eq!(q.quantize_value(f32::NEG_INFINITY), q.min_value());
    }

    #[test]
    fn stochastic_rounding_is_unbiased() {
        // Quantize 0.3 on a step-1 grid many times with a stratified
        // uniform stream: the mean must approach 0.3, which deterministic
        // rounding (→ 0.0) never does.
        let q = Fixed::new(8, 0).unwrap();
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|i| q.quantize_value_stochastic(0.3, (i as f32 + 0.5) / n as f32) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean {mean}");
        assert_eq!(q.quantize_value(0.3), 0.0);
    }

    #[test]
    fn stochastic_rounding_saturates_and_handles_grid_points() {
        let q = Fixed::new(4, 0).unwrap();
        assert_eq!(q.quantize_value_stochastic(100.0, 0.5), 7.0);
        assert_eq!(q.quantize_value_stochastic(-100.0, 0.5), -8.0);
        // Exact grid points never move regardless of u.
        for u in [0.0, 0.5, 0.999] {
            assert_eq!(q.quantize_value_stochastic(3.0, u), 3.0);
        }
    }

    #[test]
    fn describe_shows_q_format() {
        assert_eq!(Fixed::new(8, 4).unwrap().describe(), "Q3.4");
        assert_eq!(Fixed::new(16, 12).unwrap().describe(), "Q3.12");
    }
}
