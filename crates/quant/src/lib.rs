#![warn(missing_docs)]

//! # qnn-quant — the numeric formats of the DATE 2017 precision study
//!
//! Hashemi et al. sweep network precision from 32-bit floating point down to
//! binary weights. This crate implements each representation as a
//! [`Quantizer`]: a map from `f32` onto the format's representable grid
//! (Ristretto-style *simulated* quantization — arithmetic stays in f32, the
//! values are snapped). Exact bit-level encodings are also provided so the
//! hardware crates can reason about word widths and verify arithmetic
//! bit-accurately.
//!
//! The formats, as in the paper §IV-A:
//!
//! * [`Fixed`] — two's-complement fixed point with an arbitrary radix
//!   point; the paper evaluates 4/8/16/32-bit words with **independent**
//!   radix positions for weights and activations.
//! * [`PowerOfTwo`] — weights constrained to `±2^e` (6-bit codes in the
//!   paper) so multiplies become barrel shifts.
//! * [`Binary`] — 1-bit weights `±1` (optionally `±scale`), BinaryConnect
//!   style.
//! * [`Minifloat`] — a bit-accurate small float (sign/exponent/mantissa);
//!   IEEE-754 binary32 is the `8e23m` instance, and narrower instances
//!   cover the paper's future-work direction.
//!
//! Range **calibration** ([`calibrate`]) chooses radix points / exponent
//! windows from observed tensor statistics, and [`ste`] implements the
//! straight-through estimator used by quantization-aware training in
//! `qnn-nn`.
//!
//! ## Example
//!
//! ```
//! use qnn_quant::{Fixed, Quantizer};
//!
//! // Q4.4: 8-bit word, 4 fractional bits → step 1/16, range [-8, 7.9375].
//! let q = Fixed::new(8, 4)?;
//! assert_eq!(q.quantize_value(0.30), 0.3125);
//! assert_eq!(q.quantize_value(100.0), 7.9375); // saturates
//! # Ok::<(), qnn_quant::FormatError>(())
//! ```

mod binary;
mod codec;
mod error;
mod fixed;
mod minifloat;
mod pow2;
mod precision;
mod quantizer;

pub mod calibrate;
pub mod packed;
pub mod ste;

pub use binary::Binary;
pub use codec::BitCodec;
pub use error::FormatError;
pub use fixed::{Fixed, RoundMode};
pub use minifloat::Minifloat;
pub use pow2::PowerOfTwo;
pub use precision::{Precision, Scheme};
pub use quantizer::{quantize_inplace_par, IdentityQuantizer, Quantizer, QuantizerPair};
