use qnn_tensor::Tensor;

/// A map from `f32` onto a format's representable grid.
///
/// This is the Ristretto-style *simulated quantization* contract: the
/// returned values are ordinary `f32`s, but every one of them is exactly
/// representable in the target format, so f32 arithmetic over them models
/// what the reduced-precision hardware computes (up to accumulator
/// rounding, which the paper's accelerator performs at full internal
/// width).
///
/// Implementors must be idempotent: `q(q(x)) == q(x)` for all finite `x`.
/// The property tests in this crate enforce that for every shipped format.
pub trait Quantizer: std::fmt::Debug {
    /// Snaps a single value onto the representable grid.
    fn quantize_value(&self, x: f32) -> f32;

    /// Number of storage bits per value in this format.
    fn bits(&self) -> u32;

    /// Short human-readable format name, e.g. `"Q3.4"` or `"pow2[6b]"`.
    fn describe(&self) -> String;

    /// Snaps every element of a slice in place — the batch form of
    /// [`quantize_value`](Quantizer::quantize_value), and the entry point
    /// every tensor-level pass funnels through.
    ///
    /// The default loops over `quantize_value`; formats with per-element
    /// libm calls (fixed point's `exp2`, pow2's `log2`) override it with a
    /// loop that hoists the format constants so the body vectorizes.
    /// **Overrides must be bit-identical to the default** — the serving
    /// stack's bit-identity contract rides on every element snapping the
    /// same way no matter which path ran.
    fn quantize_slice(&self, data: &mut [f32]) {
        for v in data {
            *v = self.quantize_value(*v);
        }
    }

    /// Snaps every element of a tensor, producing a new tensor.
    fn quantize(&self, t: &Tensor) -> Tensor {
        let mut out = t.clone();
        self.quantize_slice(out.as_mut_slice());
        if qnn_trace::enabled() {
            observe_pass(
                &self.describe(),
                t.as_slice(),
                out.as_slice(),
                self.min_value(),
                self.max_value(),
            );
        }
        out
    }

    /// Snaps every element of a tensor in place.
    fn quantize_inplace(&self, t: &mut Tensor) {
        if qnn_trace::enabled() {
            let before = t.as_slice().to_vec();
            self.quantize_slice(t.as_mut_slice());
            observe_pass(
                &self.describe(),
                &before,
                t.as_slice(),
                self.min_value(),
                self.max_value(),
            );
        } else {
            self.quantize_slice(t.as_mut_slice());
        }
    }

    /// Largest representable value (used for saturation-aware clipping in
    /// the straight-through estimator).
    fn max_value(&self) -> f32;

    /// Smallest (most negative) representable value.
    fn min_value(&self) -> f32;

    /// Shadow-weight range outside which the clipped straight-through
    /// estimator zeroes gradients.
    ///
    /// Defaults to the representable range. Binary overrides this to
    /// `[-1, 1]` (the BinaryConnect convention): its representable "range"
    /// is just `{±scale}`, which would freeze almost every weight.
    fn ste_clip_range(&self) -> (f32, f32) {
        (self.min_value(), self.max_value())
    }

    /// The bit-level codec behind this quantizer's grid, if the format
    /// has a defined stored-word layout (all shipped formats do). Fault
    /// injection uses this to flip bits in the *encoded* representation.
    fn bit_codec(&self) -> Option<crate::codec::BitCodec> {
        None
    }
}

/// Chunk length of parallel fake-quantize passes. Fixed (never derived from
/// the thread count) so chunk boundaries — and with them every rounding
/// decision — are identical no matter how many workers run. Element-wise
/// snapping has no cross-element state, so the result equals the serial pass
/// bit-for-bit anyway; the fixed chunking keeps the execution shape
/// deterministic too.
const PAR_CHUNK: usize = 8192;

/// Snaps every element of `t` in place, spreading fixed-size chunks over
/// the `qnn_tensor::par` pool.
///
/// This is the fake-quantize hot path of quantization-aware training: every
/// forward pass snaps each activation tensor, so large feature maps benefit
/// from the pool while small ones stay on the calling thread (a single
/// chunk never spawns).
pub fn quantize_inplace_par<Q: Quantizer + Sync + ?Sized>(q: &Q, t: &mut Tensor) {
    let before = if qnn_trace::enabled() {
        Some(t.as_slice().to_vec())
    } else {
        None
    };
    qnn_tensor::par::for_each_chunk_mut(t.as_mut_slice(), PAR_CHUNK, |_, chunk| {
        q.quantize_slice(chunk);
    });
    if let Some(before) = before {
        observe_pass(
            &q.describe(),
            &before,
            t.as_slice(),
            q.min_value(),
            q.max_value(),
        );
    }
}

/// Records one tensor pass of quantization telemetry, keyed by format
/// label: the mean absolute snap error into `quant.abs_err/<label>` and
/// the fraction of elements outside the representable range (clipped to
/// the rails) into `quant.sat_rate/<label>`. One histogram sample each per
/// pass — bounded cost regardless of tensor size. Callers gate on
/// [`qnn_trace::enabled`]; the quantized values themselves are computed
/// identically whether or not tracing is on.
fn observe_pass(label: &str, before: &[f32], after: &[f32], lo: f32, hi: f32) {
    debug_assert_eq!(before.len(), after.len());
    if before.is_empty() {
        return;
    }
    let mut abs_err = 0.0f64;
    let mut saturated = 0usize;
    for (&b, &a) in before.iter().zip(after) {
        abs_err += f64::from((a - b).abs());
        if b > hi || b < lo {
            saturated += 1;
        }
    }
    let n = before.len() as f64;
    qnn_trace::observe!(format!("quant.abs_err/{label}"), abs_err / n);
    qnn_trace::observe!(format!("quant.sat_rate/{label}"), saturated as f64 / n);
}

/// The identity quantizer: 32-bit float, i.e. no quantization.
///
/// Serves as the full-precision baseline in every sweep.
///
/// ```
/// use qnn_quant::{IdentityQuantizer, Quantizer};
///
/// let q = IdentityQuantizer;
/// assert_eq!(q.quantize_value(0.1234567), 0.1234567);
/// assert_eq!(q.bits(), 32);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityQuantizer;

impl Quantizer for IdentityQuantizer {
    fn bit_codec(&self) -> Option<crate::codec::BitCodec> {
        Some(crate::codec::BitCodec::Float32)
    }

    fn quantize_value(&self, x: f32) -> f32 {
        x
    }

    fn bits(&self) -> u32 {
        32
    }

    fn describe(&self) -> String {
        "float32".to_string()
    }

    fn max_value(&self) -> f32 {
        f32::MAX
    }

    fn min_value(&self) -> f32 {
        f32::MIN
    }
}

/// The pair of quantizers a network runs under: one for parameters, one for
/// inputs/feature maps.
///
/// The paper (§II) treats inputs and feature maps with the same precision
/// while letting the parameter precision differ — `(w, in)` throughout its
/// tables. This type is the calibrated, concrete realisation of a
/// [`Precision`](crate::Precision) descriptor.
pub struct QuantizerPair {
    /// Quantizer applied to weights and biases.
    pub weights: Box<dyn Quantizer + Send + Sync>,
    /// Quantizer applied to the input image and every feature map.
    pub activations: Box<dyn Quantizer + Send + Sync>,
}

impl QuantizerPair {
    /// A full-precision pair (both sides identity).
    pub fn identity() -> Self {
        QuantizerPair {
            weights: Box::new(IdentityQuantizer),
            activations: Box::new(IdentityQuantizer),
        }
    }
}

impl std::fmt::Debug for QuantizerPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizerPair")
            .field("weights", &self.weights.describe())
            .field("activations", &self.activations.describe())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_tensor::Shape;

    #[test]
    fn identity_passes_through_tensors() {
        let t = Tensor::from_vec(Shape::d1(3), vec![1.5, -2.25, 0.0]).unwrap();
        assert_eq!(IdentityQuantizer.quantize(&t), t);
    }

    #[test]
    fn pair_debug_shows_formats() {
        let p = QuantizerPair::identity();
        let s = format!("{p:?}");
        assert!(s.contains("float32"));
    }

    #[test]
    fn quantizer_is_object_safe() {
        let q: Box<dyn Quantizer> = Box::new(IdentityQuantizer);
        assert_eq!(q.bits(), 32);
    }

    #[test]
    fn tracing_records_error_and_saturation_without_changing_values() {
        // Serialize against any other test using the global collector.
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());

        let q = crate::Fixed::new(8, 4).unwrap(); // Q3.4: range ±7.9375
        let t = Tensor::from_vec(Shape::d1(4), vec![0.3, -1.27, 100.0, -0.02]).unwrap();
        let plain = q.quantize(&t);

        qnn_trace::start();
        let traced = q.quantize(&t);
        let mut inplace = t.clone();
        q.quantize_inplace(&mut inplace);
        let mut par = t.clone();
        quantize_inplace_par(&q, &mut par);
        let trace = qnn_trace::stop();

        // Bit-identical outputs with tracing on.
        assert_eq!(traced, plain);
        assert_eq!(inplace, plain);
        assert_eq!(par, plain);

        let label = q.describe();
        let err = &trace.hists[&format!("quant.abs_err/{label}")];
        let sat = &trace.hists[&format!("quant.sat_rate/{label}")];
        // Three passes → one sample each.
        assert_eq!(err.count, 3);
        assert_eq!(sat.count, 3);
        // One of four elements (100.0) saturates.
        assert!((sat.max - 0.25).abs() < 1e-12, "sat.max = {}", sat.max);
        assert!(err.max > 0.0);
    }
}
