use qnn_tensor::Tensor;

/// A map from `f32` onto a format's representable grid.
///
/// This is the Ristretto-style *simulated quantization* contract: the
/// returned values are ordinary `f32`s, but every one of them is exactly
/// representable in the target format, so f32 arithmetic over them models
/// what the reduced-precision hardware computes (up to accumulator
/// rounding, which the paper's accelerator performs at full internal
/// width).
///
/// Implementors must be idempotent: `q(q(x)) == q(x)` for all finite `x`.
/// The property tests in this crate enforce that for every shipped format.
pub trait Quantizer: std::fmt::Debug {
    /// Snaps a single value onto the representable grid.
    fn quantize_value(&self, x: f32) -> f32;

    /// Number of storage bits per value in this format.
    fn bits(&self) -> u32;

    /// Short human-readable format name, e.g. `"Q3.4"` or `"pow2[6b]"`.
    fn describe(&self) -> String;

    /// Snaps every element of a tensor, producing a new tensor.
    fn quantize(&self, t: &Tensor) -> Tensor {
        t.map(|x| self.quantize_value(x))
    }

    /// Snaps every element of a tensor in place.
    fn quantize_inplace(&self, t: &mut Tensor) {
        t.map_inplace(|x| self.quantize_value(x));
    }

    /// Largest representable value (used for saturation-aware clipping in
    /// the straight-through estimator).
    fn max_value(&self) -> f32;

    /// Smallest (most negative) representable value.
    fn min_value(&self) -> f32;

    /// Shadow-weight range outside which the clipped straight-through
    /// estimator zeroes gradients.
    ///
    /// Defaults to the representable range. Binary overrides this to
    /// `[-1, 1]` (the BinaryConnect convention): its representable "range"
    /// is just `{±scale}`, which would freeze almost every weight.
    fn ste_clip_range(&self) -> (f32, f32) {
        (self.min_value(), self.max_value())
    }
}

/// Chunk length of parallel fake-quantize passes. Fixed (never derived from
/// the thread count) so chunk boundaries — and with them every rounding
/// decision — are identical no matter how many workers run. Element-wise
/// snapping has no cross-element state, so the result equals the serial pass
/// bit-for-bit anyway; the fixed chunking keeps the execution shape
/// deterministic too.
const PAR_CHUNK: usize = 8192;

/// Snaps every element of `t` in place, spreading fixed-size chunks over
/// the `qnn_tensor::par` pool.
///
/// This is the fake-quantize hot path of quantization-aware training: every
/// forward pass snaps each activation tensor, so large feature maps benefit
/// from the pool while small ones stay on the calling thread (a single
/// chunk never spawns).
pub fn quantize_inplace_par<Q: Quantizer + Sync + ?Sized>(q: &Q, t: &mut Tensor) {
    qnn_tensor::par::for_each_chunk_mut(t.as_mut_slice(), PAR_CHUNK, |_, chunk| {
        for v in chunk {
            *v = q.quantize_value(*v);
        }
    });
}

/// The identity quantizer: 32-bit float, i.e. no quantization.
///
/// Serves as the full-precision baseline in every sweep.
///
/// ```
/// use qnn_quant::{IdentityQuantizer, Quantizer};
///
/// let q = IdentityQuantizer;
/// assert_eq!(q.quantize_value(0.1234567), 0.1234567);
/// assert_eq!(q.bits(), 32);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityQuantizer;

impl Quantizer for IdentityQuantizer {
    fn quantize_value(&self, x: f32) -> f32 {
        x
    }

    fn bits(&self) -> u32 {
        32
    }

    fn describe(&self) -> String {
        "float32".to_string()
    }

    fn max_value(&self) -> f32 {
        f32::MAX
    }

    fn min_value(&self) -> f32 {
        f32::MIN
    }
}

/// The pair of quantizers a network runs under: one for parameters, one for
/// inputs/feature maps.
///
/// The paper (§II) treats inputs and feature maps with the same precision
/// while letting the parameter precision differ — `(w, in)` throughout its
/// tables. This type is the calibrated, concrete realisation of a
/// [`Precision`](crate::Precision) descriptor.
pub struct QuantizerPair {
    /// Quantizer applied to weights and biases.
    pub weights: Box<dyn Quantizer + Send + Sync>,
    /// Quantizer applied to the input image and every feature map.
    pub activations: Box<dyn Quantizer + Send + Sync>,
}

impl QuantizerPair {
    /// A full-precision pair (both sides identity).
    pub fn identity() -> Self {
        QuantizerPair {
            weights: Box::new(IdentityQuantizer),
            activations: Box::new(IdentityQuantizer),
        }
    }
}

impl std::fmt::Debug for QuantizerPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizerPair")
            .field("weights", &self.weights.describe())
            .field("activations", &self.activations.describe())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_tensor::Shape;

    #[test]
    fn identity_passes_through_tensors() {
        let t = Tensor::from_vec(Shape::d1(3), vec![1.5, -2.25, 0.0]).unwrap();
        assert_eq!(IdentityQuantizer.quantize(&t), t);
    }

    #[test]
    fn pair_debug_shows_formats() {
        let p = QuantizerPair::identity();
        let s = format!("{p:?}");
        assert!(s.contains("float32"));
    }

    #[test]
    fn quantizer_is_object_safe() {
        let q: Box<dyn Quantizer> = Box::new(IdentityQuantizer);
        assert_eq!(q.bits(), 32);
    }
}
