use std::fmt;

use crate::binary::Binary;
use crate::error::FormatError;
use crate::fixed::Fixed;
use crate::minifloat::Minifloat;
use crate::pow2::PowerOfTwo;
use crate::quantizer::{IdentityQuantizer, Quantizer, QuantizerPair};

/// A numeric representation *family* with its storage width, before range
/// calibration pins down radix points / exponent windows.
///
/// This is what the paper's tables index rows by; a [`Precision`] is a
/// pair of these, `(weights, inputs)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// IEEE-754 binary32 (the full-precision baseline).
    Float32,
    /// Two's-complement fixed point with the given word width; the radix
    /// point is chosen per tensor by calibration.
    Fixed {
        /// Word width in bits (4, 8, 16 or 32 in the paper).
        bits: u32,
    },
    /// Power-of-two codes (sign + exponent); the exponent window top is
    /// chosen by calibration.
    PowerOfTwo {
        /// Total code width in bits (6 in the paper).
        bits: u32,
    },
    /// One-bit sign; the optional magnitude is chosen by calibration.
    Binary,
    /// Custom small float (future-work extension of the paper).
    Minifloat {
        /// Exponent field width.
        exp_bits: u32,
        /// Mantissa field width.
        man_bits: u32,
    },
}

impl Scheme {
    /// Storage bits per value.
    pub fn bits(&self) -> u32 {
        match *self {
            Scheme::Float32 => 32,
            Scheme::Fixed { bits } => bits,
            Scheme::PowerOfTwo { bits } => bits,
            Scheme::Binary => 1,
            Scheme::Minifloat { exp_bits, man_bits } => 1 + exp_bits + man_bits,
        }
    }

    /// Builds a concrete quantizer with a *default* (uncalibrated) range:
    /// fixed point splits the word evenly around a ±8 range, power-of-two
    /// tops its window at `2^0`, binary uses ±1.
    ///
    /// Use [`calibrate`](crate::calibrate) to fit ranges to data instead.
    ///
    /// # Errors
    ///
    /// Returns an error if the scheme's parameters are invalid (e.g. a
    /// fixed width outside 2–32 bits).
    pub fn default_quantizer(&self) -> Result<Box<dyn Quantizer + Send + Sync>, FormatError> {
        Ok(match *self {
            Scheme::Float32 => Box::new(IdentityQuantizer),
            Scheme::Fixed { bits } => Box::new(Fixed::new(bits, bits as i32 - 4)?),
            Scheme::PowerOfTwo { bits } => Box::new(PowerOfTwo::new(bits, 0)?),
            Scheme::Binary => Box::new(Binary::new()),
            Scheme::Minifloat { exp_bits, man_bits } => {
                Box::new(Minifloat::new(exp_bits, man_bits)?)
            }
        })
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Scheme::Float32 => write!(f, "float32"),
            Scheme::Fixed { bits } => write!(f, "fixed{bits}"),
            Scheme::PowerOfTwo { bits } => write!(f, "pow2-{bits}"),
            Scheme::Binary => write!(f, "binary"),
            Scheme::Minifloat { exp_bits, man_bits } => write!(f, "float{exp_bits}e{man_bits}m"),
        }
    }
}

/// A row of the paper's design space: the `(weights, inputs)` precision
/// pair every table indexes by.
///
/// The constructors mirror the seven points of Table III:
///
/// ```
/// use qnn_quant::Precision;
///
/// let sweep = [
///     Precision::float32(),        // Floating-Point (32,32)
///     Precision::fixed(32, 32),    // Fixed-Point (32,32)
///     Precision::fixed(16, 16),
///     Precision::fixed(8, 8),
///     Precision::fixed(4, 4),
///     Precision::power_of_two(),   // Powers of Two (6,16)
///     Precision::binary(),         // Binary Net (1,16)
/// ];
/// assert_eq!(sweep[3].weight_bits(), 8);
/// assert_eq!(sweep[6].label(), "Binary Net (1,16)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Precision {
    weights: Scheme,
    activations: Scheme,
}

impl Precision {
    /// Full-precision baseline: float32 weights and inputs.
    pub fn float32() -> Self {
        Precision {
            weights: Scheme::Float32,
            activations: Scheme::Float32,
        }
    }

    /// Fixed-point `(w, in)` with independent word widths for weights and
    /// inputs (the paper uses matched pairs: 32/16/8/4).
    pub fn fixed(weight_bits: u32, input_bits: u32) -> Self {
        Precision {
            weights: Scheme::Fixed { bits: weight_bits },
            activations: Scheme::Fixed { bits: input_bits },
        }
    }

    /// Power-of-two weights (6-bit codes) with 16-bit fixed-point inputs —
    /// the paper's "Powers of Two (6,16)".
    pub fn power_of_two() -> Self {
        Precision {
            weights: Scheme::PowerOfTwo { bits: 6 },
            activations: Scheme::Fixed { bits: 16 },
        }
    }

    /// Power-of-two weights with explicit widths.
    pub fn power_of_two_with(weight_bits: u32, input_bits: u32) -> Self {
        Precision {
            weights: Scheme::PowerOfTwo { bits: weight_bits },
            activations: Scheme::Fixed { bits: input_bits },
        }
    }

    /// Binary weights with 16-bit fixed-point inputs — the paper's
    /// "Binary Net (1,16)".
    pub fn binary() -> Self {
        Precision {
            weights: Scheme::Binary,
            activations: Scheme::Fixed { bits: 16 },
        }
    }

    /// Custom minifloat weights and inputs (future-work extension).
    pub fn minifloat(exp_bits: u32, man_bits: u32) -> Self {
        let s = Scheme::Minifloat { exp_bits, man_bits };
        Precision {
            weights: s,
            activations: s,
        }
    }

    /// An arbitrary scheme pair.
    pub fn custom(weights: Scheme, activations: Scheme) -> Self {
        Precision {
            weights,
            activations,
        }
    }

    /// The weight scheme.
    pub fn weights(&self) -> Scheme {
        self.weights
    }

    /// The input/feature-map scheme.
    pub fn activations(&self) -> Scheme {
        self.activations
    }

    /// Storage bits per weight — the `w` of the paper's `(w, in)`.
    pub fn weight_bits(&self) -> u32 {
        self.weights.bits()
    }

    /// Storage bits per input/feature-map value — the `in` of `(w, in)`.
    pub fn input_bits(&self) -> u32 {
        self.activations.bits()
    }

    /// Whether any side is quantized at all.
    pub fn is_quantized(&self) -> bool {
        self.weights != Scheme::Float32 || self.activations != Scheme::Float32
    }

    /// The row label the paper's tables use, e.g. `"Fixed-Point (8,8)"`.
    pub fn label(&self) -> String {
        let (w, i) = (self.weight_bits(), self.input_bits());
        match (self.weights, self.activations) {
            (Scheme::Float32, Scheme::Float32) => format!("Floating-Point ({w},{i})"),
            (Scheme::Fixed { .. }, Scheme::Fixed { .. }) => format!("Fixed-Point ({w},{i})"),
            (Scheme::PowerOfTwo { .. }, _) => format!("Powers of Two ({w},{i})"),
            (Scheme::Binary, _) => format!("Binary Net ({w},{i})"),
            (Scheme::Minifloat { exp_bits, man_bits }, _) => {
                format!("Minifloat {exp_bits}e{man_bits}m ({w},{i})")
            }
            _ => format!("Custom ({w},{i})"),
        }
    }

    /// Builds default (uncalibrated) quantizers for both sides.
    ///
    /// # Errors
    ///
    /// Propagates format construction errors from either scheme.
    pub fn default_quantizers(&self) -> Result<QuantizerPair, FormatError> {
        Ok(QuantizerPair {
            weights: self.weights.default_quantizer()?,
            activations: self.activations.default_quantizer()?,
        })
    }

    /// The seven-row sweep of the paper's Table III, in table order.
    pub fn paper_sweep() -> Vec<Precision> {
        vec![
            Precision::float32(),
            Precision::fixed(32, 32),
            Precision::fixed(16, 16),
            Precision::fixed(8, 8),
            Precision::fixed(4, 4),
            Precision::power_of_two(),
            Precision::binary(),
        ]
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(Precision::float32().label(), "Floating-Point (32,32)");
        assert_eq!(Precision::fixed(16, 16).label(), "Fixed-Point (16,16)");
        assert_eq!(Precision::power_of_two().label(), "Powers of Two (6,16)");
        assert_eq!(Precision::binary().label(), "Binary Net (1,16)");
    }

    #[test]
    fn sweep_has_seven_points_in_order() {
        let s = Precision::paper_sweep();
        assert_eq!(s.len(), 7);
        assert_eq!(s[0], Precision::float32());
        assert_eq!(s[4], Precision::fixed(4, 4));
        assert_eq!(s[6], Precision::binary());
    }

    #[test]
    fn bits_accessors() {
        let p = Precision::power_of_two();
        assert_eq!(p.weight_bits(), 6);
        assert_eq!(p.input_bits(), 16);
        assert!(p.is_quantized());
        assert!(!Precision::float32().is_quantized());
    }

    #[test]
    fn default_quantizers_construct_for_whole_sweep() {
        for p in Precision::paper_sweep() {
            let q = p.default_quantizers().unwrap();
            assert_eq!(q.weights.bits(), p.weight_bits());
            assert_eq!(q.activations.bits(), p.input_bits());
        }
    }

    #[test]
    fn minifloat_precision() {
        let p = Precision::minifloat(5, 10);
        assert_eq!(p.weight_bits(), 16);
        assert!(p.label().contains("5e10m"));
    }

    #[test]
    fn scheme_display() {
        assert_eq!(Scheme::Fixed { bits: 8 }.to_string(), "fixed8");
        assert_eq!(Scheme::Binary.to_string(), "binary");
    }
}
