//! Bit-level encode/decode of the paper's storage formats.
//!
//! The quantizers in this crate snap values onto a representable grid;
//! this module exposes the *encoded words* behind that grid so fault
//! injection (`qnn-faults`) and the accelerator simulator can flip
//! individual stored bits and observe the decoded damage. Every codec
//! satisfies `decode_bits(encode_bits(x)) == quantize_value(x)`, and
//! every bit pattern of the format's width decodes to *some* value — a
//! flipped word is always a valid (if wrong) word, exactly as in an SRAM.
//!
//! Bit layouts (LSB first):
//!
//! * **Float32** — IEEE-754 binary32: mantissa `[0..23)`, exponent
//!   `[23..31)`, sign bit 31.
//! * **Fixed** — the two's-complement raw code in the low `word_bits`
//!   bits; bit `word_bits-1` is the sign.
//! * **PowerOfTwo** — exponent code in the low `bits-1` bits, sign at
//!   bit `bits-1`; code 0 is the value 0.
//! * **Binary** — one sign bit (set = negative).
//! * **Minifloat** — mantissa `[0..m)`, exponent `[m..m+e)`, sign at
//!   `m+e`; exponent field 0 is subnormal, overflow saturates.

use crate::binary::Binary;
use crate::fixed::Fixed;
use crate::minifloat::Minifloat;
use crate::pow2::PowerOfTwo;
use crate::quantizer::Quantizer;

/// A bit-accurate encoder/decoder for one storage format.
///
/// ```
/// use qnn_quant::{BitCodec, Fixed, Quantizer};
///
/// let q = Fixed::new(8, 4)?;
/// let codec = BitCodec::Fixed(q);
/// let w = codec.encode_bits(0.3125);
/// assert_eq!(codec.decode_bits(w), 0.3125);
/// // Flipping the sign bit lands on a different representable value.
/// assert_ne!(codec.flip(0.3125, 7), 0.3125);
/// # Ok::<(), qnn_quant::FormatError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BitCodec {
    /// IEEE-754 binary32 (full-precision buffers).
    Float32,
    /// Two's-complement fixed point.
    Fixed(Fixed),
    /// Sign + exponent-code words.
    PowerOfTwo(PowerOfTwo),
    /// Single sign bit.
    Binary(Binary),
    /// Sign/exponent/mantissa small float.
    Minifloat(Minifloat),
}

impl BitCodec {
    /// Storage width in bits; flips target bit indices `0..width`.
    pub fn width(&self) -> u32 {
        match self {
            BitCodec::Float32 => 32,
            BitCodec::Fixed(f) => f.word_bits(),
            BitCodec::PowerOfTwo(p) => p.bits(),
            BitCodec::Binary(_) => 1,
            BitCodec::Minifloat(m) => m.bits(),
        }
    }

    /// Encodes a value into its stored word (low `width` bits used).
    ///
    /// Values off the representable grid are first snapped by the
    /// format's own quantization rule, so the returned word is always
    /// the one the hardware buffer would hold.
    pub fn encode_bits(&self, x: f32) -> u64 {
        match self {
            BitCodec::Float32 => x.to_bits() as u64,
            BitCodec::Fixed(f) => (f.encode(x) as u64) & mask(f.word_bits()),
            BitCodec::PowerOfTwo(p) => {
                let (sign, code) = p.encode(x);
                ((sign as u64) << (p.bits() - 1)) | code as u64
            }
            BitCodec::Binary(b) => b.encode(x) as u64,
            BitCodec::Minifloat(m) => minifloat_encode(m, x),
        }
    }

    /// Decodes a stored word (low `width` bits) back into a value.
    pub fn decode_bits(&self, bits: u64) -> f32 {
        match self {
            BitCodec::Float32 => f32::from_bits(bits as u32),
            BitCodec::Fixed(f) => {
                let w = f.word_bits();
                let raw = bits & mask(w);
                // Sign-extend the w-bit two's-complement code.
                let signed = if w < 64 && raw >> (w - 1) != 0 {
                    (raw | !mask(w)) as i64
                } else {
                    raw as i64
                };
                f.decode(signed)
            }
            BitCodec::PowerOfTwo(p) => {
                let sign = bits >> (p.bits() - 1) & 1 != 0;
                let code = (bits & mask(p.bits() - 1)) as u32;
                p.decode(sign, code)
            }
            BitCodec::Binary(b) => b.decode(bits & 1 != 0),
            BitCodec::Minifloat(m) => minifloat_decode(m, bits),
        }
    }

    /// Re-encodes `x`, flips bit `bit` of the stored word, and decodes.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= width()` — such a bit does not exist in the
    /// stored word.
    pub fn flip(&self, x: f32, bit: u32) -> f32 {
        assert!(
            bit < self.width(),
            "bit {bit} outside {}-bit word",
            self.width()
        );
        self.decode_bits(self.encode_bits(x) ^ (1u64 << bit))
    }
}

/// Low-`n`-bits mask (`n <= 64`).
fn mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

fn minifloat_encode(m: &Minifloat, x: f32) -> u64 {
    let q = m.quantize_value(x);
    if q == 0.0 {
        return 0;
    }
    let (eb, mb) = (m.exp_bits(), m.man_bits());
    let sign = (q < 0.0) as u64;
    let mag = q.abs() as f64;
    let bias = m.bias();
    let min_normal_exp = 1 - bias;
    let e = mag.log2().floor() as i32;
    let (exp_field, man_field) = if e < min_normal_exp {
        // Subnormal: mantissa counts steps of 2^(min_normal_exp - mb).
        let step = ((min_normal_exp - mb as i32) as f64).exp2();
        (0u64, (mag / step).round() as u64)
    } else {
        let frac = mag / (e as f64).exp2() - 1.0;
        (
            (e + bias) as u64,
            (frac * (mb as f64).exp2()).round() as u64,
        )
    };
    (sign << (eb + mb)) | (exp_field << mb) | (man_field & mask(mb))
}

fn minifloat_decode(m: &Minifloat, bits: u64) -> f32 {
    let (eb, mb) = (m.exp_bits(), m.man_bits());
    let man = bits & mask(mb);
    let exp = (bits >> mb) & mask(eb);
    let sign = bits >> (eb + mb) & 1 != 0;
    let bias = m.bias();
    let min_normal_exp = 1 - bias;
    let mag = if exp == 0 {
        man as f64 * ((min_normal_exp - mb as i32) as f64).exp2()
    } else {
        (1.0 + man as f64 * (-(mb as f64)).exp2()) * ((exp as i32 - bias) as f64).exp2()
    };
    if mag == 0.0 {
        return 0.0; // keep zero canonical (no negative zero on the grid)
    }
    let v = mag as f32;
    if sign {
        -v
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codecs() -> Vec<BitCodec> {
        vec![
            BitCodec::Float32,
            BitCodec::Fixed(Fixed::new(8, 6).unwrap()),
            BitCodec::Fixed(Fixed::new(4, 2).unwrap()),
            BitCodec::Fixed(Fixed::new(16, 10).unwrap()),
            BitCodec::Fixed(Fixed::new(32, 16).unwrap()),
            BitCodec::PowerOfTwo(PowerOfTwo::new(6, 0).unwrap()),
            BitCodec::Binary(Binary::with_scale(0.5).unwrap()),
            BitCodec::Minifloat(Minifloat::new(5, 10).unwrap()),
            BitCodec::Minifloat(Minifloat::new(4, 3).unwrap()),
        ]
    }

    fn quantize_with(codec: &BitCodec, x: f32) -> f32 {
        match codec {
            BitCodec::Float32 => x,
            BitCodec::Fixed(q) => q.quantize_value(x),
            BitCodec::PowerOfTwo(q) => q.quantize_value(x),
            BitCodec::Binary(q) => q.quantize_value(x),
            BitCodec::Minifloat(q) => q.quantize_value(x),
        }
    }

    #[test]
    fn round_trip_equals_quantize() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for codec in codecs() {
            for _ in 0..512 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((state >> 33) as f32 / (1u64 << 28) as f32) - 4.0;
                let want = quantize_with(&codec, x);
                let got = codec.decode_bits(codec.encode_bits(x));
                assert_eq!(got, want, "{codec:?} at {x}");
            }
        }
    }

    #[test]
    fn every_bit_pattern_decodes_and_re_encodes_stably() {
        for codec in codecs() {
            if codec.width() > 16 {
                continue; // exhaustive only over narrow words
            }
            for word in 0..(1u64 << codec.width()) {
                let v = codec.decode_bits(word);
                assert!(!v.is_nan() || matches!(codec, BitCodec::Float32));
                // Decoded values lie on the grid: re-encoding round-trips.
                let v2 = codec.decode_bits(codec.encode_bits(v));
                assert_eq!(v.to_bits(), v2.to_bits(), "{codec:?} word {word:#x}");
            }
        }
    }

    #[test]
    fn flip_is_an_involution_on_grid_values() {
        for codec in codecs() {
            // 32-bit fixed has more grid points than f32 has mantissa
            // bits, so a flipped high-magnitude value rounds when decoded
            // to f32 and the involution only holds after a snap. Exact
            // involution is asserted for every format whose raw codes fit
            // an f32 mantissa.
            let exact = !matches!(&codec, BitCodec::Fixed(f) if f.word_bits() > 24);
            let x = quantize_with(&codec, 0.37);
            for bit in 0..codec.width() {
                let once = codec.flip(x, bit);
                let twice = codec.flip(once, bit);
                if exact {
                    assert_eq!(
                        twice.to_bits(),
                        x.to_bits(),
                        "{codec:?} bit {bit}: {x} -> {once} -> {twice}"
                    );
                } else {
                    let snapped = quantize_with(&codec, twice);
                    assert_eq!(
                        snapped.to_bits(),
                        twice.to_bits(),
                        "{codec:?} bit {bit}: flip result off-grid"
                    );
                }
            }
        }
    }

    #[test]
    fn sign_bit_flip_negates_fixed() {
        let codec = BitCodec::Fixed(Fixed::new(8, 4).unwrap());
        // 0.5 encodes as raw 8; flipping bit 7 adds -2^7 → raw -120.
        assert_eq!(codec.flip(0.5, 7), -120.0 / 16.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn flip_rejects_out_of_word_bits() {
        BitCodec::Binary(Binary::new()).flip(1.0, 1);
    }
}
