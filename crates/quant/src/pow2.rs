use crate::error::FormatError;
use crate::quantizer::Quantizer;

/// Power-of-two weight quantization: values constrained to `0` or
/// `±2^e` for `e` in a contiguous exponent window.
///
/// Following Lin et al. (cited by the paper as the origin of this scheme),
/// restricting weights to powers of two lets the accelerator replace every
/// multiplier with a barrel shifter — the weight's stored form *is* the
/// shift amount. The paper uses 6-bit codes: 1 sign bit plus 5 exponent
/// bits, i.e. a 31-value exponent window with one code reserved for zero.
///
/// The window's top exponent `max_exp` is chosen by calibration so the
/// largest weight magnitude is representable; everything more than
/// `2^(max_exp - window + 1)` below it underflows to zero.
///
/// ```
/// use qnn_quant::{PowerOfTwo, Quantizer};
///
/// let q = PowerOfTwo::new(6, 0)?; // exponents -30..=0, i.e. 1.0 down to 2^-30
/// assert_eq!(q.quantize_value(0.8), 1.0);    // nearest power of two
/// assert_eq!(q.quantize_value(-0.3), -0.25); // e = -2
/// assert_eq!(q.quantize_value(3.0), 1.0);    // clamps to the window top
/// assert_eq!(q.quantize_value(0.0), 0.0);
/// # Ok::<(), qnn_quant::FormatError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PowerOfTwo {
    total_bits: u32,
    max_exp: i32,
}

impl PowerOfTwo {
    /// Supported code widths, inclusive: sign + at least 1 exponent bit.
    pub const SUPPORTED_WIDTHS: (u32, u32) = (2, 8);

    /// Creates a power-of-two format with `total_bits` storage (1 sign bit +
    /// `total_bits - 1` exponent bits) and window top `max_exp`.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidWidth`] if `total_bits` is outside
    /// `2..=8`, or [`FormatError::InvalidParameter`] if the exponent window
    /// leaves f32 range.
    pub fn new(total_bits: u32, max_exp: i32) -> Result<Self, FormatError> {
        if total_bits < Self::SUPPORTED_WIDTHS.0 || total_bits > Self::SUPPORTED_WIDTHS.1 {
            return Err(FormatError::InvalidWidth {
                format: "pow2",
                bits: total_bits,
                supported: Self::SUPPORTED_WIDTHS,
            });
        }
        let min_exp = max_exp - (Self::window_len(total_bits) as i32 - 1);
        if max_exp > 120 || min_exp < -120 {
            return Err(FormatError::InvalidParameter {
                format: "pow2",
                reason: format!("exponent window {min_exp}..={max_exp} exceeds f32 range"),
            });
        }
        Ok(PowerOfTwo {
            total_bits,
            max_exp,
        })
    }

    /// Number of distinct exponents the code can express
    /// (`2^(bits-1) - 1`; the all-zero exponent code means value 0).
    fn window_len(total_bits: u32) -> u32 {
        (1u32 << (total_bits - 1)) - 1
    }

    /// Top of the exponent window.
    pub fn max_exp(&self) -> i32 {
        self.max_exp
    }

    /// Bottom of the exponent window.
    pub fn min_exp(&self) -> i32 {
        self.max_exp - (Self::window_len(self.total_bits) as i32 - 1)
    }

    /// Encodes a value as `(sign, exponent_code)`; code `0` is the value 0,
    /// code `c >= 1` means exponent `min_exp + c - 1`.
    pub fn encode(&self, x: f32) -> (bool, u32) {
        if x == 0.0 || x.is_nan() {
            return (false, 0);
        }
        let e = match nearest_exponent(x.abs()) {
            Some(e) => e,
            None => return (false, 0),
        };
        if e < self.min_exp() {
            // Closer to zero than to the smallest magnitude? Underflow check:
            // values below half the smallest representable magnitude go to 0.
            let smallest = (self.min_exp() as f32).exp2();
            if x.abs() < smallest * 0.5 {
                return (x < 0.0, 0);
            }
            return (x < 0.0, 1);
        }
        let e = e.min(self.max_exp);
        (x < 0.0, (e - self.min_exp()) as u32 + 1)
    }

    /// Decodes a `(sign, exponent_code)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds the window length — such a code cannot be
    /// stored in `total_bits` bits.
    pub fn decode(&self, sign: bool, code: u32) -> f32 {
        assert!(
            code <= Self::window_len(self.total_bits),
            "code {code} does not fit {} exponent bits",
            self.total_bits - 1
        );
        if code == 0 {
            return 0.0;
        }
        let e = self.min_exp() + code as i32 - 1;
        let mag = (e as f32).exp2();
        if sign {
            -mag
        } else {
            mag
        }
    }
}

/// The exponent whose power of two is nearest to `m` in linear distance.
///
/// `None` for zero/NaN/infinite magnitudes.
fn nearest_exponent(m: f32) -> Option<i32> {
    if !(m.is_finite() && m > 0.0) {
        return None;
    }
    let fl = m.log2().floor() as i32;
    // Candidates 2^fl and 2^(fl+1); pick the linearly nearer one.
    let lo = (fl as f32).exp2();
    let hi = ((fl + 1) as f32).exp2();
    if (m - lo).abs() <= (hi - m).abs() {
        Some(fl)
    } else {
        Some(fl + 1)
    }
}

impl Quantizer for PowerOfTwo {
    fn bit_codec(&self) -> Option<crate::codec::BitCodec> {
        Some(crate::codec::BitCodec::PowerOfTwo(*self))
    }

    fn quantize_value(&self, x: f32) -> f32 {
        let (s, c) = self.encode(x);
        self.decode(s, c)
    }

    fn quantize_slice(&self, data: &mut [f32]) {
        // The per-value path pays a `log2` plus two `exp2` libm calls per
        // element; this loop reads the exponent straight from the f32 bit
        // pattern instead. Bit-identical to the default (pinned by the
        // slice-vs-scalar property test):
        //
        // * A normal `m = 2^fl·(1+f)` with `f = mant/2^23` sits between
        //   `2^fl` and `2^(fl+1)`, whose linear midpoint is `1.5·2^fl` —
        //   so `nearest_exponent`'s tie comparison (`m - lo` is exact by
        //   Sterbenz' lemma) reduces to `mant <= 0x40_0000`.
        // * Subnormals lie below `2^-126`, at least five octaves under the
        //   lowest window bottom (`min_exp >= -120`), so they always take
        //   the deep-underflow branch to 0.0.
        // * Zero, NaN, and infinity encode to code 0, which decodes to
        //   +0.0 regardless of sign.
        let min_exp = self.min_exp();
        let max_exp = self.max_exp;
        let half_smallest = (min_exp as f32).exp2() * 0.5;
        for v in data {
            let x = *v;
            let m = x.abs();
            let bits = m.to_bits();
            let exp_field = (bits >> 23) as i32;
            if exp_field == 0 || exp_field == 0xff {
                *v = 0.0;
                continue;
            }
            let mant = bits & 0x7f_ffff;
            let e = (exp_field - 127) + i32::from(mant > 0x40_0000);
            *v = if e < min_exp {
                if m < half_smallest {
                    0.0
                } else {
                    // Shallow underflow clamps to the window bottom.
                    let mag = f32::from_bits(((min_exp + 127) as u32) << 23);
                    if x < 0.0 {
                        -mag
                    } else {
                        mag
                    }
                }
            } else {
                let e = e.min(max_exp);
                // `2^e` for integral e in the window is a normal f32, so
                // its bit pattern is just the biased exponent field.
                let mag = f32::from_bits(((e + 127) as u32) << 23);
                if x < 0.0 {
                    -mag
                } else {
                    mag
                }
            };
        }
    }

    fn bits(&self) -> u32 {
        self.total_bits
    }

    fn describe(&self) -> String {
        format!(
            "pow2[{}b, 2^{}..2^{}]",
            self.total_bits,
            self.min_exp(),
            self.max_exp
        )
    }

    fn max_value(&self) -> f32 {
        (self.max_exp as f32).exp2()
    }

    fn min_value(&self) -> f32 {
        -(self.max_exp as f32).exp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_bit_window_has_31_exponents() {
        let q = PowerOfTwo::new(6, 0).unwrap();
        assert_eq!(q.min_exp(), -30);
        assert_eq!(q.max_exp(), 0);
    }

    #[test]
    fn snaps_to_nearest_power() {
        let q = PowerOfTwo::new(6, 2).unwrap();
        assert_eq!(q.quantize_value(1.0), 1.0);
        assert_eq!(q.quantize_value(1.4), 1.0);
        assert_eq!(q.quantize_value(1.6), 2.0);
        assert_eq!(q.quantize_value(-3.5), -4.0);
        assert_eq!(q.quantize_value(4.0), 4.0);
    }

    #[test]
    fn clamps_to_window_top() {
        let q = PowerOfTwo::new(4, 0).unwrap(); // exponents -6..=0
        assert_eq!(q.quantize_value(100.0), 1.0);
        assert_eq!(q.quantize_value(-100.0), -1.0);
    }

    #[test]
    fn underflows_to_zero() {
        let q = PowerOfTwo::new(4, 0).unwrap(); // min magnitude 2^-6
        let tiny = (2.0f32).powi(-6) * 0.4;
        assert_eq!(q.quantize_value(tiny), 0.0);
        // But just above half the smallest magnitude survives.
        let small = (2.0f32).powi(-6) * 0.6;
        assert_eq!(q.quantize_value(small), (2.0f32).powi(-6));
    }

    #[test]
    fn zero_and_nan() {
        let q = PowerOfTwo::new(6, 0).unwrap();
        assert_eq!(q.quantize_value(0.0), 0.0);
        assert_eq!(q.quantize_value(f32::NAN), 0.0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let q = PowerOfTwo::new(6, 3).unwrap();
        for &x in &[0.0f32, 0.9, -2.3, 8.0, -0.001, 1e-12] {
            let (s, c) = q.encode(x);
            assert_eq!(q.decode(s, c), q.quantize_value(x), "x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn decode_rejects_oversized_code() {
        PowerOfTwo::new(4, 0).unwrap().decode(false, 8);
    }

    #[test]
    fn rejects_bad_widths() {
        assert!(PowerOfTwo::new(1, 0).is_err());
        assert!(PowerOfTwo::new(9, 0).is_err());
    }

    #[test]
    fn every_output_is_zero_or_power_of_two() {
        let q = PowerOfTwo::new(6, 1).unwrap();
        for i in -50..50 {
            let x = i as f32 * 0.173;
            let y = q.quantize_value(x);
            if y != 0.0 {
                let l = y.abs().log2();
                assert!((l - l.round()).abs() < 1e-6, "{y} is not a power of two");
            }
        }
    }
}
